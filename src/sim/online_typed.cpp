// Typed-kernel implementation of run_online (OnlineKernel::kTyped).
//
// Same admission/fault/repair semantics as the closure oracle in
// online.cpp, executed on the allocation-free event core of
// sim/event_kernel.h:
//
//  * POD events in a 4-ary (time, seq) heap; dispatch is the switch in the
//    run loop below.  Banded seqs reproduce the closure kernel's global
//    insertion order (see event_kernel.h).
//  * Arrivals and fault events stream lazily — the heap holds one pending
//    arrival, one pending fault, the in-flight completions, and at most one
//    status tick, so event storage is O(inflight), not O(horizon).
//  * Flights live in a generation-stamped slab: a completion event for a
//    killed or relocated flight dereferences to null and self-discards.
//  * Replica membership is mirrored in a per-(dataset, site) byte mask, so
//    the admission scan's replica check is O(1) instead of O(|replicas|).
//
// Every floating-point accumulation (site loads, in_use_total, tentative
// reservations) applies the same operations in the same order as the
// closure kernel, so results are bit-identical (pinned by
// tests/sim/online_equivalence_test.cpp).
#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "cloud/delay.h"
#include "net/routes.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "sim/event_kernel.h"
#include "sim/flows.h"
#include "sim/online.h"
#include "sim/online_internal.h"

namespace edgerep {

namespace {

using online_detail::DemandEnd;
using online_detail::DemandLayout;
using online_detail::demand_span_id;
using online_detail::kNoSpan;
using online_detail::OnlineArrivalStream;
using online_detail::query_span_id;
using online_detail::SiteLoad;
using online_detail::SpanRec;

/// Sim-time gap between telemetry refresh ticks when a status board is
/// attached.  Ticks read state and publish; they never write sim state, so
/// the cadence is not part of the equivalence contract.
constexpr double kStatusTickGap = 0.25;

}  // namespace

OnlineResult run_online_typed(const Instance& inst, const OnlineConfig& cfg,
                              const ReplicaPlan* proactive) {
  TypedEventQueue queue;
  queue.reserve(256);
  FlightSlab slab;
  FaultState faults(inst);

  const bool metrics_on = obs::metrics_enabled();
  const bool trace_on = obs::trace_enabled();
  const bool audit_on = obs::audit_enabled();
  // Flight recorder: sampled once like the other facets.  Appends happen at
  // points mirrored exactly in the closure kernel, so a fixed config yields
  // a byte-identical journal on either kernel (tests/obs/postmortem_test).
  const bool rec_on = obs::recorder_enabled();
  obs::Recorder* const rec = rec_on ? &obs::recorder() : nullptr;
  // Watchdog (5th facet), sampled once like the recorder.  Feeds sit at
  // the recorder's mirrored append sites and carry only sim-clock times and
  // stable ids, so the alert stream is byte-identical across kernels.
  const bool wd_on = obs::watchdog_enabled();
  obs::Watchdog* const wd = wd_on ? &obs::watchdog() : nullptr;
  if (wd != nullptr) wd->begin_run();
  OnlineStatusBoard* board = cfg.status_board;
  std::vector<obs::AuditEntry> audit_entries;

  obs::Counter* c_arrivals = nullptr;
  obs::Counter* c_admitted = nullptr;
  obs::Counter* c_rejected = nullptr;
  if (metrics_on) {
    c_arrivals = &obs::metrics().counter("edgerep_online_arrivals_total",
                                         "query arrivals seen");
    c_admitted =
        &obs::metrics().counter("edgerep_online_queries_admitted_total",
                                "queries admitted on arrival");
    c_rejected =
        &obs::metrics().counter("edgerep_online_queries_rejected_total",
                                "queries rejected on arrival");
  }

  OnlineResult res;
  res.kernel_stats.kernel = OnlineKernel::kTyped;
  const std::size_t num_sites = inst.sites().size();
  const std::size_t num_datasets = inst.datasets().size();

  // Replica state: the per-dataset site vectors are the contract-visible
  // representation; the byte mask is an O(1)-lookup mirror of it (the hot
  // admission scan asks "replica here?" once per site per demand).
  res.replica_sites.resize(num_datasets);
  std::vector<std::uint8_t> replica_mask(num_datasets * num_sites, 0);
  auto add_replica = [&](DatasetId n, SiteId l) {
    res.replica_sites[n].push_back(l);
    replica_mask[static_cast<std::size_t>(n) * num_sites + l] = 1;
  };
  auto has_replica = [&](DatasetId n, SiteId l) {
    return replica_mask[static_cast<std::size_t>(n) * num_sites + l] != 0;
  };
  if (proactive != nullptr) {
    for (const Dataset& d : inst.datasets()) {
      for (const SiteId l : proactive->replica_sites(d.id)) {
        add_replica(d.id, l);
      }
    }
  } else if (cfg.origin_counts_as_replica) {
    for (const Dataset& d : inst.datasets()) {
      if (d.origin != kInvalidSite) add_replica(d.id, d.origin);
    }
  }

  std::vector<SiteLoad> sites(num_sites);
  double total_available = 0.0;
  for (const Site& s : inst.sites()) {
    sites[s.id].available = s.available;
    total_available += s.available;
  }

  // Per-site flight handles (consulted only by fault handlers).  Stale
  // handles are skipped on read and compacted when they outnumber the live
  // ones, so each list stays O(peak live at that site), not O(launches).
  std::vector<std::vector<FlightHandle>> site_flights(num_sites);
  std::vector<std::uint32_t> site_live(num_sites, 0);
  auto compact_site = [&](std::vector<FlightHandle>& v) {
    std::size_t w = 0;
    for (const FlightHandle h : v) {
      if (slab.get(h) != nullptr) v[w++] = h;
    }
    v.resize(w);
  };

  std::size_t inflight_count = 0;
  double in_use_total = 0.0;
  std::size_t arrivals_seen = 0;
  std::size_t rejected_queries = 0;

  const DemandLayout layout(inst);
  std::vector<DemandEnd> demand_ends(layout.total());
  // Latest flight per (query, demand) — the fault path's kill index.
  std::vector<FlightHandle> qd_flight(layout.total());

  // Flow backend (cfg.network == kFlow), mirrored call-for-call with the
  // closure kernel: every admitted transfer is replayed as a rate-capped
  // flow whose contention-stretched completion overwrites (via max) the
  // table prediction.  Completions surface as kTransferDone events in the
  // run loop below.
  const bool flow_on = cfg.network == OnlineNetwork::kFlow;
  std::unique_ptr<FlowEngine> flow;
  RouteTable routes;
  std::vector<double> flow_base_caps;   // effective capacity per edge
  std::vector<QueryId> slot_query;      // layout slot -> owning query
  std::vector<std::uint32_t> qd_flow;   // layout slot -> live flow slot
  std::vector<std::uint32_t> qd_bottleneck;  // slot -> last bottleneck edge
  std::vector<EdgeId> route_buf;
  std::vector<double> flow_predicted;   // per query, table-priced completion
  std::size_t flow_late = 0;            // deliveries after predicted time
  if (flow_on) {
    flow_base_caps = online_detail::flow_link_capacities(
        inst.graph(), cfg.oversubscription);
    flow = std::make_unique<FlowEngine>(queue, flow_base_caps);
    std::vector<NodeId> site_nodes;
    site_nodes.reserve(num_sites);
    for (const Site& s : inst.sites()) site_nodes.push_back(s.node);
    routes = RouteTable::compute(inst.graph(), site_nodes);
    slot_query.resize(layout.total());
    for (const Query& q : inst.queries()) {
      for (std::uint32_t d = 0; d < q.demands.size(); ++d) {
        slot_query[layout.at(q.id, d)] = q.id;
      }
    }
    qd_flow.assign(layout.total(), FlowEngine::kNoFlow);
    if (wd != nullptr) qd_bottleneck.assign(layout.total(), obs::kNoAlertLink);
    flow_predicted.resize(inst.queries().size(), 0.0);
    flow->set_rate_listener([&](std::uint32_t tag, double t, double rate,
                                double remaining, EdgeId bottleneck) {
      if (rate > 0.0) ++res.flow_gap.rate_changes;
      if (wd != nullptr && rate > 0.0) {
        // Mirror the postmortem's bottleneck attribution: the last rate
        // transition names the link to blame at retirement.
        qd_bottleneck[tag] = static_cast<std::uint32_t>(bottleneck);
      }
      if (rec_on) {
        obs::JournalRecord r;
        r.time = t;
        r.v0 = rate;
        r.v1 = remaining;
        r.a = tag;
        r.b = static_cast<std::uint32_t>(bottleneck);
        r.site = obs::kNoSite;
        r.kind = static_cast<std::uint8_t>(obs::RecordKind::kFlowRateChange);
        r.arg = rate > 0.0 ? 0 : 1;  // 1 = retirement at actual completion
        rec->append(r);
      }
    });
  }

  std::vector<SpanRec> spans;
  std::vector<SpanRec> instants;
  std::vector<std::size_t> query_span(inst.queries().size(), kNoSpan);

  auto track_peak = [&] {
    if (total_available <= 0.0) return;
    res.peak_utilization =
        std::max(res.peak_utilization, in_use_total / total_available);
  };

  std::uint32_t status_tick = 0;
  auto publish_board = [&](bool finished) {
    OnlineStatus st;
    st.sim_clock = queue.now();
    st.arrivals_seen = arrivals_seen;
    st.inflight_demands = inflight_count;
    st.admitted_queries = res.admitted_queries;
    st.rejected_queries = rejected_queries;
    st.failed_by_fault = res.queries_failed_by_fault;
    st.demands_relocated = res.demands_relocated;
    st.fault_events_applied = res.fault_events_applied;
    st.replicas_lost = res.replicas_lost_to_faults;
    st.utilization =
        total_available > 0.0 ? in_use_total / total_available : 0.0;
    st.site_in_use.reserve(num_sites);
    st.site_available.reserve(num_sites);
    for (const Site& s : inst.sites()) {
      st.site_in_use.push_back(sites[s.id].in_use);
      st.site_available.push_back(faults.available(s.id));
    }
    st.active_flows = flow_on ? flow->active_flows() : 0;
    st.flow_rate_changes = res.flow_gap.rate_changes;
    st.flow_late_transfers = flow_late;
    st.finished = finished;
    board->publish(st);
  };
  auto push_status = [&](bool force) {
    if (!metrics_on && board == nullptr) return;
    if (!force) {
      if ((++status_tick & 31u) != 0) return;
      if (board != nullptr && !board->due(2'000'000)) return;
    }
    if (metrics_on) {
      static obs::Gauge& g_inflight = obs::metrics().gauge(
          "edgerep_online_inflight", "demands currently holding resource");
      static obs::Gauge& g_clock = obs::metrics().gauge(
          "edgerep_online_sim_clock_seconds", "simulated seconds elapsed");
      static obs::Gauge& g_util = obs::metrics().gauge(
          "edgerep_online_utilization",
          "in-use GHz over fault-free total GHz");
      g_inflight.set(static_cast<double>(inflight_count));
      g_clock.set(queue.now());
      g_util.set(total_available > 0.0 ? in_use_total / total_available
                                       : 0.0);
      // Typed-kernel internals, refreshed on the same cadence so /metrics
      // and /timeseries expose the event core's live state during --serve.
      static obs::Gauge& g_pending = obs::metrics().gauge(
          "edgerep_kernel_pending_events",
          "typed kernel: events pending (heap + immediates ring)");
      static obs::Gauge& g_peak_pending = obs::metrics().gauge(
          "edgerep_kernel_peak_pending_events",
          "typed kernel: high-water of pending events");
      static obs::Gauge& g_live_flights = obs::metrics().gauge(
          "edgerep_kernel_live_flights", "flight slab: live slots");
      static obs::Gauge& g_peak_flights = obs::metrics().gauge(
          "edgerep_kernel_peak_flights", "flight slab: high-water of live slots");
      static obs::Gauge& g_slab_churn = obs::metrics().gauge(
          "edgerep_kernel_flight_destroys",
          "flight slab: generation churn (slots destroyed and recycled)");
      static obs::Gauge& g_ring_hw = obs::metrics().gauge(
          "edgerep_kernel_ring_high_water",
          "typed kernel: immediates-ring occupancy high-water");
      g_pending.set(static_cast<double>(queue.pending()));
      g_peak_pending.set(static_cast<double>(queue.peak_pending()));
      g_live_flights.set(static_cast<double>(slab.live_count()));
      g_peak_flights.set(static_cast<double>(slab.peak_live()));
      g_slab_churn.set(static_cast<double>(slab.destroys()));
      g_ring_hw.set(static_cast<double>(queue.peak_ring_pending()));
      if (flow_on) {
        static obs::Gauge& g_flows = obs::metrics().gauge(
            "edgerep_online_active_flows",
            "flow backend: transfers currently in flight");
        static obs::Gauge& g_ratech = obs::metrics().gauge(
            "edgerep_online_flow_rate_changes",
            "flow backend: max-min re-fill rate transitions");
        static obs::Gauge& g_late = obs::metrics().gauge(
            "edgerep_online_flow_late_transfers",
            "flow backend: deliveries after their table-predicted time");
        g_flows.set(static_cast<double>(flow->active_flows()));
        g_ratech.set(static_cast<double>(res.flow_gap.rate_changes));
        g_late.set(static_cast<double>(flow_late));
      }
    }
    if (board == nullptr) return;
    publish_board(force && arrivals_seen == inst.queries().size());
  };

  /// Abort the live flow of one (query, demand) slot, if any — kill paths
  /// and relocation call this; the table prediction in demand_ends stands.
  auto cancel_transfer = [&](std::size_t ls) {
    if (!flow_on || qd_flow[ls] == FlowEngine::kNoFlow) return;
    flow->cancel(qd_flow[ls]);
    qd_flow[ls] = FlowEngine::kNoFlow;
  };

  /// A flow finished: overwrite the table-predicted completion with the
  /// flow-simulated actual.  Monotone (max), so the contention-free limit —
  /// where the actual equals the prediction bit for bit — changes nothing.
  auto deliver_transfer = [&](std::size_t ls, double t) {
    qd_flow[ls] = FlowEngine::kNoFlow;
    DemandEnd& de = demand_ends[ls];
    if (t > de.completion + 1e-9) ++flow_late;
    if (wd != nullptr) {
      const OnlineOutcome& prev = res.outcomes[slot_query[ls]];
      wd->on_flow_retire(t, qd_bottleneck[ls], t - de.completion);
      wd->on_completion(t,
                        inst.query(slot_query[ls]).deadline -
                            (std::max(prev.completion_time, t) -
                             prev.arrival_time),
                        false);
    }
    de.completion = std::max(de.completion, t);
    OnlineOutcome& o = res.outcomes[slot_query[ls]];
    o.completion_time = std::max(o.completion_time, t);
    push_status(false);
  };

  /// Route one admitted transfer as a flow: full evaluation delay as the
  /// flow size, nominal rate capped at 1.0 (so an uncontended flow finishes
  /// exactly at the priced delay), path = shortest route from the
  /// evaluation site to the query home.  Local evaluations (empty route)
  /// and zero-work transfers are not flows — the prediction stands.
  auto start_transfer = [&](QueryId m, std::uint32_t demand, SiteId site,
                            double total) {
    if (!flow_on) return;
    const std::size_t ls = layout.at(m, demand);
    cancel_transfer(ls);
    if (total <= 0.0) return;
    const NodeId home = inst.site(inst.query(m).home).node;
    if (!routes.edge_path(inst.graph(), site, home, route_buf) ||
        route_buf.empty()) {
      return;
    }
    const std::uint32_t slot = flow->start_flow(
        total, std::vector<EdgeId>(route_buf.begin(), route_buf.end()),
        static_cast<std::uint32_t>(ls), /*rate_cap=*/1.0);
    if (slot != FlowEngine::kNoFlow) {
      qd_flow[ls] = slot;
      ++res.flow_gap.flows_routed;
    }
  };

  /// Capacity faults steal NIC bandwidth along with compute: scale every
  /// link incident to the struck site's node by the remaining compute
  /// fraction (clamped away from zero so flows keep progressing).  Site
  /// crashes do not touch links (the co-located switch survives), and link
  /// up/down events shape routing of future admissions only — in-flight
  /// transfers are not re-simulated (see the contract in sim/online.h).
  auto update_flow_links = [&](SiteId s) {
    if (!flow_on) return;
    const double scale = std::max(faults.capacity_scale(s), 1e-6);
    for (const HalfEdge& he : inst.graph().neighbors(inst.site(s).node)) {
      flow->set_link_capacity(he.edge, flow_base_caps[he.edge] * scale);
    }
  };

  auto truncate_flight_spans = [&](const Flight& f) {
    if (!trace_on) return;
    for (const std::uint32_t si : {f.span_transfer, f.span_compute}) {
      if (si == kNilSlot) continue;
      spans[si].t0 = std::min(spans[si].t0, queue.now());
      spans[si].t1 = std::min(spans[si].t1, queue.now());
    }
  };

  /// Release a flight's resource and recycle its slot (no-op on stale
  /// handles — the generation check subsumes the closure kernel's `alive`
  /// flag).  The slot's flow, if still in the air, is silently aborted.
  auto kill_flight = [&](FlightHandle h) {
    Flight* f = slab.get(h);
    if (f == nullptr) return;
    sites[f->site].in_use -= f->need;
    --inflight_count;
    in_use_total -= f->need;
    --site_live[f->site];
    cancel_transfer(layout.at(f->query, f->demand));
    truncate_flight_spans(*f);
    slab.destroy(h);
  };

  auto launch_flight = [&](QueryId m, std::uint32_t demand, SiteId site,
                           double need, double proc, double total) {
    const FlightHandle h = slab.create();
    Flight& f = slab.at(h.slot);
    f.query = m;
    f.demand = demand;
    f.site = site;
    f.need = need;
    if (trace_on) {
      const double t0 = queue.now();
      const double t_mid = t0 + std::max(0.0, total - proc);
      f.span_transfer = static_cast<std::uint32_t>(spans.size());
      spans.push_back({"online.transfer", demand_span_id(m, demand, 1), t0,
                       t_mid});
      f.span_compute = static_cast<std::uint32_t>(spans.size());
      spans.push_back({"online.compute", demand_span_id(m, demand, 2), t_mid,
                       t0 + total});
    }
    site_flights[site].push_back(h);
    ++site_live[site];
    if (site_flights[site].size() > 64 &&
        site_flights[site].size() > 2 * site_live[site]) {
      compact_site(site_flights[site]);
    }
    qd_flight[layout.at(m, demand)] = h;
    sites[site].in_use += need;
    ++inflight_count;
    in_use_total += need;
    queue.push_dynamic(EvKind::kComputeDone, queue.now() + proc, h.slot,
                       h.gen);
  };

  // Journal append for a launched flight (admission or fault relocation).
  auto record_flight = [&](obs::RecordKind kind, QueryId m,
                           std::uint32_t demand, SiteId site, DatasetId n,
                           double total, double proc) {
    obs::JournalRecord r;
    r.time = queue.now();
    r.v0 = total;
    r.v1 = proc;
    r.a = m;
    r.b = n;
    r.site = site;
    r.kind = static_cast<std::uint8_t>(kind);
    r.arg = static_cast<std::uint8_t>(demand);
    r.flags = inst.site(site).is_data_center() ? 1u : 0u;
    rec->append(r);
  };

  // Scratch for fail_query: (birth, handle) of the query's live flights.
  std::vector<std::pair<std::uint64_t, FlightHandle>> kill_buf;
  auto fail_query = [&](QueryId m) {
    if (res.outcomes[m].failed_by_fault) return;
    if (rec_on) {
      obs::JournalRecord r;
      r.time = queue.now();
      r.a = m;
      r.site = obs::kNoSite;
      r.kind = static_cast<std::uint8_t>(obs::RecordKind::kFail);
      rec->append(r);
    }
    if (wd != nullptr) wd->on_completion(queue.now(), -1.0, true);
    // Kill in launch order — the order the closure kernel's grow-only
    // per-query index yields — so the load ledger sees the same ± sequence.
    const Query& q = inst.query(m);
    kill_buf.clear();
    const std::size_t base = layout.at(m, 0);
    for (std::size_t d = 0; d < q.demands.size(); ++d) {
      const FlightHandle h = qd_flight[base + d];
      const Flight* f = slab.get(h);
      if (f != nullptr) kill_buf.emplace_back(f->birth, h);
    }
    std::sort(kill_buf.begin(), kill_buf.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    for (const auto& [birth, h] : kill_buf) kill_flight(h);
    if (flow_on) {
      // Demands whose compute already finished may still be shipping their
      // result; a failed query delivers nothing, so abort every slot.
      for (std::size_t d = 0; d < q.demands.size(); ++d) {
        cancel_transfer(base + d);
      }
    }
    if (res.outcomes[m].admitted && res.admitted_queries > 0) {
      --res.admitted_queries;
    }
    res.outcomes[m].admitted = false;
    res.outcomes[m].failed_by_fault = true;
    ++res.queries_failed_by_fault;
    if (trace_on) {
      if (query_span[m] != kNoSpan) {
        spans[query_span[m]].t1 =
            std::min(spans[query_span[m]].t1, queue.now());
      }
      instants.push_back({"online.crash", query_span_id(m), queue.now(),
                          0.0});
    }
    if (metrics_on) {
      static obs::Counter& failed = obs::metrics().counter(
          "edgerep_online_queries_failed_by_fault_total",
          "admitted queries killed mid-flight by an injected fault");
      failed.inc();
    }
    if (audit_on) {
      obs::AuditEntry e;
      e.algorithm = "online";
      e.query = m;
      e.dataset = q.demands.empty() ? 0 : q.demands.front().dataset;
      e.admitted = false;
      e.reason = obs::AuditReason::kFaultEvicted;
      audit_entries.push_back(e);
    }
  };

  // Admission scratch, reused across arrivals.  `tentative` and
  // `tentative_replicas` are dirty-reset: only the entries an admission
  // touched are zeroed, so each arrival sees exact zeros (bit-identical to
  // the closure kernel's freshly-allocated vectors) without O(sites) work.
  struct Decision {
    SiteId site = kInvalidSite;
    bool new_replica = false;
    double need = 0.0;
    double proc = 0.0;
    double total_delay = 0.0;
  };
  std::vector<Decision> decisions;
  std::vector<double> tentative(num_sites, 0.0);
  std::vector<SiteId> tentative_dirty;
  std::vector<std::size_t> tentative_replicas(num_datasets, 0);
  std::vector<DatasetId> tentative_rep_dirty;

  // Candidate-ordered site selection.  The closure kernel's spec scan
  // computes the evaluation delay of every site, which at 10k sites means
  // one strided delay-table row per candidate — a cache miss each.  Here
  // the capacity/replica filters and the fill run first over contiguous
  // state, then the deadline (the only delay-table touch) is tested in
  // (fill, site) order.  The winner is exactly the spec scan's argmin:
  // strict `<` keeps the lowest site id among equal fills, and every fill
  // is the same `(load + need) / eff` double the spec scan would compare.
  std::vector<std::pair<double, SiteId>> cand;
  auto select_site = [&](const Query& q, const DatasetDemand& dd, double need,
                         bool use_tentative, bool* new_replica) {
    cand.clear();
    const std::size_t replicas =
        res.replica_sites[dd.dataset].size() +
        (use_tentative ? tentative_replicas[dd.dataset] : 0);
    const bool budget_left =
        cfg.reactive_replicas && replicas < inst.max_replicas();
    for (const Site& s : inst.sites()) {
      if (!faults.site_up(s.id)) continue;
      if (!has_replica(dd.dataset, s.id) && !budget_left) continue;
      const double eff = faults.available(s.id);
      const double load =
          sites[s.id].in_use + (use_tentative ? tentative[s.id] : 0.0);
      if (load + need > eff + 1e-9) continue;
      const double fill = eff > 0.0 ? (load + need) / eff : 1e18;
      cand.emplace_back(fill, s.id);
    }
    std::size_t misses = 0;
    while (!cand.empty()) {
      if (misses >= 8) {
        // Deadline-hostile regime: order the survivors once and walk.
        std::sort(cand.begin(), cand.end());
        for (const auto& [fill, site] : cand) {
          if (faults.deadline_ok(q, dd, site)) {
            *new_replica = !has_replica(dd.dataset, site);
            return site;
          }
        }
        return kInvalidSite;
      }
      const auto it = std::min_element(cand.begin(), cand.end());
      const SiteId site = it->second;
      if (faults.deadline_ok(q, dd, site)) {
        *new_replica = !has_replica(dd.dataset, site);
        return site;
      }
      *it = cand.back();
      cand.pop_back();
      ++misses;
    }
    return kInvalidSite;
  };

  auto best_site_for = [&](const Query& q, const DatasetDemand& dd,
                           double need, bool* new_replica) {
    return select_site(q, dd, need, /*use_tentative=*/false, new_replica);
  };

  auto try_relocate = [&](QueryId m, std::uint32_t demand, double need) {
    const Query& q = inst.query(m);
    const DatasetDemand& dd = q.demands[demand];
    bool new_replica = false;
    const SiteId site = best_site_for(q, dd, need, &new_replica);
    if (site == kInvalidSite) return false;
    if (new_replica) add_replica(dd.dataset, site);
    const Dataset& ds = inst.dataset(dd.dataset);
    const double total = faults.evaluation_delay(q, dd, site);
    const double proc = ds.volume * inst.site(site).proc_delay;
    launch_flight(m, demand, site, need, proc, total);
    const double completion = queue.now() + total;
    res.outcomes[m].completion_time =
        std::max(res.outcomes[m].completion_time, completion);
    demand_ends[layout.at(m, demand)] = {site, completion};
    ++res.demands_relocated;
    if (rec_on) {
      record_flight(obs::RecordKind::kRelocate, m, demand, site, dd.dataset,
                    total, proc);
    }
    if (wd != nullptr) {
      const double eff = faults.available(site);
      wd->on_site_util(queue.now(), site,
                       eff > 0.0 ? sites[site].in_use / eff : 1.0);
      wd->on_completion(
          queue.now(),
          q.deadline - (completion - res.outcomes[m].arrival_time), false);
    }
    start_transfer(m, demand, site, total);
    if (flow_on) {
      flow_predicted[m] = std::max(flow_predicted[m], completion);
    }
    if (trace_on) {
      instants.push_back({"online.relocate", demand_span_id(m, demand, 0),
                          queue.now(), 0.0});
      if (query_span[m] != kNoSpan) {
        spans[query_span[m]].t1 =
            std::max(spans[query_span[m]].t1, completion);
      }
    }
    if (metrics_on) {
      static obs::Counter& relocated = obs::metrics().counter(
          "edgerep_online_demands_relocated_total",
          "displaced demands re-seated on surviving sites");
      relocated.inc();
    }
    return true;
  };

  /// kRelocate handler: the typed form of the closure kernel's `displace`.
  /// The displaced flight was already killed (its slot may be reused), so
  /// the event payload carries everything relocation needs.
  auto handle_relocate = [&](const SimEvent& ev) {
    const QueryId m = ev.a;
    if (res.outcomes[m].failed_by_fault) return;
    if (!cfg.repair_on_failure || !try_relocate(m, ev.b, ev.c)) {
      fail_query(m);
    }
  };

  auto on_site_down = [&](SiteId s) {
    // Replicas stored at the crashed site are lost.
    for (DatasetId n = 0; n < num_datasets; ++n) {
      if (!has_replica(n, s)) continue;
      auto& v = res.replica_sites[n];
      v.erase(std::find(v.begin(), v.end(), s));
      replica_mask[static_cast<std::size_t>(n) * num_sites + s] = 0;
      ++res.replicas_lost_to_faults;
    }
    // Kill every displaced flight first (so relocations see the freed
    // ledger), then post + drain their relocations in admission order.
    struct Displaced {
      QueryId query;
      std::uint32_t demand;
      double need;
      FlightHandle h;
    };
    std::vector<Displaced> displaced;
    for (const FlightHandle h : site_flights[s]) {
      const Flight* f = slab.get(h);
      if (f != nullptr) displaced.push_back({f->query, f->demand, f->need, h});
    }
    for (const Displaced& d : displaced) {
      if (rec_on) {
        obs::JournalRecord r;
        r.time = queue.now();
        r.a = d.query;
        r.site = s;
        r.kind = static_cast<std::uint8_t>(obs::RecordKind::kShed);
        r.arg = static_cast<std::uint8_t>(d.demand);
        r.flags = 0;  // shed cause: site down
        rec->append(r);
      }
      kill_flight(d.h);
    }
    site_flights[s].clear();
    for (const Displaced& d : displaced) {
      queue.post(SimEvent{0.0, 0, d.query, d.demand, d.need,
                          EvKind::kRelocate});
    }
    SimEvent iv;
    while (queue.pop_immediate(&iv)) handle_relocate(iv);
    // Queries aggregating at the crashed home cannot deliver results.
    // Snapshot the live list (creation order == the closure kernel's flight
    // index order among survivors) — fail_query mutates it while we walk.
    std::vector<FlightHandle> live;
    live.reserve(slab.live_count());
    for (std::uint32_t slot = slab.live_head(); slot != kNilSlot;
         slot = slab.at(slot).next) {
      live.push_back(FlightHandle{slot, slab.at(slot).gen});
    }
    for (const FlightHandle h : live) {
      const Flight* f = slab.get(h);
      if (f != nullptr && inst.query(f->query).home == s) {
        fail_query(f->query);
      }
    }
  };

  // Scratch for on_capacity_loss: the struck site's handle list as of the
  // fault instant.
  std::vector<FlightHandle> shed_buf;
  auto on_capacity_loss = [&](SiteId s) {
    const double eff = faults.available(s);
    if (sites[s].in_use <= eff + 1e-9) return;
    // Shed the most recently admitted work first, relocating each displaced
    // flight before considering the next — a relocation may legitimately
    // re-seat on this same (degraded) site, which appends to site_flights[s]
    // and can trigger compact_site mid-shed.  Walk a snapshot of the handles
    // present at entry so the live vector is free to grow and compact
    // underneath us.  Re-seated flights carry fresh generations (their
    // snapshot handles dereference to null) and fit the reduced availability
    // by construction, so they are never shed; compaction earlier in the run
    // only dropped stale handles, so the snapshot's back-to-front walk is
    // the closure kernel's grow-only-list order among live flights.
    shed_buf.assign(site_flights[s].begin(), site_flights[s].end());
    for (std::size_t i = shed_buf.size(); i > 0; --i) {
      if (sites[s].in_use <= eff + 1e-9) break;
      const FlightHandle h = shed_buf[i - 1];
      const Flight* f = slab.get(h);
      if (f == nullptr) continue;
      const QueryId m = f->query;
      const std::uint32_t demand = f->demand;
      const double need = f->need;
      if (rec_on) {
        obs::JournalRecord r;
        r.time = queue.now();
        r.a = m;
        r.site = s;
        r.kind = static_cast<std::uint8_t>(obs::RecordKind::kShed);
        r.arg = static_cast<std::uint8_t>(demand);
        r.flags = 1;  // shed cause: capacity loss
        rec->append(r);
      }
      kill_flight(h);
      queue.post(SimEvent{0.0, 0, m, demand, need, EvKind::kRelocate});
      SimEvent iv;
      while (queue.pop_immediate(&iv)) handle_relocate(iv);
    }
  };

  auto admit = [&](const Query& q, OnlineOutcome& outcome) {
    decisions.clear();
    for (const SiteId s : tentative_dirty) tentative[s] = 0.0;
    tentative_dirty.clear();
    for (const DatasetId n : tentative_rep_dirty) tentative_replicas[n] = 0;
    tentative_rep_dirty.clear();

    auto classify_rejection = [&](const DatasetDemand& dd) {
      bool any_deadline = false;
      bool any_budget = false;
      for (const Site& s : inst.sites()) {
        if (!faults.site_up(s.id)) continue;
        if (!faults.deadline_ok(q, dd, s.id)) continue;
        any_deadline = true;
        if (!has_replica(dd.dataset, s.id)) {
          if (!cfg.reactive_replicas) continue;
          if (res.replica_sites[dd.dataset].size() +
                  tentative_replicas[dd.dataset] >=
              inst.max_replicas()) {
            continue;
          }
        }
        any_budget = true;
      }
      if (!any_deadline) return obs::AuditReason::kNoDeadlineFeasibleSite;
      if (!any_budget) return obs::AuditReason::kReplicaBudgetSpent;
      return obs::AuditReason::kCapacityExhausted;
    };
    auto audit_abort = [&](std::uint32_t failing, obs::AuditReason why) {
      if (!audit_on) return;
      for (std::uint32_t j = 0; j < failing; ++j) {
        obs::AuditEntry e;
        e.algorithm = "online";
        e.query = q.id;
        e.demand = j;
        e.dataset = q.demands[j].dataset;
        e.admitted = false;
        e.reason = obs::AuditReason::kAtomicRollback;
        e.site = decisions[j].site;
        audit_entries.push_back(e);
      }
      obs::AuditEntry e;
      e.algorithm = "online";
      e.query = q.id;
      e.demand = failing;
      e.dataset = failing < q.demands.size()
                      ? q.demands[failing].dataset
                      : (q.demands.empty() ? 0 : q.demands.front().dataset);
      e.admitted = false;
      e.reason = why;
      audit_entries.push_back(e);
    };

    auto record_reject = [&](std::uint32_t failing, obs::AuditReason why) {
      obs::JournalRecord r;
      r.time = queue.now();
      r.a = q.id;
      r.b = failing;
      r.site = obs::kNoSite;
      r.kind = static_cast<std::uint8_t>(obs::RecordKind::kReject);
      r.arg = static_cast<std::uint8_t>(why);
      rec->append(r);
    };

    if (!faults.site_up(q.home)) {
      audit_abort(0, obs::AuditReason::kNoDeadlineFeasibleSite);
      if (rec_on) record_reject(0, obs::AuditReason::kNoDeadlineFeasibleSite);
      return false;
    }
    for (const DatasetDemand& dd : q.demands) {
      const double need = resource_demand(inst, q, dd);
      Decision best;
      best.site =
          select_site(q, dd, need, /*use_tentative=*/true, &best.new_replica);
      if (best.site == kInvalidSite) {
        const obs::AuditReason why = classify_rejection(dd);
        audit_abort(static_cast<std::uint32_t>(decisions.size()), why);
        if (rec_on) {
          record_reject(static_cast<std::uint32_t>(decisions.size()), why);
        }
        return false;
      }
      best.need = need;
      const Dataset& ds = inst.dataset(dd.dataset);
      best.proc = ds.volume * inst.site(best.site).proc_delay;
      best.total_delay = faults.evaluation_delay(inst.query(q.id), dd,
                                                 best.site);
      if (tentative[best.site] == 0.0) tentative_dirty.push_back(best.site);
      tentative[best.site] += need;
      if (best.new_replica) {
        if (tentative_replicas[dd.dataset] == 0) {
          tentative_rep_dirty.push_back(dd.dataset);
        }
        ++tentative_replicas[dd.dataset];
      }
      decisions.push_back(best);
    }
    double response = 0.0;
    if (trace_on) {
      query_span[q.id] = spans.size();
      spans.push_back({"online.query", query_span_id(q.id), queue.now(),
                       queue.now()});
    }
    for (std::size_t i = 0; i < q.demands.size(); ++i) {
      const Decision& d = decisions[i];
      const DatasetId n = q.demands[i].dataset;
      if (d.new_replica && !has_replica(n, d.site)) add_replica(n, d.site);
      launch_flight(q.id, static_cast<std::uint32_t>(i), d.site, d.need,
                    d.proc, d.total_delay);
      demand_ends[layout.at(q.id, static_cast<std::uint32_t>(i))] = {
          d.site, queue.now() + d.total_delay};
      response = std::max(response, d.total_delay);
      if (rec_on) {
        record_flight(obs::RecordKind::kTransferStart, q.id,
                      static_cast<std::uint32_t>(i), d.site, n, d.total_delay,
                      d.proc);
      }
      start_transfer(q.id, static_cast<std::uint32_t>(i), d.site,
                     d.total_delay);
      if (wd != nullptr) {
        const double eff = faults.available(d.site);
        wd->on_site_util(queue.now(), d.site,
                         eff > 0.0 ? sites[d.site].in_use / eff : 1.0);
      }
      if (audit_on) {
        obs::AuditEntry e;
        e.algorithm = "online";
        e.query = q.id;
        e.demand = static_cast<std::uint32_t>(i);
        e.dataset = n;
        e.admitted = true;
        e.site = d.site;
        e.placed_replica = d.new_replica;
        audit_entries.push_back(e);
      }
    }
    track_peak();
    outcome.completion_time = queue.now() + response;
    if (wd != nullptr) {
      wd->on_completion(queue.now(), q.deadline - response, false);
    }
    if (flow_on) flow_predicted[q.id] = outcome.completion_time;
    if (trace_on && query_span[q.id] != kNoSpan) {
      spans[query_span[q.id]].t1 = outcome.completion_time;
    }
    return true;
  };

  // --- seed the event streams --------------------------------------------
  res.outcomes.resize(inst.queries().size());
  const std::size_t num_faults = cfg.faults.events.size();
  std::size_t next_fault = 0;
  if (next_fault < num_faults) {
    queue.push(SimEvent{cfg.faults.events[0].time,
                        evseq::make(evseq::kFaultBand, 0),
                        0, 0, 0.0, EvKind::kFaultApply});
  }
  OnlineArrivalStream arrivals(inst.queries().size(), cfg.arrivals,
                               cfg.arrival_rate, cfg.seed,
                               cfg.wave_amplitude, cfg.wave_period);
  auto push_next_arrival = [&] {
    double when = 0.0;
    QueryId m = 0;
    if (!arrivals.next(&when, &m)) return;
    res.outcomes[m] = OnlineOutcome{m, when, false, 0.0, false};
    queue.push(SimEvent{when, evseq::make(evseq::kArrivalBand, m), m, 0, 0.0,
                        EvKind::kArrival});
  };
  push_next_arrival();
  if (board != nullptr) queue.push_status(0.0);

  // --- the run loop: one switch, no captures -----------------------------
  SimEvent ev;
  while (queue.pop(&ev)) {
    switch (ev.kind) {
      case EvKind::kArrival: {
        const QueryId m = ev.a;
        push_next_arrival();  // keep exactly one pending arrival in the heap
        ++arrivals_seen;
        if (rec_on) {
          const Query& q = inst.query(m);
          obs::JournalRecord r;
          r.time = queue.now();
          r.v0 = q.deadline;
          r.a = m;
          r.b = static_cast<std::uint32_t>(q.demands.size());
          r.site = obs::kNoSite;
          r.kind = static_cast<std::uint8_t>(obs::RecordKind::kArrival);
          rec->append(r);
        }
        if (wd != nullptr) {
          const Query& q = inst.query(m);
          wd->on_arrival(queue.now(), 0);
          for (const DatasetDemand& dd : q.demands) {
            wd->on_demand(queue.now(), dd.dataset);
          }
        }
        const bool ok = admit(inst.query(m), res.outcomes[m]);
        res.outcomes[m].admitted = ok;
        if (ok) {
          ++res.admitted_queries;  // provisional; exact recount in finalize
        } else {
          ++rejected_queries;
        }
        if (c_arrivals != nullptr) {
          c_arrivals->inc();
          (ok ? c_admitted : c_rejected)->inc();
        }
        push_status(false);
        break;
      }
      case EvKind::kComputeDone: {
        Flight* f = slab.get(FlightHandle{ev.a, ev.b});
        if (f == nullptr) break;  // killed or relocated; stale by generation
        if (rec_on) {
          obs::JournalRecord r;
          r.time = queue.now();
          r.a = f->query;
          r.site = f->site;
          r.kind = static_cast<std::uint8_t>(obs::RecordKind::kComputeDone);
          r.arg = static_cast<std::uint8_t>(f->demand);
          rec->append(r);
        }
        sites[f->site].in_use -= f->need;
        --inflight_count;
        in_use_total -= f->need;
        --site_live[f->site];
        if (wd != nullptr) {
          const double eff = faults.available(f->site);
          wd->on_site_util(queue.now(), f->site,
                           eff > 0.0 ? sites[f->site].in_use / eff : 1.0);
        }
        slab.destroy(FlightHandle{ev.a, ev.b});
        push_status(false);
        break;
      }
      case EvKind::kFaultApply: {
        const FaultEvent& e = cfg.faults.events[next_fault];
        ++next_fault;
        if (next_fault < num_faults) {
          queue.push(SimEvent{cfg.faults.events[next_fault].time,
                              evseq::make(evseq::kFaultBand, next_fault),
                              0, 0, 0.0, EvKind::kFaultApply});
        }
        faults.apply(e);
        ++res.fault_events_applied;
        if (rec_on) {
          obs::JournalRecord r;
          r.time = queue.now();
          r.v0 = e.fraction;
          r.a = static_cast<std::uint32_t>(e.edge);
          r.site = static_cast<std::uint32_t>(e.site);
          r.kind = static_cast<std::uint8_t>(obs::RecordKind::kFaultApply);
          r.arg = static_cast<std::uint8_t>(e.kind);
          rec->append(r);
        }
        switch (e.kind) {
          case FaultKind::kSiteDown:
            on_site_down(e.site);
            break;
          case FaultKind::kCapacityLoss:
            update_flow_links(e.site);
            on_capacity_loss(e.site);
            break;
          case FaultKind::kCapacityRestore:
            update_flow_links(e.site);
            break;
          default:
            break;
        }
        if (metrics_on) {
          static obs::Counter& fault_events = obs::metrics().counter(
              "edgerep_online_fault_events_total",
              "fault-trace events applied by the online simulator");
          fault_events.inc();
        }
        push_status(false);
        break;
      }
      case EvKind::kRelocate:
        // Normally drained inside the fault handlers above; reaching here
        // only means a handler returned with the ring non-empty.
        handle_relocate(ev);
        break;
      case EvKind::kStatusTick: {
        if (board != nullptr && board->due(2'000'000)) publish_board(false);
        if (arrivals_seen < inst.queries().size() || inflight_count > 0 ||
            (flow_on && flow->active_flows() > 0)) {
          queue.push_status(queue.now() + kStatusTickGap);
        }
        break;
      }
      case EvKind::kTransferDone: {
        if (!flow_on) break;  // table runs never schedule these
        const std::uint32_t tag = flow->handle_event(ev);
        if (tag != FlowEngine::kNoFlow) {
          deliver_transfer(static_cast<std::size_t>(tag), queue.now());
        }
        break;
      }
    }
  }

  res.kernel_stats.events_processed = queue.events_popped();
  res.kernel_stats.peak_pending_events = queue.peak_pending();
  res.kernel_stats.peak_event_bytes = queue.peak_bytes();
  res.kernel_stats.peak_flights = slab.peak_live();
  res.kernel_stats.flight_bytes = slab.capacity_bytes();

  online_detail::finalize_online_result(inst, layout, demand_ends, &res);
  if (flow_on) online_detail::finalize_flow_gap(inst, flow_predicted, &res);
  if (wd != nullptr) res.watchdog = wd->stats();

  if (trace_on) online_detail::emit_online_spans(spans, instants);
  if (audit_on) {
    obs::audit_log().record_batch(audit_entries);
  }
  if (metrics_on) {
    static obs::Gauge& g_hit_ratio = obs::metrics().gauge(
        "edgerep_online_slo_hit_ratio",
        "deadline hit ratio of the last online run");
    g_hit_ratio.set(res.slo.hit_ratio);
  }
  push_status(true);
  return res;
}

}  // namespace edgerep
