#include "sim/event_kernel.h"

namespace edgerep {

void TypedEventQueue::push(const SimEvent& ev) {
  assert(ev.time >= now_ && "TypedEventQueue: scheduling into the past");
  heap_.push_back(ev);
  sift_up(heap_.size() - 1);
  note_size();
}

void TypedEventQueue::post(const SimEvent& ev) {
  ring_.push_back(ev);
  const std::size_t occupied = ring_.size() - ring_head_;
  if (occupied > peak_ring_) peak_ring_ = occupied;
  note_size();
}

bool TypedEventQueue::pop_immediate(SimEvent* out) {
  if (ring_head_ == ring_.size()) return false;
  *out = ring_[ring_head_++];
  out->time = now_;  // immediates run at the current instant
  if (ring_head_ == ring_.size()) {
    ring_.clear();
    ring_head_ = 0;
  }
  ++popped_;
  return true;
}

bool TypedEventQueue::pop(SimEvent* out) {
  if (pop_immediate(out)) return true;
  if (heap_.empty()) return false;
  *out = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  now_ = out->time;
  ++popped_;
  return true;
}

void TypedEventQueue::sift_up(std::size_t i) {
  SimEvent ev = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!event_before(ev, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = ev;
}

void TypedEventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  SimEvent ev = heap_[i];
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (event_before(heap_[c], heap_[best])) best = c;
    }
    if (!event_before(heap_[best], ev)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = ev;
}

FlightHandle FlightSlab::create() {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Flight& f = slots_[slot];
  f.live = true;
  f.birth = births_++;
  f.prev = tail_;
  f.next = kNilSlot;
  f.span_transfer = kNilSlot;
  f.span_compute = kNilSlot;
  if (tail_ != kNilSlot) {
    slots_[tail_].next = slot;
  } else {
    head_ = slot;
  }
  tail_ = slot;
  ++live_;
  if (live_ > peak_live_) peak_live_ = live_;
  return FlightHandle{slot, f.gen};
}

void FlightSlab::destroy(FlightHandle h) {
  Flight* f = get(h);
  assert(f != nullptr && "FlightSlab: destroying a stale handle");
  if (f == nullptr) return;
  if (f->prev != kNilSlot) {
    slots_[f->prev].next = f->next;
  } else {
    head_ = f->next;
  }
  if (f->next != kNilSlot) {
    slots_[f->next].prev = f->prev;
  } else {
    tail_ = f->prev;
  }
  f->live = false;
  ++f->gen;  // every outstanding handle to this slot is now stale
  --live_;
  free_.push_back(h.slot);
}

}  // namespace edgerep
