// End-to-end discrete-event execution of a replica plan — the repository's
// substitute for the paper's DigitalOcean testbed (§4.3).
//
// Model:
//  * Query arrivals: Poisson (rate λ) or uniform spacing, seeded.
//  * Each assigned demand becomes a compute task at its evaluation site.
//    The task holds |S_n|·r_m GHz of the site's computing resource for
//    |S_n|·d(v_l) seconds; if the site lacks free GHz the task waits in a
//    FIFO queue (this is where an over-packed placement shows up as
//    deadline misses the static model never sees).
//  * On completion, the intermediate result (α·|S_n| GB) travels to the
//    query's home along the minimum-delay path: α·|S_n|·dt(p) seconds.
//  * The query completes when its last intermediate result arrives; it is
//    admitted iff fully served within its deadline.
//
// Unassigned demands make a query unserved (never admitted), mirroring
// rejected queries on the real testbed.
#pragma once

#include <cstdint>

#include "cloud/plan.h"
#include "sim/metrics.h"

namespace edgerep {

struct SimConfig {
  enum class Arrivals : std::uint8_t { kPoisson, kUniform, kAllAtOnce };
  /// How a site's computing resource is multiplexed:
  ///  * kReservation — a task holds its |S_n|·r_m GHz exclusively for its
  ///    whole duration; tasks that do not fit wait FIFO (a scheduler with
  ///    hard reservations, the static model's assumption).
  ///  * kProcessorSharing — every task starts immediately; when the sum of
  ///    GHz demands exceeds the site's capacity all tasks slow down by the
  ///    common factor capacity/demand (an OS/VM-like fair scheduler).
  enum class Discipline : std::uint8_t { kReservation, kProcessorSharing };
  /// How intermediate-result transfers use the network:
  ///  * kDelay — a transfer of z GB along path p takes z·Σ dt(e) seconds
  ///    (store-and-forward; exactly the static model's constraint (4), no
  ///    contention).
  ///  * kMaxMinFair — transfers are flows with pipelined rate
  ///    min_e share(e), links of bandwidth 1/dt(e) GB/s shared max-min
  ///    fairly among concurrent flows (see sim/flows.h).  Uncontended flows
  ///    finish no later than the delay model predicts; contended ones can
  ///    finish later and miss deadlines the static model admits.
  enum class TransferModel : std::uint8_t { kDelay, kMaxMinFair };
  Arrivals arrivals = Arrivals::kPoisson;
  Discipline discipline = Discipline::kReservation;
  TransferModel transfers = TransferModel::kDelay;
  double arrival_rate = 2.0;  ///< queries/second (Poisson) or 1/spacing (Uniform)
  std::uint64_t seed = 0xd15c;
  /// Runtime capacity degradation: each site runs with
  /// `capacity_factor · A(v)` GHz (background load, interference, VM
  /// neighbors).  1.0 reproduces the planned capacity; < 1.0 injects the
  /// contention a real testbed exhibits and makes queuing — and deadline
  /// misses the static model never predicts — possible.
  double capacity_factor = 1.0;
  /// Safety valve for the event loop (generous; a run uses ~4 events/demand).
  std::size_t max_events = 10'000'000;
};

/// Execute `plan` on the simulated testbed and report measured outcomes.
SimReport simulate(const ReplicaPlan& plan, const SimConfig& cfg = {});

}  // namespace edgerep
