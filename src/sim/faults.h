// Deterministic, seeded fault model for the edge cloud (failure injection).
//
// Edge deployments churn: cloudlets crash and come back, WMAN links flap,
// and co-located workloads steal computing capacity.  A `FaultTrace` is a
// time-ordered list of such events; a `FaultState` folds a prefix of the
// trace into the *effective* network view — which sites are up, how much
// computing resource each one really has, and what the minimum path delays
// are with the downed links removed.
//
// Modeling choices (kept deliberately one-sided so the fault-free
// precomputes stay valid prunes):
//
//  * A site crash takes down its *compute* only; its graph node still
//    forwards traffic (the co-located switch survives).  Replicas stored at
//    a crashed site are lost — recovery restores capacity, not data.
//  * A link failure removes the edge from routing.  Removing edges can only
//    lengthen shortest paths, so the effective delay is always ≥ the
//    fault-free delay and the deadline-feasible candidate sets of the
//    fault-free `CandidateIndex` remain supersets of the true ones.
//  * Capacity degradation scales a site's available resource by a factor in
//    [0, 1]; it never adds capacity.  `kCapacityRestore` returns the site to
//    its fault-free availability.
//
// Everything is a pure function of (instance, applied events): no clocks,
// no global state, bit-reproducible across runs and thread counts.
#pragma once

#include <cstdint>
#include <vector>

#include "cloud/delay.h"
#include "cloud/instance.h"

namespace edgerep {

enum class FaultKind : std::uint8_t {
  kSiteDown,         ///< site's compute crashes; replicas there are lost
  kSiteUp,           ///< site recovers (capacity back, data still gone)
  kLinkDown,         ///< graph edge removed from routing
  kLinkUp,           ///< graph edge restored
  kCapacityLoss,     ///< available resource scaled down by `fraction`
  kCapacityRestore,  ///< available resource back to the fault-free value
};
inline constexpr std::size_t kFaultKindCount = 6;

[[nodiscard]] const char* to_string(FaultKind k) noexcept;

struct FaultEvent {
  double time = 0.0;  ///< seconds on the simulation clock
  FaultKind kind = FaultKind::kSiteDown;
  SiteId site = kInvalidSite;  ///< site events + capacity events
  EdgeId edge = kInvalidEdge;  ///< link events
  /// kCapacityLoss: fraction of the fault-free availability *lost* (0..1].
  double fraction = 0.0;
};

/// A time-ordered fault schedule.  Traces are value types: generate one
/// (workload/fault_gen.h), archive it, and replay it bit-exactly.
struct FaultTrace {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events.size(); }
};

/// Structural check against an instance: ids in range, times non-decreasing
/// and finite, fractions in (0, 1].  Throws std::invalid_argument.
void validate_fault_trace(const Instance& inst, const FaultTrace& trace);

/// The effective network after a set of applied fault events.
///
/// Queries (`available`, `deadline_ok`, `path_delay`) answer from the
/// fault-free instance until the first event is applied, so a default
/// FaultState is free.  Link faults invalidate the per-site delay rows,
/// which are recomputed lazily (one Dijkstra per site with downed edges
/// masked) on the next delay query.
class FaultState {
 public:
  explicit FaultState(const Instance& inst);

  /// Fold one event into the state.  Events must reference valid ids
  /// (std::invalid_argument otherwise); applying is idempotent per kind.
  void apply(const FaultEvent& e);

  /// Fold every event in the trace with time ≤ `until` (in order).
  void apply_until(const FaultTrace& trace, double until);

  [[nodiscard]] const Instance& instance() const noexcept { return *inst_; }

  /// --- effective site view ---------------------------------------------
  [[nodiscard]] bool site_up(SiteId s) const { return up_.at(s); }
  /// 0 when down, (1 - lost fraction) when degraded, 1 otherwise.
  [[nodiscard]] double capacity_scale(SiteId s) const;
  /// Effective A(v_l): fault-free availability × capacity_scale.
  [[nodiscard]] double available(SiteId s) const {
    return inst_->site(s).available * capacity_scale(s);
  }

  /// --- effective network view ------------------------------------------
  [[nodiscard]] bool edge_up(EdgeId e) const { return edge_up_.at(e); }
  [[nodiscard]] bool any_link_down() const noexcept { return links_down_ > 0; }
  /// Minimum per-unit delay between two sites' nodes with downed links
  /// removed; equals the fault-free delay when no link is down.
  [[nodiscard]] double path_delay(SiteId from, SiteId to) const;
  /// evaluation_delay / deadline_ok with the effective path delays.
  [[nodiscard]] double evaluation_delay(const Query& q, const DatasetDemand& dd,
                                        SiteId site) const;
  [[nodiscard]] bool deadline_ok(const Query& q, const DatasetDemand& dd,
                                 SiteId site) const {
    return evaluation_delay(q, dd, site) <= q.deadline;
  }

  /// Is this (query, demand, site) evaluation feasible at all right now:
  /// site up and deadline met under effective delays?
  [[nodiscard]] bool feasible(const Query& q, const DatasetDemand& dd,
                              SiteId site) const {
    return site_up(site) && deadline_ok(q, dd, site);
  }

  /// --- bookkeeping ------------------------------------------------------
  [[nodiscard]] std::size_t events_applied() const noexcept { return epoch_; }
  [[nodiscard]] std::size_t sites_down() const noexcept { return sites_down_; }
  [[nodiscard]] std::size_t links_down() const noexcept { return links_down_; }
  /// Any site down, degraded, or any link down?
  [[nodiscard]] bool degraded() const noexcept {
    return sites_down_ > 0 || links_down_ > 0 || capacity_faults_ > 0;
  }

 private:
  void rebuild_overlay() const;

  const Instance* inst_;
  std::vector<char> up_;             ///< per site
  std::vector<double> lost_frac_;    ///< per site, 0 = no degradation
  std::vector<char> edge_up_;        ///< per graph edge
  std::size_t sites_down_ = 0;
  std::size_t links_down_ = 0;
  std::size_t capacity_faults_ = 0;  ///< sites with lost_frac_ > 0
  std::size_t epoch_ = 0;

  /// Lazily recomputed per-site delay rows under the current downed-edge
  /// set (empty & clean while no link fault has ever been applied).
  mutable std::vector<double> overlay_;  ///< sites × num_nodes, row-major
  mutable bool overlay_dirty_ = false;
};

}  // namespace edgerep
