#include "sim/simulator.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "cloud/delay.h"
#include "net/routes.h"
#include "net/shortest_path.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/event.h"
#include "sim/flows.h"
#include "util/rng.h"

namespace edgerep {

namespace {

constexpr double kGhzEps = 1e-9;
constexpr double kWorkEps = 1e-12;

struct Task {
  QueryId query = 0;
  std::uint32_t demand_index = 0;
  double ghz = 0.0;       ///< resource demand (exclusive in reservation mode)
  double duration = 0.0;  ///< nominal processing time at full speed
  double transfer = 0.0;  ///< result transfer delay (store-and-forward model)
  double transfer_size = 0.0;       ///< α·|S_n| GB (flow model)
  SiteId eval_site = kInvalidSite;  ///< where processing happened
};

struct QueryState {
  double issue_time = 0.0;
  std::size_t remaining_results = 0;
  bool fully_served = false;
  double completion_time = 0.0;
  bool completed = false;
};

/// Shared glue: when a task's processing ends, ship the intermediate
/// result and complete the query when it was the last one.
class ResultCollector {
 public:
  using PathLookup = std::function<std::vector<EdgeId>(SiteId, QueryId)>;

  ResultCollector(EventQueue& eq, std::vector<QueryState>& queries)
      : eq_(&eq), queries_(&queries) {}

  /// Route transfers through a flow engine instead of fixed delays.
  void use_flows(FlowEngine* flows, PathLookup paths) {
    flows_ = flows;
    paths_ = std::move(paths);
  }

  void task_processed(const Task& t) {
    auto deliver = [this, query = t.query] {
      QueryState& qs = (*queries_)[query];
      if (--qs.remaining_results == 0) {
        qs.completion_time = eq_->now();
        qs.completed = true;
      }
    };
    if (flows_ != nullptr) {
      flows_->start_flow(t.transfer_size, paths_(t.eval_site, t.query),
                         std::move(deliver));
    } else {
      eq_->schedule_in(t.transfer, std::move(deliver));
    }
  }

 private:
  EventQueue* eq_;
  std::vector<QueryState>* queries_;
  FlowEngine* flows_ = nullptr;
  PathLookup paths_;
};

/// Reservation discipline: FIFO start order with head-of-line blocking; a
/// running task holds its GHz exclusively.
class ReservationEngine {
 public:
  ReservationEngine(EventQueue& eq, ResultCollector& results,
                    std::vector<double> capacity)
      : eq_(&eq), results_(&results), free_(std::move(capacity)),
        waiting_(free_.size()) {}

  void submit(SiteId l, const Task& t) {
    waiting_[l].push_back(t);
    try_start(l);
  }

 private:
  void try_start(SiteId l) {
    while (!waiting_[l].empty() &&
           waiting_[l].front().ghz <= free_[l] + kGhzEps) {
      const Task t = waiting_[l].front();
      waiting_[l].pop_front();
      free_[l] -= t.ghz;
      eq_->schedule_in(t.duration, [this, l, t] {
        free_[l] += t.ghz;
        try_start(l);
        results_->task_processed(t);
      });
    }
  }

  EventQueue* eq_;
  ResultCollector* results_;
  std::vector<double> free_;
  std::vector<std::deque<Task>> waiting_;
};

/// Processor-sharing discipline: every task runs immediately; when demand
/// exceeds capacity all of a site's tasks progress at the common rate
/// capacity / Σ ghz.  Finish events carry a generation token so stale
/// predictions are ignored after arrivals change the rate.
class ProcessorSharingEngine {
 public:
  ProcessorSharingEngine(EventQueue& eq, ResultCollector& results,
                         std::vector<double> capacity)
      : eq_(&eq), results_(&results), sites_(capacity.size()) {
    for (std::size_t l = 0; l < capacity.size(); ++l) {
      sites_[l].capacity = capacity[l];
    }
  }

  void submit(SiteId l, const Task& t) {
    SiteState& st = sites_[l];
    advance(st);
    st.tasks.push_back(Running{t, std::max(t.duration, 0.0)});
    drain_finished(l);
    reschedule(l);
  }

 private:
  struct Running {
    Task task;
    double remaining = 0.0;  ///< nominal seconds left at full speed
  };
  struct SiteState {
    double capacity = 0.0;
    std::vector<Running> tasks;
    double last_update = 0.0;
    double speed = 1.0;  ///< progress rate since last_update
    std::uint64_t gen = 0;
  };

  double current_speed(const SiteState& st) const {
    double demand = 0.0;
    for (const Running& r : st.tasks) demand += r.task.ghz;
    if (demand <= st.capacity + kGhzEps || demand <= 0.0) return 1.0;
    return st.capacity / demand;
  }

  /// Progress all running tasks up to now at the previously cached speed.
  void advance(SiteState& st) {
    const double now = eq_->now();
    const double dt = now - st.last_update;
    if (dt > 0.0) {
      for (Running& r : st.tasks) r.remaining -= dt * st.speed;
    }
    st.last_update = now;
  }

  void drain_finished(SiteId l) {
    SiteState& st = sites_[l];
    for (std::size_t i = 0; i < st.tasks.size();) {
      if (st.tasks[i].remaining <= kWorkEps) {
        results_->task_processed(st.tasks[i].task);
        st.tasks.erase(st.tasks.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }

  void reschedule(SiteId l) {
    SiteState& st = sites_[l];
    st.speed = current_speed(st);
    const std::uint64_t token = ++st.gen;
    if (st.tasks.empty()) return;
    if (st.speed <= 0.0) return;  // zero capacity: tasks are starved forever
    double min_remaining = st.tasks[0].remaining;
    for (const Running& r : st.tasks) {
      min_remaining = std::min(min_remaining, r.remaining);
    }
    const double eta = std::max(min_remaining, 0.0) / st.speed;
    eq_->schedule_in(eta, [this, l, token] {
      SiteState& site = sites_[l];
      if (site.gen != token) return;  // superseded by a later arrival
      advance(site);
      drain_finished(l);
      reschedule(l);
    });
  }

  EventQueue* eq_;
  ResultCollector* results_;
  std::vector<SiteState> sites_;
};

}  // namespace

SimReport simulate(const ReplicaPlan& plan, const SimConfig& cfg) {
  EDGEREP_TRACE_SCOPE("sim.simulate");
  const Instance& inst = plan.instance();
  EventQueue eq;
  Rng rng(cfg.seed);

  std::vector<double> capacity(inst.sites().size(), 0.0);
  for (const Site& s : inst.sites()) {
    capacity[s.id] = cfg.capacity_factor * s.available;
  }
  std::vector<QueryState> queries(inst.queries().size());
  ResultCollector results(eq, queries);
  std::unique_ptr<FlowEngine> flows;
  std::map<SiteId, ShortestPathTree> trees;  // per evaluation site, lazy
  if (cfg.transfers == SimConfig::TransferModel::kMaxMinFair) {
    std::vector<double> bandwidth;
    bandwidth.reserve(inst.graph().num_edges());
    for (const Edge& e : inst.graph().edges()) {
      // Per-GB delay is the inverse of bandwidth; zero-delay links are
      // effectively infinite.
      bandwidth.push_back(e.delay > 0.0 ? 1.0 / e.delay : 1e9);
    }
    flows = std::make_unique<FlowEngine>(eq, std::move(bandwidth));
    results.use_flows(
        flows.get(), [&inst, &trees](SiteId from, QueryId m) {
          auto it = trees.find(from);
          if (it == trees.end()) {
            it = trees.emplace(from,
                               dijkstra(inst.graph(), inst.site(from).node))
                     .first;
          }
          const NodeId home = inst.site(inst.query(m).home).node;
          return path_edges(inst.graph(), it->second.path_to(home));
        });
  }
  ReservationEngine reservation(eq, results, capacity);
  ProcessorSharingEngine sharing(eq, results, capacity);
  auto submit = [&](SiteId l, const Task& t) {
    if (cfg.discipline == SimConfig::Discipline::kProcessorSharing) {
      sharing.submit(l, t);
    } else {
      reservation.submit(l, t);
    }
  };

  // Issue times.
  double clock = 0.0;
  for (const Query& q : inst.queries()) {
    switch (cfg.arrivals) {
      case SimConfig::Arrivals::kPoisson:
        clock += rng.exponential(cfg.arrival_rate);
        break;
      case SimConfig::Arrivals::kUniform:
        clock += 1.0 / cfg.arrival_rate;
        break;
      case SimConfig::Arrivals::kAllAtOnce:
        break;
    }
    queries[q.id].issue_time = clock;
  }

  for (const Query& q : inst.queries()) {
    QueryState& qs = queries[q.id];
    // A query runs only when admission control assigned *every* demand
    // (rejected queries are not evaluated on the testbed).
    bool all_assigned = true;
    for (const DatasetDemand& dd : q.demands) {
      if (!plan.assignment(q.id, dd.dataset)) {
        all_assigned = false;
        break;
      }
    }
    if (!all_assigned) continue;
    qs.fully_served = true;
    qs.remaining_results = q.demands.size();
    for (std::uint32_t i = 0; i < q.demands.size(); ++i) {
      const DatasetDemand& dd = q.demands[i];
      const SiteId l = *plan.assignment(q.id, dd.dataset);
      const Dataset& ds = inst.dataset(dd.dataset);
      Task t;
      t.query = q.id;
      t.demand_index = i;
      t.ghz = resource_demand(inst, q, dd);
      t.duration = ds.volume * inst.site(l).proc_delay;
      t.transfer = dd.selectivity * ds.volume * inst.path_delay(l, q.home);
      t.transfer_size = dd.selectivity * ds.volume;
      t.eval_site = l;
      eq.schedule_at(qs.issue_time, [&submit, l, t] { submit(l, t); });
    }
  }

  std::size_t executed = 0;
  {
    EDGEREP_TRACE_SCOPE("sim.run_events");
    executed = eq.run(cfg.max_events);
  }
  if (executed >= cfg.max_events) {
    throw std::runtime_error("simulate: event budget exhausted (livelock?)");
  }

  std::vector<QueryOutcome> outcomes;
  outcomes.reserve(inst.queries().size());
  for (const Query& q : inst.queries()) {
    const QueryState& qs = queries[q.id];
    QueryOutcome o;
    o.query = q.id;
    o.issue_time = qs.issue_time;
    o.fully_served = qs.fully_served && qs.completed;
    o.completion_time = qs.completion_time;
    o.met_deadline =
        o.fully_served && o.response_delay() <= q.deadline + 1e-9;
    outcomes.push_back(o);
  }
  if (obs::metrics_enabled()) {
    static obs::Counter& sims = obs::metrics().counter(
        "edgerep_sim_runs_total", "simulate() calls");
    static obs::Counter& events = obs::metrics().counter(
        "edgerep_sim_events_executed_total",
        "discrete events executed by the testbed simulator");
    static obs::Counter& served = obs::metrics().counter(
        "edgerep_sim_queries_served_total",
        "queries fully served on the testbed");
    static obs::Counter& missed = obs::metrics().counter(
        "edgerep_sim_deadline_misses_total",
        "served queries that missed their QoS deadline");
    static obs::Histogram& response = obs::metrics().histogram(
        "edgerep_sim_response_seconds",
        {0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0},
        "end-to-end response delay of served queries");
    sims.inc();
    events.inc(executed);
    for (const QueryOutcome& o : outcomes) {
      if (!o.fully_served) continue;
      served.inc();
      if (!o.met_deadline) missed.inc();
      response.observe(o.response_delay());
    }
  }
  return build_report(inst, std::move(outcomes));
}

}  // namespace edgerep
