// Online admission control — the *reactive* counterpart to the paper's
// proactive placement.
//
// Queries arrive over time and must be admitted or rejected on arrival with
// no knowledge of future arrivals.  Unlike the static model (which reserves
// a site's computing resource for an admitted query forever), an admitted
// demand holds its |S_n|·r_m GHz only while it processes, so capacity is
// time-multiplexed across the arrival horizon.
//
// Replicas can be placed reactively on arrival (within the budget K), or
// seeded from a proactive plan computed offline — comparing the two
// quantifies the value of *proactive* replication, the premise of the
// paper's title (bench: ablation_proactive).
//
// Fault injection: `OnlineConfig::faults` carries a time-ordered
// `FaultTrace` (sim/faults.h) whose events fire on the same discrete-event
// clock as the arrivals.  A site crash kills the work in flight there and
// loses the replicas it stored; with `repair_on_failure` the displaced
// demands are immediately re-seated on surviving sites when capacity and
// effective deadlines allow, otherwise the affected queries fail.  Capacity
// degradation sheds the most recently admitted work first until the site
// fits its reduced availability; link faults reroute future admissions over
// the surviving topology (in-flight transfers are not re-simulated).
//
// Determinism contract: the arrival process is the *only* consumer of
// randomness, drawn from `Rng(seed)`; fault traces are pre-generated,
// deterministic inputs (workload/fault_gen.h derives per-component
// substreams from its own seed).  Fault events are scheduled before
// arrivals, so a fault and an arrival at the same instant resolve
// fault-first.  Nothing in the run is threaded — identical (instance,
// config) inputs therefore reproduce identical fault+arrival event
// orderings and outcomes bit-for-bit, regardless of the thread count used
// to finalize the instance (pinned by tests/sim/online_test.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

#include "cloud/plan.h"
#include "obs/obs.h"
#include "obs/watchdog.h"
#include "sim/faults.h"

namespace edgerep {

/// Point-in-time snapshot of a running online simulation, published by
/// run_online into an OnlineStatusBoard so the telemetry HTTP server can
/// answer /status while the run is in progress.
struct OnlineStatus {
  double sim_clock = 0.0;          ///< seconds of simulated time elapsed
  std::size_t arrivals_seen = 0;
  std::size_t inflight_demands = 0;
  std::size_t admitted_queries = 0;
  std::size_t rejected_queries = 0;
  std::size_t failed_by_fault = 0;
  std::size_t demands_relocated = 0;
  std::size_t fault_events_applied = 0;
  std::size_t replicas_lost = 0;
  double utilization = 0.0;        ///< in-use GHz / fault-free total GHz
  std::vector<double> site_in_use;     ///< per site, GHz
  std::vector<double> site_available;  ///< per site, fault-scaled GHz
  /// Flow-backend telemetry (zero on table runs).
  std::size_t active_flows = 0;        ///< transfers currently in flight
  std::size_t flow_rate_changes = 0;   ///< max-min re-fill transitions so far
  std::size_t flow_late_transfers = 0; ///< deliveries after their predicted time
  bool finished = false;
};

/// Mailbox between the (single-threaded, deterministic) simulation and
/// concurrent telemetry readers.  The simulation publishes snapshots; the
/// HTTP server and sampler read them.  Publication never feeds back into
/// the simulation, so attaching a board cannot change results.
class OnlineStatusBoard {
 public:
  void publish(const OnlineStatus& s);
  [[nodiscard]] OnlineStatus read() const;

  /// Wall-clock throttle for the publisher: true (and arms the next gap)
  /// when at least `min_gap_ns` elapsed since the last granted publish.
  bool due(std::uint64_t min_gap_ns);

  /// Cheap scalar reads for sampler probes (one mutex hop, no copies).
  [[nodiscard]] double sim_clock() const;
  [[nodiscard]] std::size_t inflight() const;
  [[nodiscard]] double utilization() const;
  [[nodiscard]] bool finished() const;

  /// One JSON object mirroring OnlineStatus (arrays included).
  void write_json(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  OnlineStatus status_;
  std::atomic<std::uint64_t> last_pub_ns_{0};
};

/// Which discrete-event core executes the run.  `kTyped` is the production
/// path: POD events in a 4-ary (time, seq) heap with lazily streamed
/// arrivals and a slab flight registry (sim/event_kernel.h).  `kClosure` is
/// the original std::function engine, kept as the bit-identity oracle —
/// fixed (instance, config, faults) produce bit-identical OnlineResult on
/// both kernels (pinned by tests/sim/online_equivalence_test.cpp).
enum class OnlineKernel : std::uint8_t { kTyped, kClosure };

/// Transfer backend.  `kTable` prices and *simulates* transfers with the
/// static per-site delay table — a thousand simultaneous transfers through
/// one WMAN link are free.  `kFlow` keeps admission pricing on the table
/// but replays every admitted transfer as a flow over its shortest path
/// through the FlowEngine's max-min fair bandwidth sharing: completions
/// stretch under contention, and the run reports the predicted-vs-actual
/// SLO gap.  With `oversubscription == 0` (infinite link capacities) the
/// flow backend is bit-identical to the table backend on both kernels —
/// the correctness oracle pinned by tests/sim/online_flow_test.cpp.
enum class OnlineNetwork : std::uint8_t { kTable, kFlow };

/// Predicted-vs-actual deadline accounting of the flow backend (zeroed on
/// table runs).  "Predicted" is the admission-time completion priced from
/// the delay table; "actual" is the flow-simulated completion under
/// contention.  Excluded from online_result_hash (like kernel_stats): the
/// gap is diagnostic, not part of the cross-kernel equivalence contract —
/// but it IS deterministic and bit-identical across kernels.
struct FlowGapStats {
  std::size_t flows_routed = 0;       ///< transfers replayed as flows
  std::size_t rate_changes = 0;       ///< max-min re-fill rate transitions
  std::size_t queries_compared = 0;   ///< served queries with both verdicts
  std::size_t predicted_hits = 0;     ///< deadline hits per the delay table
  std::size_t actual_hits = 0;        ///< deadline hits under contention
  std::size_t gap_breaches = 0;       ///< predicted hit, actual miss
  double max_stretch = 0.0;           ///< max (actual − predicted), seconds
  double mean_stretch = 0.0;          ///< mean (actual − predicted), seconds
};

/// Executive accounting of one run's event core (not part of the
/// equivalence contract; excluded from online_result_hash).
struct OnlineKernelStats {
  OnlineKernel kernel = OnlineKernel::kTyped;
  std::size_t events_processed = 0;
  /// High-water of simultaneously pending events.  O(inflight) on the
  /// typed kernel; O(queries + faults) on the closure kernel, which
  /// pre-schedules the whole horizon.
  std::size_t peak_pending_events = 0;
  std::size_t peak_event_bytes = 0;  ///< event-storage high-water, bytes
  std::size_t peak_flights = 0;      ///< max concurrently live flights
  std::size_t flight_bytes = 0;      ///< flight-registry storage, bytes
};

struct OnlineConfig {
  enum class Arrivals : std::uint8_t { kPoisson, kUniform };
  Arrivals arrivals = Arrivals::kPoisson;
  double arrival_rate = 2.0;  ///< queries/second
  /// Diurnal arrival wave: with both knobs > 0, the instantaneous rate is
  /// modulated by 1 + wave_amplitude·sin(2π·t / wave_period) (clamped to
  /// stay positive), giving the watchdog's change-point detectors a real
  /// flash-crowd signal.  Defaults OFF — the draw sequence (and thus every
  /// existing seed's arrival times) is bit-identical when amplitude == 0.
  double wave_amplitude = 0.0;  ///< peak fractional rate swing, [0, 1)
  double wave_period = 0.0;     ///< seconds per cycle
  /// Master seed of the arrival process (see the determinism contract in
  /// the header comment).  Identical seeds ⇒ identical arrival times and
  /// event orderings, with or without faults.
  std::uint64_t seed = 0x0a11;
  /// Allow placing new replicas at admission time (within K).  With false,
  /// only replicas present in the seed plan (or dataset origins) are usable.
  bool reactive_replicas = true;
  /// Count each dataset's origin as a free replica (data exists somewhere).
  bool origin_counts_as_replica = true;

  /// Failure events injected during the horizon (validated against the
  /// instance; must be time-ordered).  Empty = fault-free, bit-identical to
  /// the pre-fault-model simulator.
  FaultTrace faults;
  /// On a crash or capacity loss, immediately try to re-seat the displaced
  /// in-flight demands on surviving sites (reactive repair).  With false,
  /// displaced queries simply fail.
  bool repair_on_failure = true;

  /// Optional live-status mailbox (not owned).  When set, the run publishes
  /// throttled OnlineStatus snapshots for the telemetry endpoints; results
  /// are bit-identical with or without a board (pinned by
  /// tests/integration/obs_equivalence_test.cpp).
  OnlineStatusBoard* status_board = nullptr;

  /// Event core selection; results are bit-identical across kernels.
  OnlineKernel kernel = OnlineKernel::kTyped;

  /// Transfer backend: admission always prices with the delay table; kFlow
  /// additionally verifies completions under max-min fair link sharing.
  OnlineNetwork network = OnlineNetwork::kTable;
  /// Scales link capacities for the flow backend: effective capacity =
  /// edge.capacity / oversubscription.  Larger values mean scarcer links.
  /// 0 is the contention-free limit (infinite capacities) — the oracle
  /// regime in which kFlow is bit-identical to kTable.
  double oversubscription = 1.0;
};

struct OnlineOutcome {
  QueryId query = 0;
  double arrival_time = 0.0;
  bool admitted = false;
  double completion_time = 0.0;  ///< arrival + max per-demand delay
  /// Admitted on arrival, then killed by a fault mid-flight (admitted is
  /// false for these — a failed query does not count toward throughput).
  bool failed_by_fault = false;
};

/// Deadline-SLO aggregates for the demands a site ended up serving.  Slack
/// is `deadline − (completion − arrival)` in seconds; negative slack means
/// a fault-forced relocation finished the work after the deadline.
struct OnlineSiteSlo {
  SiteId site = kInvalidSite;
  std::size_t demands = 0;        ///< admitted demands finally served here
  std::size_t deadline_hits = 0;  ///< of those, finished with slack ≥ 0
  double p50_slack = 0.0;
  double p95_slack = 0.0;
  double p99_slack = 0.0;
};

/// Deadline-SLO rollup over the queries that survived the horizon.
/// Fault-free runs hit every deadline by construction (admission only
/// commits deadline-feasible sites), so hit_ratio < 1 is a fault signature.
struct SloRollup {
  std::size_t admitted_queries = 0;
  std::size_t deadline_hits = 0;
  double hit_ratio = 0.0;  ///< deadline_hits / admitted_queries (0 if none)
  /// Tail percentiles of per-query slack, seconds: pXX_slack is the slack
  /// the worst (100 − XX)% of queries fall below — 95% of queries finished
  /// with at least p95_slack to spare.
  double p50_slack = 0.0;
  double p95_slack = 0.0;
  double p99_slack = 0.0;
  std::vector<OnlineSiteSlo> per_site;  ///< only sites that served demands
};

struct OnlineResult {
  std::vector<OnlineOutcome> outcomes;
  std::size_t admitted_queries = 0;
  double admitted_volume = 0.0;
  double throughput = 0.0;
  /// Max over time of total in-use GHz / total available GHz (availability
  /// is the fault-free total; a crash shows up as lost utilization).
  double peak_utilization = 0.0;
  /// Replica placement state at the end of the horizon.
  std::vector<std::vector<SiteId>> replica_sites;  ///< per dataset

  /// --- fault accounting (all zero on fault-free runs) ------------------
  std::size_t fault_events_applied = 0;
  std::size_t queries_failed_by_fault = 0;
  std::size_t demands_relocated = 0;  ///< displaced and re-seated in flight
  std::size_t replicas_lost_to_faults = 0;

  /// Deadline-SLO rollup (computed on every run; deterministic).  Under
  /// the flow backend the completions (and hence slack) are the
  /// contention-stretched actuals.
  SloRollup slo;

  /// Predicted-vs-actual gap of the flow backend (zeroed on table runs;
  /// excluded from online_result_hash, bit-identical across kernels).
  FlowGapStats flow_gap;

  /// Watchdog alert rollup (zeroed unless the watchdog facet was on;
  /// excluded from online_result_hash like the other diagnostic blocks,
  /// but deterministic and bit-identical across kernels — pinned by
  /// tests/obs/watchdog_test.cpp).
  obs::WatchdogStats watchdog;

  /// Event-core accounting (differs across kernels by design; excluded
  /// from the equivalence contract and from online_result_hash).
  OnlineKernelStats kernel_stats;
};

/// Run online admission over the instance's query population (arrival order
/// = instance order; arrival times drawn per cfg).  `proactive` optionally
/// seeds the replica placement from an offline plan (its assignments are
/// ignored — only x_{nl} carries over).  Deadlines of admitted queries hold
/// by construction: admission reserves resource for the processing window.
OnlineResult run_online(const Instance& inst, const OnlineConfig& cfg = {},
                        const ReplicaPlan* proactive = nullptr);

/// FNV-1a fingerprint over every contract field of the result (outcomes,
/// aggregates, replica placement, fault accounting, SLO rollup — raw double
/// bits, no rounding).  Two runs agree on the hash iff they agree bitwise;
/// kernel_stats is excluded.  Used by the cross-kernel CI smoke and the
/// equivalence suite.
[[nodiscard]] std::uint64_t online_result_hash(const OnlineResult& res);

}  // namespace edgerep
