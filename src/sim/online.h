// Online admission control — the *reactive* counterpart to the paper's
// proactive placement.
//
// Queries arrive over time and must be admitted or rejected on arrival with
// no knowledge of future arrivals.  Unlike the static model (which reserves
// a site's computing resource for an admitted query forever), an admitted
// demand holds its |S_n|·r_m GHz only while it processes, so capacity is
// time-multiplexed across the arrival horizon.
//
// Replicas can be placed reactively on arrival (within the budget K), or
// seeded from a proactive plan computed offline — comparing the two
// quantifies the value of *proactive* replication, the premise of the
// paper's title (bench: ablation_proactive).
#pragma once

#include <cstdint>
#include <vector>

#include "cloud/plan.h"

namespace edgerep {

struct OnlineConfig {
  enum class Arrivals : std::uint8_t { kPoisson, kUniform };
  Arrivals arrivals = Arrivals::kPoisson;
  double arrival_rate = 2.0;  ///< queries/second
  std::uint64_t seed = 0x0a11;
  /// Allow placing new replicas at admission time (within K).  With false,
  /// only replicas present in the seed plan (or dataset origins) are usable.
  bool reactive_replicas = true;
  /// Count each dataset's origin as a free replica (data exists somewhere).
  bool origin_counts_as_replica = true;
};

struct OnlineOutcome {
  QueryId query = 0;
  double arrival_time = 0.0;
  bool admitted = false;
  double completion_time = 0.0;  ///< arrival + max per-demand delay
};

struct OnlineResult {
  std::vector<OnlineOutcome> outcomes;
  std::size_t admitted_queries = 0;
  double admitted_volume = 0.0;
  double throughput = 0.0;
  /// Max over time of total in-use GHz / total available GHz.
  double peak_utilization = 0.0;
  /// Replica placement state at the end of the horizon.
  std::vector<std::vector<SiteId>> replica_sites;  ///< per dataset
};

/// Run online admission over the instance's query population (arrival order
/// = instance order; arrival times drawn per cfg).  `proactive` optionally
/// seeds the replica placement from an offline plan (its assignments are
/// ignored — only x_{nl} carries over).  Deadlines of admitted queries hold
/// by construction: admission reserves resource for the processing window.
OnlineResult run_online(const Instance& inst, const OnlineConfig& cfg = {},
                        const ReplicaPlan* proactive = nullptr);

}  // namespace edgerep
