#include "sim/online.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <memory>
#include <ostream>
#include <stdexcept>

#include "cloud/delay.h"
#include "net/routes.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "sim/event.h"
#include "sim/flows.h"
#include "sim/online_internal.h"
#include "util/rng.h"
#include "util/stats.h"

namespace edgerep {

void OnlineStatusBoard::publish(const OnlineStatus& s) {
  const std::lock_guard<std::mutex> lock(mu_);
  status_ = s;
}

OnlineStatus OnlineStatusBoard::read() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

bool OnlineStatusBoard::due(std::uint64_t min_gap_ns) {
  const std::uint64_t now = obs::now_ns();
  std::uint64_t last = last_pub_ns_.load(std::memory_order_relaxed);
  if (last != 0 && now - last < min_gap_ns) return false;
  return last_pub_ns_.compare_exchange_strong(last, now,
                                              std::memory_order_relaxed);
}

double OnlineStatusBoard::sim_clock() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return status_.sim_clock;
}

std::size_t OnlineStatusBoard::inflight() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return status_.inflight_demands;
}

double OnlineStatusBoard::utilization() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return status_.utilization;
}

bool OnlineStatusBoard::finished() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return status_.finished;
}

void OnlineStatusBoard::write_json(std::ostream& os) const {
  const OnlineStatus s = read();
  const auto old = os.precision(17);
  os << "{\"sim_clock\": ";
  obs::write_json_double(os, s.sim_clock);
  os << ", \"finished\": " << (s.finished ? "true" : "false")
     << ", \"arrivals_seen\": " << s.arrivals_seen
     << ", \"inflight_demands\": " << s.inflight_demands
     << ", \"admitted_queries\": " << s.admitted_queries
     << ", \"rejected_queries\": " << s.rejected_queries
     << ", \"failed_by_fault\": " << s.failed_by_fault
     << ", \"demands_relocated\": " << s.demands_relocated
     << ", \"fault_events_applied\": " << s.fault_events_applied
     << ", \"replicas_lost\": " << s.replicas_lost << ", \"utilization\": ";
  obs::write_json_double(os, s.utilization);
  os << ", \"site_in_use\": [";
  for (std::size_t i = 0; i < s.site_in_use.size(); ++i) {
    if (i > 0) os << ", ";
    obs::write_json_double(os, s.site_in_use[i]);
  }
  os << "], \"site_available\": [";
  for (std::size_t i = 0; i < s.site_available.size(); ++i) {
    if (i > 0) os << ", ";
    obs::write_json_double(os, s.site_available[i]);
  }
  os << "], \"active_flows\": " << s.active_flows
     << ", \"flow_rate_changes\": " << s.flow_rate_changes
     << ", \"flow_late_transfers\": " << s.flow_late_transfers << "}\n";
  os.precision(old);
}

namespace online_detail {
namespace {

double slack_percentile(std::vector<double>& xs, double p) {
  std::sort(xs.begin(), xs.end());
  return percentile_sorted(xs, p);
}

std::uint64_t sim_ns(double seconds) {
  return seconds <= 0.0
             ? 0
             : static_cast<std::uint64_t>(std::llround(seconds * 1e9));
}

}  // namespace

void finalize_online_result(const Instance& inst, const DemandLayout& layout,
                            const std::vector<DemandEnd>& demand_ends,
                            OnlineResult* res) {
  res->admitted_queries = 0;
  for (const OnlineOutcome& o : res->outcomes) {
    if (o.admitted) {
      ++res->admitted_queries;
      res->admitted_volume += inst.demanded_volume(o.query);
    }
  }
  res->throughput = inst.queries().empty()
                        ? 0.0
                        : static_cast<double>(res->admitted_queries) /
                              static_cast<double>(inst.queries().size());

  // Deadline-SLO rollup over the surviving queries.  Slack can go negative
  // only via fault-forced relocation (admission itself is deadline-safe).
  std::vector<double> query_slacks;
  std::vector<std::vector<double>> site_slacks(inst.sites().size());
  std::vector<std::size_t> site_hits(inst.sites().size(), 0);
  query_slacks.reserve(res->admitted_queries);
  for (const OnlineOutcome& o : res->outcomes) {
    if (!o.admitted) continue;
    const Query& q = inst.query(o.query);
    query_slacks.push_back(q.deadline - (o.completion_time - o.arrival_time));
    const std::size_t base = layout.at(o.query, 0);
    for (std::size_t d = 0; d < q.demands.size(); ++d) {
      const DemandEnd& de = demand_ends[base + d];
      if (de.site == kInvalidSite) continue;
      const double slack = q.deadline - (de.completion - o.arrival_time);
      site_slacks[de.site].push_back(slack);
      if (slack >= -1e-9) ++site_hits[de.site];
    }
  }
  res->slo.admitted_queries = res->admitted_queries;
  for (const double s : query_slacks) {
    if (s >= -1e-9) ++res->slo.deadline_hits;
  }
  res->slo.hit_ratio = query_slacks.empty()
                           ? 0.0
                           : static_cast<double>(res->slo.deadline_hits) /
                                 static_cast<double>(query_slacks.size());
  res->slo.p50_slack = slack_percentile(query_slacks, 50.0);
  res->slo.p95_slack = slack_percentile(query_slacks, 5.0);
  res->slo.p99_slack = slack_percentile(query_slacks, 1.0);
  for (std::size_t s = 0; s < site_slacks.size(); ++s) {
    if (site_slacks[s].empty()) continue;
    OnlineSiteSlo slo;
    slo.site = static_cast<SiteId>(s);
    slo.demands = site_slacks[s].size();
    slo.deadline_hits = site_hits[s];
    slo.p50_slack = slack_percentile(site_slacks[s], 50.0);
    slo.p95_slack = slack_percentile(site_slacks[s], 5.0);
    slo.p99_slack = slack_percentile(site_slacks[s], 1.0);
    res->slo.per_site.push_back(slo);
  }
}

std::vector<double> flow_link_capacities(const Graph& g,
                                         double oversubscription) {
  std::vector<double> caps;
  caps.reserve(g.num_edges());
  for (const Edge& e : g.edges()) {
    caps.push_back(oversubscription == 0.0 ? kContentionFreeCapacity
                                           : e.capacity / oversubscription);
  }
  return caps;
}

void finalize_flow_gap(const Instance& inst,
                       const std::vector<double>& predicted,
                       OnlineResult* res) {
  FlowGapStats& g = res->flow_gap;
  double stretch_sum = 0.0;
  for (const OnlineOutcome& o : res->outcomes) {
    if (!o.admitted) continue;
    const Query& q = inst.query(o.query);
    ++g.queries_compared;
    const double pred_slack =
        q.deadline - (predicted[o.query] - o.arrival_time);
    const double act_slack =
        q.deadline - (o.completion_time - o.arrival_time);
    const bool pred_hit = pred_slack >= -1e-9;
    const bool act_hit = act_slack >= -1e-9;
    if (pred_hit) ++g.predicted_hits;
    if (act_hit) ++g.actual_hits;
    if (pred_hit && !act_hit) ++g.gap_breaches;
    const double stretch = o.completion_time - predicted[o.query];
    g.max_stretch = std::max(g.max_stretch, stretch);
    stretch_sum += stretch;
  }
  g.mean_stretch = g.queries_compared > 0
                       ? stretch_sum / static_cast<double>(g.queries_compared)
                       : 0.0;
}

void emit_online_spans(const std::vector<SpanRec>& spans,
                       const std::vector<SpanRec>& instants) {
  // Async 'b'/'e' pairs (and 'n' instants) on pid 2 — the sim-clock track —
  // so Perfetto shows each query's arrival → transfer → compute →
  // completion lane next to the wall-clock phase spans on pid 1.
  obs::Tracer& tr = obs::tracer();
  for (const SpanRec& sp : spans) {
    if (sp.t1 <= sp.t0) continue;  // killed before it started
    tr.record_async('b', sp.name, sp.id, sim_ns(sp.t0));
    tr.record_async('e', sp.name, sp.id, sim_ns(sp.t1));
  }
  for (const SpanRec& in : instants) {
    tr.record_async('n', in.name, in.id, sim_ns(in.t0));
  }
}

}  // namespace online_detail

namespace {

using online_detail::DemandEnd;
using online_detail::DemandLayout;
using online_detail::demand_span_id;
using online_detail::kNoSpan;
using online_detail::OnlineArrivalStream;
using online_detail::query_span_id;
using online_detail::SiteLoad;
using online_detail::SpanRec;

/// One admitted demand currently holding resource at a site.  Flights are
/// append-only; `alive` flips when the work completes or a fault kills it,
/// so a stale completion event is a no-op instead of a double-credit.
struct Inflight {
  QueryId query = 0;
  std::uint32_t demand = 0;
  SiteId site = kInvalidSite;
  double need = 0.0;
  bool alive = false;
};

/// The original closure-based engine, kept as the bit-identity oracle for
/// the typed kernel (OnlineKernel::kClosure): one std::function per event,
/// whole horizon pre-scheduled, grow-only flight vector.
OnlineResult run_online_closure(const Instance& inst, const OnlineConfig& cfg,
                                const ReplicaPlan* proactive) {
  EventQueue eq;
  FaultState faults(inst);

  // Telemetry facets, sampled once so a mid-run toggle cannot tear the run.
  // None of them feeds back into a decision: the simulation is bit-identical
  // with every facet on or off (pinned by obs_equivalence_test).
  const bool metrics_on = obs::metrics_enabled();
  const bool trace_on = obs::trace_enabled();
  const bool audit_on = obs::audit_enabled();
  // Flight recorder, mirrored append-for-append with the typed kernel so a
  // fixed config journals byte-identically on either engine.
  const bool rec_on = obs::recorder_enabled();
  obs::Recorder* const rec = rec_on ? &obs::recorder() : nullptr;
  // Watchdog (5th facet), sampled once like the recorder.  Feeds sit at
  // the recorder's mirrored append sites and carry only sim-clock times and
  // stable ids, so the alert stream is byte-identical across kernels.
  const bool wd_on = obs::watchdog_enabled();
  obs::Watchdog* const wd = wd_on ? &obs::watchdog() : nullptr;
  if (wd != nullptr) wd->begin_run();
  OnlineStatusBoard* board = cfg.status_board;
  std::vector<obs::AuditEntry> audit_entries;

  // Arrival-path counters, resolved once: the per-arrival cost is a null
  // check and two striped increments, not three registry guard loads.
  obs::Counter* c_arrivals = nullptr;
  obs::Counter* c_admitted = nullptr;
  obs::Counter* c_rejected = nullptr;
  if (metrics_on) {
    c_arrivals = &obs::metrics().counter("edgerep_online_arrivals_total",
                                         "query arrivals seen");
    c_admitted =
        &obs::metrics().counter("edgerep_online_queries_admitted_total",
                                "queries admitted on arrival");
    c_rejected =
        &obs::metrics().counter("edgerep_online_queries_rejected_total",
                                "queries rejected on arrival");
  }

  OnlineResult res;
  res.kernel_stats.kernel = OnlineKernel::kClosure;
  res.replica_sites.resize(inst.datasets().size());
  if (proactive != nullptr) {
    for (const Dataset& d : inst.datasets()) {
      res.replica_sites[d.id] = proactive->replica_sites(d.id);
    }
  } else if (cfg.origin_counts_as_replica) {
    for (const Dataset& d : inst.datasets()) {
      if (d.origin != kInvalidSite) {
        res.replica_sites[d.id].push_back(d.origin);
      }
    }
  }

  std::vector<SiteLoad> sites(inst.sites().size());
  double total_available = 0.0;
  for (const Site& s : inst.sites()) {
    sites[s.id].available = s.available;
    total_available += s.available;
  }

  std::vector<Inflight> flights;
  std::vector<std::vector<std::size_t>> by_site(sites.size());
  std::vector<std::vector<std::size_t>> by_query(inst.queries().size());
  // Running aggregates for the status board; maintained unconditionally
  // (two additions per launch/retire) so the board never perturbs the run.
  std::size_t inflight_count = 0;
  double in_use_total = 0.0;
  std::size_t arrivals_seen = 0;
  std::size_t rejected_queries = 0;

  // Deadline-SLO bookkeeping: final serving site + absolute completion per
  // admitted demand (relocation overwrites), in one flat table.
  const DemandLayout layout(inst);
  std::vector<DemandEnd> demand_ends(layout.total());

  // Flow backend (cfg.network == kFlow): every admitted transfer is replayed
  // as a rate-capped flow over its shortest path, and the contention-
  // stretched completion overwrites (via max) the table-predicted one in
  // demand_ends / outcomes.  Admission pricing stays on the delay table.
  const bool flow_on = cfg.network == OnlineNetwork::kFlow;
  std::unique_ptr<FlowEngine> flow;
  RouteTable routes;
  std::vector<double> flow_base_caps;   // effective capacity per edge
  std::vector<QueryId> slot_query;      // layout slot -> owning query
  std::vector<std::uint32_t> qd_flow;   // layout slot -> live flow slot
  std::vector<std::uint32_t> qd_bottleneck;  // slot -> last bottleneck edge
  std::vector<EdgeId> route_buf;
  std::vector<double> flow_predicted;   // per query, table-priced completion
  std::size_t flow_late = 0;            // deliveries after predicted time
  if (flow_on) {
    flow_base_caps = online_detail::flow_link_capacities(
        inst.graph(), cfg.oversubscription);
    flow = std::make_unique<FlowEngine>(eq, flow_base_caps);
    std::vector<NodeId> site_nodes;
    site_nodes.reserve(inst.sites().size());
    for (const Site& s : inst.sites()) site_nodes.push_back(s.node);
    routes = RouteTable::compute(inst.graph(), site_nodes);
    slot_query.resize(layout.total());
    for (const Query& q : inst.queries()) {
      for (std::uint32_t d = 0; d < q.demands.size(); ++d) {
        slot_query[layout.at(q.id, d)] = q.id;
      }
    }
    qd_flow.assign(layout.total(), FlowEngine::kNoFlow);
    if (wd != nullptr) qd_bottleneck.assign(layout.total(), obs::kNoAlertLink);
    flow_predicted.resize(inst.queries().size(), 0.0);
    flow->set_rate_listener([&](std::uint32_t tag, double t, double rate,
                                double remaining, EdgeId bottleneck) {
      if (rate > 0.0) ++res.flow_gap.rate_changes;
      if (wd != nullptr && rate > 0.0) {
        // Mirror the postmortem's bottleneck attribution: the last rate
        // transition names the link to blame at retirement.
        qd_bottleneck[tag] = static_cast<std::uint32_t>(bottleneck);
      }
      if (rec_on) {
        obs::JournalRecord r;
        r.time = t;
        r.v0 = rate;
        r.v1 = remaining;
        r.a = tag;
        r.b = static_cast<std::uint32_t>(bottleneck);
        r.site = obs::kNoSite;
        r.kind = static_cast<std::uint8_t>(obs::RecordKind::kFlowRateChange);
        r.arg = rate > 0.0 ? 0 : 1;  // 1 = retirement at actual completion
        rec->append(r);
      }
    });
  }

  // Span timelines (trace facet): buffered locally, emitted after the run.
  std::vector<SpanRec> spans;
  std::vector<SpanRec> instants;  // t0 only; 'n' events (crash / relocate)
  std::vector<std::size_t> query_span(inst.queries().size(), kNoSpan);
  std::vector<std::array<std::size_t, 2>> flight_spans;  // [transfer, compute]

  auto has_replica = [&](DatasetId n, SiteId l) {
    const auto& v = res.replica_sites[n];
    return std::find(v.begin(), v.end(), l) != v.end();
  };

  // O(1): in_use_total is already maintained incrementally by every
  // launch/retire, so the peak never needs a sum over sites.  The typed
  // kernel applies the identical ±need sequence, so the quotient is
  // bit-identical across kernels.
  auto track_peak = [&] {
    if (total_available <= 0.0) return;
    res.peak_utilization =
        std::max(res.peak_utilization, in_use_total / total_available);
  };

  /// Publish a throttled snapshot to the status board and refresh the live
  /// gauges.  Reads sim state, never writes it.  Gauges and snapshots are
  /// point-in-time views, so both ride the same two-stage throttle: a
  /// branch-and-mask event pre-gate (every event), then a ~2 ms wall-clock
  /// floor (every 32nd event) — scrapers see fresh-enough data and the
  /// event loop never reads a clock or builds vectors per event.
  std::uint32_t status_tick = 0;
  auto push_status = [&](bool force) {
    if (!metrics_on && board == nullptr) return;
    if (!force) {
      if ((++status_tick & 31u) != 0) return;
      if (board != nullptr && !board->due(2'000'000)) return;
    }
    if (metrics_on) {
      static obs::Gauge& g_inflight = obs::metrics().gauge(
          "edgerep_online_inflight", "demands currently holding resource");
      static obs::Gauge& g_clock = obs::metrics().gauge(
          "edgerep_online_sim_clock_seconds", "simulated seconds elapsed");
      static obs::Gauge& g_util = obs::metrics().gauge(
          "edgerep_online_utilization",
          "in-use GHz over fault-free total GHz");
      g_inflight.set(static_cast<double>(inflight_count));
      g_clock.set(eq.now());
      g_util.set(total_available > 0.0 ? in_use_total / total_available
                                       : 0.0);
      if (flow_on) {
        static obs::Gauge& g_flows = obs::metrics().gauge(
            "edgerep_online_active_flows",
            "flow backend: transfers currently in flight");
        static obs::Gauge& g_ratech = obs::metrics().gauge(
            "edgerep_online_flow_rate_changes",
            "flow backend: max-min re-fill rate transitions");
        static obs::Gauge& g_late = obs::metrics().gauge(
            "edgerep_online_flow_late_transfers",
            "flow backend: deliveries after their table-predicted time");
        g_flows.set(static_cast<double>(flow->active_flows()));
        g_ratech.set(static_cast<double>(res.flow_gap.rate_changes));
        g_late.set(static_cast<double>(flow_late));
      }
    }
    if (board == nullptr) return;
    OnlineStatus st;
    st.sim_clock = eq.now();
    st.arrivals_seen = arrivals_seen;
    st.inflight_demands = inflight_count;
    st.admitted_queries = res.admitted_queries;
    st.rejected_queries = rejected_queries;
    st.failed_by_fault = res.queries_failed_by_fault;
    st.demands_relocated = res.demands_relocated;
    st.fault_events_applied = res.fault_events_applied;
    st.replicas_lost = res.replicas_lost_to_faults;
    st.utilization =
        total_available > 0.0 ? in_use_total / total_available : 0.0;
    st.site_in_use.reserve(sites.size());
    st.site_available.reserve(sites.size());
    for (const Site& s : inst.sites()) {
      st.site_in_use.push_back(sites[s.id].in_use);
      st.site_available.push_back(faults.available(s.id));
    }
    st.active_flows = flow_on ? flow->active_flows() : 0;
    st.flow_rate_changes = res.flow_gap.rate_changes;
    st.flow_late_transfers = flow_late;
    st.finished = force && arrivals_seen == inst.queries().size();
    board->publish(st);
  };

  /// Abort the live flow of one (query, demand) slot, if any — kill paths
  /// and relocation call this; the table prediction in demand_ends stands.
  auto cancel_transfer = [&](std::size_t ls) {
    if (!flow_on || qd_flow[ls] == FlowEngine::kNoFlow) return;
    flow->cancel(qd_flow[ls]);
    qd_flow[ls] = FlowEngine::kNoFlow;
  };

  /// A flow finished: overwrite the table-predicted completion with the
  /// flow-simulated actual.  Monotone (max), so the contention-free limit —
  /// where the actual equals the prediction bit for bit — changes nothing.
  auto deliver_transfer = [&](std::size_t ls, double t) {
    qd_flow[ls] = FlowEngine::kNoFlow;
    DemandEnd& de = demand_ends[ls];
    if (t > de.completion + 1e-9) ++flow_late;
    if (wd != nullptr) {
      const OnlineOutcome& prev = res.outcomes[slot_query[ls]];
      wd->on_flow_retire(t, qd_bottleneck[ls], t - de.completion);
      wd->on_completion(t,
                        inst.query(slot_query[ls]).deadline -
                            (std::max(prev.completion_time, t) -
                             prev.arrival_time),
                        false);
    }
    de.completion = std::max(de.completion, t);
    OnlineOutcome& o = res.outcomes[slot_query[ls]];
    o.completion_time = std::max(o.completion_time, t);
    push_status(false);
  };

  /// Route one admitted transfer as a flow: full evaluation delay as the
  /// flow size, nominal rate capped at 1.0 (so an uncontended flow finishes
  /// exactly at the priced delay), path = shortest route from the
  /// evaluation site to the query home.  Local evaluations (empty route)
  /// and zero-work transfers are not flows — the prediction stands.
  auto start_transfer = [&](QueryId m, std::uint32_t demand, SiteId site,
                            double total) {
    if (!flow_on) return;
    const std::size_t ls = layout.at(m, demand);
    cancel_transfer(ls);
    if (total <= 0.0) return;
    const NodeId home = inst.site(inst.query(m).home).node;
    if (!routes.edge_path(inst.graph(), site, home, route_buf) ||
        route_buf.empty()) {
      return;
    }
    const std::uint32_t slot = flow->start_flow(
        total, std::vector<EdgeId>(route_buf.begin(), route_buf.end()),
        [&, ls] { deliver_transfer(ls, eq.now()); },
        static_cast<std::uint32_t>(ls), /*rate_cap=*/1.0);
    if (slot != FlowEngine::kNoFlow) {
      qd_flow[ls] = slot;
      ++res.flow_gap.flows_routed;
    }
  };

  /// Capacity faults steal NIC bandwidth along with compute: scale every
  /// link incident to the struck site's node by the remaining compute
  /// fraction (clamped away from zero so flows keep progressing).  Site
  /// crashes do not touch links (the co-located switch survives), and link
  /// up/down events shape routing of future admissions only — in-flight
  /// transfers are not re-simulated (see the contract in sim/online.h).
  auto update_flow_links = [&](SiteId s) {
    if (!flow_on) return;
    const double scale = std::max(faults.capacity_scale(s), 1e-6);
    for (const HalfEdge& he : inst.graph().neighbors(inst.site(s).node)) {
      flow->set_link_capacity(he.edge, flow_base_caps[he.edge] * scale);
    }
  };

  /// Truncate a killed flight's spans at the kill instant (a demand span
  /// that never started is dropped at emission: t1 ≤ t0).
  auto truncate_flight_spans = [&](std::size_t idx) {
    if (!trace_on) return;
    for (const std::size_t si : flight_spans[idx]) {
      if (si == kNoSpan) continue;
      spans[si].t0 = std::min(spans[si].t0, eq.now());
      spans[si].t1 = std::min(spans[si].t1, eq.now());
    }
  };

  /// Release a flight's resource (idempotent).  The slot's flow, if still
  /// in the air, is silently aborted — a killed demand delivers nothing.
  auto kill_flight = [&](std::size_t idx) {
    Inflight& f = flights[idx];
    if (!f.alive) return;
    f.alive = false;
    sites[f.site].in_use -= f.need;
    --inflight_count;
    in_use_total -= f.need;
    cancel_transfer(layout.at(f.query, f.demand));
    truncate_flight_spans(idx);
  };

  /// Register a new flight at `site` and schedule its completion.  `total`
  /// is the full evaluation delay (transfer + processing) for the span
  /// timeline; resource is held for the processing window `proc` only.
  auto launch_flight = [&](QueryId m, std::uint32_t demand, SiteId site,
                           double need, double proc, double total) {
    const std::size_t idx = flights.size();
    flights.push_back({m, demand, site, need, true});
    flight_spans.push_back({kNoSpan, kNoSpan});
    if (trace_on) {
      const double t0 = eq.now();
      const double t_mid = t0 + std::max(0.0, total - proc);
      flight_spans[idx][0] = spans.size();
      spans.push_back({"online.transfer", demand_span_id(m, demand, 1), t0,
                       t_mid});
      flight_spans[idx][1] = spans.size();
      spans.push_back({"online.compute", demand_span_id(m, demand, 2), t_mid,
                       t0 + total});
    }
    by_site[site].push_back(idx);
    by_query[m].push_back(idx);
    sites[site].in_use += need;
    ++inflight_count;
    if (inflight_count > res.kernel_stats.peak_flights) {
      res.kernel_stats.peak_flights = inflight_count;
    }
    in_use_total += need;
    eq.schedule_in(proc, [&, idx] {
      Inflight& f = flights[idx];
      if (!f.alive) return;
      if (rec_on) {
        obs::JournalRecord r;
        r.time = eq.now();
        r.a = f.query;
        r.site = f.site;
        r.kind = static_cast<std::uint8_t>(obs::RecordKind::kComputeDone);
        r.arg = static_cast<std::uint8_t>(f.demand);
        rec->append(r);
      }
      f.alive = false;
      sites[f.site].in_use -= f.need;
      --inflight_count;
      in_use_total -= f.need;
      if (wd != nullptr) {
        const double eff = faults.available(f.site);
        wd->on_site_util(eq.now(), f.site,
                         eff > 0.0 ? sites[f.site].in_use / eff : 1.0);
      }
      push_status(false);
    });
  };

  // Journal append for a launched flight (admission or fault relocation).
  auto record_flight = [&](obs::RecordKind kind, QueryId m,
                           std::uint32_t demand, SiteId site, DatasetId n,
                           double total, double proc) {
    obs::JournalRecord r;
    r.time = eq.now();
    r.v0 = total;
    r.v1 = proc;
    r.a = m;
    r.b = n;
    r.site = site;
    r.kind = static_cast<std::uint8_t>(kind);
    r.arg = static_cast<std::uint8_t>(demand);
    r.flags = inst.site(site).is_data_center() ? 1u : 0u;
    rec->append(r);
  };

  /// An admitted query lost a demand it could not recover: kill its other
  /// flights (a query only counts when every demand completes) and flip the
  /// outcome.
  auto fail_query = [&](QueryId m) {
    if (res.outcomes[m].failed_by_fault) return;
    if (rec_on) {
      obs::JournalRecord r;
      r.time = eq.now();
      r.a = m;
      r.site = obs::kNoSite;
      r.kind = static_cast<std::uint8_t>(obs::RecordKind::kFail);
      rec->append(r);
    }
    if (wd != nullptr) wd->on_completion(eq.now(), -1.0, true);
    for (const std::size_t idx : by_query[m]) kill_flight(idx);
    if (flow_on) {
      // Demands whose compute already finished may still be shipping their
      // result; a failed query delivers nothing, so abort every slot.
      const std::size_t base = layout.at(m, 0);
      const std::size_t count = inst.query(m).demands.size();
      for (std::size_t d = 0; d < count; ++d) cancel_transfer(base + d);
    }
    // Keep the provisional live count honest; the exact count is recomputed
    // from outcomes after eq.run().
    if (res.outcomes[m].admitted && res.admitted_queries > 0) {
      --res.admitted_queries;
    }
    res.outcomes[m].admitted = false;
    res.outcomes[m].failed_by_fault = true;
    ++res.queries_failed_by_fault;
    if (trace_on) {
      if (query_span[m] != kNoSpan) {
        spans[query_span[m]].t1 =
            std::min(spans[query_span[m]].t1, eq.now());
      }
      instants.push_back({"online.crash", query_span_id(m), eq.now(), 0.0});
    }
    if (metrics_on) {
      static obs::Counter& failed = obs::metrics().counter(
          "edgerep_online_queries_failed_by_fault_total",
          "admitted queries killed mid-flight by an injected fault");
      failed.inc();
    }
    if (audit_on) {
      const Query& q = inst.query(m);
      obs::AuditEntry e;
      e.algorithm = "online";
      e.query = m;
      e.dataset = q.demands.empty() ? 0 : q.demands.front().dataset;
      e.admitted = false;
      e.reason = obs::AuditReason::kFaultEvicted;
      audit_entries.push_back(e);
    }
  };

  /// Pick the least-relatively-filled surviving site able to serve one
  /// demand right now (same scarcity rule as admission).  Returns
  /// kInvalidSite when none fits.
  auto best_site_for = [&](const Query& q, const DatasetDemand& dd,
                           double need, bool* new_replica) {
    SiteId best = kInvalidSite;
    double best_fill = 0.0;
    for (const Site& s : inst.sites()) {
      if (!faults.site_up(s.id)) continue;
      const bool replica_here = has_replica(dd.dataset, s.id);
      if (!replica_here) {
        if (!cfg.reactive_replicas) continue;
        if (res.replica_sites[dd.dataset].size() >= inst.max_replicas()) {
          continue;
        }
      }
      if (!faults.deadline_ok(q, dd, s.id)) continue;
      const double eff = faults.available(s.id);
      const double load = sites[s.id].in_use;
      if (load + need > eff + 1e-9) continue;
      const double fill = eff > 0.0 ? (load + need) / eff : 1e18;
      if (best == kInvalidSite || fill < best_fill) {
        best = s.id;
        *new_replica = !replica_here;
        best_fill = fill;
      }
    }
    return best;
  };

  /// Re-seat one displaced (dead) flight on a surviving site.  The work
  /// restarts from scratch at the new site (the partial result died with
  /// the old one).
  auto relocate = [&](std::size_t idx) {
    const Inflight f = flights[idx];
    const Query& q = inst.query(f.query);
    const DatasetDemand& dd = q.demands[f.demand];
    bool new_replica = false;
    const SiteId site = best_site_for(q, dd, f.need, &new_replica);
    if (site == kInvalidSite) return false;
    if (new_replica) res.replica_sites[dd.dataset].push_back(site);
    const Dataset& ds = inst.dataset(dd.dataset);
    const double total = faults.evaluation_delay(q, dd, site);
    const double proc = ds.volume * inst.site(site).proc_delay;
    launch_flight(f.query, f.demand, site, f.need, proc, total);
    const double completion = eq.now() + total;
    res.outcomes[f.query].completion_time =
        std::max(res.outcomes[f.query].completion_time, completion);
    demand_ends[layout.at(f.query, f.demand)] = {site, completion};
    ++res.demands_relocated;
    if (rec_on) {
      record_flight(obs::RecordKind::kRelocate, f.query, f.demand, site,
                    dd.dataset, total, proc);
    }
    if (wd != nullptr) {
      const double eff = faults.available(site);
      wd->on_site_util(eq.now(), site,
                       eff > 0.0 ? sites[site].in_use / eff : 1.0);
      wd->on_completion(
          eq.now(),
          q.deadline - (completion - res.outcomes[f.query].arrival_time),
          false);
    }
    start_transfer(f.query, f.demand, site, total);
    if (flow_on) {
      flow_predicted[f.query] = std::max(flow_predicted[f.query], completion);
    }
    if (trace_on) {
      instants.push_back({"online.relocate",
                          demand_span_id(f.query, f.demand, 0), eq.now(),
                          0.0});
      if (query_span[f.query] != kNoSpan) {
        spans[query_span[f.query]].t1 =
            std::max(spans[query_span[f.query]].t1, completion);
      }
    }
    if (metrics_on) {
      static obs::Counter& relocated = obs::metrics().counter(
          "edgerep_online_demands_relocated_total",
          "displaced demands re-seated on surviving sites");
      relocated.inc();
    }
    return true;
  };

  /// A displaced flight either relocates or takes its whole query down.
  auto displace = [&](std::size_t idx) {
    const QueryId m = flights[idx].query;
    if (res.outcomes[m].failed_by_fault) return;
    if (!cfg.repair_on_failure || !relocate(idx)) fail_query(m);
  };

  auto on_site_down = [&](SiteId s) {
    // Replicas stored at the crashed site are lost (recovery restores
    // capacity, not data).
    for (auto& v : res.replica_sites) {
      const auto it = std::find(v.begin(), v.end(), s);
      if (it != v.end()) {
        v.erase(it);
        ++res.replicas_lost_to_faults;
      }
    }
    // Kill the in-flight work first so relocations see the freed ledger,
    // then re-seat (or fail) in admission order.
    std::vector<std::size_t> displaced;
    for (const std::size_t idx : by_site[s]) {
      if (flights[idx].alive) displaced.push_back(idx);
    }
    for (const std::size_t idx : displaced) {
      if (rec_on) {
        const Inflight& f = flights[idx];
        obs::JournalRecord r;
        r.time = eq.now();
        r.a = f.query;
        r.site = s;
        r.kind = static_cast<std::uint8_t>(obs::RecordKind::kShed);
        r.arg = static_cast<std::uint8_t>(f.demand);
        r.flags = 0;  // shed cause: site down
        rec->append(r);
      }
      kill_flight(idx);
    }
    by_site[s].clear();
    for (const std::size_t idx : displaced) displace(idx);
    // Queries aggregating at the crashed home cannot deliver results.
    for (std::size_t idx = 0; idx < flights.size(); ++idx) {
      if (flights[idx].alive && inst.query(flights[idx].query).home == s) {
        fail_query(flights[idx].query);
      }
    }
  };

  auto on_capacity_loss = [&](SiteId s) {
    const double eff = faults.available(s);
    if (sites[s].in_use <= eff + 1e-9) return;
    // Shed the most recently admitted work first until the site fits its
    // degraded availability (LIFO: the oldest work is closest to done).
    // Index-based over the size at entry: a relocation can re-seat work on
    // this same site (appending to `here`), which would invalidate
    // iterators; appended flights are by construction within the reduced
    // availability and are never shed here.
    auto& here = by_site[s];
    for (std::size_t i = here.size(); i > 0; --i) {
      if (sites[s].in_use <= eff + 1e-9) break;
      const std::size_t idx = here[i - 1];
      if (!flights[idx].alive) continue;
      if (rec_on) {
        const Inflight& f = flights[idx];
        obs::JournalRecord r;
        r.time = eq.now();
        r.a = f.query;
        r.site = s;
        r.kind = static_cast<std::uint8_t>(obs::RecordKind::kShed);
        r.arg = static_cast<std::uint8_t>(f.demand);
        r.flags = 1;  // shed cause: capacity loss
        rec->append(r);
      }
      kill_flight(idx);
      displace(idx);
    }
  };

  // Admission of one query at its arrival instant.  Transactional: collect
  // a tentative per-demand decision, commit only when every demand lands.
  auto admit = [&](const Query& q, OnlineOutcome& outcome) {
    struct Decision {
      SiteId site = kInvalidSite;
      bool new_replica = false;
      double need = 0.0;
      double proc = 0.0;
      double total_delay = 0.0;
    };
    std::vector<Decision> decisions;
    decisions.reserve(q.demands.size());
    // Tentative loads so one query's demands see each other's reservations.
    std::vector<double> tentative(sites.size(), 0.0);
    std::vector<std::size_t> tentative_replicas(inst.datasets().size(), 0);

    /// Forensics on the failing demand (audit facet only; reads state, so
    /// the hot admission scan below stays untouched).
    auto classify_rejection = [&](const DatasetDemand& dd) {
      bool any_deadline = false;
      bool any_budget = false;
      for (const Site& s : inst.sites()) {
        if (!faults.site_up(s.id)) continue;
        if (!faults.deadline_ok(q, dd, s.id)) continue;
        any_deadline = true;
        if (!has_replica(dd.dataset, s.id)) {
          if (!cfg.reactive_replicas) continue;
          if (res.replica_sites[dd.dataset].size() +
                  tentative_replicas[dd.dataset] >=
              inst.max_replicas()) {
            continue;
          }
        }
        any_budget = true;
      }
      if (!any_deadline) return obs::AuditReason::kNoDeadlineFeasibleSite;
      if (!any_budget) return obs::AuditReason::kReplicaBudgetSpent;
      return obs::AuditReason::kCapacityExhausted;
    };
    /// Log the abort: already-decided siblings roll back, the failing
    /// demand carries the binding reason.
    auto audit_abort = [&](std::uint32_t failing, obs::AuditReason why) {
      if (!audit_on) return;
      for (std::uint32_t j = 0; j < failing; ++j) {
        obs::AuditEntry e;
        e.algorithm = "online";
        e.query = q.id;
        e.demand = j;
        e.dataset = q.demands[j].dataset;
        e.admitted = false;
        e.reason = obs::AuditReason::kAtomicRollback;
        e.site = decisions[j].site;
        audit_entries.push_back(e);
      }
      obs::AuditEntry e;
      e.algorithm = "online";
      e.query = q.id;
      e.demand = failing;
      e.dataset = failing < q.demands.size()
                      ? q.demands[failing].dataset
                      : (q.demands.empty() ? 0 : q.demands.front().dataset);
      e.admitted = false;
      e.reason = why;
      audit_entries.push_back(e);
    };

    auto record_reject = [&](std::uint32_t failing, obs::AuditReason why) {
      obs::JournalRecord r;
      r.time = eq.now();
      r.a = q.id;
      r.b = failing;
      r.site = obs::kNoSite;
      r.kind = static_cast<std::uint8_t>(obs::RecordKind::kReject);
      r.arg = static_cast<std::uint8_t>(why);
      rec->append(r);
    };

    if (!faults.site_up(q.home)) {  // nowhere to aggregate
      audit_abort(0, obs::AuditReason::kNoDeadlineFeasibleSite);
      if (rec_on) record_reject(0, obs::AuditReason::kNoDeadlineFeasibleSite);
      return false;
    }
    for (const DatasetDemand& dd : q.demands) {
      const double need = resource_demand(inst, q, dd);
      Decision best;
      double best_fill = 0.0;
      for (const Site& s : inst.sites()) {
        if (!faults.site_up(s.id)) continue;
        const bool replica_here = has_replica(dd.dataset, s.id);
        if (!replica_here) {
          if (!cfg.reactive_replicas) continue;
          const std::size_t count = res.replica_sites[dd.dataset].size() +
                                    tentative_replicas[dd.dataset];
          if (count >= inst.max_replicas()) continue;
        }
        if (!faults.deadline_ok(q, dd, s.id)) continue;
        const double eff = faults.available(s.id);
        const double load = sites[s.id].in_use + tentative[s.id];
        if (load + need > eff + 1e-9) continue;
        // Same scarcity rule as the offline pricer: least relative fill.
        const double fill = eff > 0.0 ? (load + need) / eff : 1e18;
        if (best.site == kInvalidSite || fill < best_fill) {
          best.site = s.id;
          best.new_replica = !replica_here;
          best_fill = fill;
        }
      }
      if (best.site == kInvalidSite) {
        const obs::AuditReason why = classify_rejection(dd);
        audit_abort(static_cast<std::uint32_t>(decisions.size()), why);
        if (rec_on) {
          record_reject(static_cast<std::uint32_t>(decisions.size()), why);
        }
        return false;
      }
      best.need = need;
      const Dataset& ds = inst.dataset(dd.dataset);
      best.proc = ds.volume * inst.site(best.site).proc_delay;
      best.total_delay = faults.evaluation_delay(inst.query(q.id), dd,
                                                 best.site);
      tentative[best.site] += need;
      if (best.new_replica) ++tentative_replicas[dd.dataset];
      decisions.push_back(best);
    }
    // Commit.
    double response = 0.0;
    if (trace_on) {
      query_span[q.id] = spans.size();
      spans.push_back({"online.query", query_span_id(q.id), eq.now(),
                       eq.now()});
    }
    for (std::size_t i = 0; i < q.demands.size(); ++i) {
      const Decision& d = decisions[i];
      const DatasetId n = q.demands[i].dataset;
      if (d.new_replica && !has_replica(n, d.site)) {
        res.replica_sites[n].push_back(d.site);
      }
      launch_flight(q.id, static_cast<std::uint32_t>(i), d.site, d.need,
                    d.proc, d.total_delay);
      demand_ends[layout.at(q.id, static_cast<std::uint32_t>(i))] = {
          d.site, eq.now() + d.total_delay};
      response = std::max(response, d.total_delay);
      if (rec_on) {
        record_flight(obs::RecordKind::kTransferStart, q.id,
                      static_cast<std::uint32_t>(i), d.site, n, d.total_delay,
                      d.proc);
      }
      start_transfer(q.id, static_cast<std::uint32_t>(i), d.site,
                     d.total_delay);
      if (wd != nullptr) {
        const double eff = faults.available(d.site);
        wd->on_site_util(eq.now(), d.site,
                         eff > 0.0 ? sites[d.site].in_use / eff : 1.0);
      }
      if (audit_on) {
        obs::AuditEntry e;
        e.algorithm = "online";
        e.query = q.id;
        e.demand = static_cast<std::uint32_t>(i);
        e.dataset = n;
        e.admitted = true;
        e.site = d.site;
        e.placed_replica = d.new_replica;
        audit_entries.push_back(e);
      }
    }
    track_peak();
    outcome.completion_time = eq.now() + response;
    if (wd != nullptr) {
      wd->on_completion(eq.now(), q.deadline - response, false);
    }
    if (flow_on) flow_predicted[q.id] = outcome.completion_time;
    if (trace_on && query_span[q.id] != kNoSpan) {
      spans[query_span[q.id]].t1 = outcome.completion_time;
    }
    return true;
  };

  // Fault events first: at equal times a fault resolves before an arrival
  // (FIFO tie-break on insertion order).
  for (const FaultEvent& e : cfg.faults.events) {
    eq.schedule_at(e.time, [&, e] {
      faults.apply(e);
      ++res.fault_events_applied;
      if (rec_on) {
        obs::JournalRecord r;
        r.time = eq.now();
        r.v0 = e.fraction;
        r.a = static_cast<std::uint32_t>(e.edge);
        r.site = static_cast<std::uint32_t>(e.site);
        r.kind = static_cast<std::uint8_t>(obs::RecordKind::kFaultApply);
        r.arg = static_cast<std::uint8_t>(e.kind);
        rec->append(r);
      }
      switch (e.kind) {
        case FaultKind::kSiteDown:
          on_site_down(e.site);
          break;
        case FaultKind::kCapacityLoss:
          update_flow_links(e.site);
          on_capacity_loss(e.site);
          break;
        case FaultKind::kCapacityRestore:
          update_flow_links(e.site);
          break;
        default:
          break;  // recoveries and link events shape future decisions only
      }
      if (metrics_on) {
        static obs::Counter& fault_events = obs::metrics().counter(
            "edgerep_online_fault_events_total",
            "fault-trace events applied by the online simulator");
        fault_events.inc();
      }
      push_status(false);
    });
  }

  // Arrival schedule (instance order), drained from the shared stream up
  // front — the closure engine needs every event in the heap before run().
  // Outcomes are pre-sized so the events can safely index into the vector.
  res.outcomes.resize(inst.queries().size());
  OnlineArrivalStream arrivals(inst.queries().size(), cfg.arrivals,
                               cfg.arrival_rate, cfg.seed,
                               cfg.wave_amplitude, cfg.wave_period);
  double when = 0.0;
  QueryId m = 0;
  while (arrivals.next(&when, &m)) {
    res.outcomes[m] = OnlineOutcome{m, when, false, 0.0, false};
    eq.schedule_at(when, [&, m] {
      ++arrivals_seen;
      if (rec_on) {
        const Query& q = inst.query(m);
        obs::JournalRecord r;
        r.time = eq.now();
        r.v0 = q.deadline;
        r.a = m;
        r.b = static_cast<std::uint32_t>(q.demands.size());
        r.site = obs::kNoSite;
        r.kind = static_cast<std::uint8_t>(obs::RecordKind::kArrival);
        rec->append(r);
      }
      if (wd != nullptr) {
        const Query& q = inst.query(m);
        wd->on_arrival(eq.now(), 0);
        for (const DatasetDemand& dd : q.demands) {
          wd->on_demand(eq.now(), dd.dataset);
        }
      }
      const bool ok = admit(inst.query(m), res.outcomes[m]);
      res.outcomes[m].admitted = ok;
      if (ok) {
        ++res.admitted_queries;  // provisional; faults may revoke below
      } else {
        ++rejected_queries;
      }
      if (c_arrivals != nullptr) {
        c_arrivals->inc();
        (ok ? c_admitted : c_rejected)->inc();
      }
      push_status(false);
    });
  }
  // The arrival loop above keeps a provisional admitted count so the status
  // board can show it live; recompute exactly below once faults settle.
  res.kernel_stats.events_processed = eq.run();
  res.kernel_stats.peak_pending_events = eq.peak_pending();
  res.kernel_stats.peak_event_bytes =
      eq.peak_pending() * (sizeof(double) + sizeof(std::uint64_t) +
                           sizeof(std::function<void()>));
  res.kernel_stats.flight_bytes = flights.capacity() * sizeof(Inflight);

  online_detail::finalize_online_result(inst, layout, demand_ends, &res);
  if (flow_on) online_detail::finalize_flow_gap(inst, flow_predicted, &res);
  if (wd != nullptr) res.watchdog = wd->stats();

  if (trace_on) online_detail::emit_online_spans(spans, instants);
  if (audit_on) {
    obs::audit_log().record_batch(audit_entries);
  }
  if (metrics_on) {
    static obs::Gauge& g_hit_ratio = obs::metrics().gauge(
        "edgerep_online_slo_hit_ratio",
        "deadline hit ratio of the last online run");
    g_hit_ratio.set(res.slo.hit_ratio);
  }
  push_status(true);
  return res;
}

}  // namespace

OnlineResult run_online(const Instance& inst, const OnlineConfig& cfg,
                        const ReplicaPlan* proactive) {
  if (!inst.finalized()) {
    throw std::invalid_argument("run_online: instance not finalized");
  }
  if (cfg.arrival_rate <= 0.0) {
    throw std::invalid_argument("run_online: arrival rate must be positive");
  }
  if (!(cfg.oversubscription >= 0.0) ||
      !std::isfinite(cfg.oversubscription)) {
    throw std::invalid_argument(
        "run_online: oversubscription must be finite and >= 0");
  }
  if (proactive != nullptr && &proactive->instance() != &inst) {
    throw std::invalid_argument("run_online: proactive plan is for a "
                                "different instance");
  }
  validate_fault_trace(inst, cfg.faults);
  return cfg.kernel == OnlineKernel::kTyped
             ? run_online_typed(inst, cfg, proactive)
             : run_online_closure(inst, cfg, proactive);
}

namespace {

inline void hash_bytes(std::uint64_t* h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= 1099511628211ull;  // FNV-1a 64-bit prime
  }
}
inline void hash_u64(std::uint64_t* h, std::uint64_t v) {
  hash_bytes(h, &v, sizeof v);
}
inline void hash_double(std::uint64_t* h, double v) {
  hash_u64(h, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

std::uint64_t online_result_hash(const OnlineResult& res) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  hash_u64(&h, res.outcomes.size());
  for (const OnlineOutcome& o : res.outcomes) {
    hash_u64(&h, o.query);
    hash_double(&h, o.arrival_time);
    hash_u64(&h, o.admitted ? 1 : 0);
    hash_double(&h, o.completion_time);
    hash_u64(&h, o.failed_by_fault ? 1 : 0);
  }
  hash_u64(&h, res.admitted_queries);
  hash_double(&h, res.admitted_volume);
  hash_double(&h, res.throughput);
  hash_double(&h, res.peak_utilization);
  hash_u64(&h, res.replica_sites.size());
  for (const auto& v : res.replica_sites) {
    hash_u64(&h, v.size());
    for (const SiteId s : v) hash_u64(&h, s);
  }
  hash_u64(&h, res.fault_events_applied);
  hash_u64(&h, res.queries_failed_by_fault);
  hash_u64(&h, res.demands_relocated);
  hash_u64(&h, res.replicas_lost_to_faults);
  hash_u64(&h, res.slo.admitted_queries);
  hash_u64(&h, res.slo.deadline_hits);
  hash_double(&h, res.slo.hit_ratio);
  hash_double(&h, res.slo.p50_slack);
  hash_double(&h, res.slo.p95_slack);
  hash_double(&h, res.slo.p99_slack);
  hash_u64(&h, res.slo.per_site.size());
  for (const OnlineSiteSlo& s : res.slo.per_site) {
    hash_u64(&h, s.site);
    hash_u64(&h, s.demands);
    hash_u64(&h, s.deadline_hits);
    hash_double(&h, s.p50_slack);
    hash_double(&h, s.p95_slack);
    hash_double(&h, s.p99_slack);
  }
  return h;
}

}  // namespace edgerep
