#include "sim/online.h"

#include <algorithm>
#include <stdexcept>

#include "cloud/delay.h"
#include "sim/event.h"
#include "util/rng.h"

namespace edgerep {

namespace {

struct SiteLoad {
  double available = 0.0;  ///< fault-free A(v_l); faults scale it on query
  double in_use = 0.0;
};

/// One admitted demand currently holding resource at a site.  Flights are
/// append-only; `alive` flips when the work completes or a fault kills it,
/// so a stale completion event is a no-op instead of a double-credit.
struct Inflight {
  QueryId query = 0;
  std::uint32_t demand = 0;
  SiteId site = kInvalidSite;
  double need = 0.0;
  bool alive = false;
};

}  // namespace

OnlineResult run_online(const Instance& inst, const OnlineConfig& cfg,
                        const ReplicaPlan* proactive) {
  if (!inst.finalized()) {
    throw std::invalid_argument("run_online: instance not finalized");
  }
  if (cfg.arrival_rate <= 0.0) {
    throw std::invalid_argument("run_online: arrival rate must be positive");
  }
  validate_fault_trace(inst, cfg.faults);
  Rng rng(cfg.seed);
  EventQueue eq;
  FaultState faults(inst);

  OnlineResult res;
  res.replica_sites.resize(inst.datasets().size());
  if (proactive != nullptr) {
    if (&proactive->instance() != &inst) {
      throw std::invalid_argument("run_online: proactive plan is for a "
                                  "different instance");
    }
    for (const Dataset& d : inst.datasets()) {
      res.replica_sites[d.id] = proactive->replica_sites(d.id);
    }
  } else if (cfg.origin_counts_as_replica) {
    for (const Dataset& d : inst.datasets()) {
      if (d.origin != kInvalidSite) {
        res.replica_sites[d.id].push_back(d.origin);
      }
    }
  }

  std::vector<SiteLoad> sites(inst.sites().size());
  double total_available = 0.0;
  for (const Site& s : inst.sites()) {
    sites[s.id].available = s.available;
    total_available += s.available;
  }

  std::vector<Inflight> flights;
  std::vector<std::vector<std::size_t>> by_site(sites.size());
  std::vector<std::vector<std::size_t>> by_query(inst.queries().size());

  auto has_replica = [&](DatasetId n, SiteId l) {
    const auto& v = res.replica_sites[n];
    return std::find(v.begin(), v.end(), l) != v.end();
  };

  auto track_peak = [&] {
    if (total_available <= 0.0) return;
    double used = 0.0;
    for (const SiteLoad& s : sites) used += s.in_use;
    res.peak_utilization = std::max(res.peak_utilization,
                                    used / total_available);
  };

  /// Release a flight's resource (idempotent).
  auto kill_flight = [&](std::size_t idx) {
    Inflight& f = flights[idx];
    if (!f.alive) return;
    f.alive = false;
    sites[f.site].in_use -= f.need;
  };

  /// Register a new flight at `site` and schedule its completion.
  auto launch_flight = [&](QueryId m, std::uint32_t demand, SiteId site,
                           double need, double proc) {
    const std::size_t idx = flights.size();
    flights.push_back({m, demand, site, need, true});
    by_site[site].push_back(idx);
    by_query[m].push_back(idx);
    sites[site].in_use += need;
    eq.schedule_in(proc, [&flights, &sites, idx] {
      Inflight& f = flights[idx];
      if (!f.alive) return;
      f.alive = false;
      sites[f.site].in_use -= f.need;
    });
  };

  /// An admitted query lost a demand it could not recover: kill its other
  /// flights (a query only counts when every demand completes) and flip the
  /// outcome.
  auto fail_query = [&](QueryId m) {
    if (res.outcomes[m].failed_by_fault) return;
    for (const std::size_t idx : by_query[m]) kill_flight(idx);
    res.outcomes[m].admitted = false;
    res.outcomes[m].failed_by_fault = true;
    ++res.queries_failed_by_fault;
  };

  /// Pick the least-relatively-filled surviving site able to serve one
  /// demand right now (same scarcity rule as admission).  Returns
  /// kInvalidSite when none fits.
  auto best_site_for = [&](const Query& q, const DatasetDemand& dd,
                           double need, bool* new_replica) {
    SiteId best = kInvalidSite;
    double best_fill = 0.0;
    for (const Site& s : inst.sites()) {
      if (!faults.site_up(s.id)) continue;
      const bool replica_here = has_replica(dd.dataset, s.id);
      if (!replica_here) {
        if (!cfg.reactive_replicas) continue;
        if (res.replica_sites[dd.dataset].size() >= inst.max_replicas()) {
          continue;
        }
      }
      if (!faults.deadline_ok(q, dd, s.id)) continue;
      const double eff = faults.available(s.id);
      const double load = sites[s.id].in_use;
      if (load + need > eff + 1e-9) continue;
      const double fill = eff > 0.0 ? (load + need) / eff : 1e18;
      if (best == kInvalidSite || fill < best_fill) {
        best = s.id;
        *new_replica = !replica_here;
        best_fill = fill;
      }
    }
    return best;
  };

  /// Re-seat one displaced (dead) flight on a surviving site.  The work
  /// restarts from scratch at the new site (the partial result died with
  /// the old one).
  auto relocate = [&](std::size_t idx) {
    const Inflight f = flights[idx];
    const Query& q = inst.query(f.query);
    const DatasetDemand& dd = q.demands[f.demand];
    bool new_replica = false;
    const SiteId site = best_site_for(q, dd, f.need, &new_replica);
    if (site == kInvalidSite) return false;
    if (new_replica) res.replica_sites[dd.dataset].push_back(site);
    const Dataset& ds = inst.dataset(dd.dataset);
    launch_flight(f.query, f.demand, site, f.need,
                  ds.volume * inst.site(site).proc_delay);
    res.outcomes[f.query].completion_time =
        std::max(res.outcomes[f.query].completion_time,
                 eq.now() + faults.evaluation_delay(q, dd, site));
    ++res.demands_relocated;
    return true;
  };

  /// A displaced flight either relocates or takes its whole query down.
  auto displace = [&](std::size_t idx) {
    const QueryId m = flights[idx].query;
    if (res.outcomes[m].failed_by_fault) return;
    if (!cfg.repair_on_failure || !relocate(idx)) fail_query(m);
  };

  auto on_site_down = [&](SiteId s) {
    // Replicas stored at the crashed site are lost (recovery restores
    // capacity, not data).
    for (auto& v : res.replica_sites) {
      const auto it = std::find(v.begin(), v.end(), s);
      if (it != v.end()) {
        v.erase(it);
        ++res.replicas_lost_to_faults;
      }
    }
    // Kill the in-flight work first so relocations see the freed ledger,
    // then re-seat (or fail) in admission order.
    std::vector<std::size_t> displaced;
    for (const std::size_t idx : by_site[s]) {
      if (flights[idx].alive) displaced.push_back(idx);
    }
    for (const std::size_t idx : displaced) kill_flight(idx);
    by_site[s].clear();
    for (const std::size_t idx : displaced) displace(idx);
    // Queries aggregating at the crashed home cannot deliver results.
    for (std::size_t idx = 0; idx < flights.size(); ++idx) {
      if (flights[idx].alive && inst.query(flights[idx].query).home == s) {
        fail_query(flights[idx].query);
      }
    }
  };

  auto on_capacity_loss = [&](SiteId s) {
    const double eff = faults.available(s);
    if (sites[s].in_use <= eff + 1e-9) return;
    // Shed the most recently admitted work first until the site fits its
    // degraded availability (LIFO: the oldest work is closest to done).
    auto& here = by_site[s];
    for (auto it = here.rbegin();
         it != here.rend() && sites[s].in_use > eff + 1e-9; ++it) {
      if (!flights[*it].alive) continue;
      kill_flight(*it);
      displace(*it);
    }
  };

  // Admission of one query at its arrival instant.  Transactional: collect
  // a tentative per-demand decision, commit only when every demand lands.
  auto admit = [&](const Query& q, OnlineOutcome& outcome) {
    if (!faults.site_up(q.home)) return false;  // nowhere to aggregate
    struct Decision {
      SiteId site = kInvalidSite;
      bool new_replica = false;
      double need = 0.0;
      double proc = 0.0;
      double total_delay = 0.0;
    };
    std::vector<Decision> decisions;
    decisions.reserve(q.demands.size());
    // Tentative loads so one query's demands see each other's reservations.
    std::vector<double> tentative(sites.size(), 0.0);
    std::vector<std::size_t> tentative_replicas(inst.datasets().size(), 0);
    for (const DatasetDemand& dd : q.demands) {
      const double need = resource_demand(inst, q, dd);
      Decision best;
      double best_fill = 0.0;
      for (const Site& s : inst.sites()) {
        if (!faults.site_up(s.id)) continue;
        const bool replica_here = has_replica(dd.dataset, s.id);
        if (!replica_here) {
          if (!cfg.reactive_replicas) continue;
          const std::size_t count = res.replica_sites[dd.dataset].size() +
                                    tentative_replicas[dd.dataset];
          if (count >= inst.max_replicas()) continue;
        }
        if (!faults.deadline_ok(q, dd, s.id)) continue;
        const double eff = faults.available(s.id);
        const double load = sites[s.id].in_use + tentative[s.id];
        if (load + need > eff + 1e-9) continue;
        // Same scarcity rule as the offline pricer: least relative fill.
        const double fill = eff > 0.0 ? (load + need) / eff : 1e18;
        if (best.site == kInvalidSite || fill < best_fill) {
          best.site = s.id;
          best.new_replica = !replica_here;
          best_fill = fill;
        }
      }
      if (best.site == kInvalidSite) return false;
      best.need = need;
      const Dataset& ds = inst.dataset(dd.dataset);
      best.proc = ds.volume * inst.site(best.site).proc_delay;
      best.total_delay = faults.evaluation_delay(inst.query(q.id), dd,
                                                 best.site);
      tentative[best.site] += need;
      if (best.new_replica) ++tentative_replicas[dd.dataset];
      decisions.push_back(best);
    }
    // Commit.
    double response = 0.0;
    for (std::size_t i = 0; i < q.demands.size(); ++i) {
      const Decision& d = decisions[i];
      const DatasetId n = q.demands[i].dataset;
      if (d.new_replica && !has_replica(n, d.site)) {
        res.replica_sites[n].push_back(d.site);
      }
      launch_flight(q.id, static_cast<std::uint32_t>(i), d.site, d.need,
                    d.proc);
      response = std::max(response, d.total_delay);
    }
    track_peak();
    outcome.completion_time = eq.now() + response;
    return true;
  };

  // Fault events first: at equal times a fault resolves before an arrival
  // (FIFO tie-break on insertion order).
  for (const FaultEvent& e : cfg.faults.events) {
    eq.schedule_at(e.time, [&faults, &res, &on_site_down, &on_capacity_loss,
                            e] {
      faults.apply(e);
      ++res.fault_events_applied;
      switch (e.kind) {
        case FaultKind::kSiteDown:
          on_site_down(e.site);
          break;
        case FaultKind::kCapacityLoss:
          on_capacity_loss(e.site);
          break;
        default:
          break;  // recoveries and link events shape future decisions only
      }
    });
  }

  // Arrival schedule (instance order).  Outcomes are pre-sized so the
  // events can safely index into the vector.
  res.outcomes.resize(inst.queries().size());
  double clock = 0.0;
  for (const Query& q : inst.queries()) {
    clock += cfg.arrivals == OnlineConfig::Arrivals::kPoisson
                 ? rng.exponential(cfg.arrival_rate)
                 : 1.0 / cfg.arrival_rate;
    res.outcomes[q.id] = OnlineOutcome{q.id, clock, false, 0.0, false};
    const QueryId m = q.id;
    eq.schedule_at(clock, [&inst, &res, &admit, m] {
      res.outcomes[m].admitted = admit(inst.query(m), res.outcomes[m]);
    });
  }
  eq.run();

  for (const OnlineOutcome& o : res.outcomes) {
    if (o.admitted) {
      ++res.admitted_queries;
      res.admitted_volume += inst.demanded_volume(o.query);
    }
  }
  res.throughput = inst.queries().empty()
                       ? 0.0
                       : static_cast<double>(res.admitted_queries) /
                             static_cast<double>(inst.queries().size());
  return res;
}

}  // namespace edgerep
