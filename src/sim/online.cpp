#include "sim/online.h"

#include <algorithm>
#include <stdexcept>

#include "cloud/delay.h"
#include "sim/event.h"
#include "util/rng.h"

namespace edgerep {

namespace {

struct SiteLoad {
  double available = 0.0;
  double in_use = 0.0;
};

}  // namespace

OnlineResult run_online(const Instance& inst, const OnlineConfig& cfg,
                        const ReplicaPlan* proactive) {
  if (!inst.finalized()) {
    throw std::invalid_argument("run_online: instance not finalized");
  }
  if (cfg.arrival_rate <= 0.0) {
    throw std::invalid_argument("run_online: arrival rate must be positive");
  }
  Rng rng(cfg.seed);
  EventQueue eq;

  OnlineResult res;
  res.replica_sites.resize(inst.datasets().size());
  std::size_t replicas_placed_total = 0;
  if (proactive != nullptr) {
    if (&proactive->instance() != &inst) {
      throw std::invalid_argument("run_online: proactive plan is for a "
                                  "different instance");
    }
    for (const Dataset& d : inst.datasets()) {
      res.replica_sites[d.id] = proactive->replica_sites(d.id);
      replicas_placed_total += res.replica_sites[d.id].size();
    }
  } else if (cfg.origin_counts_as_replica) {
    for (const Dataset& d : inst.datasets()) {
      if (d.origin != kInvalidSite) {
        res.replica_sites[d.id].push_back(d.origin);
        ++replicas_placed_total;
      }
    }
  }
  (void)replicas_placed_total;

  std::vector<SiteLoad> sites(inst.sites().size());
  double total_available = 0.0;
  for (const Site& s : inst.sites()) {
    sites[s.id].available = s.available;
    total_available += s.available;
  }

  auto has_replica = [&](DatasetId n, SiteId l) {
    const auto& v = res.replica_sites[n];
    return std::find(v.begin(), v.end(), l) != v.end();
  };

  auto track_peak = [&] {
    if (total_available <= 0.0) return;
    double used = 0.0;
    for (const SiteLoad& s : sites) used += s.in_use;
    res.peak_utilization = std::max(res.peak_utilization,
                                    used / total_available);
  };

  // Admission of one query at its arrival instant.  Transactional: collect
  // a tentative per-demand decision, commit only when every demand lands.
  auto admit = [&](const Query& q, OnlineOutcome& outcome) {
    struct Decision {
      SiteId site = kInvalidSite;
      bool new_replica = false;
      double need = 0.0;
      double proc = 0.0;
      double total_delay = 0.0;
    };
    std::vector<Decision> decisions;
    decisions.reserve(q.demands.size());
    // Tentative loads so one query's demands see each other's reservations.
    std::vector<double> tentative(sites.size(), 0.0);
    std::vector<std::size_t> tentative_replicas(inst.datasets().size(), 0);
    for (const DatasetDemand& dd : q.demands) {
      const double need = resource_demand(inst, q, dd);
      Decision best;
      double best_fill = 0.0;
      for (const Site& s : inst.sites()) {
        const bool replica_here = has_replica(dd.dataset, s.id);
        if (!replica_here) {
          if (!cfg.reactive_replicas) continue;
          const std::size_t count = res.replica_sites[dd.dataset].size() +
                                    tentative_replicas[dd.dataset];
          if (count >= inst.max_replicas()) continue;
        }
        if (!deadline_ok(inst, q, dd, s.id)) continue;
        const double load = sites[s.id].in_use + tentative[s.id];
        if (load + need > sites[s.id].available + 1e-9) continue;
        // Same scarcity rule as the offline pricer: least relative fill.
        const double fill = sites[s.id].available > 0.0
                                ? (load + need) / sites[s.id].available
                                : 1e18;
        if (best.site == kInvalidSite || fill < best_fill) {
          best.site = s.id;
          best.new_replica = !replica_here;
          best_fill = fill;
        }
      }
      if (best.site == kInvalidSite) return false;
      best.need = need;
      const Dataset& ds = inst.dataset(dd.dataset);
      best.proc = ds.volume * inst.site(best.site).proc_delay;
      best.total_delay = evaluation_delay(inst, q, dd, best.site);
      tentative[best.site] += need;
      if (best.new_replica) ++tentative_replicas[dd.dataset];
      decisions.push_back(best);
    }
    // Commit.
    double response = 0.0;
    for (std::size_t i = 0; i < q.demands.size(); ++i) {
      const Decision& d = decisions[i];
      const DatasetId n = q.demands[i].dataset;
      if (d.new_replica && !has_replica(n, d.site)) {
        res.replica_sites[n].push_back(d.site);
      }
      sites[d.site].in_use += d.need;
      const SiteId site = d.site;
      const double need = d.need;
      eq.schedule_in(d.proc, [&sites, site, need] {
        sites[site].in_use -= need;
      });
      response = std::max(response, d.total_delay);
    }
    track_peak();
    outcome.completion_time = eq.now() + response;
    return true;
  };

  // Arrival schedule (instance order).  Outcomes are pre-sized so the
  // events can safely index into the vector.
  res.outcomes.resize(inst.queries().size());
  double clock = 0.0;
  for (const Query& q : inst.queries()) {
    clock += cfg.arrivals == OnlineConfig::Arrivals::kPoisson
                 ? rng.exponential(cfg.arrival_rate)
                 : 1.0 / cfg.arrival_rate;
    res.outcomes[q.id] = OnlineOutcome{q.id, clock, false, 0.0};
    const QueryId m = q.id;
    eq.schedule_at(clock, [&inst, &res, &admit, m] {
      res.outcomes[m].admitted = admit(inst.query(m), res.outcomes[m]);
    });
  }
  eq.run();

  for (const OnlineOutcome& o : res.outcomes) {
    if (o.admitted) {
      ++res.admitted_queries;
      res.admitted_volume += inst.demanded_volume(o.query);
    }
  }
  res.throughput = inst.queries().empty()
                       ? 0.0
                       : static_cast<double>(res.admitted_queries) /
                             static_cast<double>(inst.queries().size());
  return res;
}

}  // namespace edgerep
