#include "sim/flows.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace edgerep {

std::vector<double> max_min_rates(
    const std::vector<double>& link_capacity,
    const std::vector<std::vector<EdgeId>>& flow_paths) {
  const std::size_t num_flows = flow_paths.size();
  std::vector<double> rate(num_flows, 0.0);
  std::vector<char> frozen(num_flows, 0);
  std::vector<double> residual = link_capacity;
  // Flows per link (only unfrozen ones are counted each round).
  std::size_t remaining = 0;
  for (std::size_t f = 0; f < num_flows; ++f) {
    if (flow_paths[f].empty()) {
      rate[f] = kUnconstrainedRate;
      frozen[f] = 1;
    } else {
      ++remaining;
    }
  }
  // Progressive filling: repeatedly saturate the tightest link.
  while (remaining > 0) {
    // Count unfrozen flows per link and find the minimum fair share.
    double best_share = std::numeric_limits<double>::infinity();
    std::vector<std::size_t> users(link_capacity.size(), 0);
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (frozen[f]) continue;
      for (const EdgeId e : flow_paths[f]) ++users.at(e);
    }
    for (std::size_t e = 0; e < link_capacity.size(); ++e) {
      if (users[e] > 0) {
        best_share = std::min(best_share,
                              residual[e] / static_cast<double>(users[e]));
      }
    }
    if (!std::isfinite(best_share)) break;  // defensive; cannot happen
    best_share = std::max(best_share, 0.0);
    // Freeze every unfrozen flow crossing a saturated link at best_share.
    // (All unfrozen flows gain best_share this round; those on bottleneck
    // links stop growing.)
    std::vector<char> saturated(link_capacity.size(), 0);
    for (std::size_t e = 0; e < link_capacity.size(); ++e) {
      if (users[e] > 0 &&
          residual[e] / static_cast<double>(users[e]) <= best_share + 1e-12) {
        saturated[e] = 1;
      }
    }
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (frozen[f]) continue;
      rate[f] += best_share;
      for (const EdgeId e : flow_paths[f]) residual[e] -= best_share;
      bool stop = false;
      for (const EdgeId e : flow_paths[f]) stop |= saturated[e] == 1;
      if (stop) {
        frozen[f] = 1;
        --remaining;
      }
    }
  }
  return rate;
}

FlowEngine::FlowEngine(EventQueue& eq, std::vector<double> link_capacity)
    : eq_(&eq), link_capacity_(std::move(link_capacity)) {
  for (const double c : link_capacity_) {
    if (c <= 0.0) {
      throw std::invalid_argument("FlowEngine: link capacity must be > 0");
    }
  }
}

void FlowEngine::start_flow(double size_gb, std::vector<EdgeId> path,
                            std::function<void()> on_complete) {
  for (const EdgeId e : path) {
    if (e >= link_capacity_.size()) {
      throw std::invalid_argument("FlowEngine: path edge out of range");
    }
  }
  advance();
  flows_.push_back(Flow{std::max(size_gb, 0.0), std::move(path),
                        std::move(on_complete)});
  recompute_and_schedule();
}

void FlowEngine::advance() {
  const double now = eq_->now();
  const double dt = now - last_update_;
  if (dt > 0.0) {
    for (std::size_t f = 0; f < flows_.size(); ++f) {
      flows_[f].remaining_gb -= dt * rates_[f];
    }
  }
  last_update_ = now;
}

void FlowEngine::recompute_and_schedule() {
  // Complete any flow that has drained (or was born trivial).
  for (std::size_t f = 0; f < flows_.size();) {
    if (flows_[f].remaining_gb <= 1e-12 ||
        flows_[f].path.empty()) {
      auto done = std::move(flows_[f].on_complete);
      flows_.erase(flows_.begin() + static_cast<std::ptrdiff_t>(f));
      if (done) {
        // Completion is "now"; schedule so callbacks run outside this frame.
        eq_->schedule_in(0.0, std::move(done));
      }
    } else {
      ++f;
    }
  }
  // Fresh allocation for the survivors.
  std::vector<std::vector<EdgeId>> paths;
  paths.reserve(flows_.size());
  for (const Flow& fl : flows_) paths.push_back(fl.path);
  rates_ = max_min_rates(link_capacity_, paths);
  const std::uint64_t token = ++gen_;
  if (flows_.empty()) return;
  double eta = std::numeric_limits<double>::infinity();
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    if (rates_[f] > 0.0) {
      eta = std::min(eta, flows_[f].remaining_gb / rates_[f]);
    }
  }
  if (!std::isfinite(eta)) return;  // all starved (cannot happen with >0 caps)
  eq_->schedule_in(std::max(eta, 0.0), [this, token] {
    if (gen_ != token) return;  // superseded
    advance();
    recompute_and_schedule();
  });
}

}  // namespace edgerep
