#include "sim/flows.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace edgerep {

std::vector<double> max_min_rates(
    const std::vector<double>& link_capacity,
    const std::vector<std::vector<EdgeId>>& flow_paths,
    const std::vector<double>& rate_cap) {
  const std::size_t num_flows = flow_paths.size();
  std::vector<double> rate(num_flows, 0.0);
  std::vector<char> frozen(num_flows, 0);
  std::vector<double> residual = link_capacity;
  const auto cap_of = [&rate_cap](std::size_t f) {
    return f < rate_cap.size() ? rate_cap[f] : kUnconstrainedRate;
  };
  // Flows per link (only unfrozen ones are counted each round).
  std::size_t remaining = 0;
  for (std::size_t f = 0; f < num_flows; ++f) {
    if (flow_paths[f].empty()) {
      rate[f] = std::min(kUnconstrainedRate, cap_of(f));
      frozen[f] = 1;
    } else {
      ++remaining;
    }
  }
  // Progressive filling: repeatedly saturate the tightest link.
  while (remaining > 0) {
    // Count unfrozen flows per link and find the minimum fair share.
    double best_share = std::numeric_limits<double>::infinity();
    std::vector<std::size_t> users(link_capacity.size(), 0);
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (frozen[f]) continue;
      for (const EdgeId e : flow_paths[f]) ++users.at(e);
    }
    for (std::size_t e = 0; e < link_capacity.size(); ++e) {
      if (users[e] > 0) {
        best_share = std::min(best_share,
                              residual[e] / static_cast<double>(users[e]));
      }
    }
    // A capped flow's remaining headroom can be the binding constraint of
    // the round.  With the default (unconstrained) cap these comparisons
    // never bind, leaving the allocation bit-identical to the uncapped one.
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (frozen[f]) continue;
      best_share = std::min(best_share, cap_of(f) - rate[f]);
    }
    if (!std::isfinite(best_share)) break;  // defensive; cannot happen
    best_share = std::max(best_share, 0.0);
    // Freeze every unfrozen flow crossing a saturated link at best_share.
    // (All unfrozen flows gain best_share this round; those on bottleneck
    // links — or out of cap headroom — stop growing.)
    std::vector<char> saturated(link_capacity.size(), 0);
    for (std::size_t e = 0; e < link_capacity.size(); ++e) {
      if (users[e] > 0 &&
          residual[e] / static_cast<double>(users[e]) <= best_share + 1e-12) {
        saturated[e] = 1;
      }
    }
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (frozen[f]) continue;
      rate[f] += best_share;
      for (const EdgeId e : flow_paths[f]) residual[e] -= best_share;
      bool stop = false;
      for (const EdgeId e : flow_paths[f]) stop |= saturated[e] == 1;
      stop |= cap_of(f) - rate[f] <= 1e-12;
      if (stop) {
        frozen[f] = 1;
        --remaining;
      }
    }
  }
  return rate;
}

namespace {

void validate_capacities(const std::vector<double>& caps) {
  for (const double c : caps) {
    if (c <= 0.0) {
      throw std::invalid_argument("FlowEngine: link capacity must be > 0");
    }
  }
}

}  // namespace

FlowEngine::FlowEngine(EventQueue& eq, std::vector<double> link_capacity)
    : eq_(&eq), link_capacity_(std::move(link_capacity)) {
  validate_capacities(link_capacity_);
  const std::size_t n = link_capacity_.size();
  link_users_.resize(n);
  link_mark_.resize(n, 0);
  sat_mark_.resize(n, 0);
  users_.resize(n, 0);
  residual_.resize(n, 0.0);
}

FlowEngine::FlowEngine(TypedEventQueue& queue,
                       std::vector<double> link_capacity)
    : tq_(&queue), link_capacity_(std::move(link_capacity)) {
  validate_capacities(link_capacity_);
  const std::size_t n = link_capacity_.size();
  link_users_.resize(n);
  link_mark_.resize(n, 0);
  sat_mark_.resize(n, 0);
  users_.resize(n, 0);
  residual_.resize(n, 0.0);
}

double FlowEngine::now() const noexcept {
  return eq_ != nullptr ? eq_->now() : tq_->now();
}

void FlowEngine::validate_path(const std::vector<EdgeId>& path) const {
  for (const EdgeId e : path) {
    if (e >= link_capacity_.size()) {
      throw std::invalid_argument("FlowEngine: path edge out of range");
    }
  }
}

std::uint32_t FlowEngine::alloc_slot() {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(flows_.size());
    flows_.emplace_back();
    flow_mark_.push_back(0);
    frozen_mark_.push_back(0);
    fill_rate_.push_back(0.0);
    frozen_edge_.push_back(kInvalidEdge);
  }
  return slot;
}

void FlowEngine::unlink(std::uint32_t slot) {
  for (const EdgeId e : flows_[slot].path) {
    auto& users = link_users_[e];
    const auto it = std::find(users.begin(), users.end(), slot);
    *it = users.back();
    users.pop_back();
  }
}

void FlowEngine::schedule_completion(std::uint32_t slot) {
  Flow& f = flows_[slot];
  if (f.rate <= 0.0) return;  // starved (cannot happen with >0 capacities)
  const double eta = std::max(f.remaining / f.rate, 0.0);
  if (tq_ != nullptr) {
    tq_->push_dynamic(EvKind::kTransferDone, tq_->now() + eta, slot, f.gen);
  } else {
    const std::uint32_t gen = f.gen;
    eq_->schedule_in(eta, [this, slot, gen] {
      const Flow& fl = flows_[slot];
      if (fl.state != State::kActive || fl.gen != gen) return;  // superseded
      recompute(slot, /*force_complete=*/true);
    });
  }
}

void FlowEngine::complete_flow(std::uint32_t slot, bool via_event) {
  Flow& f = flows_[slot];
  if (f.state == State::kActive) --active_;
  f.rate = 0.0;
  f.remaining = 0.0;
  ++f.gen;  // any armed prediction for the old rate goes stale
  // Retirement record: rate 0 at the actual completion instant.
  if (rate_listener_) rate_listener_(f.tag, now(), 0.0, 0.0, kInvalidEdge);
  if (eq_ != nullptr) {
    // Closure mode: deliver via the queue so the callback runs outside the
    // engine frame, and recycle the slot right away.
    f.state = State::kFree;
    free_.push_back(slot);
    if (f.done) eq_->schedule_in(0.0, std::move(f.done));
    f.done = nullptr;
  } else if (via_event) {
    // The flow's own current event is being handled — already delivered.
    f.state = State::kFree;
    free_.push_back(slot);
  } else {
    // Park until the authoritative kTransferDone below is consumed by
    // handle_event (the slot must not be reused before delivery).
    f.state = State::kCompleting;
    tq_->push_dynamic(EvKind::kTransferDone, tq_->now(), slot, f.gen);
  }
}

void FlowEngine::gather_component(std::uint32_t seed) {
  comp_flows_.clear();
  comp_links_.clear();
  stack_.clear();
  flow_mark_[seed] = epoch_;
  comp_flows_.push_back(seed);
  stack_.push_back(seed);
  while (!stack_.empty()) {
    const std::uint32_t f = stack_.back();
    stack_.pop_back();
    for (const EdgeId e : flows_[f].path) {
      if (link_mark_[e] == epoch_) continue;
      link_mark_[e] = epoch_;
      comp_links_.push_back(e);
      for (const std::uint32_t u : link_users_[e]) {
        if (flow_mark_[u] == epoch_) continue;
        flow_mark_[u] = epoch_;
        comp_flows_.push_back(u);
        stack_.push_back(u);
      }
    }
  }
  // Ascending slot order is the canonical iteration order of every pass
  // over the component (advance, retire, fill) — it makes the fill a pure
  // function of the component's membership.
  std::sort(comp_flows_.begin(), comp_flows_.end());
}

void FlowEngine::fill_component() {
  for (const EdgeId e : comp_links_) residual_[e] = link_capacity_[e];
  for (const std::uint32_t f : comp_flows_) {
    fill_rate_[f] = 0.0;
    frozen_edge_[f] = kInvalidEdge;
  }
  const std::uint64_t fill_id = ++round_;
  std::size_t remaining = comp_flows_.size();
  // Progressive filling restricted to the component: same arithmetic, same
  // epsilons as max_min_rates above, over exactly the component's links and
  // flows.  `remaining` (the data left to move) never enters the rates.
  while (remaining > 0) {
    for (const EdgeId e : comp_links_) users_[e] = 0;
    for (const std::uint32_t f : comp_flows_) {
      if (frozen_mark_[f] == fill_id) continue;
      for (const EdgeId e : flows_[f].path) ++users_[e];
    }
    double best_share = std::numeric_limits<double>::infinity();
    for (const EdgeId e : comp_links_) {
      if (users_[e] > 0) {
        best_share = std::min(best_share,
                              residual_[e] / static_cast<double>(users_[e]));
      }
    }
    // Per-flow caps participate like virtual private links: a capped
    // flow's remaining headroom can be the round's binding constraint.
    // With the default (unconstrained) cap none of these comparisons ever
    // bind, so uncapped allocations stay bit-identical.
    for (const std::uint32_t f : comp_flows_) {
      if (frozen_mark_[f] == fill_id) continue;
      best_share = std::min(best_share, flows_[f].cap - fill_rate_[f]);
    }
    if (!std::isfinite(best_share)) break;  // defensive; cannot happen
    best_share = std::max(best_share, 0.0);
    const std::uint64_t rs = ++round_;
    for (const EdgeId e : comp_links_) {
      if (users_[e] > 0 &&
          residual_[e] / static_cast<double>(users_[e]) <=
              best_share + 1e-12) {
        sat_mark_[e] = rs;
      }
    }
    for (const std::uint32_t f : comp_flows_) {
      if (frozen_mark_[f] == fill_id) continue;
      fill_rate_[f] += best_share;
      bool stop = false;
      for (const EdgeId e : flows_[f].path) {
        residual_[e] -= best_share;
        if (sat_mark_[e] == rs && !stop) {
          stop = true;
          frozen_edge_[f] = e;  // first bottleneck link on the path
        }
      }
      // Cap-frozen flows keep kInvalidEdge: no link is to blame.
      stop |= flows_[f].cap - fill_rate_[f] <= 1e-12;
      if (stop) {
        frozen_mark_[f] = fill_id;
        --remaining;
      }
    }
  }
  // Apply: only flows whose rate actually changed get a new generation and
  // a new predicted-completion event; unchanged flows keep their armed
  // event — this is what makes kFull bit-identical to kIncremental.
  for (const std::uint32_t f : comp_flows_) {
    Flow& fl = flows_[f];
    const double r = fill_rate_[f];
    if (r == fl.rate) continue;
    fl.rate = r;
    ++fl.gen;
    schedule_completion(f);
    if (rate_listener_) {
      rate_listener_(fl.tag, now(), r, fl.remaining, frozen_edge_[f]);
    }
  }
}

void FlowEngine::recompute(std::uint32_t seed, bool force_complete,
                           bool silent_seed) {
  // Phase A: gather the changed flow's connected component.
  ++epoch_;
  gather_component(seed);
  touched_buf_.assign(comp_flows_.begin(), comp_flows_.end());
  // Phase B: integrate the component's transferred bytes up to now.
  const double t = now();
  for (const std::uint32_t f : touched_buf_) {
    Flow& fl = flows_[f];
    const double dt = t - fl.last_advance;
    if (dt > 0.0) fl.remaining -= dt * fl.rate;
    fl.last_advance = t;
  }
  // Phase C: retire drained flows (ascending slot order, matching the old
  // engine's erase order); the seed of a completion event retires
  // unconditionally — its event is the authoritative completion instant.
  retire_buf_.clear();
  for (const std::uint32_t f : touched_buf_) {
    if ((force_complete && f == seed) || flows_[f].remaining <= 1e-12) {
      retire_buf_.push_back(f);
    }
  }
  for (const std::uint32_t f : retire_buf_) {
    unlink(f);
    if (silent_seed && f == seed) {
      // Cancelled: free without delivery and without a retirement record.
      Flow& fl = flows_[f];
      if (fl.state == State::kActive) --active_;
      fl.rate = 0.0;
      fl.remaining = 0.0;
      ++fl.gen;  // any armed prediction goes stale
      fl.state = State::kFree;
      fl.done = nullptr;
      free_.push_back(f);
    } else {
      complete_flow(f, force_complete && f == seed && !silent_seed);
    }
  }
  // Phase D: refill the surviving components.  A retirement may have split
  // the gathered component; each true component is gathered and filled
  // separately so rates stay a pure function of component membership.
  ++epoch_;
  if (mode_ == Recompute::kIncremental) {
    for (const std::uint32_t f : touched_buf_) {
      if (flows_[f].state != State::kActive || flow_mark_[f] == epoch_) {
        continue;
      }
      gather_component(f);
      fill_component();
    }
  } else {
    for (std::uint32_t f = 0; f < flows_.size(); ++f) {
      if (flows_[f].state != State::kActive || flow_mark_[f] == epoch_) {
        continue;
      }
      gather_component(f);
      fill_component();
    }
  }
}

std::uint32_t FlowEngine::start_flow(double size_gb, std::vector<EdgeId> path,
                                     std::function<void()> on_complete,
                                     std::uint32_t tag, double rate_cap) {
  if (eq_ == nullptr) {
    throw std::logic_error("FlowEngine: closure start on a typed-mode engine");
  }
  if (rate_cap <= 0.0) {
    throw std::invalid_argument("FlowEngine: rate cap must be > 0");
  }
  validate_path(path);
  if (path.empty() || size_gb <= 1e-12) {
    // Trivial flows complete at now without touching the registry.
    if (on_complete) eq_->schedule_in(0.0, std::move(on_complete));
    return kNoFlow;
  }
  const std::uint32_t slot = alloc_slot();
  Flow& f = flows_[slot];
  f.remaining = size_gb;
  f.rate = 0.0;
  f.cap = rate_cap;
  f.last_advance = now();
  f.path = std::move(path);
  f.done = std::move(on_complete);
  f.tag = tag;
  f.state = State::kActive;
  ++active_;
  for (const EdgeId e : f.path) link_users_[e].push_back(slot);
  recompute(slot, /*force_complete=*/false);
  return slot;
}

std::uint32_t FlowEngine::start_flow(double size_gb, std::vector<EdgeId> path,
                                     std::uint32_t tag, double rate_cap) {
  if (tq_ == nullptr) {
    throw std::logic_error("FlowEngine: typed start on a closure-mode engine");
  }
  if (rate_cap <= 0.0) {
    throw std::invalid_argument("FlowEngine: rate cap must be > 0");
  }
  validate_path(path);
  const std::uint32_t slot = alloc_slot();
  Flow& f = flows_[slot];
  f.tag = tag;
  f.done = nullptr;
  f.cap = rate_cap;
  if (path.empty() || size_gb <= 1e-12) {
    f.remaining = 0.0;
    f.rate = 0.0;
    f.path.clear();
    f.state = State::kCompleting;
    ++f.gen;
    tq_->push_dynamic(EvKind::kTransferDone, tq_->now(), slot, f.gen);
    return slot;
  }
  f.remaining = size_gb;
  f.rate = 0.0;
  f.last_advance = now();
  f.path = std::move(path);
  f.state = State::kActive;
  ++active_;
  for (const EdgeId e : f.path) link_users_[e].push_back(slot);
  recompute(slot, /*force_complete=*/false);
  return slot;
}

void FlowEngine::cancel(std::uint32_t slot) {
  if (slot >= flows_.size()) return;
  Flow& f = flows_[slot];
  if (f.state == State::kCompleting) {
    // Drained but undelivered: stale the parked event and free the slot
    // (the generation is monotone per slot, so a later reuse cannot
    // resurrect the event).
    ++f.gen;
    f.state = State::kFree;
    f.done = nullptr;
    free_.push_back(slot);
    return;
  }
  if (f.state != State::kActive) return;
  recompute(slot, /*force_complete=*/true, /*silent_seed=*/true);
}

void FlowEngine::set_link_capacity(EdgeId e, double capacity) {
  if (e >= link_capacity_.size()) {
    throw std::out_of_range("FlowEngine: link out of range");
  }
  if (capacity <= 0.0) {
    throw std::invalid_argument("FlowEngine: link capacity must be > 0");
  }
  link_capacity_[e] = capacity;
  if (link_users_[e].empty()) return;
  // Advance the crossing flows to now under their old rates, then refill
  // their component with the new capacity (drained flows retire normally).
  recompute(link_users_[e].front(), /*force_complete=*/false);
}

std::uint32_t FlowEngine::handle_event(const SimEvent& ev) {
  if (tq_ == nullptr || ev.kind != EvKind::kTransferDone) return kNoFlow;
  const std::uint32_t slot = ev.a;
  if (slot >= flows_.size()) return kNoFlow;
  Flow& f = flows_[slot];
  if (f.state == State::kFree || f.gen != ev.b) return kNoFlow;  // stale
  const std::uint32_t tag = f.tag;
  if (f.state == State::kCompleting) {
    // Parked delivery (threshold-drained or trivial flow): just free.
    ++f.gen;
    f.state = State::kFree;
    free_.push_back(slot);
    return tag;
  }
  recompute(slot, /*force_complete=*/true);
  return tag;
}

}  // namespace edgerep
