// A minimal discrete-event engine: a time-ordered queue of closures with
// stable FIFO ordering among simultaneous events.  This is the spine of the
// testbed simulator (see sim/simulator.h).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace edgerep {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Current simulated time (seconds).  0 before any event has run.
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Schedule `action` at absolute time `when` (must be ≥ now()).
  void schedule_at(double when, Action action);

  /// Schedule `action` after a relative delay ≥ 0.
  void schedule_in(double delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  /// High-water of pending() over the queue's lifetime (bench accounting;
  /// the closure kernel pre-schedules whole horizons, so this is O(N)).
  [[nodiscard]] std::size_t peak_pending() const noexcept { return peak_; }

  /// Pop and run the earliest event; returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or `max_events` have executed.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

 private:
  struct Item {
    double time = 0.0;
    std::uint64_t seq = 0;  // FIFO tie-break
    Action action;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace edgerep
