#include "sim/metrics.h"

#include <algorithm>

#include "util/stats.h"

namespace edgerep {

SimReport build_report(const Instance& inst,
                       std::vector<QueryOutcome> outcomes) {
  SimReport rep;
  rep.total_queries = inst.queries().size();
  std::vector<double> responses;
  for (const QueryOutcome& o : outcomes) {
    if (!o.fully_served) continue;
    ++rep.served_queries;
    responses.push_back(o.response_delay());
    rep.makespan = std::max(rep.makespan, o.completion_time);
    if (o.met_deadline) {
      ++rep.admitted_queries;
      rep.admitted_volume += inst.demanded_volume(o.query);
    }
  }
  rep.throughput = rep.total_queries
                       ? static_cast<double>(rep.admitted_queries) /
                             static_cast<double>(rep.total_queries)
                       : 0.0;
  // Zero-served / empty-outcomes runs must aggregate to exact zeros:
  // `summarize` on an empty sample returns a zero Summary (never NaN), and
  // makespan keeps its 0 initializer.  Guarded here anyway so the report's
  // contract does not depend on the stats helper's empty-set behaviour —
  // tests/sim/metrics_report_test.cpp pins both paths.
  if (!responses.empty()) {
    const Summary s = summarize(responses);
    rep.mean_response = s.mean;
    rep.p95_response = s.p95;
    rep.max_response = s.max;
  }
  rep.outcomes = std::move(outcomes);
  return rep;
}

}  // namespace edgerep
