// Per-query outcomes and aggregate reports produced by the testbed
// simulator.  A query counts as *admitted* in the simulated world only if
// every demand was served AND the measured end-to-end response delay met the
// QoS deadline — the same acceptance criterion the paper's testbed applies.
#pragma once

#include <vector>

#include "cloud/instance.h"

namespace edgerep {

struct QueryOutcome {
  QueryId query = 0;
  double issue_time = 0.0;
  double completion_time = 0.0;  ///< 0 when never completed
  bool fully_served = false;     ///< all demands had an assigned site
  bool met_deadline = false;

  [[nodiscard]] double response_delay() const noexcept {
    return completion_time - issue_time;
  }
};

struct SimReport {
  std::vector<QueryOutcome> outcomes;
  std::size_t total_queries = 0;
  std::size_t served_queries = 0;    ///< fully served, deadline or not
  std::size_t admitted_queries = 0;  ///< fully served within deadline
  double admitted_volume = 0.0;      ///< Σ demanded volume over admitted
  double throughput = 0.0;           ///< admitted / total
  double mean_response = 0.0;        ///< over served queries
  double p95_response = 0.0;
  double max_response = 0.0;
  double makespan = 0.0;  ///< last completion time
};

/// Aggregate outcomes into a report.
SimReport build_report(const Instance& inst,
                       std::vector<QueryOutcome> outcomes);

}  // namespace edgerep
