#include "sim/faults.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>

#include "net/shortest_path.h"

namespace edgerep {

const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kSiteDown:
      return "site_down";
    case FaultKind::kSiteUp:
      return "site_up";
    case FaultKind::kLinkDown:
      return "link_down";
    case FaultKind::kLinkUp:
      return "link_up";
    case FaultKind::kCapacityLoss:
      return "capacity_loss";
    case FaultKind::kCapacityRestore:
      return "capacity_restore";
  }
  return "?";
}

namespace {

bool is_site_event(FaultKind k) noexcept {
  return k == FaultKind::kSiteDown || k == FaultKind::kSiteUp ||
         k == FaultKind::kCapacityLoss || k == FaultKind::kCapacityRestore;
}

bool is_link_event(FaultKind k) noexcept {
  return k == FaultKind::kLinkDown || k == FaultKind::kLinkUp;
}

void check_event(const Instance& inst, const FaultEvent& e,
                 std::size_t index) {
  const auto where = [index] {
    return "fault event " + std::to_string(index) + ": ";
  };
  if (!std::isfinite(e.time) || e.time < 0.0) {
    throw std::invalid_argument(where() + "time must be finite and >= 0");
  }
  if (is_site_event(e.kind) && e.site >= inst.sites().size()) {
    throw std::invalid_argument(where() + "site " + std::to_string(e.site) +
                                " out of range");
  }
  if (is_link_event(e.kind) && e.edge >= inst.graph().num_edges()) {
    throw std::invalid_argument(where() + "edge " + std::to_string(e.edge) +
                                " out of range");
  }
  if (e.kind == FaultKind::kCapacityLoss &&
      !(e.fraction > 0.0 && e.fraction <= 1.0)) {
    throw std::invalid_argument(where() + "capacity loss fraction must be in "
                                          "(0, 1]");
  }
}

}  // namespace

void validate_fault_trace(const Instance& inst, const FaultTrace& trace) {
  double prev = 0.0;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const FaultEvent& e = trace.events[i];
    check_event(inst, e, i);
    if (e.time < prev) {
      throw std::invalid_argument("fault event " + std::to_string(i) +
                                  ": times must be non-decreasing");
    }
    prev = e.time;
  }
}

FaultState::FaultState(const Instance& inst) : inst_(&inst) {
  if (!inst.finalized()) {
    throw std::invalid_argument("FaultState: instance not finalized");
  }
  up_.assign(inst.sites().size(), 1);
  lost_frac_.assign(inst.sites().size(), 0.0);
  edge_up_.assign(inst.graph().num_edges(), 1);
}

double FaultState::capacity_scale(SiteId s) const {
  if (!up_.at(s)) return 0.0;
  return 1.0 - lost_frac_[s];
}

void FaultState::apply(const FaultEvent& e) {
  check_event(*inst_, e, epoch_);
  switch (e.kind) {
    case FaultKind::kSiteDown:
      if (up_[e.site]) {
        up_[e.site] = 0;
        ++sites_down_;
      }
      break;
    case FaultKind::kSiteUp:
      if (!up_[e.site]) {
        up_[e.site] = 1;
        --sites_down_;
      }
      break;
    case FaultKind::kLinkDown:
      if (edge_up_[e.edge]) {
        edge_up_[e.edge] = 0;
        ++links_down_;
        overlay_dirty_ = true;
      }
      break;
    case FaultKind::kLinkUp:
      if (!edge_up_[e.edge]) {
        edge_up_[e.edge] = 1;
        --links_down_;
        overlay_dirty_ = true;
      }
      break;
    case FaultKind::kCapacityLoss:
      if (lost_frac_[e.site] == 0.0) ++capacity_faults_;
      lost_frac_[e.site] = e.fraction;  // absolute, not cumulative
      break;
    case FaultKind::kCapacityRestore:
      if (lost_frac_[e.site] > 0.0) --capacity_faults_;
      lost_frac_[e.site] = 0.0;
      break;
  }
  ++epoch_;
}

void FaultState::apply_until(const FaultTrace& trace, double until) {
  for (const FaultEvent& e : trace.events) {
    if (e.time > until) break;
    apply(e);
  }
}

/// Dijkstra from one node honoring the downed-edge mask.  Mirrors the
/// workspace engine's strict (dist, node) pop order so that with every edge
/// up the overlay is bit-identical to the fault-free rows.
namespace {

void masked_dijkstra(const Graph& g, NodeId source,
                     const std::vector<char>& edge_up,
                     std::span<double> out_dist) {
  const std::size_t n = g.num_nodes();
  std::fill(out_dist.begin(), out_dist.end(), kInfDelay);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  std::vector<char> done(n, 0);
  out_dist[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (done[u]) continue;
    done[u] = 1;
    for (const HalfEdge& h : g.neighbors(u)) {
      if (!edge_up[h.edge]) continue;
      const double nd = d + h.delay;
      if (nd < out_dist[h.to]) {
        out_dist[h.to] = nd;
        heap.emplace(nd, h.to);
      }
    }
  }
}

}  // namespace

void FaultState::rebuild_overlay() const {
  const std::size_t n = inst_->graph().num_nodes();
  const std::size_t sites = inst_->sites().size();
  overlay_.assign(sites * n, kInfDelay);
  for (std::size_t s = 0; s < sites; ++s) {
    masked_dijkstra(inst_->graph(), inst_->site(static_cast<SiteId>(s)).node,
                    edge_up_,
                    std::span<double>(overlay_.data() + s * n, n));
  }
  overlay_dirty_ = false;
}

double FaultState::path_delay(SiteId from, SiteId to) const {
  if (links_down_ == 0) return inst_->path_delay(from, to);
  if (overlay_dirty_ || overlay_.empty()) rebuild_overlay();
  const std::size_t n = inst_->graph().num_nodes();
  return overlay_[from * n + inst_->site(to).node];
}

double FaultState::evaluation_delay(const Query& q, const DatasetDemand& dd,
                                    SiteId site) const {
  if (links_down_ == 0) return edgerep::evaluation_delay(*inst_, q, dd, site);
  // Same operation order as the fault-free model so delays agree bit-for-bit
  // when the path is unaffected by the downed links.
  const Dataset& ds = inst_->dataset(dd.dataset);
  const Site& s = inst_->site(site);
  const double processing = ds.volume * s.proc_delay;
  const double transmission =
      dd.selectivity * ds.volume * path_delay(site, q.home);
  return processing + transmission;
}

}  // namespace edgerep
