// Typed, allocation-free discrete-event kernel — the scale path of the
// online simulator (sim/online.h).
//
// The closure engine (sim/event.h) heap-allocates one std::function per
// event, which caps run_online far below the multi-million-query horizons
// the streaming plane already generates.  This kernel replaces closures
// with a tagged-union POD event (`SimEvent`) in a 4-ary array heap ordered
// by strict `(time, seq)`: pushing and popping move 40 trivially-copyable
// bytes, and the heap storage is the only allocation (amortized by
// reserve).  Dispatch is a switch on `SimEvent::kind` in the owning run
// loop — subsystems never capture state, they read it from the payload.
//
// Ordering invariants (the determinism contract of sim/online.h, restated
// as properties of the queue):
//
//  * Events pop in strictly increasing `(time, seq)` order; `seq` never
//    repeats, so simultaneous events have a total FIFO order.
//  * `seq` is banded: the high byte encodes the event's scheduling class
//    (faults < arrivals < dynamic completions < status ticks) and the low
//    56 bits a per-band monotone counter.  This reproduces the closure
//    kernel's global insertion order — where every fault is scheduled
//    before every arrival, and dynamic events are scheduled mid-run — even
//    though this kernel streams arrivals lazily (one pending arrival in
//    the heap instead of the whole horizon).
//  * `post()` enqueues an *immediate*: a FIFO ring drained before the next
//    heap pop.  Immediates model work that the closure kernel ran
//    synchronously inside a handler (e.g. relocating the flights displaced
//    by a crash), keeping it a typed, inspectable event.
//
// `FlightSlab` is the companion registry for in-flight work: slot reuse
// through a free list, generation-stamped handles so a completion event
// scheduled for a killed (or relocated) flight self-discards in O(1), and
// an intrusive doubly-linked live list that iterates survivors in creation
// order — the order the closure kernel got for free from its grow-only
// flights vector.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "cloud/types.h"

namespace edgerep {

/// Event taxonomy of the online simulator.
enum class EvKind : std::uint8_t {
  kArrival = 0,       ///< a = query id
  kTransferDone = 1,  ///< a = flow slot, b = flow generation (FlowEngine)
  kComputeDone = 2,   ///< a = flight slot, b = flight generation
  kFaultApply = 3,    ///< a = index into the fault trace
  kRelocate = 4,      ///< a = query, b = demand, c = resource need (GHz)
  kStatusTick = 5,    ///< telemetry refresh; no payload
};

/// One scheduled event: a 40-byte POD.  `a`/`b`/`c` are payload registers
/// whose meaning is given by `kind` (see EvKind).
struct SimEvent {
  double time = 0.0;
  std::uint64_t seq = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  double c = 0.0;
  EvKind kind = EvKind::kArrival;
};

/// Scheduling-class bands of the 64-bit seq (high byte).  Within one time
/// instant, lower bands run first; within one band, lower counters run
/// first.  The order mirrors the closure kernel's scheduling sequence:
/// fault events are all scheduled before arrivals, arrivals before any
/// dynamic event, and status ticks (which read state but never write it)
/// drain last.
namespace evseq {
inline constexpr std::uint64_t kFaultBand = 0;
inline constexpr std::uint64_t kArrivalBand = 1;
inline constexpr std::uint64_t kDynamicBand = 2;
inline constexpr std::uint64_t kStatusBand = 3;
inline constexpr unsigned kBandShift = 56;

[[nodiscard]] constexpr std::uint64_t make(std::uint64_t band,
                                           std::uint64_t counter) noexcept {
  return (band << kBandShift) | counter;
}
[[nodiscard]] constexpr std::uint64_t band_of(std::uint64_t seq) noexcept {
  return seq >> kBandShift;
}
}  // namespace evseq

/// Strict (time, seq) order.
[[nodiscard]] inline bool event_before(const SimEvent& x,
                                       const SimEvent& y) noexcept {
  if (x.time != y.time) return x.time < y.time;
  return x.seq < y.seq;
}

/// 4-ary array min-heap of SimEvent plus a FIFO immediates ring.  One
/// vector each; no per-event allocation once the storage is warm.
class TypedEventQueue {
 public:
  /// Current simulated time (seconds).  0 before any timed pop.
  [[nodiscard]] double now() const noexcept { return now_; }

  void reserve(std::size_t events) { heap_.reserve(events); }

  /// Schedule a fully-formed event (caller assigns seq, e.g. for the
  /// fault/arrival bands whose counters are input indices).
  void push(const SimEvent& ev);

  /// Schedule a dynamic event: seq is drawn from the queue's monotone
  /// dynamic-band counter, reproducing schedule-call order among all
  /// mid-run events (completions, flow wakes).
  void push_dynamic(EvKind kind, double time, std::uint32_t a,
                    std::uint32_t b, double c = 0.0) {
    push(SimEvent{time, evseq::make(evseq::kDynamicBand, dyn_counter_++), a,
                  b, c, kind});
  }

  /// Schedule a status-band event (sorts after everything else at its
  /// instant).
  void push_status(double time) {
    push(SimEvent{time, evseq::make(evseq::kStatusBand, status_counter_++), 0,
                  0, 0.0, EvKind::kStatusTick});
  }

  /// Enqueue an immediate: runs at now(), FIFO, before any heap event.
  void post(const SimEvent& ev);

  /// Pop the next event (immediates first, then the heap); advances now()
  /// on heap pops.  Returns false when both are empty.
  bool pop(SimEvent* out);

  /// Drain only the immediates ring (used by handlers that must complete
  /// posted work — e.g. displaced-flight relocation — before returning).
  bool pop_immediate(SimEvent* out);

  [[nodiscard]] bool empty() const noexcept {
    return heap_.empty() && ring_head_ == ring_.size();
  }
  [[nodiscard]] std::size_t pending() const noexcept {
    return heap_.size() + (ring_.size() - ring_head_);
  }

  /// --- accounting (bench evidence for the O(inflight) memory bound) ----
  [[nodiscard]] std::size_t events_popped() const noexcept { return popped_; }
  [[nodiscard]] std::size_t peak_pending() const noexcept {
    return peak_pending_;
  }
  /// High-water of the queue's owned storage in bytes (heap + ring
  /// capacity); grows with concurrency, not horizon.
  [[nodiscard]] std::size_t peak_bytes() const noexcept {
    return peak_bytes_;
  }
  /// High-water of the immediates ring occupancy — the deepest burst of
  /// synchronously posted work (e.g. relocations displaced by one crash).
  [[nodiscard]] std::size_t peak_ring_pending() const noexcept {
    return peak_ring_;
  }

 private:
  void note_size() noexcept {
    const std::size_t p = pending();
    if (p > peak_pending_) peak_pending_ = p;
    const std::size_t b =
        (heap_.capacity() + ring_.capacity()) * sizeof(SimEvent);
    if (b > peak_bytes_) peak_bytes_ = b;
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<SimEvent> heap_;
  std::vector<SimEvent> ring_;
  std::size_t ring_head_ = 0;
  double now_ = 0.0;
  std::uint64_t dyn_counter_ = 0;
  std::uint64_t status_counter_ = 0;
  std::size_t popped_ = 0;
  std::size_t peak_pending_ = 0;
  std::size_t peak_bytes_ = 0;
  std::size_t peak_ring_ = 0;
};

inline constexpr std::uint32_t kNilSlot = static_cast<std::uint32_t>(-1);

/// Generation-stamped reference to a flight slot.  A handle whose
/// generation no longer matches the slot dereferences to null — the O(1)
/// stale-discard that replaces the closure kernel's `alive` flag scan.
struct FlightHandle {
  std::uint32_t slot = kNilSlot;
  std::uint32_t gen = 0;
};

/// One admitted demand holding resource at a site (payload of a slab slot).
struct Flight {
  QueryId query = 0;
  std::uint32_t demand = 0;
  SiteId site = kInvalidSite;
  double need = 0.0;            ///< GHz held while processing
  std::uint64_t birth = 0;      ///< global creation counter (launch order)
  std::uint32_t span_transfer = kNilSlot;  ///< trace-facet span indices
  std::uint32_t span_compute = kNilSlot;
  // Slab internals:
  std::uint32_t gen = 0;
  std::uint32_t prev = kNilSlot;  ///< intrusive live list (creation order)
  std::uint32_t next = kNilSlot;
  bool live = false;
};

/// Slab allocator for flights: O(1) create/destroy with slot reuse, and a
/// creation-ordered live list for the handful of fault paths that must
/// visit every survivor (site-crash home checks).
class FlightSlab {
 public:
  /// Acquire a slot (reusing a freed one when available).  The returned
  /// handle carries the slot's current generation; payload fields are the
  /// caller's to fill.  Newly created flights append to the live-list tail,
  /// so list order == launch order.
  FlightHandle create();

  /// Release a slot: unlink from the live list, bump the generation (all
  /// outstanding handles to it go stale), recycle the slot.
  void destroy(FlightHandle h);

  /// Dereference; null when the handle is stale or freed.
  [[nodiscard]] Flight* get(FlightHandle h) noexcept {
    if (h.slot >= slots_.size()) return nullptr;
    Flight& f = slots_[h.slot];
    return (f.live && f.gen == h.gen) ? &f : nullptr;
  }
  [[nodiscard]] const Flight* get(FlightHandle h) const noexcept {
    return const_cast<FlightSlab*>(this)->get(h);
  }

  /// Unchecked slot access (for walking the live list).
  [[nodiscard]] Flight& at(std::uint32_t slot) { return slots_[slot]; }
  [[nodiscard]] const Flight& at(std::uint32_t slot) const {
    return slots_[slot];
  }

  /// First live slot in creation order (kNilSlot when none); follow
  /// `at(slot).next`.
  [[nodiscard]] std::uint32_t live_head() const noexcept { return head_; }

  [[nodiscard]] std::size_t live_count() const noexcept { return live_; }
  [[nodiscard]] std::size_t slot_count() const noexcept {
    return slots_.size();
  }
  [[nodiscard]] std::size_t peak_live() const noexcept { return peak_live_; }
  /// Flights ever created; with `destroys()` this is the slab's generation
  /// churn — how much slot recycling the run drove.
  [[nodiscard]] std::uint64_t births() const noexcept { return births_; }
  [[nodiscard]] std::uint64_t destroys() const noexcept {
    return births_ - live_;
  }
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return slots_.capacity() * sizeof(Flight) +
           free_.capacity() * sizeof(std::uint32_t);
  }

 private:
  std::vector<Flight> slots_;
  std::vector<std::uint32_t> free_;
  std::uint32_t head_ = kNilSlot;
  std::uint32_t tail_ = kNilSlot;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
  std::uint64_t births_ = 0;
};

}  // namespace edgerep
