// Flow-level network bandwidth sharing with max-min fairness.
//
// The basic simulator treats an intermediate-result transfer as a fixed
// delay (size × per-GB path delay) — correct when links are uncontended.
// This engine models what a real testbed does instead: concurrent transfers
// crossing the same link share its bandwidth, with rates given by the
// classic max-min fair (progressive-filling) allocation, recomputed whenever
// a flow starts or finishes.
//
// The engine is incremental: a start or completion re-allocates only the
// *connected component* of flows transitively sharing a link with the
// changed flow — untouched components keep their rates (and their armed
// completion events) bit for bit.  Rate computation is a pure function of
// (link capacities, component's flow paths), canonicalized by ascending
// slot order, so `Recompute::kFull` — which re-fills every component — is
// bit-identical to the incremental path and serves as its oracle (pinned by
// tests/sim/flows_test.cpp).
//
// Flows live in a slot registry with free-list reuse; paths are moved in,
// never copied.  Completion events carry the flow's generation, which bumps
// on every rate change, so a stale prediction self-discards.  The engine
// runs on either event core:
//
//  * closure mode (EventQueue): completions call the std::function the
//    caller provided — the testbed simulator's mode (sim/simulator.h).
//  * typed mode (TypedEventQueue): completions surface as
//    EvKind::kTransferDone events; the owning run loop feeds them to
//    handle_event(), which returns the caller's tag when the flow is done.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/graph.h"
#include "sim/event.h"
#include "sim/event_kernel.h"

namespace edgerep {

/// Max-min fair rates for `flow_paths` over links with capacities
/// `link_capacity` (GB/s).  A flow with an empty path is unconstrained and
/// gets an infinite rate sentinel (kUnconstrainedRate).  `rate_cap`, when
/// non-empty, is a per-flow ceiling: a flow stops growing once it reaches
/// its cap even if its links have headroom (the online backend caps every
/// transfer at nominal rate 1.0, so uncontended flows finish exactly at
/// their priced delay).  Exposed separately so tests can check the
/// allocation against hand-computed examples.
inline constexpr double kUnconstrainedRate = 1e300;
std::vector<double> max_min_rates(
    const std::vector<double>& link_capacity,
    const std::vector<std::vector<EdgeId>>& flow_paths,
    const std::vector<double>& rate_cap = {});

class FlowEngine {
 public:
  /// Sentinel returned by handle_event for stale or foreign events.
  static constexpr std::uint32_t kNoFlow = static_cast<std::uint32_t>(-1);

  /// Re-allocation scope: `kIncremental` refills only the changed flow's
  /// connected component (production); `kFull` refills every component
  /// (oracle; bit-identical by construction, used by the equivalence tests).
  enum class Recompute : std::uint8_t { kIncremental, kFull };

  /// Observer of every flow rate transition: called when a fill changes a
  /// flow's rate (rate > 0; `bottleneck` is the saturated link that froze
  /// the flow, or kInvalidEdge when its own rate cap did) and once at
  /// retirement (rate == 0, remaining == 0, `time` = the actual completion
  /// instant).  The call sequence is deterministic (ascending slot order
  /// inside each fill) and mirrored across the closure/typed cores, so
  /// journal appends driven from here stay byte-identical across kernels.
  using RateListener = std::function<void(
      std::uint32_t tag, double time, double rate, double remaining,
      EdgeId bottleneck)>;

  /// Closure mode: completions fire the caller's std::function on `eq`.
  /// `link_capacity[e]` is the bandwidth of edge e in GB/s.
  FlowEngine(EventQueue& eq, std::vector<double> link_capacity);

  /// Typed mode: completions surface as kTransferDone events on `queue`.
  FlowEngine(TypedEventQueue& queue, std::vector<double> link_capacity);

  void set_recompute_mode(Recompute mode) noexcept { mode_ = mode; }

  /// Install (or clear, with nullptr) the rate-transition observer.
  void set_rate_listener(RateListener listener) {
    rate_listener_ = std::move(listener);
  }

  /// Begin transferring `size_gb` along `path` (edge ids); `on_complete`
  /// fires at the simulated completion instant.  A flow of size 0 or with
  /// an empty path completes immediately (scheduled at now; returns kNoFlow
  /// — no slot is allocated).  `rate_cap` bounds the flow's rate;
  /// `tag` labels it for the rate listener.  Closure mode only.  Returns
  /// the flow's slot (usable with cancel()).
  std::uint32_t start_flow(double size_gb, std::vector<EdgeId> path,
                           std::function<void()> on_complete,
                           std::uint32_t tag = 0,
                           double rate_cap = kUnconstrainedRate);

  /// Typed-mode start: the completion arrives on the queue as
  /// kTransferDone{a = slot, b = generation}; `tag` is returned by
  /// handle_event when that event is current.  Returns the flow's slot.
  std::uint32_t start_flow(double size_gb, std::vector<EdgeId> path,
                           std::uint32_t tag,
                           double rate_cap = kUnconstrainedRate);

  /// Feed a popped kTransferDone event to the engine.  Returns the starting
  /// call's `tag` when the event is a current completion, kNoFlow when it
  /// is stale (the flow's rate changed after it was scheduled) or not a
  /// kTransferDone at all.  Typed mode only.
  [[nodiscard]] std::uint32_t handle_event(const SimEvent& ev);

  /// Abort `slot` without delivering a completion: the flow leaves its
  /// links, any armed event goes stale, freed bandwidth is re-filled into
  /// the surviving component(s), and no closure/typed completion ever
  /// fires (the rate listener is not called either — the caller records
  /// the kill itself).  No-op when the slot is already free or parked
  /// completing and you raced its own delivery (the generation guard keeps
  /// the late event stale).  Both modes.
  void cancel(std::uint32_t slot);

  /// Change one link's capacity mid-run (must stay > 0): flows crossing it
  /// are advanced to now and their component re-filled.  Links without
  /// active flows just take the new value.  Both modes.
  void set_link_capacity(EdgeId e, double capacity);

  [[nodiscard]] double link_capacity(EdgeId e) const {
    return link_capacity_.at(e);
  }

  [[nodiscard]] std::size_t active_flows() const noexcept { return active_; }

 private:
  enum class State : std::uint8_t { kFree, kActive, kCompleting };

  struct Flow {
    double remaining = 0.0;
    double rate = 0.0;
    double cap = kUnconstrainedRate;  ///< per-flow rate ceiling
    double last_advance = 0.0;
    std::vector<EdgeId> path;        ///< moved in; capacity reused on reuse
    std::function<void()> done;      ///< closure mode
    std::uint32_t tag = 0;           ///< typed mode / listener label
    std::uint32_t gen = 0;           ///< bumps on rate change and retire
    State state = State::kFree;
  };

  [[nodiscard]] double now() const noexcept;
  void validate_path(const std::vector<EdgeId>& path) const;
  std::uint32_t alloc_slot();
  void unlink(std::uint32_t slot);

  /// Predicted-completion event for `slot` at its current (rate, gen).
  void schedule_completion(std::uint32_t slot);

  /// Deliver a completed flow: closure mode schedules `done` at now and
  /// frees the slot; typed mode parks the slot in kCompleting and emits the
  /// authoritative kTransferDone (freed when handle_event consumes it).
  /// `via_event` marks the flow whose own current event is being handled —
  /// it is already delivered, so its slot frees directly.
  void complete_flow(std::uint32_t slot, bool via_event);

  /// Gather the connected component containing `seed` into comp_flows_ /
  /// comp_links_ (epoch-marked; comp_flows_ sorted ascending).
  void gather_component(std::uint32_t seed);

  /// Canonical progressive filling over comp_flows_/comp_links_ alone.
  /// Pure function of (link capacities, component paths); flows whose rate
  /// changed bitwise get a new generation + completion event.
  void fill_component();

  /// Advance the seed's component to now, complete drained flows
  /// (`force_complete` = the seed itself finishes regardless of residual;
  /// `silent_seed` = the seed is being cancelled — freed without delivery),
  /// then refill the surviving components — the seed's under kIncremental,
  /// every component under kFull.
  void recompute(std::uint32_t seed, bool force_complete,
                 bool silent_seed = false);

  EventQueue* eq_ = nullptr;          // closure mode
  TypedEventQueue* tq_ = nullptr;     // typed mode
  std::vector<double> link_capacity_;
  Recompute mode_ = Recompute::kIncremental;
  RateListener rate_listener_;

  std::vector<Flow> flows_;
  std::vector<std::uint32_t> free_;
  std::vector<std::vector<std::uint32_t>> link_users_;  ///< active flows/link
  std::size_t active_ = 0;

  // --- re-allocation scratch (sized once, epoch-validated) ---------------
  std::uint64_t epoch_ = 0;                ///< component-gather epoch
  std::uint64_t round_ = 0;                ///< per-fill saturation round
  std::vector<std::uint64_t> flow_mark_;   ///< gather visit marks
  std::vector<std::uint64_t> link_mark_;
  std::vector<std::uint64_t> frozen_mark_;  ///< fill: flow frozen this epoch
  std::vector<std::uint64_t> sat_mark_;     ///< fill: link saturated round
  std::vector<EdgeId> frozen_edge_;  ///< fill: link that froze each flow
  std::vector<std::uint32_t> stack_;
  std::vector<std::uint32_t> comp_flows_;
  std::vector<EdgeId> comp_links_;
  std::vector<std::uint32_t> users_;       ///< per comp link, per round
  std::vector<double> residual_;           ///< per comp link, per fill
  std::vector<double> fill_rate_;          ///< per comp flow, per fill
  std::vector<std::uint32_t> retire_buf_;  ///< drained flows per recompute
  std::vector<std::uint32_t> touched_buf_;  ///< advanced flows per recompute
};

}  // namespace edgerep
