// Flow-level network bandwidth sharing with max-min fairness.
//
// The basic simulator treats an intermediate-result transfer as a fixed
// delay (size × per-GB path delay) — correct when links are uncontended.
// This engine models what a real testbed does instead: concurrent transfers
// crossing the same link share its bandwidth, with rates given by the
// classic max-min fair (progressive-filling) allocation, recomputed whenever
// a flow starts or finishes.  Completion events carry generation tokens so
// stale predictions are discarded after rate changes, mirroring the
// processor-sharing CPU engine.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/graph.h"
#include "sim/event.h"

namespace edgerep {

/// Max-min fair rates for `flow_paths` over links with capacities
/// `link_capacity` (GB/s).  A flow with an empty path is unconstrained and
/// gets an infinite rate sentinel (kUnconstrainedRate).  Exposed separately
/// so tests can check the allocation against hand-computed examples.
inline constexpr double kUnconstrainedRate = 1e300;
std::vector<double> max_min_rates(
    const std::vector<double>& link_capacity,
    const std::vector<std::vector<EdgeId>>& flow_paths);

class FlowEngine {
 public:
  /// `link_capacity[e]` is the bandwidth of edge e in GB/s.
  FlowEngine(EventQueue& eq, std::vector<double> link_capacity);

  /// Begin transferring `size_gb` along `path` (edge ids); `on_complete`
  /// fires at the simulated completion instant.  A flow of size 0 or with
  /// an empty path completes immediately (scheduled at now).
  void start_flow(double size_gb, std::vector<EdgeId> path,
                  std::function<void()> on_complete);

  [[nodiscard]] std::size_t active_flows() const noexcept {
    return flows_.size();
  }

 private:
  struct Flow {
    double remaining_gb = 0.0;
    std::vector<EdgeId> path;
    std::function<void()> on_complete;
  };

  void advance();
  void recompute_and_schedule();

  EventQueue* eq_;
  std::vector<double> link_capacity_;
  std::vector<Flow> flows_;
  std::vector<double> rates_;
  double last_update_ = 0.0;
  std::uint64_t gen_ = 0;
};

}  // namespace edgerep
