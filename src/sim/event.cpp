#include "sim/event.h"

#include <stdexcept>

namespace edgerep {

void EventQueue::schedule_at(double when, Action action) {
  if (when < now_) {
    throw std::invalid_argument("EventQueue: scheduling into the past");
  }
  heap_.push(Item{when, next_seq_++, std::move(action)});
  if (heap_.size() > peak_) peak_ = heap_.size();
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the action handle (std::function copy) and pop.
  Item item = heap_.top();
  heap_.pop();
  now_ = item.time;
  item.action();
  return true;
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && step()) ++executed;
  return executed;
}

}  // namespace edgerep
