// Internals shared by the two run_online kernels (closure oracle in
// online.cpp, typed production path in online_typed.cpp).  Everything here
// is arithmetic both kernels must perform identically — the bit-identity
// contract between them is only as strong as this sharing.  Not part of
// the public API (not exported through edgerep/edgerep.h).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "cloud/instance.h"
#include "sim/online.h"
#include "util/rng.h"

namespace edgerep {
namespace online_detail {

struct SiteLoad {
  double available = 0.0;  ///< fault-free A(v_l); faults scale it on query
  double in_use = 0.0;
};

/// Where (and when, absolute sim seconds) one admitted demand finally
/// completed — relocation overwrites it.  Feeds the deadline-SLO rollup.
struct DemandEnd {
  SiteId site = kInvalidSite;
  double completion = 0.0;
};

/// One async span on the sim clock, buffered locally and emitted to the
/// Tracer after the run (so tracing never interleaves with event dispatch).
struct SpanRec {
  const char* name = "";
  std::uint64_t id = 0;
  double t0 = 0.0;
  double t1 = 0.0;
};

inline constexpr std::size_t kNoSpan = static_cast<std::size_t>(-1);

/// Stable async-span ids: a query's span and its per-demand
/// transfer/compute spans share the qid prefix so they group in the viewer.
inline std::uint64_t query_span_id(QueryId m) {
  return static_cast<std::uint64_t>(m) << 20;
}
inline std::uint64_t demand_span_id(QueryId m, std::uint32_t d,
                                    unsigned kind) {
  return (static_cast<std::uint64_t>(m) << 20) |
         (static_cast<std::uint64_t>(d + 1) << 2) | kind;
}

/// Flat per-(query, demand) addressing: slot of (m, d) is
/// `offsets[m] + d`.  Replaces the per-query vector-of-vectors the closure
/// kernel used to allocate lazily — one contiguous table, sized once.
struct DemandLayout {
  std::vector<std::size_t> offsets;  ///< size |Q| + 1 (prefix sums)

  explicit DemandLayout(const Instance& inst) {
    offsets.resize(inst.queries().size() + 1, 0);
    for (const Query& q : inst.queries()) {
      offsets[q.id + 1] = q.demands.size();
    }
    for (std::size_t m = 1; m < offsets.size(); ++m) {
      offsets[m] += offsets[m - 1];
    }
  }
  [[nodiscard]] std::size_t at(QueryId m, std::uint32_t d) const {
    return offsets[m] + d;
  }
  [[nodiscard]] std::size_t total() const { return offsets.back(); }
};

/// The arrival process, streamed one arrival at a time.  Both kernels draw
/// from this class so the Rng consumption sequence is shared: the closure
/// kernel drains it up front (pre-scheduling the horizon), the typed
/// kernel pulls lazily (one pending arrival in the heap) — same draws in
/// the same order, so identical times bit for bit.
class OnlineArrivalStream {
 public:
  OnlineArrivalStream(std::size_t queries, OnlineConfig::Arrivals mode,
                      double rate, std::uint64_t seed,
                      double wave_amplitude = 0.0, double wave_period = 0.0)
      : rng_(seed),
        remaining_(queries),
        rate_(rate),
        wave_amplitude_(wave_amplitude),
        wave_period_(wave_period),
        mode_(mode) {}

  /// Next arrival in instance order; false when the horizon is exhausted.
  bool next(double* time, QueryId* query) {
    if (remaining_ == 0) return false;
    double gap = mode_ == OnlineConfig::Arrivals::kPoisson
                     ? rng_.exponential(rate_)
                     : 1.0 / rate_;
    // Diurnal wave: divide the base gap by the instantaneous rate
    // modulation at the current phase.  The Rng draw sequence is identical
    // either way, and the branch is skipped entirely when the wave is off,
    // so amplitude == 0 reproduces historical arrival times bit for bit.
    if (wave_amplitude_ > 0.0 && wave_period_ > 0.0) {
      constexpr double kTwoPi = 6.283185307179586476925286766559;
      double mod =
          1.0 + wave_amplitude_ * std::sin(kTwoPi * clock_ / wave_period_);
      if (mod < 0.05) mod = 0.05;
      gap /= mod;
    }
    clock_ += gap;
    *time = clock_;
    *query = next_id_++;
    --remaining_;
    return true;
  }

 private:
  Rng rng_;
  double clock_ = 0.0;
  QueryId next_id_ = 0;
  std::size_t remaining_;
  double rate_;
  double wave_amplitude_;
  double wave_period_;
  OnlineConfig::Arrivals mode_;
};

/// Post-run aggregation shared verbatim by both kernels: exact admitted
/// recount, throughput, and the deadline-SLO rollup over the flat
/// demand-end table.  Pure function of its inputs.
void finalize_online_result(const Instance& inst, const DemandLayout& layout,
                            const std::vector<DemandEnd>& demand_ends,
                            OnlineResult* res);

/// Effective link capacity of the flow backend in the contention-free
/// limit (OnlineConfig::oversubscription == 0).  Large enough that no link
/// ever binds (every transfer is capped at nominal rate 1.0), small enough
/// that capacity arithmetic stays finite.
inline constexpr double kContentionFreeCapacity = 1e18;

/// Per-edge effective capacities for the flow backend:
/// `edge.capacity / oversubscription`, or kContentionFreeCapacity for every
/// edge when oversubscription == 0.  Shared by both kernels so the division
/// is performed identically.
std::vector<double> flow_link_capacities(const Graph& g,
                                         double oversubscription);

/// Predicted-vs-actual gap rollup of the flow backend, shared verbatim by
/// both kernels.  `predicted` holds the table-priced completion per query
/// (what OnlineOutcome::completion_time would be on a kTable run); the
/// actuals are read from res->outcomes.  Fills every FlowGapStats field
/// except flows_routed / rate_changes, which the run accumulates live.
void finalize_flow_gap(const Instance& inst,
                       const std::vector<double>& predicted,
                       OnlineResult* res);

/// Emit the buffered span timeline as async 'b'/'e' pairs (and 'n'
/// instants) on the sim-clock trace track.  Call only when the trace facet
/// is on.
void emit_online_spans(const std::vector<SpanRec>& spans,
                       const std::vector<SpanRec>& instants);

}  // namespace online_detail

/// Typed-kernel implementation (online_typed.cpp); reached via run_online
/// with OnlineConfig::kernel == OnlineKernel::kTyped.
OnlineResult run_online_typed(const Instance& inst, const OnlineConfig& cfg,
                              const ReplicaPlan* proactive);

}  // namespace edgerep
