// Continuous query-arrival streams for the streaming admission plane.
//
// A stream assigns every query of a finalized instance one Poisson arrival
// time (exponential inter-arrival gaps at a configurable aggregate rate), so
// the StreamEngine can batch them into fixed-length micro-epochs.  Streams
// are a pure function of (instance, rate, seed, order): the same inputs
// yield the same arrival sequence on every platform, which the determinism
// contract of the streaming plane builds on.
//
// `stream_instance` generates the large flat instances the throughput
// benches run on: a G(n, p) metro network with every node a placement site
// and single-demand queries — the paper's special case at a scale (10k
// sites, 1M queries) where the two-tier GT-ITM construction with pairwise
// link probability 0.2 would produce tens of millions of edges.
#pragma once

#include <cstdint>
#include <vector>

#include "cloud/instance.h"
#include "net/topology.h"

namespace edgerep {

/// One query arrival.  Times are seconds from stream start, nondecreasing.
struct Arrival {
  double time = 0.0;
  QueryId query = 0;
};

/// Which query ids ride the arrival sequence in which order.
enum class ArrivalOrder : std::uint8_t {
  kQueryId,   ///< query 0 arrives first, then 1, ... (aligned with batch order)
  kShuffled,  ///< deterministic Fisher–Yates shuffle of the id sequence
};

/// Generate one arrival per query of `inst` with Poisson timing: gap k is
/// Exponential(rate) drawn from a substream of `seed`, so the arrival times
/// are strictly increasing with aggregate rate `rate` queries/second.
///
/// `wave_amplitude` / `wave_period` (both > 0 to engage) superimpose a
/// diurnal wave on the rate: each gap is divided by
/// 1 + amplitude·sin(2π·t / period), clamped at 0.05, the same modulation
/// OnlineArrivalStream applies.  The Rng draw sequence is identical either
/// way, so the defaults reproduce every existing stream bit for bit.
std::vector<Arrival> generate_arrival_stream(
    const Instance& inst, double rate, std::uint64_t seed,
    ArrivalOrder order = ArrivalOrder::kShuffled, double wave_amplitude = 0.0,
    double wave_period = 0.0);

/// Configuration of the large-scale streaming workload (single-demand
/// queries over a flat G(n, p) site network).
struct StreamWorkloadConfig {
  std::size_t sites = 10'000;     ///< every graph node is a placement site
  double avg_degree = 8.0;        ///< G(n, p) with p = avg_degree / (n - 1)
  std::size_t queries = 1'000'000;
  std::size_t datasets = 64;
  /// Demands per query are drawn uniformly from [1, max_demands] (distinct
  /// datasets).  The default keeps the paper's special case — and the draw
  /// sequence of every existing seed — untouched.
  std::size_t max_demands = 1;
  std::size_t max_replicas = 1024;  ///< K; generous so replication is not the
                                    ///< binding constraint at bench scale

  Range capacity{400.0, 800.0};    ///< GHz per site
  Range proc_delay{0.01, 0.05};    ///< d(v): s per GB
  Range link_delay{0.05, 0.25};    ///< per-GB link delay
  Range volume{1.0, 6.0};          ///< GB
  Range rate{0.75, 1.25};          ///< GHz per GB
  Range selectivity{0.05, 0.8};    ///< α
  /// Deadline = draw × demanded volume.  Loose by default so deadline
  /// pruning leaves most sites feasible and the candidate scan — the cost
  /// the sharded plane divides — dominates.
  Range deadline_per_gb{1.0, 3.0};

  /// Skewed, drifting dataset popularity (the watchdog's flash-crowd
  /// workload).  When zipf_exponent > 0, each query's dataset is drawn
  /// Zipf(zipf_exponent) over a rank ring instead of uniformly: dataset
  /// (rank − 1 + rotation) mod datasets, where the rotation advances by one
  /// every zipf_drift_period queries (0 = the hot set never moves).  The
  /// Zipf draws come from their own derive_seed substream; with the
  /// exponent at its 0 default every draw, and hence every existing
  /// (config, seed) instance, is bit-for-bit unchanged.
  double zipf_exponent = 0.0;
  std::size_t zipf_drift_period = 0;
};

/// Deterministically generate a finalized instance from the config.
Instance stream_instance(const StreamWorkloadConfig& cfg, std::uint64_t seed);

}  // namespace edgerep
