#include "workload/trace.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace edgerep {

Trace synthesize_trace(const TraceConfig& cfg, std::uint64_t seed) {
  if (cfg.num_datasets == 0 || cfg.num_apps == 0 || cfg.days <= 0.0) {
    throw std::invalid_argument("synthesize_trace: bad config");
  }
  Rng rng(derive_seed(seed, 0x70ace));
  Trace trace;
  trace.config = cfg;

  // Global app popularity: normalized Zipf shares.
  trace.app_popularity.resize(cfg.num_apps);
  double z = 0.0;
  for (std::size_t a = 0; a < cfg.num_apps; ++a) {
    trace.app_popularity[a] =
        1.0 / std::pow(static_cast<double>(a + 1), cfg.zipf_exponent);
    z += trace.app_popularity[a];
  }
  for (double& p : trace.app_popularity) p /= z;

  const double window_days = cfg.days / static_cast<double>(cfg.num_datasets);
  const double events_per_day =
      static_cast<double>(cfg.num_users) * cfg.sessions_per_user_day;
  trace.expected_events = events_per_day * cfg.days;

  trace.windows.reserve(cfg.num_datasets);
  for (std::size_t w = 0; w < cfg.num_datasets; ++w) {
    TraceWindow win;
    win.start_day = static_cast<double>(w) * window_days;
    win.end_day = win.start_day + window_days;
    // Weekly modulation: integrate a sinusoid with a 7-day period over the
    // window (weekends dip), plus multiplicative jitter.
    const double mid_day = 0.5 * (win.start_day + win.end_day);
    const double weekly =
        1.0 + cfg.weekly_amplitude * std::sin(2.0 * M_PI * mid_day / 7.0);
    const double jitter = std::exp(cfg.volume_noise * rng.normal());
    const double events = events_per_day * window_days * weekly * jitter;
    win.volume_gb = events * cfg.bytes_per_event / 1e9;

    // Per-window app shares: global Zipf perturbed by app-level jitter
    // (apps trend up and down week to week), renormalized.
    win.app_share.resize(cfg.num_apps);
    double sum = 0.0;
    for (std::size_t a = 0; a < cfg.num_apps; ++a) {
      const double noise = std::exp(0.3 * rng.normal());
      win.app_share[a] = trace.app_popularity[a] * noise;
      sum += win.app_share[a];
    }
    for (double& s : win.app_share) s /= sum;

    trace.total_volume_gb += win.volume_gb;
    trace.windows.push_back(std::move(win));
  }
  return trace;
}

std::vector<std::size_t> top_apps(const TraceWindow& w, std::size_t k) {
  std::vector<std::size_t> idx(w.app_share.size());
  std::iota(idx.begin(), idx.end(), 0);
  k = std::min(k, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), [&](std::size_t a, std::size_t b) {
                      return w.app_share[a] > w.app_share[b];
                    });
  idx.resize(k);
  return idx;
}

}  // namespace edgerep
