// Named workload scenarios: curated WorkloadConfig presets capturing the
// regimes the paper's evaluation moves through, so users and the CLI can
// say `--scenario scarce-edge` instead of hand-tuning a dozen knobs.
#pragma once

#include <string>
#include <vector>

#include "workload/generator.h"

namespace edgerep {

struct Scenario {
  std::string name;
  std::string description;
  WorkloadConfig config;
};

/// All built-in scenarios:
///  * paper-default   — §4.1 settings as-is (the figure benches' base)
///  * special-case    — paper-default restricted to one dataset per query
///  * scarce-edge     — halved cloudlet capacity, tight deadlines: heavy
///                      competition for edge GHz (widest algorithm spread)
///  * loose-qos       — generous deadlines: remote DCs usable, placement
///                      barely matters (algorithms should converge)
///  * replica-starved — K = 1: placement is a pure location decision
///  * big-data        — 4× dataset volumes with deadlines scaled to match
const std::vector<Scenario>& builtin_scenarios();

/// Lookup by name; throws std::invalid_argument with the list of valid
/// names when not found.
const Scenario& find_scenario(const std::string& name);

}  // namespace edgerep
