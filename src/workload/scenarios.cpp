#include "workload/scenarios.h"

#include <sstream>
#include <stdexcept>

namespace edgerep {

const std::vector<Scenario>& builtin_scenarios() {
  static const std::vector<Scenario> kScenarios = [] {
    std::vector<Scenario> v;

    {
      Scenario s;
      s.name = "paper-default";
      s.description = "ICPP'19 §4.1 settings: 6 DC / 24 CL / 2 SW, |S|∈[5,20],"
                      " |Q|∈[10,100], F≤7, K=3";
      v.push_back(std::move(s));
    }
    {
      Scenario s;
      s.name = "special-case";
      s.description = "paper-default with exactly one dataset per query "
                      "(the Appro-S setting)";
      s.config = special_case_config();
      v.push_back(std::move(s));
    }
    {
      Scenario s;
      s.name = "scarce-edge";
      s.description = "halved cloudlet GHz and tight QoS: maximal "
                      "competition for edge capacity";
      s.config.cl_capacity = {4.0, 8.0};
      s.config.deadline_per_gb = {0.10, 0.45};
      v.push_back(std::move(s));
    }
    {
      Scenario s;
      s.name = "loose-qos";
      s.description = "generous deadlines: remote data centers are viable "
                      "for nearly every query";
      s.config.deadline_per_gb = {1.5, 4.0};
      v.push_back(std::move(s));
    }
    {
      Scenario s;
      s.name = "replica-starved";
      s.description = "K = 1: each dataset lives in exactly one place";
      s.config.max_replicas = 1;
      v.push_back(std::move(s));
    }
    {
      Scenario s;
      s.name = "big-data";
      s.description = "4x dataset volumes (deadlines scale with volume "
                      "automatically); capacity pressure dominates";
      s.config.dataset_volume = {4.0, 24.0};
      v.push_back(std::move(s));
    }
    return v;
  }();
  return kScenarios;
}

const Scenario& find_scenario(const std::string& name) {
  for (const Scenario& s : builtin_scenarios()) {
    if (s.name == name) return s;
  }
  std::ostringstream os;
  os << "unknown scenario '" << name << "'; valid:";
  for (const Scenario& s : builtin_scenarios()) os << ' ' << s.name;
  throw std::invalid_argument(os.str());
}

}  // namespace edgerep
