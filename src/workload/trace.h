// Synthetic mobile-application usage trace.
//
// The paper's testbed experiments use a proprietary trace: "mobile
// application usage information from 3 million anonymous mobile users for a
// period of three months", divided into datasets by creation time, queried
// for app popularity and usage patterns.  We synthesize a statistically
// similar trace (DESIGN.md §4): Zipf-distributed app popularity, per-user
// session counts, a weekly activity modulation, and partitioning of the
// event stream into time-window datasets.  Only the aggregates the
// experiments consume are produced (per-window volumes and per-app volume
// shares) — the event stream itself is never materialized, so the generator
// scales to the full 3M-user population if desired.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace edgerep {

struct TraceConfig {
  std::size_t num_users = 30'000;  ///< scaled-down stand-in for 3M users
  std::size_t num_apps = 200;
  double zipf_exponent = 1.1;            ///< app popularity skew
  double days = 90.0;                    ///< three months
  double sessions_per_user_day = 8.0;
  double bytes_per_event = 2048.0;       ///< one usage log record
  std::size_t num_datasets = 12;         ///< time-window partitions
  double weekly_amplitude = 0.25;        ///< weekday/weekend swing (0..1)
  double volume_noise = 0.10;            ///< lognormal-ish jitter per window
};

/// One time-window dataset cut from the trace.
struct TraceWindow {
  double start_day = 0.0;
  double end_day = 0.0;
  double volume_gb = 0.0;
  /// Fraction of this window's volume attributable to each app (sums to 1).
  std::vector<double> app_share;
};

struct Trace {
  TraceConfig config;
  std::vector<TraceWindow> windows;
  std::vector<double> app_popularity;  ///< global Zipf shares (sum to 1)
  double total_volume_gb = 0.0;
  double expected_events = 0.0;
};

/// Deterministically synthesize a trace.
Trace synthesize_trace(const TraceConfig& cfg, std::uint64_t seed);

/// Top-k app indices of a window by volume share (descending).
std::vector<std::size_t> top_apps(const TraceWindow& w, std::size_t k);

}  // namespace edgerep
