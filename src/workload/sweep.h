// Experiment harness: run a set of algorithms over many random instances of
// one configuration (the paper averages 15 topologies per plotted point) and
// aggregate volume / throughput / runtime statistics.  Repetitions run in
// parallel on the global thread pool; results are deterministic because
// repetition r of base seed s always uses derive_seed(s, r).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cloud/plan.h"
#include "util/stats.h"
#include "workload/generator.h"

namespace edgerep {

/// A named placement algorithm under test.
struct Algorithm {
  std::string name;
  std::function<ReplicaPlan(const Instance&)> run;
};

/// Aggregated results of one algorithm at one sweep point.
struct AlgoStats {
  std::string name;
  RunningStat admitted_volume;   ///< objective (1), fully admitted queries
  RunningStat assigned_volume;   ///< per-demand credit (Appro-G's N')
  RunningStat throughput;        ///< admitted / total
  RunningStat replicas;          ///< replicas placed
  RunningStat utilization;       ///< committed / available computing resource
  RunningStat runtime_ms;        ///< wall-clock per run
  std::size_t validation_failures = 0;  ///< plans that failed `validate`
};

/// The paper's algorithm line-ups.
std::vector<Algorithm> algorithms_special();  ///< Appro-S, Greedy-S, Graph-S
std::vector<Algorithm> algorithms_general();  ///< Appro-G, Greedy-G, Graph-G
std::vector<Algorithm> algorithms_testbed_special();  ///< Appro-S, Popularity-S
std::vector<Algorithm> algorithms_testbed_general();  ///< Appro-G, Popularity-G

/// Run every algorithm on `reps` instances drawn from cfg with seeds
/// derive_seed(base_seed, r); every plan is validated before aggregation.
std::vector<AlgoStats> run_sweep_point(
    const WorkloadConfig& cfg, std::uint64_t base_seed, std::size_t reps,
    const std::vector<Algorithm>& algorithms, bool parallel = true);

}  // namespace edgerep
