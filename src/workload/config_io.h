// Plain-text serialization of WorkloadConfig ("key = value" lines, '#'
// comments) so experiment configurations can be archived next to their
// results and replayed exactly.  Unknown keys are rejected — a typo in a
// config file must not silently fall back to a default.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/generator.h"

namespace edgerep {

/// All tunable keys, e.g. "network_size", "dc_capacity.lo", "selectivity.hi".
std::vector<std::string> workload_config_keys();

/// Write every field (one per line, sorted as declared).
void write_workload_config(std::ostream& os, const WorkloadConfig& cfg);

/// Parse a config written by `write_workload_config` (or hand-edited).
/// Starts from defaults; listed keys override.  Throws std::runtime_error
/// on unknown keys or malformed values.
WorkloadConfig read_workload_config(std::istream& is);

/// Get/set one field by key (used by CLI overrides like --set key=value).
double get_field(const WorkloadConfig& cfg, const std::string& key);
void set_field(WorkloadConfig& cfg, const std::string& key, double value);

}  // namespace edgerep
