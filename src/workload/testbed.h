// The emulated geo-distributed testbed (paper §4.3).
//
// The paper leases 20 DigitalOcean VMs — data centers in San Francisco, New
// York, Toronto and Singapore plus 16 cloudlets — joined through two
// switches and a local controller.  We rebuild that topology with
// measured-order inter-region round-trip times and per-GB transfer delays
// derived from link bandwidths (DESIGN.md §4), populate it with datasets cut
// from the synthetic mobile-app-usage trace, and issue analytic queries from
// the paper's own examples ("the most popular applications, at what time the
// found applications would be used, and the usage pattern of some mobile
// applications").
#pragma once

#include <cstdint>

#include "cloud/instance.h"
#include "net/topology.h"
#include "workload/trace.h"

namespace edgerep {

/// The four testbed regions.
enum class Region : std::uint8_t { kSanFrancisco, kNewYork, kToronto, kSingapore };
inline constexpr std::size_t kNumRegions = 4;

const char* to_string(Region r) noexcept;

/// One-way propagation delay (seconds) between two regions (measured-order
/// DigitalOcean inter-region RTT/2 values).
double region_latency(Region a, Region b) noexcept;

struct TestbedConfig {
  std::size_t cloudlets_per_region = 4;  ///< 4×4 = 16 cloudlets, 4 DCs
  Range dc_capacity{32.0, 64.0};         ///< VM-scale data centers (GHz)
  Range cl_capacity{4.0, 8.0};
  Range dc_proc_delay{0.01, 0.03};  ///< s per GB
  Range cl_proc_delay{0.04, 0.12};
  double intra_region_gbps = 10.0;  ///< cloudlet ↔ regional DC bandwidth
  double inter_region_gbps = 1.0;   ///< DC ↔ DC / switch trunks
};

/// Geo topology with per-GB delays = 8/bandwidth_gbps + propagation.
struct TestbedTopology {
  TwoTierTopology topo;
  std::vector<Region> region_of_node;  ///< indexed by NodeId
};

TestbedTopology make_testbed_topology(const TestbedConfig& cfg, Rng& rng);

/// Analytic query templates over the trace (paper §4.3 "Datasets").
enum class QueryTemplate : std::uint8_t {
  kTopApps,       ///< most popular applications in a period (small α)
  kTimeOfUse,     ///< when those applications are used (medium-small α)
  kUsagePattern,  ///< usage pattern of specific applications (medium α)
};

struct TestbedWorkloadConfig {
  TestbedConfig testbed;
  TraceConfig trace;
  std::size_t num_queries = 60;
  std::size_t min_windows_per_query = 1;  ///< datasets (time windows) per query
  std::size_t max_windows_per_query = 4;  ///< the F knob of Figure 7
  Range rate{0.75, 1.25};                 ///< GHz per GB
  /// Deadline per GB of the largest demanded window.  Testbed transfer
  /// delays are seconds-per-GB scale, so budgets are too.
  Range deadline_per_gb{0.8, 6.0};
  std::size_t max_replicas = 3;  ///< the K knob of Figure 8
};

/// Build a finalized instance: testbed topology + trace datasets (each time
/// window becomes one dataset, originating at a region DC) + template
/// queries issued from random cloudlets.
Instance make_testbed_instance(const TestbedWorkloadConfig& cfg,
                               std::uint64_t seed);

}  // namespace edgerep
