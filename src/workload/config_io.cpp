#include "workload/config_io.h"

#include <cmath>
#include <functional>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace edgerep {

namespace {

struct Field {
  const char* key;
  std::function<double(const WorkloadConfig&)> get;
  std::function<void(WorkloadConfig&, double)> set;
};

std::size_t to_count(double v, const char* key) {
  if (v < 0.0 || v != std::floor(v)) {
    throw std::runtime_error(std::string("config: ") + key +
                             " must be a non-negative integer");
  }
  return static_cast<std::size_t>(v);
}

const std::vector<Field>& fields() {
  auto range_fields = [](const char* lo_key, const char* hi_key,
                         Range WorkloadConfig::*member,
                         std::vector<Field>& out) {
    out.push_back({lo_key,
                   [member](const WorkloadConfig& c) { return (c.*member).lo; },
                   [member](WorkloadConfig& c, double v) { (c.*member).lo = v; }});
    out.push_back({hi_key,
                   [member](const WorkloadConfig& c) { return (c.*member).hi; },
                   [member](WorkloadConfig& c, double v) { (c.*member).hi = v; }});
  };
  static const std::vector<Field> kFields = [&] {
    std::vector<Field> f;
    f.push_back({"network_size",
                 [](const WorkloadConfig& c) {
                   return static_cast<double>(c.network_size);
                 },
                 [](WorkloadConfig& c, double v) {
                   c.network_size = to_count(v, "network_size");
                 }});
    f.push_back({"topology.link_prob",
                 [](const WorkloadConfig& c) { return c.topology.link_prob; },
                 [](WorkloadConfig& c, double v) { c.topology.link_prob = v; }});
    f.push_back({"topology.metro_delay.lo",
                 [](const WorkloadConfig& c) { return c.topology.metro_delay.lo; },
                 [](WorkloadConfig& c, double v) { c.topology.metro_delay.lo = v; }});
    f.push_back({"topology.metro_delay.hi",
                 [](const WorkloadConfig& c) { return c.topology.metro_delay.hi; },
                 [](WorkloadConfig& c, double v) { c.topology.metro_delay.hi = v; }});
    f.push_back({"topology.wan_delay.lo",
                 [](const WorkloadConfig& c) { return c.topology.wan_delay.lo; },
                 [](WorkloadConfig& c, double v) { c.topology.wan_delay.lo = v; }});
    f.push_back({"topology.wan_delay.hi",
                 [](const WorkloadConfig& c) { return c.topology.wan_delay.hi; },
                 [](WorkloadConfig& c, double v) { c.topology.wan_delay.hi = v; }});
    range_fields("dc_capacity.lo", "dc_capacity.hi",
                 &WorkloadConfig::dc_capacity, f);
    range_fields("cl_capacity.lo", "cl_capacity.hi",
                 &WorkloadConfig::cl_capacity, f);
    range_fields("dc_proc_delay.lo", "dc_proc_delay.hi",
                 &WorkloadConfig::dc_proc_delay, f);
    range_fields("cl_proc_delay.lo", "cl_proc_delay.hi",
                 &WorkloadConfig::cl_proc_delay, f);
    range_fields("dataset_volume.lo", "dataset_volume.hi",
                 &WorkloadConfig::dataset_volume, f);
    range_fields("rate.lo", "rate.hi", &WorkloadConfig::rate, f);
    range_fields("selectivity.lo", "selectivity.hi",
                 &WorkloadConfig::selectivity, f);
    range_fields("deadline_per_gb.lo", "deadline_per_gb.hi",
                 &WorkloadConfig::deadline_per_gb, f);
    auto count_field = [&f](const char* key,
                            std::size_t WorkloadConfig::*member) {
      f.push_back({key,
                   [member](const WorkloadConfig& c) {
                     return static_cast<double>(c.*member);
                   },
                   [member, key](WorkloadConfig& c, double v) {
                     c.*member = to_count(v, key);
                   }});
    };
    count_field("min_datasets", &WorkloadConfig::min_datasets);
    count_field("max_datasets", &WorkloadConfig::max_datasets);
    count_field("min_queries", &WorkloadConfig::min_queries);
    count_field("max_queries", &WorkloadConfig::max_queries);
    count_field("min_datasets_per_query",
                &WorkloadConfig::min_datasets_per_query);
    count_field("max_datasets_per_query",
                &WorkloadConfig::max_datasets_per_query);
    count_field("max_replicas", &WorkloadConfig::max_replicas);
    f.push_back({"home_at_cloudlet",
                 [](const WorkloadConfig& c) { return c.home_at_cloudlet; },
                 [](WorkloadConfig& c, double v) { c.home_at_cloudlet = v; }});
    return f;
  }();
  return kFields;
}

const Field& find_field(const std::string& key) {
  for (const Field& f : fields()) {
    if (key == f.key) return f;
  }
  throw std::runtime_error("config: unknown key '" + key + "'");
}

}  // namespace

std::vector<std::string> workload_config_keys() {
  std::vector<std::string> keys;
  keys.reserve(fields().size());
  for (const Field& f : fields()) keys.emplace_back(f.key);
  return keys;
}

double get_field(const WorkloadConfig& cfg, const std::string& key) {
  return find_field(key).get(cfg);
}

void set_field(WorkloadConfig& cfg, const std::string& key, double value) {
  find_field(key).set(cfg, value);
}

void write_workload_config(std::ostream& os, const WorkloadConfig& cfg) {
  os << "# edgerep workload configuration\n";
  os.precision(std::numeric_limits<double>::max_digits10);
  for (const Field& f : fields()) {
    os << f.key << " = " << f.get(cfg) << '\n';
  }
}

WorkloadConfig read_workload_config(std::istream& is) {
  WorkloadConfig cfg;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    // Trim and skip blank lines.
    const auto begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("config: line " + std::to_string(lineno) +
                               ": expected 'key = value'");
    }
    auto trim = [](std::string s) {
      const auto a = s.find_first_not_of(" \t");
      const auto b = s.find_last_not_of(" \t");
      return a == std::string::npos ? std::string{} : s.substr(a, b - a + 1);
    };
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    try {
      std::size_t pos = 0;
      const double v = std::stod(value, &pos);
      if (pos != value.size()) throw std::invalid_argument(value);
      set_field(cfg, key, v);
    } catch (const std::runtime_error&) {
      throw;  // unknown key / bad count: keep the specific message
    } catch (const std::exception&) {
      throw std::runtime_error("config: line " + std::to_string(lineno) +
                               ": malformed value '" + value + "'");
    }
  }
  return cfg;
}

}  // namespace edgerep
