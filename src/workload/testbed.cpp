#include "workload/testbed.h"

#include <algorithm>
#include <stdexcept>

namespace edgerep {

const char* to_string(Region r) noexcept {
  switch (r) {
    case Region::kSanFrancisco:
      return "sfo";
    case Region::kNewYork:
      return "nyc";
    case Region::kToronto:
      return "tor";
    case Region::kSingapore:
      return "sgp";
  }
  return "?";
}

double region_latency(Region a, Region b) noexcept {
  // One-way latencies (s): half of typical DigitalOcean inter-region RTTs.
  static constexpr double kLatency[kNumRegions][kNumRegions] = {
      // sfo      nyc      tor      sgp
      {0.001, 0.035, 0.040, 0.090},  // sfo
      {0.035, 0.001, 0.010, 0.115},  // nyc
      {0.040, 0.010, 0.001, 0.110},  // tor
      {0.090, 0.115, 0.110, 0.001},  // sgp
  };
  return kLatency[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
}

TestbedTopology make_testbedtopology_impl(const TestbedConfig& cfg, Rng& rng) {
  TestbedTopology tb;
  Graph& g = tb.topo.graph;
  const double intra_delay = 8.0 / cfg.intra_region_gbps;  // s per GB
  const double inter_delay = 8.0 / cfg.inter_region_gbps;

  // One DC per region.
  for (std::size_t r = 0; r < kNumRegions; ++r) {
    const NodeId dc = g.add_node(NodeRole::kDataCenter);
    tb.topo.data_centers.push_back(dc);
    tb.region_of_node.push_back(static_cast<Region>(r));
  }
  // Two gateway switches, as in the paper's Figure 6: one for the American
  // regions, one for Asia-Pacific.
  const NodeId sw_us = g.add_node(NodeRole::kSwitch);
  tb.region_of_node.push_back(Region::kNewYork);
  const NodeId sw_ap = g.add_node(NodeRole::kSwitch);
  tb.region_of_node.push_back(Region::kSingapore);
  tb.topo.switches = {sw_us, sw_ap};

  // Cloudlets round-robin across regions, linked to their regional DC.
  for (std::size_t i = 0; i < cfg.cloudlets_per_region * kNumRegions; ++i) {
    const auto region = static_cast<Region>(i % kNumRegions);
    const NodeId cl = g.add_node(NodeRole::kCloudlet);
    tb.topo.cloudlets.push_back(cl);
    tb.region_of_node.push_back(region);
    const NodeId dc = tb.topo.data_centers[i % kNumRegions];
    const double jitter = rng.uniform(0.9, 1.1);
    g.add_edge(cl, dc,
               (intra_delay + region_latency(region, region)) * jitter);
    // Cloudlets also attach to their hemisphere's gateway switch.
    const NodeId sw = region == Region::kSingapore ? sw_ap : sw_us;
    const Region sw_region =
        region == Region::kSingapore ? Region::kSingapore : Region::kNewYork;
    g.add_edge(cl, sw, intra_delay + region_latency(region, sw_region));
  }

  // DC ↔ DC trunk mesh with region propagation.
  for (std::size_t a = 0; a < kNumRegions; ++a) {
    for (std::size_t b = a + 1; b < kNumRegions; ++b) {
      g.add_edge(tb.topo.data_centers[a], tb.topo.data_centers[b],
                 inter_delay + region_latency(static_cast<Region>(a),
                                              static_cast<Region>(b)));
    }
  }
  // Switch trunk and switch → DC uplinks.
  g.add_edge(sw_us, sw_ap,
             inter_delay + region_latency(Region::kNewYork,
                                          Region::kSingapore));
  for (std::size_t r = 0; r < kNumRegions; ++r) {
    const NodeId sw = static_cast<Region>(r) == Region::kSingapore ? sw_ap : sw_us;
    const Region sw_region = static_cast<Region>(r) == Region::kSingapore
                                 ? Region::kSingapore
                                 : Region::kNewYork;
    g.add_edge(tb.topo.data_centers[r], sw,
               intra_delay + region_latency(static_cast<Region>(r), sw_region));
  }
  return tb;
}

TestbedTopology make_testbed_topology(const TestbedConfig& cfg, Rng& rng) {
  return make_testbedtopology_impl(cfg, rng);
}

Instance make_testbed_instance(const TestbedWorkloadConfig& cfg,
                               std::uint64_t seed) {
  if (cfg.min_windows_per_query < 1 ||
      cfg.min_windows_per_query > cfg.max_windows_per_query) {
    throw std::invalid_argument("make_testbed_instance: bad window counts");
  }
  Rng topo_rng(derive_seed(seed, 11));
  Rng site_rng(derive_seed(seed, 12));
  Rng query_rng(derive_seed(seed, 13));

  TestbedTopology tb = make_testbed_topology(cfg.testbed, topo_rng);
  // Keep region info before moving the graph into the instance.
  const std::vector<Region> region_of_node = tb.region_of_node;

  Instance inst(std::move(tb.topo.graph));
  for (const NodeId n : tb.topo.cloudlets) {
    inst.add_site(n, cfg.testbed.cl_capacity.sample(site_rng),
                  cfg.testbed.cl_proc_delay.sample(site_rng));
  }
  std::vector<SiteId> dc_sites;
  for (const NodeId n : tb.topo.data_centers) {
    dc_sites.push_back(inst.add_site(n, cfg.testbed.dc_capacity.sample(site_rng),
                                     cfg.testbed.dc_proc_delay.sample(site_rng)));
  }
  const std::size_t num_cloudlets = tb.topo.cloudlets.size();

  // Trace windows become datasets, "randomly distributed into the data
  // centers and cloudlets of the testbed" (paper §4.3) — we pin origins to
  // region DCs where service logs accumulate.
  const Trace trace = synthesize_trace(cfg.trace, derive_seed(seed, 14));
  for (std::size_t w = 0; w < trace.windows.size(); ++w) {
    const SiteId origin = dc_sites[w % dc_sites.size()];
    inst.add_dataset(trace.windows[w].volume_gb, origin,
                     "window" + std::to_string(w));
  }
  const std::size_t num_windows = trace.windows.size();

  for (std::size_t q = 0; q < cfg.num_queries; ++q) {
    // Users issue queries from the edge: home is a random cloudlet.
    const auto home = static_cast<SiteId>(
        query_rng.uniform_u64(0, num_cloudlets - 1));
    const auto templ = static_cast<QueryTemplate>(query_rng.uniform_u64(0, 2));
    Range selectivity{0.1, 0.4};  // kUsagePattern
    if (templ == QueryTemplate::kTopApps) selectivity = {0.02, 0.10};
    if (templ == QueryTemplate::kTimeOfUse) selectivity = {0.05, 0.20};
    // A contiguous range of time windows (analytics over a period).
    const std::size_t hi = std::min(cfg.max_windows_per_query, num_windows);
    const std::size_t lo = std::min(cfg.min_windows_per_query, hi);
    const auto span =
        static_cast<std::size_t>(query_rng.uniform_u64(lo, hi));
    const auto first = static_cast<std::size_t>(
        query_rng.uniform_u64(0, num_windows - span));
    std::vector<DatasetDemand> demands;
    double max_volume = 0.0;
    for (std::size_t w = first; w < first + span; ++w) {
      demands.push_back(DatasetDemand{static_cast<DatasetId>(w),
                                      selectivity.sample(query_rng)});
      max_volume =
          std::max(max_volume, trace.windows[w].volume_gb);
    }
    const double deadline =
        cfg.deadline_per_gb.sample(query_rng) * max_volume;
    inst.add_query(home, cfg.rate.sample(query_rng), deadline,
                   std::move(demands));
  }

  inst.set_max_replicas(cfg.max_replicas);
  inst.finalize();
  return inst;
}

}  // namespace edgerep
