// Random fault scenarios for an instance — the failure-injection analogue of
// the workload generator.
//
// A scenario draws a fixed number of site crashes, link failures, and
// capacity-degradation episodes uniformly over the horizon, each followed by
// its recovery after an exponentially distributed downtime.  Every draw
// derives from one 64-bit seed through independent substreams
// (`derive_seed`), so a trace is a pure function of (instance, config, seed)
// and can be archived next to the experiment results and replayed bit-exactly
// — the same contract the arrival process honors (sim/online.h).
//
// Distinct components fail per scenario: a scenario with three site crashes
// picks three *different* sites (capped at the eligible population), so the
// blast radius is predictable from the config.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cloud/instance.h"
#include "net/topology.h"
#include "sim/faults.h"

namespace edgerep {

struct FaultScenarioConfig {
  /// Faults strike uniformly in [0, horizon) seconds; recoveries may land
  /// past the horizon (a simulator simply never reaches them).
  double horizon = 50.0;

  std::size_t site_crashes = 1;
  std::size_t link_failures = 0;
  std::size_t capacity_losses = 0;

  /// Mean of the exponential downtime before the matching recovery event.
  /// 0 disables recovery: the component stays failed forever.
  double mean_repair_time = 10.0;

  /// Fraction of availability lost in a capacity-degradation episode.
  Range loss_fraction{0.3, 0.7};

  /// Restrict crashes and degradation to cloudlets (data centers are
  /// hardened).  Ignored when the instance has no cloudlet sites.
  bool cloudlets_only = true;
};

/// All tunable keys, e.g. "horizon", "loss_fraction.lo".
std::vector<std::string> fault_config_keys();

/// "key = value" serialization, same format and strictness as the workload
/// config (workload/config_io.h): unknown keys are rejected on read.
void write_fault_config(std::ostream& os, const FaultScenarioConfig& cfg);
FaultScenarioConfig read_fault_config(std::istream& is);

double get_fault_field(const FaultScenarioConfig& cfg, const std::string& key);
void set_fault_field(FaultScenarioConfig& cfg, const std::string& key,
                     double value);

/// Deterministically draw a validated, time-ordered trace for `inst`.
FaultTrace generate_fault_trace(const Instance& inst,
                                const FaultScenarioConfig& cfg,
                                std::uint64_t seed);

/// Archive / replay a concrete trace ("time kind site edge fraction" rows,
/// '#' comments).  Reading validates against the instance.
void write_fault_trace(std::ostream& os, const FaultTrace& trace);
FaultTrace read_fault_trace(std::istream& is, const Instance& inst);

}  // namespace edgerep
