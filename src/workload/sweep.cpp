#include "workload/sweep.h"

#include <chrono>
#include <mutex>

#include "baselines/graph_baseline.h"
#include "baselines/greedy.h"
#include "baselines/popularity.h"
#include "core/appro.h"
#include "util/thread_pool.h"

namespace edgerep {

std::vector<Algorithm> algorithms_special() {
  return {
      {"Appro-S", [](const Instance& i) { return appro_s(i).plan; }},
      {"Greedy-S", [](const Instance& i) { return greedy_s(i).plan; }},
      {"Graph-S", [](const Instance& i) { return graph_s(i).plan; }},
  };
}

std::vector<Algorithm> algorithms_general() {
  return {
      {"Appro-G", [](const Instance& i) { return appro_g(i).plan; }},
      {"Greedy-G", [](const Instance& i) { return greedy_g(i).plan; }},
      {"Graph-G", [](const Instance& i) { return graph_g(i).plan; }},
  };
}

std::vector<Algorithm> algorithms_testbed_special() {
  return {
      {"Appro-S", [](const Instance& i) { return appro_s(i).plan; }},
      {"Popularity-S", [](const Instance& i) { return popularity_s(i).plan; }},
  };
}

std::vector<Algorithm> algorithms_testbed_general() {
  return {
      {"Appro-G", [](const Instance& i) { return appro_g(i).plan; }},
      {"Popularity-G", [](const Instance& i) { return popularity_g(i).plan; }},
  };
}

std::vector<AlgoStats> run_sweep_point(const WorkloadConfig& cfg,
                                       std::uint64_t base_seed,
                                       std::size_t reps,
                                       const std::vector<Algorithm>& algorithms,
                                       bool parallel) {
  std::vector<AlgoStats> stats(algorithms.size());
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    stats[a].name = algorithms[a].name;
  }
  std::mutex merge_mutex;

  auto run_rep = [&](std::size_t r) {
    const Instance inst = generate_instance(cfg, derive_seed(base_seed, r));
    // Local accumulation, merged once, so repetitions stay independent.
    std::vector<AlgoStats> local(algorithms.size());
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      const auto t0 = std::chrono::steady_clock::now();
      const ReplicaPlan plan = algorithms[a].run(inst);
      const auto t1 = std::chrono::steady_clock::now();
      const PlanMetrics pm = evaluate(plan);
      const ValidationResult vr = validate(plan);
      AlgoStats& s = local[a];
      s.admitted_volume.add(pm.admitted_volume);
      s.assigned_volume.add(pm.assigned_volume);
      s.throughput.add(pm.throughput);
      s.replicas.add(static_cast<double>(pm.replicas_placed));
      s.utilization.add(pm.utilization);
      s.runtime_ms.add(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
      if (!vr.ok) ++s.validation_failures;
    }
    const std::lock_guard<std::mutex> lock(merge_mutex);
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      stats[a].admitted_volume.merge(local[a].admitted_volume);
      stats[a].assigned_volume.merge(local[a].assigned_volume);
      stats[a].throughput.merge(local[a].throughput);
      stats[a].replicas.merge(local[a].replicas);
      stats[a].utilization.merge(local[a].utilization);
      stats[a].runtime_ms.merge(local[a].runtime_ms);
      stats[a].validation_failures += local[a].validation_failures;
    }
  };

  if (parallel) {
    global_pool().parallel_for(reps, run_rep);
  } else {
    for (std::size_t r = 0; r < reps; ++r) run_rep(r);
  }
  return stats;
}

}  // namespace edgerep
