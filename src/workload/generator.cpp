#include "workload/generator.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace edgerep {

Instance generate_instance(const WorkloadConfig& cfg, std::uint64_t seed) {
  if (cfg.min_datasets_per_query < 1 ||
      cfg.min_datasets_per_query > cfg.max_datasets_per_query) {
    throw std::invalid_argument("generate_instance: bad datasets-per-query");
  }
  if (cfg.min_datasets > cfg.max_datasets ||
      cfg.min_queries > cfg.max_queries || cfg.min_datasets == 0) {
    throw std::invalid_argument("generate_instance: bad count ranges");
  }
  // Independent substreams per concern keep the instance stable when one
  // aspect of the config changes (e.g. more queries does not reshuffle the
  // topology).
  Rng topo_rng(derive_seed(seed, 1));
  Rng site_rng(derive_seed(seed, 2));
  Rng data_rng(derive_seed(seed, 3));
  Rng query_rng(derive_seed(seed, 4));

  const TwoTierConfig topo_cfg = scaled_config(cfg.network_size, cfg.topology);
  TwoTierTopology topo = make_two_tier(topo_cfg, topo_rng);

  Instance inst(std::move(topo.graph));
  for (const NodeId n : topo.cloudlets) {
    inst.add_site(n, cfg.cl_capacity.sample(site_rng),
                  cfg.cl_proc_delay.sample(site_rng));
  }
  for (const NodeId n : topo.data_centers) {
    inst.add_site(n, cfg.dc_capacity.sample(site_rng),
                  cfg.dc_proc_delay.sample(site_rng));
  }
  const std::size_t num_sites = inst.sites().size();

  const auto num_datasets = static_cast<std::size_t>(data_rng.uniform_u64(
      cfg.min_datasets, cfg.max_datasets));
  for (std::size_t n = 0; n < num_datasets; ++n) {
    const auto origin = static_cast<SiteId>(
        data_rng.uniform_u64(0, num_sites - 1));
    inst.add_dataset(cfg.dataset_volume.sample(data_rng), origin);
  }

  const auto num_queries = static_cast<std::size_t>(query_rng.uniform_u64(
      cfg.min_queries, cfg.max_queries));
  for (std::size_t m = 0; m < num_queries; ++m) {
    // Home site: mostly cloudlets (indices [0, #CL) by construction above).
    const std::size_t num_cl = topo.cloudlets.size();
    SiteId home;
    if (num_cl > 0 && query_rng.bernoulli(cfg.home_at_cloudlet)) {
      home = static_cast<SiteId>(query_rng.uniform_u64(0, num_cl - 1));
    } else {
      home = static_cast<SiteId>(query_rng.uniform_u64(0, num_sites - 1));
    }
    const std::size_t f_hi =
        std::min(cfg.max_datasets_per_query, num_datasets);
    const std::size_t f_lo = std::min(cfg.min_datasets_per_query, f_hi);
    const auto num_demanded =
        static_cast<std::size_t>(query_rng.uniform_u64(f_lo, f_hi));
    const auto chosen = query_rng.sample_indices(num_datasets, num_demanded);
    std::vector<DatasetDemand> demands;
    demands.reserve(chosen.size());
    double max_volume = 0.0;
    for (const std::size_t n : chosen) {
      demands.push_back(DatasetDemand{static_cast<DatasetId>(n),
                                      cfg.selectivity.sample(query_rng)});
      max_volume = std::max(max_volume, inst.dataset(
                                            static_cast<DatasetId>(n)).volume);
    }
    const double deadline = cfg.deadline_per_gb.sample(query_rng) * max_volume;
    inst.add_query(home, cfg.rate.sample(query_rng), deadline,
                   std::move(demands));
  }

  inst.set_max_replicas(cfg.max_replicas);
  inst.finalize();
  return inst;
}

WorkloadConfig special_case_config(std::size_t network_size) {
  WorkloadConfig cfg;
  cfg.network_size = network_size;
  cfg.min_datasets_per_query = 1;
  cfg.max_datasets_per_query = 1;
  return cfg;
}

}  // namespace edgerep
