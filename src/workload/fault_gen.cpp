#include "workload/fault_gen.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/rng.h"

namespace edgerep {

namespace {

struct Field {
  const char* key;
  std::function<double(const FaultScenarioConfig&)> get;
  std::function<void(FaultScenarioConfig&, double)> set;
};

std::size_t to_count(double v, const char* key) {
  if (v < 0.0 || v != std::floor(v)) {
    throw std::runtime_error(std::string("fault config: ") + key +
                             " must be a non-negative integer");
  }
  return static_cast<std::size_t>(v);
}

const std::vector<Field>& fields() {
  static const std::vector<Field> kFields = [] {
    std::vector<Field> f;
    f.push_back({"horizon",
                 [](const FaultScenarioConfig& c) { return c.horizon; },
                 [](FaultScenarioConfig& c, double v) { c.horizon = v; }});
    auto count_field = [&f](const char* key,
                            std::size_t FaultScenarioConfig::*member) {
      f.push_back({key,
                   [member](const FaultScenarioConfig& c) {
                     return static_cast<double>(c.*member);
                   },
                   [member, key](FaultScenarioConfig& c, double v) {
                     c.*member = to_count(v, key);
                   }});
    };
    count_field("site_crashes", &FaultScenarioConfig::site_crashes);
    count_field("link_failures", &FaultScenarioConfig::link_failures);
    count_field("capacity_losses", &FaultScenarioConfig::capacity_losses);
    f.push_back({"mean_repair_time",
                 [](const FaultScenarioConfig& c) { return c.mean_repair_time; },
                 [](FaultScenarioConfig& c, double v) {
                   c.mean_repair_time = v;
                 }});
    f.push_back({"loss_fraction.lo",
                 [](const FaultScenarioConfig& c) { return c.loss_fraction.lo; },
                 [](FaultScenarioConfig& c, double v) {
                   c.loss_fraction.lo = v;
                 }});
    f.push_back({"loss_fraction.hi",
                 [](const FaultScenarioConfig& c) { return c.loss_fraction.hi; },
                 [](FaultScenarioConfig& c, double v) {
                   c.loss_fraction.hi = v;
                 }});
    f.push_back({"cloudlets_only",
                 [](const FaultScenarioConfig& c) {
                   return c.cloudlets_only ? 1.0 : 0.0;
                 },
                 [](FaultScenarioConfig& c, double v) {
                   c.cloudlets_only = v != 0.0;
                 }});
    return f;
  }();
  return kFields;
}

const Field& find_field(const std::string& key) {
  for (const Field& f : fields()) {
    if (key == f.key) return f;
  }
  throw std::runtime_error("fault config: unknown key '" + key + "'");
}

/// Indices of the sites a scenario may crash or degrade.
std::vector<SiteId> eligible_sites(const Instance& inst, bool cloudlets_only) {
  std::vector<SiteId> out;
  for (const Site& s : inst.sites()) {
    if (!cloudlets_only || !s.is_data_center()) out.push_back(s.id);
  }
  if (out.empty()) {  // all-DC instance: fall back to the full population
    for (const Site& s : inst.sites()) out.push_back(s.id);
  }
  return out;
}

/// First `n` entries of a Fisher–Yates shuffle: `n` distinct picks.
template <typename T>
std::vector<T> pick_distinct(std::vector<T> pool, std::size_t n, Rng& rng) {
  rng.shuffle(std::span<T>(pool));
  pool.resize(std::min(n, pool.size()));
  return pool;
}

}  // namespace

std::vector<std::string> fault_config_keys() {
  std::vector<std::string> keys;
  keys.reserve(fields().size());
  for (const Field& f : fields()) keys.emplace_back(f.key);
  return keys;
}

double get_fault_field(const FaultScenarioConfig& cfg, const std::string& key) {
  return find_field(key).get(cfg);
}

void set_fault_field(FaultScenarioConfig& cfg, const std::string& key,
                     double value) {
  find_field(key).set(cfg, value);
}

void write_fault_config(std::ostream& os, const FaultScenarioConfig& cfg) {
  os << "# edgerep fault scenario configuration\n";
  os.precision(std::numeric_limits<double>::max_digits10);
  for (const Field& f : fields()) {
    os << f.key << " = " << f.get(cfg) << '\n';
  }
}

FaultScenarioConfig read_fault_config(std::istream& is) {
  FaultScenarioConfig cfg;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("fault config: line " + std::to_string(lineno) +
                               ": expected 'key = value'");
    }
    auto trim = [](std::string s) {
      const auto a = s.find_first_not_of(" \t");
      const auto b = s.find_last_not_of(" \t");
      return a == std::string::npos ? std::string{} : s.substr(a, b - a + 1);
    };
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    try {
      std::size_t pos = 0;
      const double v = std::stod(value, &pos);
      if (pos != value.size()) throw std::invalid_argument(value);
      set_fault_field(cfg, key, v);
    } catch (const std::runtime_error&) {
      throw;  // unknown key / bad count: keep the specific message
    } catch (const std::exception&) {
      throw std::runtime_error("fault config: line " + std::to_string(lineno) +
                               ": malformed value '" + value + "'");
    }
  }
  return cfg;
}

FaultTrace generate_fault_trace(const Instance& inst,
                                const FaultScenarioConfig& cfg,
                                std::uint64_t seed) {
  if (!inst.finalized()) {
    throw std::invalid_argument("generate_fault_trace: instance not finalized");
  }
  if (!(cfg.horizon > 0.0) || !std::isfinite(cfg.horizon)) {
    throw std::invalid_argument("generate_fault_trace: horizon must be > 0");
  }
  if (cfg.mean_repair_time < 0.0) {
    throw std::invalid_argument(
        "generate_fault_trace: mean_repair_time must be >= 0");
  }
  Rng crash_rng(derive_seed(seed, 0));
  Rng link_rng(derive_seed(seed, 1));
  Rng cap_rng(derive_seed(seed, 2));

  std::vector<FaultEvent> events;
  auto with_recovery = [&](FaultEvent down, FaultKind up_kind, Rng& rng) {
    events.push_back(down);
    if (cfg.mean_repair_time > 0.0) {
      FaultEvent up = down;
      up.kind = up_kind;
      up.time = down.time + rng.exponential(1.0 / cfg.mean_repair_time);
      events.push_back(up);
    }
  };

  for (const SiteId s : pick_distinct(eligible_sites(inst, cfg.cloudlets_only),
                                      cfg.site_crashes, crash_rng)) {
    FaultEvent e;
    e.time = crash_rng.uniform(0.0, cfg.horizon);
    e.kind = FaultKind::kSiteDown;
    e.site = s;
    with_recovery(e, FaultKind::kSiteUp, crash_rng);
  }

  std::vector<EdgeId> edge_pool(inst.graph().num_edges());
  std::iota(edge_pool.begin(), edge_pool.end(), EdgeId{0});
  for (const EdgeId eid :
       pick_distinct(std::move(edge_pool), cfg.link_failures, link_rng)) {
    FaultEvent e;
    e.time = link_rng.uniform(0.0, cfg.horizon);
    e.kind = FaultKind::kLinkDown;
    e.edge = eid;
    with_recovery(e, FaultKind::kLinkUp, link_rng);
  }

  for (const SiteId s : pick_distinct(eligible_sites(inst, cfg.cloudlets_only),
                                      cfg.capacity_losses, cap_rng)) {
    FaultEvent e;
    e.time = cap_rng.uniform(0.0, cfg.horizon);
    e.kind = FaultKind::kCapacityLoss;
    e.site = s;
    double frac = cap_rng.uniform(cfg.loss_fraction.lo, cfg.loss_fraction.hi);
    e.fraction = std::clamp(frac, 1e-6, 1.0);
    with_recovery(e, FaultKind::kCapacityRestore, cap_rng);
  }

  // Time-order with a stable tie-break on generation order (so ties resolve
  // identically on every platform).
  std::vector<std::size_t> order(events.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (events[a].time != events[b].time) {
      return events[a].time < events[b].time;
    }
    return a < b;
  });
  FaultTrace trace;
  trace.events.reserve(events.size());
  for (const std::size_t i : order) trace.events.push_back(events[i]);
  validate_fault_trace(inst, trace);
  return trace;
}

void write_fault_trace(std::ostream& os, const FaultTrace& trace) {
  os << "# edgerep fault trace: time kind site edge fraction\n";
  os.precision(std::numeric_limits<double>::max_digits10);
  for (const FaultEvent& e : trace.events) {
    os << e.time << ' ' << to_string(e.kind) << ' '
       << static_cast<std::int64_t>(e.site == kInvalidSite
                                        ? -1
                                        : static_cast<std::int64_t>(e.site))
       << ' '
       << static_cast<std::int64_t>(e.edge == kInvalidEdge
                                        ? -1
                                        : static_cast<std::int64_t>(e.edge))
       << ' ' << e.fraction << '\n';
  }
}

FaultTrace read_fault_trace(std::istream& is, const Instance& inst) {
  FaultTrace trace;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string kind;
    FaultEvent e;
    std::int64_t site = -1;
    std::int64_t edge = -1;
    if (!(ls >> e.time)) continue;  // blank line
    if (!(ls >> kind >> site >> edge >> e.fraction)) {
      throw std::runtime_error("fault trace: line " + std::to_string(lineno) +
                               ": expected 'time kind site edge fraction'");
    }
    std::string extra;
    if (ls >> extra) {
      throw std::runtime_error("fault trace: line " + std::to_string(lineno) +
                               ": trailing tokens");
    }
    bool known = false;
    for (std::size_t k = 0; k < kFaultKindCount; ++k) {
      if (kind == to_string(static_cast<FaultKind>(k))) {
        e.kind = static_cast<FaultKind>(k);
        known = true;
        break;
      }
    }
    if (!known) {
      throw std::runtime_error("fault trace: line " + std::to_string(lineno) +
                               ": unknown kind '" + kind + "'");
    }
    e.site = site < 0 ? kInvalidSite : static_cast<SiteId>(site);
    e.edge = edge < 0 ? kInvalidEdge : static_cast<EdgeId>(edge);
    trace.events.push_back(e);
  }
  validate_fault_trace(inst, trace);
  return trace;
}

}  // namespace edgerep
