// Random problem instances following the paper's simulation settings (§4.1):
//
//  * two-tier topology from GT-ITM-style generation (6 DCs, 24 cloudlets,
//    2 switches at the default size; pairwise link probability 0.2),
//  * data-center computing capacity U[200, 700] GHz, cloudlet capacity
//    U[8, 16] GHz,
//  * dataset volumes U[1, 6] GB, computing rate U[0.75, 1.25] GHz per GB,
//  * |S| ∈ [5, 20] datasets, |Q| ∈ [10, 100] queries,
//  * datasets per query ∈ [1, F] (F ≤ 7), and
//  * QoS deadlines proportional to the largest volume the query demands
//    ("the delay requirement of each query depends on the size of dataset
//    demanded by the query").
//
// All draws derive from one 64-bit seed, so an instance is a pure function
// of (config, seed).
#pragma once

#include <cstdint>

#include "cloud/instance.h"
#include "net/topology.h"

namespace edgerep {

struct WorkloadConfig {
  /// Total |DC| + |CL| + |SW|; role mix scales from the paper's 6/24/2.
  std::size_t network_size = 32;
  TwoTierConfig topology;  ///< delay ranges & link probability (counts are
                           ///< overridden from network_size)

  Range dc_capacity{200.0, 700.0};  ///< GHz
  Range cl_capacity{8.0, 16.0};     ///< GHz
  Range dc_proc_delay{0.01, 0.04};  ///< d(v): s per GB at data centers
  Range cl_proc_delay{0.05, 0.25};  ///< d(v): s per GB at cloudlets

  Range dataset_volume{1.0, 6.0};  ///< GB
  Range rate{0.75, 1.25};          ///< r_m: GHz per GB

  std::size_t min_datasets = 5;   ///< |S| lower bound
  std::size_t max_datasets = 20;  ///< |S| upper bound
  std::size_t min_queries = 10;   ///< |Q| lower bound
  std::size_t max_queries = 100;  ///< |Q| upper bound

  std::size_t min_datasets_per_query = 1;
  std::size_t max_datasets_per_query = 7;  ///< F

  Range selectivity{0.05, 0.8};  ///< α_{nm}

  /// Deadline = (draw from here) × the largest demanded volume, so bigger
  /// requests get proportionally more QoS budget (paper §4.1) while the
  /// per-GB budget still varies across users.  The default range makes
  /// evaluation at nearby cloudlets feasible for most queries but remote
  /// data-center evaluation feasible only for the looser ones — the regime
  /// where replica placement decisions actually matter.
  Range deadline_per_gb{0.15, 0.8};

  /// Fraction of query homes placed at cloudlets (queries originate at the
  /// network edge; the rest aggregate at data centers).
  double home_at_cloudlet = 0.85;

  std::size_t max_replicas = 3;  ///< K
};

/// Deterministically generate a finalized instance.
Instance generate_instance(const WorkloadConfig& cfg, std::uint64_t seed);

/// Convenience: a config for the special case (exactly one dataset/query).
WorkloadConfig special_case_config(std::size_t network_size = 32);

}  // namespace edgerep
