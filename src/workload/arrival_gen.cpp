#include "workload/arrival_gen.h"

#include <cmath>
#include <span>
#include <stdexcept>

#include "net/topology.h"
#include "util/rng.h"

namespace edgerep {

std::vector<Arrival> generate_arrival_stream(const Instance& inst, double rate,
                                             std::uint64_t seed,
                                             ArrivalOrder order,
                                             double wave_amplitude,
                                             double wave_period) {
  if (!inst.finalized()) {
    throw std::invalid_argument("generate_arrival_stream: not finalized");
  }
  if (!(rate > 0.0)) {
    throw std::invalid_argument("generate_arrival_stream: rate must be > 0");
  }
  const std::size_t n = inst.queries().size();
  std::vector<QueryId> ids(n);
  for (QueryId m = 0; m < n; ++m) ids[m] = m;
  if (order == ArrivalOrder::kShuffled) {
    Rng shuffle_rng(derive_seed(seed, 1));
    shuffle_rng.shuffle(std::span<QueryId>(ids));
  }
  const bool wave = wave_amplitude > 0.0 && wave_period > 0.0;
  Rng gap_rng(derive_seed(seed, 2));
  std::vector<Arrival> stream(n);
  double t = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    double gap = gap_rng.exponential(rate);
    if (wave) {
      // Same diurnal modulation as OnlineArrivalStream::next — the gap draw
      // above is unchanged, so amplitude 0 keeps historical streams exact.
      constexpr double kTwoPi = 6.283185307179586476925286766559;
      double mod = 1.0 + wave_amplitude * std::sin(kTwoPi * t / wave_period);
      if (mod < 0.05) mod = 0.05;
      gap /= mod;
    }
    t += gap;
    stream[k] = {t, ids[k]};
  }
  return stream;
}

Instance stream_instance(const StreamWorkloadConfig& cfg, std::uint64_t seed) {
  if (cfg.sites < 2 || cfg.datasets == 0 || cfg.queries == 0) {
    throw std::invalid_argument("stream_instance: bad counts");
  }
  // Independent substreams per concern, mirroring generate_instance: the
  // site draw is stable when the query count changes and vice versa.
  Rng topo_rng(derive_seed(seed, 1));
  Rng site_rng(derive_seed(seed, 2));
  Rng data_rng(derive_seed(seed, 3));
  Rng query_rng(derive_seed(seed, 4));
  // Zipf popularity draws live on their own substream so turning the skew
  // on perturbs nothing but the dataset choice itself.
  const bool zipf_on = cfg.zipf_exponent > 0.0;
  Rng zipf_rng(derive_seed(seed, 5));
  std::size_t queries_drawn = 0;
  auto draw_dataset = [&]() -> DatasetId {
    // The uniform draw always happens so query_rng stays aligned: with the
    // skew on, every non-dataset field (home, rate, deadline, selectivity)
    // is bit-identical to the uniform instance of the same seed.
    const auto uniform =
        static_cast<DatasetId>(query_rng.uniform_u64(0, cfg.datasets - 1));
    if (zipf_on) {
      const std::uint64_t rank =
          zipf_rng.zipf(cfg.datasets, cfg.zipf_exponent);
      const std::size_t rotation = cfg.zipf_drift_period > 0
                                       ? queries_drawn / cfg.zipf_drift_period
                                       : 0;
      return static_cast<DatasetId>((rank - 1 + rotation) % cfg.datasets);
    }
    return uniform;
  };

  const double p =
      cfg.avg_degree / static_cast<double>(cfg.sites - 1);
  Instance inst(gnp(cfg.sites, p, cfg.link_delay, topo_rng));
  for (std::size_t n = 0; n < cfg.sites; ++n) {
    inst.add_site(static_cast<NodeId>(n), cfg.capacity.sample(site_rng),
                  cfg.proc_delay.sample(site_rng));
  }
  for (std::size_t n = 0; n < cfg.datasets; ++n) {
    const auto origin =
        static_cast<SiteId>(data_rng.uniform_u64(0, cfg.sites - 1));
    inst.add_dataset(cfg.volume.sample(data_rng), origin);
  }
  for (std::size_t m = 0; m < cfg.queries; ++m) {
    const auto home =
        static_cast<SiteId>(query_rng.uniform_u64(0, cfg.sites - 1));
    if (cfg.max_demands <= 1) {
      // Special case, drawn in the historical order so every existing
      // (config, seed) pair keeps its exact instance bit-for-bit.
      const DatasetId ds = draw_dataset();
      const double vol = inst.dataset(ds).volume;
      const double deadline = cfg.deadline_per_gb.sample(query_rng) * vol;
      inst.add_query(home, cfg.rate.sample(query_rng), deadline,
                     {DatasetDemand{ds, cfg.selectivity.sample(query_rng)}});
      ++queries_drawn;
      continue;
    }
    const std::size_t want = query_rng.uniform_u64(1, cfg.max_demands);
    std::vector<DatasetDemand> demands;
    demands.reserve(want);
    double vol = 0.0;
    for (std::size_t d = 0; d < want; ++d) {
      const DatasetId ds = draw_dataset();
      bool dup = false;
      for (const DatasetDemand& have : demands) dup |= have.dataset == ds;
      if (dup) continue;  // distinct datasets; duplicates shrink the draw
      vol += inst.dataset(ds).volume;
      demands.push_back({ds, cfg.selectivity.sample(query_rng)});
    }
    const double deadline = cfg.deadline_per_gb.sample(query_rng) * vol;
    inst.add_query(home, cfg.rate.sample(query_rng), deadline,
                   std::move(demands));
    ++queries_drawn;
  }
  inst.set_max_replicas(cfg.max_replicas);
  inst.finalize();
  return inst;
}

}  // namespace edgerep
