#include "workload/arrival_gen.h"

#include <span>
#include <stdexcept>

#include "net/topology.h"
#include "util/rng.h"

namespace edgerep {

std::vector<Arrival> generate_arrival_stream(const Instance& inst, double rate,
                                             std::uint64_t seed,
                                             ArrivalOrder order) {
  if (!inst.finalized()) {
    throw std::invalid_argument("generate_arrival_stream: not finalized");
  }
  if (!(rate > 0.0)) {
    throw std::invalid_argument("generate_arrival_stream: rate must be > 0");
  }
  const std::size_t n = inst.queries().size();
  std::vector<QueryId> ids(n);
  for (QueryId m = 0; m < n; ++m) ids[m] = m;
  if (order == ArrivalOrder::kShuffled) {
    Rng shuffle_rng(derive_seed(seed, 1));
    shuffle_rng.shuffle(std::span<QueryId>(ids));
  }
  Rng gap_rng(derive_seed(seed, 2));
  std::vector<Arrival> stream(n);
  double t = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    t += gap_rng.exponential(rate);
    stream[k] = {t, ids[k]};
  }
  return stream;
}

Instance stream_instance(const StreamWorkloadConfig& cfg, std::uint64_t seed) {
  if (cfg.sites < 2 || cfg.datasets == 0 || cfg.queries == 0) {
    throw std::invalid_argument("stream_instance: bad counts");
  }
  // Independent substreams per concern, mirroring generate_instance: the
  // site draw is stable when the query count changes and vice versa.
  Rng topo_rng(derive_seed(seed, 1));
  Rng site_rng(derive_seed(seed, 2));
  Rng data_rng(derive_seed(seed, 3));
  Rng query_rng(derive_seed(seed, 4));

  const double p =
      cfg.avg_degree / static_cast<double>(cfg.sites - 1);
  Instance inst(gnp(cfg.sites, p, cfg.link_delay, topo_rng));
  for (std::size_t n = 0; n < cfg.sites; ++n) {
    inst.add_site(static_cast<NodeId>(n), cfg.capacity.sample(site_rng),
                  cfg.proc_delay.sample(site_rng));
  }
  for (std::size_t n = 0; n < cfg.datasets; ++n) {
    const auto origin =
        static_cast<SiteId>(data_rng.uniform_u64(0, cfg.sites - 1));
    inst.add_dataset(cfg.volume.sample(data_rng), origin);
  }
  for (std::size_t m = 0; m < cfg.queries; ++m) {
    const auto home =
        static_cast<SiteId>(query_rng.uniform_u64(0, cfg.sites - 1));
    if (cfg.max_demands <= 1) {
      // Special case, drawn in the historical order so every existing
      // (config, seed) pair keeps its exact instance bit-for-bit.
      const auto ds =
          static_cast<DatasetId>(query_rng.uniform_u64(0, cfg.datasets - 1));
      const double vol = inst.dataset(ds).volume;
      const double deadline = cfg.deadline_per_gb.sample(query_rng) * vol;
      inst.add_query(home, cfg.rate.sample(query_rng), deadline,
                     {DatasetDemand{ds, cfg.selectivity.sample(query_rng)}});
      continue;
    }
    const std::size_t want = query_rng.uniform_u64(1, cfg.max_demands);
    std::vector<DatasetDemand> demands;
    demands.reserve(want);
    double vol = 0.0;
    for (std::size_t d = 0; d < want; ++d) {
      const auto ds =
          static_cast<DatasetId>(query_rng.uniform_u64(0, cfg.datasets - 1));
      bool dup = false;
      for (const DatasetDemand& have : demands) dup |= have.dataset == ds;
      if (dup) continue;  // distinct datasets; duplicates shrink the draw
      vol += inst.dataset(ds).volume;
      demands.push_back({ds, cfg.selectivity.sample(query_rng)});
    }
    const double deadline = cfg.deadline_per_gb.sample(query_rng) * vol;
    inst.add_query(home, cfg.rate.sample(query_rng), deadline,
                   std::move(demands));
  }
  inst.set_max_replicas(cfg.max_replicas);
  inst.finalize();
  return inst;
}

}  // namespace edgerep
