// Per-shard admission engine for the streaming plane (phase 1 of an epoch).
//
// Each shard owns a DualState and prices its queries only against its
// ShardMap scan set (owned ∪ boundary sites), using the same vectorized
// pricing kernel as the batch path.  Because the full CandidateIndex is
// quadratic in (queries × sites) — hopeless at 1M queries × 10k sites — the
// engine builds each demand's pruned candidate list on the fly over the
// shard's scan sites into reusable SoA scratch buffers: per query the work
// is O(|scan set|), which is how S shards cut the admission cost by ~S even
// on a single core.
//
// Epoch protocol (determinism contract):
//  * begin_epoch(plan) freezes the global state for this shard — it copies
//    the plan's load ledger (bit-exact: the values were produced by the same
//    `+=` sequence reconciliation replays) and folds newly committed replica
//    sites into persistent per-dataset byte-masks via a high-water mark.
//  * admit() runs whole queries atomically against that snapshot plus the
//    shard's own pending admissions, emitting an AdmissionIntent per
//    admitted query.  A query with any infeasible demand rolls back its
//    dual raises, load debits and pending replica bits exactly.
//  * Intents are applied (or refused) serially by the reconciler; dual
//    raises of conflict losers deliberately persist — the shard has seen
//    real contention for those sites, so pricing them higher is
//    conservative, never inadmissible.
// Phase 1 never touches shared mutable state, so shards run in parallel
// with no synchronization and the result is independent of interleaving.
#pragma once

#include <cstdint>
#include <vector>

#include "cloud/instance.h"
#include "cloud/plan.h"
#include "core/appro.h"
#include "core/pricing.h"
#include "core/primal_dual.h"
#include "stream/shard_map.h"

namespace edgerep {

/// Knobs of the streaming admission plane (shared by ShardEngine and
/// run_stream).
struct StreamOptions {
  std::size_t shards = 1;
  /// Micro-epoch length in seconds of arrival time.
  double epoch_length = 0.05;
  /// How many times a reconcile-conflict loser is re-queued before it is
  /// rejected for good.
  std::size_t max_requeues = 2;
  BoundaryPolicy boundary = BoundaryPolicy::kNone;
  /// Pricing implementation inside each shard (kernel by default; the
  /// scalar oracle is the equivalence baseline).
  ApproOptions::Pricing pricing = ApproOptions::Pricing::kVectorized;
  double eta_weight = 0.25;     ///< matches ApproOptions::eta_weight
  double replica_weight = 0.5;  ///< matches ApproOptions::replica_weight
  /// Run phase 1 of each epoch on the global thread pool.
  bool parallel = true;
};

/// A shard's committed phase-1 decision for one query: where each demand
/// should run and whether the shard believes a fresh replica is required
/// (the reconciler re-derives the truth against the live plan).
struct AdmissionIntent {
  struct Placement {
    DatasetId dataset = 0;
    SiteId site = kInvalidSite;
    bool place_replica = false;
  };
  QueryId query = 0;
  std::vector<Placement> placements;  ///< in demand order
};

class ShardEngine {
 public:
  ShardEngine(const Instance& inst, const ShardMap& map, std::uint32_t shard,
              const StreamOptions& opts);

  /// Freeze the global plan for this epoch: snapshot its load ledger, clear
  /// last epoch's pending replica bits, and fold newly committed replica
  /// sites into the masks.
  void begin_epoch(const ReplicaPlan& plan);

  /// Phase-1 admission of one query against the epoch snapshot plus this
  /// shard's pending state.  On success fills `out` and returns true; on
  /// failure restores all shard state exactly and returns false.
  bool admit(const Query& q, AdmissionIntent& out);

  [[nodiscard]] const DualState& duals() const noexcept { return duals_; }
  [[nodiscard]] std::uint32_t shard() const noexcept { return shard_; }

 private:
  [[nodiscard]] std::span<const std::uint8_t> mask_row(DatasetId d) const {
    return {replica_mask_.data() + static_cast<std::size_t>(d) * num_sites_,
            num_sites_};
  }

  const Instance* inst_;
  const ShardMap* map_;
  std::uint32_t shard_;
  StreamOptions opts_;
  std::size_t num_sites_;

  DualState duals_;
  std::vector<double> local_load_;  ///< per site: epoch snapshot + pending
  std::vector<double> avail_;      ///< per site: A(v_l)
  std::vector<double> inv_avail_;  ///< per site: 1 / max(A(v_l), 1e-12)

  /// Per (dataset, site) byte-mask: frozen-plan replicas ∪ shard-pending
  /// placements.  Flat row-major [dataset][site].
  std::vector<std::uint8_t> replica_mask_;
  std::vector<std::uint32_t> mask_synced_;   ///< per dataset: plan sites folded
  std::vector<std::uint32_t> replica_seen_;  ///< per dataset: frozen + pending
  /// Pending bits set this epoch (cleared at the next begin_epoch).
  std::vector<AdmissionIntent::Placement> epoch_pending_;

  // Per-demand SoA scratch (reused across queries; sized to the scan set).
  std::vector<SiteId> cand_site_;
  std::vector<double> cand_inv_;
  std::vector<double> cand_dod_;
  // Per-query undo journal for atomic rollback.
  struct LoadUndo {
    SiteId site;
    double prev_load;
  };
  std::vector<LoadUndo> load_journal_;
  std::vector<AdmissionIntent::Placement> query_pending_;
};

}  // namespace edgerep
