// Streaming admission plane: continuous query arrivals batched into
// micro-epochs, admitted in parallel by region-sharded engines, reconciled
// serially against the global plan and capacity ledger.
//
// Epoch protocol:
//  1. Collect the epoch's batch: conflict losers re-queued from the
//     previous epoch first (deterministic order), then the arrivals whose
//     timestamps fall inside the epoch window.  Route each query to the
//     shard owning its home site.
//  2. Phase 1 (parallel): every shard admits its sub-batch against the
//     frozen plan snapshot using the vectorized pricing kernel, emitting
//     AdmissionIntents.  Shards share no mutable state, so the phase's
//     result is independent of thread interleaving.
//  3. Phase 2 (serial): replay intents in (shard id, intent order) —
//     reserve each demand on the CapacityLedger, re-derive replica
//     placements against the live plan, then commit plan + ledger together
//     or release and re-queue the loser (bounded by max_requeues).
//
// Determinism contract: a fixed (instance, arrival stream, StreamOptions)
// triple yields a bit-identical plan regardless of thread count or
// scheduling, because phase 1 is read-frozen and phase 2 replays in a fixed
// order.  With shards == 1 and a kQueryId-ordered stream the result is
// exactly the batch run of appro with Order::kInput (tests pin this).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cloud/instance.h"
#include "cloud/plan.h"
#include "stream/ledger.h"
#include "stream/shard_engine.h"
#include "workload/arrival_gen.h"

namespace edgerep {

/// Per-shard accounting of one streaming run.
struct ShardStats {
  std::size_t routed = 0;     ///< queries routed to this shard (incl. retries)
  std::size_t admitted = 0;   ///< intents committed by the reconciler
  std::size_t infeasible = 0; ///< phase-1 rejections (no feasible site)
  std::size_t conflicts = 0;  ///< intents refused by the reconciler
};

struct StreamResult {
  ReplicaPlan plan;
  PlanMetrics metrics;
  std::size_t epochs = 0;
  std::size_t queries_admitted = 0;
  std::size_t queries_rejected = 0;
  std::size_t requeues = 0;          ///< conflict losers sent to a later epoch
  std::size_t conflicts = 0;         ///< reconcile refusals (≥ requeues)
  std::size_t ledger_reserves = 0;
  std::size_t ledger_releases = 0;
  std::vector<ShardStats> shard_stats;
};

/// Run the streaming admission plane over a pre-materialized arrival stream
/// (one arrival per query, nondecreasing times — see generate_arrival_stream).
StreamResult run_stream(const Instance& inst, std::span<const Arrival> stream,
                        const StreamOptions& opts = {});

}  // namespace edgerep
