#include "stream/stream_engine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "util/thread_pool.h"

namespace edgerep {

namespace {

struct PendingQuery {
  QueryId query = 0;
};

/// Outcome of replaying one intent against the live plan + ledger.
enum class Reconcile : std::uint8_t { kCommitted, kConflict };

/// Phase-2 replay of one shard intent.  Reserve every demand's resource on
/// the ledger first (pure capacity pre-flight), then re-derive replica
/// placements against the live plan (another shard may have placed — or
/// used up the budget for — the same dataset earlier in this epoch), and
/// only then mutate the plan, which is guaranteed not to throw.
Reconcile reconcile(const Instance& inst, const AdmissionIntent& intent,
                    ReplicaPlan& plan, CapacityLedger& ledger,
                    SiteId* conflict_site) {
  const Query& q = inst.query(intent.query);
  for (const AdmissionIntent::Placement& p : intent.placements) {
    const double need = inst.dataset(p.dataset).volume * q.rate;
    if (!ledger.try_reserve(p.site, need)) {
      *conflict_site = p.site;
      ledger.release_all();
      return Reconcile::kConflict;
    }
  }
  // Replica budget re-check against the live plan.  A placement the shard
  // thought was free-riding an existing replica may need a fresh one here
  // (the shard-local replica it saw belonged to a conflict loser), and vice
  // versa.  Demands of one query address distinct datasets, so counting
  // per-placement against the plan is exact.
  for (const AdmissionIntent::Placement& p : intent.placements) {
    if (!plan.has_replica(p.dataset, p.site) &&
        plan.replica_count(p.dataset) >= inst.max_replicas()) {
      *conflict_site = p.site;
      ledger.release_all();
      return Reconcile::kConflict;
    }
  }
  ledger.commit_all();
  for (const AdmissionIntent::Placement& p : intent.placements) {
    if (!plan.has_replica(p.dataset, p.site)) {
      plan.place_replica(p.dataset, p.site);
    }
    plan.assign(intent.query, p.dataset, p.site);
  }
  return Reconcile::kCommitted;
}

void record_run_metrics(const StreamResult& res) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& runs = obs::metrics().counter(
      "edgerep_stream_runs_total", "run_stream invocations");
  static obs::Counter& epochs = obs::metrics().counter(
      "edgerep_stream_epochs_total", "micro-epochs processed");
  static obs::Counter& admitted = obs::metrics().counter(
      "edgerep_stream_queries_admitted_total",
      "queries admitted by the streaming plane");
  static obs::Counter& rejected = obs::metrics().counter(
      "edgerep_stream_queries_rejected_total",
      "queries rejected by the streaming plane");
  // requeues/conflicts counters are incremented per epoch inside run_stream
  // (same registered names), so a long run is observable while it executes.
  runs.inc();
  epochs.inc(res.epochs);
  admitted.inc(res.queries_admitted);
  rejected.inc(res.queries_rejected);
  obs::metrics()
      .gauge("edgerep_stream_ledger_reserves",
             "capacity reservations taken by the last streaming run")
      .set(static_cast<double>(res.ledger_reserves));
  obs::metrics()
      .gauge("edgerep_stream_ledger_releases",
             "capacity reservations released by the last streaming run")
      .set(static_cast<double>(res.ledger_releases));
  for (std::size_t sh = 0; sh < res.shard_stats.size(); ++sh) {
    const std::string suffix = "{shard=\"" + std::to_string(sh) + "\"}";
    obs::metrics()
        .gauge("edgerep_stream_shard_admitted" + suffix,
               "queries admitted per shard in the last streaming run")
        .set(static_cast<double>(res.shard_stats[sh].admitted));
    obs::metrics()
        .gauge("edgerep_stream_shard_conflicts" + suffix,
               "reconcile conflicts per shard in the last streaming run")
        .set(static_cast<double>(res.shard_stats[sh].conflicts));
  }
}

}  // namespace

StreamResult run_stream(const Instance& inst, std::span<const Arrival> stream,
                        const StreamOptions& opts) {
  EDGEREP_TRACE_SCOPE("stream.run");
  if (!inst.finalized()) {
    throw std::invalid_argument("run_stream: instance not finalized");
  }
  if (!(opts.epoch_length > 0.0)) {
    throw std::invalid_argument("run_stream: epoch_length must be > 0");
  }
  const std::size_t shards =
      std::max<std::size_t>(1, std::min(opts.shards, inst.sites().size()));

  const ShardMap map(inst, shards, opts.boundary);
  std::vector<ShardEngine> engines;
  engines.reserve(shards);
  for (std::uint32_t sh = 0; sh < shards; ++sh) {
    engines.emplace_back(inst, map, sh, opts);
  }

  // Obs facets, sampled once (PR 3 pattern): every disabled path is one
  // relaxed atomic load at run start and nothing afterwards.  Journal
  // records, audit entries, and per-epoch counters are emitted only from
  // the serial sections of the loop, so their content and order are
  // independent of thread count.
  const bool metrics_on = obs::metrics_enabled();
  const bool audit_on = obs::audit_enabled();
  const bool rec_on = obs::recorder_enabled();
  obs::Recorder* const rec = rec_on ? &obs::recorder() : nullptr;
  // Watchdog feeds happen only in the serial sections below (epoch begin
  // and phase-2 reconciliation), so the alert stream is byte-identical
  // across thread counts, like the journal.
  const bool wd_on = obs::watchdog_enabled();
  obs::Watchdog* const wd = wd_on ? &obs::watchdog() : nullptr;
  if (wd != nullptr) wd->begin_run();
  std::vector<obs::AuditEntry> audit_entries;

  StreamResult res{ReplicaPlan(inst), {}, 0, 0, 0, 0, 0, 0, 0, {}};
  res.shard_stats.resize(shards);
  CapacityLedger ledger(inst);
  std::vector<std::uint32_t> retries(inst.queries().size(), 0);

  std::vector<PendingQuery> requeued;
  std::vector<std::vector<PendingQuery>> shard_batch(shards);
  std::vector<std::vector<AdmissionIntent>> shard_intents(shards);
  std::vector<std::vector<QueryId>> shard_infeasible(shards);

  std::size_t cursor = 0;
  std::size_t epoch = 0;
  while (cursor < stream.size() || !requeued.empty()) {
    // Skip empty windows in O(1): jump to the epoch holding the next
    // arrival when nothing is queued for this one.
    if (requeued.empty() && cursor < stream.size()) {
      const auto next = static_cast<std::size_t>(
          std::floor(stream[cursor].time / opts.epoch_length));
      epoch = std::max(epoch, next);
    }
    const double window_end =
        static_cast<double>(epoch + 1) * opts.epoch_length;

    // Batch: re-queued losers first (their arrival preceded this window),
    // then this window's arrivals, routed in order.
    for (auto& b : shard_batch) b.clear();
    for (const PendingQuery& pq : requeued) {
      const std::uint32_t sh = map.shard_of_query(inst.query(pq.query));
      shard_batch[sh].push_back(pq);
      ++res.shard_stats[sh].routed;
    }
    requeued.clear();
    while (cursor < stream.size() && stream[cursor].time < window_end) {
      const QueryId m = stream[cursor].query;
      const std::uint32_t sh = map.shard_of_query(inst.query(m));
      shard_batch[sh].push_back({m});
      ++res.shard_stats[sh].routed;
      ++cursor;
    }

    if (rec_on) {
      std::size_t batch = 0;
      for (const auto& b : shard_batch) batch += b.size();
      obs::JournalRecord r;
      r.time = static_cast<double>(epoch) * opts.epoch_length;
      r.v0 = window_end;
      r.a = static_cast<std::uint32_t>(batch);
      r.b = static_cast<std::uint32_t>(epoch);
      r.site = obs::kNoSite;
      r.kind = static_cast<std::uint8_t>(obs::RecordKind::kEpochBegin);
      rec->append(r);
    }
    if (wd != nullptr) {
      // One arrival-rate sample per non-empty shard, ascending shard id;
      // the shard plays the role of a region in the detector state.
      for (std::uint32_t sh = 0; sh < shards; ++sh) {
        if (shard_batch[sh].empty()) continue;
        wd->on_stream_epoch(static_cast<double>(epoch) * opts.epoch_length,
                            sh, shard_batch[sh].size(), opts.epoch_length);
      }
    }

    // Phase 1: parallel per-shard admission against the frozen plan.
    {
      EDGEREP_TRACE_SCOPE("stream.phase1");
      auto run_shard = [&](std::size_t sh) {
        ShardEngine& eng = engines[sh];
        eng.begin_epoch(res.plan);
        auto& intents = shard_intents[sh];
        auto& infeasible = shard_infeasible[sh];
        intents.clear();
        infeasible.clear();
        for (const PendingQuery& pq : shard_batch[sh]) {
          AdmissionIntent intent;
          if (eng.admit(inst.query(pq.query), intent)) {
            intents.push_back(std::move(intent));
          } else {
            infeasible.push_back(pq.query);
          }
        }
      };
      if (opts.parallel && shards > 1) {
        global_pool().parallel_for(shards, run_shard);
      } else {
        for (std::size_t sh = 0; sh < shards; ++sh) run_shard(sh);
      }
    }

    // Phase 2: serial reconciliation in (shard id, intent order).
    {
      EDGEREP_TRACE_SCOPE("stream.reconcile");
      const std::uint64_t reconcile_t0 = metrics_on ? obs::now_ns() : 0;
      const std::size_t conflicts_before = res.conflicts;
      const std::size_t requeues_before = res.requeues;
      std::size_t epoch_intents = 0;
      for (std::size_t sh = 0; sh < shards; ++sh) {
        epoch_intents += shard_intents[sh].size();
        for (const AdmissionIntent& intent : shard_intents[sh]) {
          if (rec_on) {
            obs::JournalRecord r;
            r.time = window_end;
            r.a = intent.query;
            r.b = static_cast<std::uint32_t>(sh);
            r.site = obs::kNoSite;
            r.kind = static_cast<std::uint8_t>(obs::RecordKind::kIntent);
            r.arg = static_cast<std::uint8_t>(
                std::min<std::size_t>(intent.placements.size(), 0xff));
            rec->append(r);
          }
          SiteId conflict_site = kInvalidSite;
          if (reconcile(inst, intent, res.plan, ledger, &conflict_site) ==
              Reconcile::kCommitted) {
            ++res.queries_admitted;
            ++res.shard_stats[sh].admitted;
            if (rec_on) {
              obs::JournalRecord r;
              r.time = window_end;
              r.a = intent.query;
              r.b = static_cast<std::uint32_t>(sh);
              r.site = obs::kNoSite;
              r.kind = static_cast<std::uint8_t>(obs::RecordKind::kCommit);
              rec->append(r);
            }
            if (wd != nullptr) {
              for (const AdmissionIntent::Placement& p : intent.placements) {
                wd->on_demand(window_end, p.dataset);
              }
            }
            continue;
          }
          ++res.conflicts;
          ++res.shard_stats[sh].conflicts;
          if (rec_on) {
            obs::JournalRecord r;
            r.time = window_end;
            r.a = intent.query;
            r.b = static_cast<std::uint32_t>(sh);
            r.site = static_cast<std::uint32_t>(conflict_site);
            r.kind = static_cast<std::uint8_t>(obs::RecordKind::kConflict);
            rec->append(r);
          }
          if (retries[intent.query] < opts.max_requeues) {
            ++retries[intent.query];
            ++res.requeues;
            requeued.push_back({intent.query});
            if (rec_on) {
              obs::JournalRecord r;
              r.time = window_end;
              r.a = intent.query;
              r.b = static_cast<std::uint32_t>(sh);
              r.kind = static_cast<std::uint8_t>(obs::RecordKind::kRequeue);
              r.arg = static_cast<std::uint8_t>(
                  std::min<std::uint32_t>(retries[intent.query], 0xff));
              rec->append(r);
            }
            if (audit_on) {
              obs::AuditEntry& e = audit_entries.emplace_back();
              e.query = intent.query;
              e.dataset = intent.placements.empty()
                              ? 0
                              : intent.placements[0].dataset;
              e.admitted = false;
              e.reason = obs::AuditReason::kReconcileConflict;
              e.site = static_cast<std::uint32_t>(conflict_site);
            }
          } else {
            ++res.queries_rejected;
            if (rec_on) {
              obs::JournalRecord r;
              r.time = window_end;
              r.a = intent.query;
              r.b = static_cast<std::uint32_t>(sh);
              r.kind =
                  static_cast<std::uint8_t>(obs::RecordKind::kStreamReject);
              r.arg = 2;  // requeue budget spent
              rec->append(r);
            }
          }
        }
        // Phase-1 infeasibility is terminal: load and θ only grow over the
        // stream, so the same shard can never admit the query later.
        res.queries_rejected += shard_infeasible[sh].size();
        res.shard_stats[sh].infeasible += shard_infeasible[sh].size();
        if (rec_on) {
          for (const QueryId m : shard_infeasible[sh]) {
            obs::JournalRecord r;
            r.time = window_end;
            r.a = m;
            r.b = static_cast<std::uint32_t>(sh);
            r.kind = static_cast<std::uint8_t>(obs::RecordKind::kStreamReject);
            r.arg = 0;  // phase-1 infeasible
            rec->append(r);
          }
        }
      }
      if (metrics_on) {
        static obs::Counter& intents_total = obs::metrics().counter(
            "edgerep_stream_intents_total",
            "phase-1 admission intents reaching reconciliation");
        static obs::Counter& requeues_total = obs::metrics().counter(
            "edgerep_stream_requeues_total",
            "conflict losers re-queued into a later epoch");
        static obs::Counter& conflicts_total = obs::metrics().counter(
            "edgerep_stream_reconcile_conflicts_total",
            "intents refused during epoch reconciliation");
        static obs::Counter& reconcile_ns_total = obs::metrics().counter(
            "edgerep_stream_reconcile_ns_total",
            "wall time spent in serial phase-2 reconciliation");
        intents_total.inc(epoch_intents);
        conflicts_total.inc(res.conflicts - conflicts_before);
        requeues_total.inc(res.requeues - requeues_before);
        reconcile_ns_total.inc(obs::now_ns() - reconcile_t0);
      }
    }
    ++res.epochs;
    ++epoch;
  }

  if (audit_on && !audit_entries.empty()) {
    for (obs::AuditEntry& e : audit_entries) e.algorithm = "stream";
    obs::audit_log().record_batch(audit_entries);
  }
  res.ledger_reserves = ledger.reserves();
  res.ledger_releases = ledger.releases();
  res.metrics = evaluate(res.plan);
  record_run_metrics(res);
  return res;
}

}  // namespace edgerep
