#include "stream/ledger.h"

#include <stdexcept>

namespace edgerep {

CapacityLedger::CapacityLedger(const Instance& inst) : inst_(&inst) {
  if (!inst.finalized()) {
    throw std::invalid_argument("CapacityLedger: instance not finalized");
  }
  load_.assign(inst.sites().size(), 0.0);
}

bool CapacityLedger::try_reserve(SiteId s, double need) {
  if (!fits(s, need)) {
    ++conflicts_;
    return false;
  }
  journal_.push_back({s, load_[s]});
  load_[s] += need;
  ++reserves_;
  return true;
}

void CapacityLedger::release_all() {
  while (!journal_.empty()) {
    const Reservation& r = journal_.back();
    load_[r.site] = r.prev_load;
    journal_.pop_back();
    ++releases_;
  }
}

}  // namespace edgerep
