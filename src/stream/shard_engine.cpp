#include "stream/shard_engine.h"

#include <algorithm>

namespace edgerep {

ShardEngine::ShardEngine(const Instance& inst, const ShardMap& map,
                         std::uint32_t shard, const StreamOptions& opts)
    : inst_(&inst),
      map_(&map),
      shard_(shard),
      opts_(opts),
      num_sites_(inst.sites().size()),
      duals_(inst) {
  local_load_.assign(num_sites_, 0.0);
  avail_.resize(num_sites_);
  inv_avail_.resize(num_sites_);
  for (const Site& s : inst.sites()) {
    avail_[s.id] = s.available;
    inv_avail_[s.id] = 1.0 / std::max(s.available, 1e-12);
  }
  const std::size_t datasets = inst.datasets().size();
  replica_mask_.assign(datasets * num_sites_, 0);
  mask_synced_.assign(datasets, 0);
  replica_seen_.assign(datasets, 0);
  const std::size_t scan = map.scan_sites(shard).size();
  cand_site_.reserve(scan);
  cand_inv_.reserve(scan);
  cand_dod_.reserve(scan);
}

void ShardEngine::begin_epoch(const ReplicaPlan& plan) {
  // Drop last epoch's pending bits: winners reappear below as newly
  // committed plan replicas, losers vanish.
  for (const AdmissionIntent::Placement& p : epoch_pending_) {
    replica_mask_[static_cast<std::size_t>(p.dataset) * num_sites_ + p.site] =
        0;
  }
  epoch_pending_.clear();

  // Bit-exact load snapshot: these values were produced by the same `+=`
  // sequence this shard replays locally, so copying them preserves the
  // scalar-path equivalence of every subsequent capacity comparison.
  const std::span<const double> loads = plan.loads();
  std::copy(loads.begin(), loads.end(), local_load_.begin());

  // Fold newly committed replica sites into the masks.  Replicas are never
  // removed by the streaming plane, so a per-dataset high-water mark makes
  // the sync O(new replicas) instead of O(datasets × K).
  for (const Dataset& ds : inst_->datasets()) {
    const std::vector<SiteId>& sites = plan.replica_sites(ds.id);
    for (std::size_t i = mask_synced_[ds.id]; i < sites.size(); ++i) {
      replica_mask_[static_cast<std::size_t>(ds.id) * num_sites_ + sites[i]] =
          1;
    }
    mask_synced_[ds.id] = static_cast<std::uint32_t>(sites.size());
    replica_seen_[ds.id] = static_cast<std::uint32_t>(sites.size());
  }
}

bool ShardEngine::admit(const Query& q, AdmissionIntent& out) {
  const DualState::Savepoint sp = duals_.savepoint();
  load_journal_.clear();
  query_pending_.clear();
  out.query = q.id;
  out.placements.clear();
  const double mu_term =
      opts_.replica_weight / static_cast<double>(inst_->max_replicas());

  bool ok = true;
  for (const DatasetDemand& dd : q.demands) {
    const Dataset& ds = inst_->dataset(dd.dataset);
    const double vol = ds.volume;
    const double need = vol * q.rate;  // == resource_demand
    const double sel_vol = dd.selectivity * vol;

    // Build this demand's pruned candidate list over the shard's scan set —
    // ascending site id, the same visit order and FP factors as the batch
    // CandidateIndex row (vol·proc + (α·vol)·path, delay/deadline).
    cand_site_.clear();
    cand_inv_.clear();
    cand_dod_.clear();
    for (const SiteId s : map_->scan_sites(shard_)) {
      const double delay = vol * inst_->site(s).proc_delay +
                           sel_vol * inst_->path_delay(s, q.home);
      if (delay <= q.deadline) {
        cand_site_.push_back(s);
        cand_inv_.push_back(inv_avail_[s]);
        cand_dod_.push_back(delay / q.deadline);
      }
    }

    const bool budget_left = replica_seen_[dd.dataset] < inst_->max_replicas();
    const CandidateSoA soa{cand_site_, cand_inv_, cand_dod_};
    const PricingState state{duals_.theta_data(), avail_, local_load_,
                             mask_row(dd.dataset), budget_left};
    const PricedChoice ch =
        opts_.pricing == ApproOptions::Pricing::kVectorized
            ? price_candidates(soa, state, need, opts_.eta_weight, mu_term)
            : price_candidates_scalar(soa, state, need, opts_.eta_weight,
                                      mu_term);
    if (ch.candidate == PricedChoice::kNoCandidate) {
      ok = false;
      break;
    }

    // Apply locally, mirroring the batch admit step's operation order.
    if (ch.needs_replica) {
      replica_mask_[static_cast<std::size_t>(dd.dataset) * num_sites_ +
                    ch.site] = 1;
      ++replica_seen_[dd.dataset];
      query_pending_.push_back({dd.dataset, ch.site, true});
      duals_.raise_mu(q.id);
    }
    out.placements.push_back({dd.dataset, ch.site, ch.needs_replica});
    load_journal_.push_back({ch.site, local_load_[ch.site]});
    local_load_[ch.site] += need;
    duals_.raise_theta(ch.site, need);
    const double tight =
        std::max(0.0, vol * (1.0 - q.rate * duals_.theta(ch.site)));
    duals_.set_y(q.id, std::max(duals_.y(q.id), tight));
  }

  if (!ok) {
    duals_.rollback_to(sp);
    duals_.commit();
    // LIFO load restore to the exact journaled prior values.
    while (!load_journal_.empty()) {
      local_load_[load_journal_.back().site] = load_journal_.back().prev_load;
      load_journal_.pop_back();
    }
    for (const AdmissionIntent::Placement& p : query_pending_) {
      replica_mask_[static_cast<std::size_t>(p.dataset) * num_sites_ +
                    p.site] = 0;
      --replica_seen_[p.dataset];
    }
    out.placements.clear();
    return false;
  }
  duals_.commit();
  epoch_pending_.insert(epoch_pending_.end(), query_pending_.begin(),
                        query_pending_.end());
  return true;
}

}  // namespace edgerep
