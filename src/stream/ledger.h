// Global capacity ledger for epoch reconciliation.
//
// During an epoch every shard admits against a frozen snapshot of the global
// plan, so two shards can independently promise the same boundary site's
// residual capacity.  The reconciler replays their intents serially and uses
// this ledger as the authoritative residual check: per query it *reserves*
// each demand's resource (journaled), then either *commits* the reservations
// (the query's placements are applied to the plan) or *releases* them (a
// conflict loser — the query is re-queued into the next epoch).
//
// The ledger's loads mirror the plan's ledger bit-exactly: every committed
// reservation performs the same `load[s] += need` the subsequent
// ReplicaPlan::assign performs, from an identical prior value (induction
// from a common zero start), and `fits` uses the shared kCapacityEps.  A
// successful reserve therefore guarantees the plan mutation cannot throw.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "cloud/instance.h"
#include "cloud/plan.h"

namespace edgerep {

class CapacityLedger {
 public:
  explicit CapacityLedger(const Instance& inst);

  /// Committed + currently-reserved resource at site s.
  [[nodiscard]] double load(SiteId s) const { return load_.at(s); }
  [[nodiscard]] std::span<const double> loads() const noexcept {
    return load_;
  }

  /// Same feasibility predicate as ReplicaPlan::fits.
  [[nodiscard]] bool fits(SiteId s, double amount) const {
    return amount <= (inst_->site(s).available - load_[s]) + kCapacityEps;
  }

  /// Reserve `need` at site s if it fits; journaled for release.  Returns
  /// false (and counts a conflict) when the residual is insufficient.
  bool try_reserve(SiteId s, double need);

  /// Release every un-committed reservation (LIFO, restoring the exact
  /// journaled prior loads) — the conflict-loser path.
  void release_all();

  /// Accept every outstanding reservation as committed load.
  void commit_all() noexcept { journal_.clear(); }

  /// Reservations currently outstanding (0 between queries).
  [[nodiscard]] std::size_t pending() const noexcept {
    return journal_.size();
  }

  /// --- accounting (monotonic over the ledger's lifetime) ----------------
  [[nodiscard]] std::size_t reserves() const noexcept { return reserves_; }
  [[nodiscard]] std::size_t conflicts() const noexcept { return conflicts_; }
  [[nodiscard]] std::size_t releases() const noexcept { return releases_; }

 private:
  struct Reservation {
    SiteId site;
    double prev_load;  ///< load_[site] before the reserve
  };

  const Instance* inst_;
  std::vector<double> load_;  ///< per site, mirrors ReplicaPlan::loads()
  std::vector<Reservation> journal_;
  std::size_t reserves_ = 0;
  std::size_t conflicts_ = 0;
  std::size_t releases_ = 0;
};

}  // namespace edgerep
