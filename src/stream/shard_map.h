// Region sharding of the placement sites for the streaming admission plane.
//
// A ShardMap partitions the instance's sites into `shards` contiguous,
// balanced id ranges; each ShardEngine then prices its queries only against
// its own partition (plus any boundary sites), so the per-query candidate
// scan — the admission hot loop's cost — shrinks by roughly the shard count.
//
// Boundary sites are shared by every shard: each shard may admit onto them,
// and the epoch reconciler arbitrates the resulting contention through the
// global capacity ledger.  BoundaryPolicy::kDataCenters shares the
// data-center sites (the big-capacity nodes every region wants to offload
// to) while cloudlets stay region-private; kNone makes the partition total.
//
// The map is a pure function of (instance, shards, policy): fixed inputs
// give the same site partition and query routing on every run, the first
// leg of the streaming plane's determinism contract.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cloud/instance.h"

namespace edgerep {

/// Which sites are shared across all shards.
enum class BoundaryPolicy : std::uint8_t {
  kNone,         ///< total partition: every site belongs to exactly one shard
  kDataCenters,  ///< DC sites are boundary (shared); cloudlets are owned
};

class ShardMap {
 public:
  /// Marker returned by shard_of_site for boundary sites.
  static constexpr std::uint32_t kBoundaryShard =
      static_cast<std::uint32_t>(-1);

  ShardMap(const Instance& inst, std::size_t shards,
           BoundaryPolicy policy = BoundaryPolicy::kNone);

  [[nodiscard]] std::size_t shards() const noexcept { return owned_.size(); }
  [[nodiscard]] BoundaryPolicy policy() const noexcept { return policy_; }

  /// Owning shard of a site, or kBoundaryShard when it is shared.
  [[nodiscard]] std::uint32_t shard_of_site(SiteId s) const {
    return site_shard_.at(s);
  }

  /// Shard that admits query q: the owner of its home site; queries homed on
  /// a boundary site spread round-robin by id so no shard inherits them all.
  [[nodiscard]] std::uint32_t shard_of_query(const Query& q) const {
    const std::uint32_t s = site_shard_.at(q.home);
    return s != kBoundaryShard
               ? s
               : static_cast<std::uint32_t>(q.id % owned_.size());
  }

  /// Sites owned exclusively by `shard`, ascending by id.
  [[nodiscard]] std::span<const SiteId> owned_sites(std::uint32_t shard) const {
    return owned_.at(shard);
  }

  /// Sites shared by every shard, ascending by id.
  [[nodiscard]] std::span<const SiteId> boundary_sites() const noexcept {
    return boundary_;
  }

  /// The candidate universe a shard prices against: owned ∪ boundary,
  /// ascending by id (the argmin visit order).
  [[nodiscard]] std::span<const SiteId> scan_sites(std::uint32_t shard) const {
    return scan_.at(shard);
  }

 private:
  BoundaryPolicy policy_;
  std::vector<std::uint32_t> site_shard_;       ///< per site
  std::vector<std::vector<SiteId>> owned_;      ///< per shard, ascending
  std::vector<SiteId> boundary_;                ///< ascending
  std::vector<std::vector<SiteId>> scan_;       ///< per shard, ascending
};

}  // namespace edgerep
