#include "stream/shard_map.h"

#include <algorithm>
#include <stdexcept>

namespace edgerep {

ShardMap::ShardMap(const Instance& inst, std::size_t shards,
                   BoundaryPolicy policy)
    : policy_(policy) {
  if (!inst.finalized()) {
    throw std::invalid_argument("ShardMap: instance not finalized");
  }
  if (shards == 0) {
    throw std::invalid_argument("ShardMap: need at least one shard");
  }
  const std::size_t num_sites = inst.sites().size();
  shards = std::min(shards, std::max<std::size_t>(num_sites, 1));

  site_shard_.assign(num_sites, kBoundaryShard);
  std::vector<SiteId> ownable;
  ownable.reserve(num_sites);
  for (const Site& s : inst.sites()) {
    if (policy == BoundaryPolicy::kDataCenters && s.is_data_center()) {
      boundary_.push_back(s.id);
    } else {
      ownable.push_back(s.id);
    }
  }

  // Contiguous balanced ranges over the ownable sites in ascending id order:
  // site k of n goes to shard ⌊k·shards/n⌋, so shard sizes differ by at most
  // one and the assignment is independent of iteration order.
  owned_.resize(shards);
  for (std::size_t k = 0; k < ownable.size(); ++k) {
    const auto shard = static_cast<std::uint32_t>(k * shards / ownable.size());
    site_shard_[ownable[k]] = shard;
    owned_[shard].push_back(ownable[k]);
  }

  scan_.resize(shards);
  for (std::size_t sh = 0; sh < shards; ++sh) {
    auto& scan = scan_[sh];
    scan.reserve(owned_[sh].size() + boundary_.size());
    std::merge(owned_[sh].begin(), owned_[sh].end(), boundary_.begin(),
               boundary_.end(), std::back_inserter(scan));
  }
}

}  // namespace edgerep
