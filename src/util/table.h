// Aligned text tables for benchmark output.  Each figure bench prints the
// series the paper plots as one table; rows are also exportable as CSV.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace edgerep {

/// Column-aligned table with a header row.  Cells are strings; numeric
/// convenience overloads format with a fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent `cell` calls fill it left to right.
  Table& row();
  Table& cell(std::string value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 2);
  Table& cell(std::size_t value);
  Table& cell(long long value);
  Table& cell(int value);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const noexcept { return headers_.size(); }
  /// Access a finished cell (row-major); throws std::out_of_range if absent.
  [[nodiscard]] const std::string& at(std::size_t r, std::size_t c) const;

  /// Render with padded columns and a separator rule under the header.
  void print(std::ostream& os) const;
  /// Render as CSV (RFC-4180-style quoting).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Quote a CSV field if it contains a delimiter, quote, or newline.
std::string csv_escape(const std::string& field);

}  // namespace edgerep
