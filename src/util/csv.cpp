#include "util/csv.h"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/table.h"

namespace edgerep {

std::size_t CsvDocument::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return npos;
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (quoted) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += ch;
      }
    } else if (ch == '"') {
      if (!cur.empty()) throw std::runtime_error("csv: quote mid-field");
      quoted = true;
    } else if (ch == ',') {
      cells.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += ch;
    }
  }
  if (quoted) throw std::runtime_error("csv: unterminated quote");
  cells.push_back(std::move(cur));
  return cells;
}

CsvDocument read_csv(std::istream& is) {
  CsvDocument doc;
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto cells = split_csv_line(line);
    if (first) {
      doc.header = std::move(cells);
      first = false;
    } else {
      doc.rows.push_back(std::move(cells));
    }
  }
  return doc;
}

void write_csv(std::ostream& os, const CsvDocument& doc) {
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(r[i]);
    }
    os << '\n';
  };
  emit(doc.header);
  for (const auto& r : doc.rows) emit(r);
}

}  // namespace edgerep
