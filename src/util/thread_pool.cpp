#include "util/thread_pool.h"

#include "obs/metrics.h"

namespace edgerep {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

namespace detail {

void note_queue_depth(std::size_t depth) noexcept {
  if (!obs::metrics_enabled()) return;
  static obs::Gauge& depth_gauge = obs::metrics().gauge(
      "edgerep_pool_queue_depth", "tasks waiting in the shared pool queue");
  depth_gauge.set(static_cast<double>(depth));
}

void note_parallel_for(std::size_t n) noexcept {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& calls = obs::metrics().counter(
      "edgerep_pool_parallel_for_total", "parallel_for invocations");
  static obs::Counter& items = obs::metrics().counter(
      "edgerep_pool_parallel_for_items_total",
      "work items dispatched through parallel_for");
  calls.inc();
  items.inc(n);
}

}  // namespace detail

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
      detail::note_queue_depth(queue_.size());
    }
    task();
    if (obs::metrics_enabled()) {
      static obs::Counter& executed = obs::metrics().counter(
          "edgerep_pool_tasks_executed_total",
          "tasks executed by the shared pool workers");
      executed.inc();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  // Thin adapter over the blocked-range template; the erased call is paid
  // once per index inside the block loop, block claiming is shared.
  parallel_for_blocked(n, [&body](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  });
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace edgerep
