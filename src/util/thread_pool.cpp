#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "obs/metrics.h"

namespace edgerep {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

namespace detail {

void note_queue_depth(std::size_t depth) noexcept {
  if (!obs::metrics_enabled()) return;
  static obs::Gauge& depth_gauge = obs::metrics().gauge(
      "edgerep_pool_queue_depth", "tasks waiting in the shared pool queue");
  depth_gauge.set(static_cast<double>(depth));
}

}  // namespace detail

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
      detail::note_queue_depth(queue_.size());
    }
    task();
    if (obs::metrics_enabled()) {
      static obs::Counter& executed = obs::metrics().counter(
          "edgerep_pool_tasks_executed_total",
          "tasks executed by the shared pool workers");
      executed.inc();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (obs::metrics_enabled()) {
    static obs::Counter& calls = obs::metrics().counter(
        "edgerep_pool_parallel_for_total", "parallel_for invocations");
    static obs::Counter& items = obs::metrics().counter(
        "edgerep_pool_parallel_for_items_total",
        "work items dispatched through parallel_for");
    calls.inc();
    items.inc(n);
  }
  if (n == 1 || size() == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;
  const std::size_t shards = std::min(size(), n);
  // ~8 blocks per worker keeps the tail balanced while amortizing the
  // shared-cursor bump over a whole block of indices.
  const std::size_t block = std::max<std::size_t>(1, n / (shards * 8));
  std::vector<std::future<void>> futs;
  futs.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    futs.push_back(submit([&] {
      for (;;) {
        const std::size_t begin = next.fetch_add(block);
        if (begin >= n) return;
        const std::size_t end = std::min(n, begin + block);
        for (std::size_t i = begin; i < end; ++i) {
          try {
            body(i);
          } catch (...) {
            const std::lock_guard<std::mutex> lock(error_mutex);
            if (!error) error = std::current_exception();
          }
        }
      }
    }));
  }
  for (auto& f : futs) f.get();
  if (error) std::rethrow_exception(error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace edgerep
