// Deterministic, seedable random number generation.
//
// Every randomized component in edgerep takes an explicit 64-bit seed so that
// experiments are exactly reproducible across runs and machines.  We do not
// use std::mt19937 for the core engine because its seeding from a single
// 64-bit value is poor; instead we provide xoshiro256++ seeded via SplitMix64
// (the construction recommended by the xoshiro authors).  The engine models
// std::uniform_random_bit_generator and therefore composes with <random>
// distributions, but the helpers below are preferred in library code because
// their results are stable across standard-library implementations.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace edgerep {

/// SplitMix64: a tiny, high-quality 64-bit mixer.  Used for seed expansion
/// and for deriving independent per-component substreams from one master
/// seed (`derive_seed`).
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// Derive an independent substream seed from a master seed and a stream id.
/// Distinct (seed, stream) pairs give statistically independent sequences.
constexpr std::uint64_t derive_seed(std::uint64_t master,
                                    std::uint64_t stream) noexcept {
  SplitMix64 sm(master ^ (0x632be59bd9b4e019ULL * (stream + 1)));
  sm.next();
  return sm.next();
}

/// xoshiro256++ 1.0 — fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  /// Uniform double in [0, 1).  53-bit mantissa construction.
  constexpr double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in the closed interval [lo, hi].  Uses Lemire-style
  /// rejection to avoid modulo bias.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform int in [lo, hi] (closed), requires lo <= hi.
  int uniform_int(int lo, int hi) noexcept {
    return lo + static_cast<int>(uniform_u64(
                    0, static_cast<std::uint64_t>(hi - lo)));
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (no cached spare: simple and
  /// deterministic given the call sequence).
  double normal() noexcept;

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Zipf-distributed integer in [1, n] with exponent s (s > 0), via
  /// rejection-inversion (Hormann & Derflinger).  Suitable for large n.
  std::uint64_t zipf(std::uint64_t n, double s) noexcept;

  /// Pick a uniformly random element index of a non-empty span.
  template <typename T>
  std::size_t index_of(std::span<const T> v) noexcept {
    return static_cast<std::size_t>(uniform_u64(0, v.size() - 1));
  }

  /// Fisher–Yates shuffle (stable across platforms, unlike std::shuffle).
  template <typename T>
  void shuffle(std::span<T> v) noexcept {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const std::size_t j =
          static_cast<std::size_t>(uniform_u64(0, static_cast<std::uint64_t>(i)));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) without replacement (k <= n).
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace edgerep
