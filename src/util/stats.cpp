#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace edgerep {

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStat::sem() const noexcept {
  return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double RunningStat::ci95_halfwidth() const noexcept { return 1.96 * sem(); }

double percentile_sorted(std::span<const double> sorted, double p) noexcept {
  assert(p >= 0.0 && p <= 100.0);
  if (sorted.empty()) return 0.0;  // empty sample: defined result, no UB
  if (sorted.size() == 1) return sorted[0];
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  RunningStat rs;
  for (double x : sorted) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p50 = percentile_sorted(sorted, 50.0);
  s.p95 = percentile_sorted(sorted, 95.0);
  return s;
}

std::string mean_ci_string(const RunningStat& s, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << s.mean() << " ± " << s.ci95_halfwidth();
  return os.str();
}

}  // namespace edgerep
