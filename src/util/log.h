// Lightweight leveled logging.  Thread-safe (one mutex around emission);
// intended for coarse progress messages, not hot loops.
#pragma once

#include <sstream>
#include <string>

namespace edgerep {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Apply a level named by the environment variable `var`
/// (debug|info|warn|error, case-insensitive).  Unset or unrecognized values
/// leave the level unchanged; returns true when a level was applied.
/// Entry points (edgerep_cli, bench_json) call this at startup.
bool set_log_level_from_env(const char* var = "EDGEREP_LOG");

/// Emit one formatted line ("[   12.345s LEVEL] message") to stderr under a
/// mutex; the timestamp is obs::now_ns() (seconds since process start), the
/// same clock the phase tracer stamps events with.
void log_message(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

/// Usage: LOG(kInfo) << "built topology with " << n << " nodes";
#define LOG(level)                                                  \
  if (::edgerep::LogLevel::level < ::edgerep::log_level()) {        \
  } else                                                            \
    ::edgerep::detail::LogLine(::edgerep::LogLevel::level)

}  // namespace edgerep
