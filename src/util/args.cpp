#include "util/args.h"

#include <stdexcept>

namespace edgerep {

namespace {

bool looks_like_flag(const std::string& s) {
  return s.size() > 2 && s[0] == '-' && s[1] == '-';
}

}  // namespace

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!looks_like_flag(arg)) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      named_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      named_[body] = argv[++i];
    } else {
      named_[body] = "true";  // bare boolean flag
    }
  }
}

bool Args::has(const std::string& name) const {
  return named_.contains(name);
}

std::string Args::get(const std::string& name,
                      const std::string& fallback) const {
  const auto it = named_.find(name);
  return it == named_.end() ? fallback : it->second;
}

long long Args::get_int(const std::string& name, long long fallback) const {
  const auto it = named_.find(name);
  if (it == named_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("--" + name + ": expected integer, got '" +
                             it->second + "'");
  }
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto it = named_.find(name);
  if (it == named_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("--" + name + ": expected number, got '" +
                             it->second + "'");
  }
}

bool Args::get_bool(const std::string& name, bool fallback) const {
  const auto it = named_.find(name);
  if (it == named_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::runtime_error("--" + name + ": expected boolean, got '" + v + "'");
}

std::uint64_t Args::get_seed(const std::string& name,
                             std::uint64_t fallback) const {
  const auto it = named_.find(name);
  if (it == named_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const auto v = std::stoull(it->second, &pos, 0);
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("--" + name + ": expected seed, got '" +
                             it->second + "'");
  }
}

}  // namespace edgerep
