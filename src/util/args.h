// Tiny command-line argument parser for the bench and example binaries.
// Supports `--name=value`, `--name value`, and boolean flags `--name`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace edgerep {

class Args {
 public:
  Args(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  /// Typed getters with defaults; throw std::runtime_error on parse failure.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] long long get_int(const std::string& name,
                                  long long fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;
  [[nodiscard]] std::uint64_t get_seed(const std::string& name,
                                       std::uint64_t fallback) const;

  /// Positional (non --) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> named_;
  std::vector<std::string> positional_;
};

}  // namespace edgerep
