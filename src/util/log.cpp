#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace edgerep {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace edgerep
