#include "util/log.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/obs.h"

namespace edgerep {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

bool set_log_level_from_env(const char* var) {
  const char* value = std::getenv(var);
  if (value == nullptr || value[0] == '\0') return false;
  std::string lower;
  for (const char* p = value; *p != '\0'; ++p) {
    lower.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(*p))));
  }
  if (lower == "debug") {
    set_log_level(LogLevel::kDebug);
  } else if (lower == "info") {
    set_log_level(LogLevel::kInfo);
  } else if (lower == "warn" || lower == "warning") {
    set_log_level(LogLevel::kWarn);
  } else if (lower == "error") {
    set_log_level(LogLevel::kError);
  } else {
    return false;
  }
  return true;
}

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  const double seconds = static_cast<double>(obs::now_ns()) / 1e9;
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%9.3fs %s] %s\n", seconds, level_name(level),
               message.c_str());
}

}  // namespace edgerep
