// Streaming and batch descriptive statistics used by the benchmark harness
// (mean over 15 topologies, confidence intervals, percentiles).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace edgerep {

/// Welford's online algorithm: numerically stable running mean/variance.
class RunningStat {
 public:
  void add(double x) noexcept;

  /// Merge another accumulator (parallel reduction; Chan et al. update).
  void merge(const RunningStat& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept;
  /// Half-width of the ~95% confidence interval (normal approximation).
  [[nodiscard]] double ci95_halfwidth() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Summarize a sample (copies and sorts internally; input is unmodified).
Summary summarize(std::span<const double> xs);

/// Linear-interpolated percentile of a *sorted* sample, p in [0, 100].
/// An empty sample yields 0.0 (not UB); p is clamped into [0, 100].
double percentile_sorted(std::span<const double> sorted, double p) noexcept;

/// Pretty "mean ± ci95" string with the given precision.
std::string mean_ci_string(const RunningStat& s, int precision = 2);

}  // namespace edgerep
