// Fixed-size thread pool with a shared task queue plus a `parallel_for`
// helper.  The benchmark harness uses it to run independent experiment
// repetitions (one per topology seed) concurrently; determinism is preserved
// because each repetition derives its own RNG substream from (seed, index)
// and results are written to per-index slots.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace edgerep {

namespace detail {
/// Observability hook: records the shared task-queue depth into the
/// `edgerep_pool_queue_depth` gauge (no-op while metrics are disabled).
/// Out-of-line so this header does not pull in the metrics registry.
void note_queue_depth(std::size_t depth) noexcept;
}  // namespace detail

/// Work-item count above which data-parallel helpers fan out onto the
/// global pool; below it the dispatch overhead outweighs the work.  Shared
/// by DelayMatrix::compute, DelayTable::compute, and hop_diameter so the
/// serial/parallel cutover is tuned in exactly one place.
inline constexpr std::size_t kParallelForThreshold = 64;

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (or 1 if that reports 0).
  explicit ThreadPool(std::size_t threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the returned future rethrows task exceptions.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace([task] { (*task)(); });
      detail::note_queue_depth(queue_.size());
    }
    cv_.notify_one();
    return fut;
  }

  /// Run body(i) for i in [0, n) across the pool and wait for completion.
  /// Workers claim contiguous index blocks off a shared atomic cursor
  /// (dynamic blocked chunking), so small per-index bodies pay one atomic
  /// bump per block instead of one per index.  Exceptions from any
  /// iteration are rethrown (the first one observed).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide shared pool (lazily constructed) for harness convenience.
ThreadPool& global_pool();

}  // namespace edgerep
