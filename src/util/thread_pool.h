// Fixed-size thread pool with a shared task queue plus a `parallel_for`
// helper.  The benchmark harness uses it to run independent experiment
// repetitions (one per topology seed) concurrently; determinism is preserved
// because each repetition derives its own RNG substream from (seed, index)
// and results are written to per-index slots.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace edgerep {

namespace detail {
/// Observability hooks, out-of-line so this header does not pull in the
/// metrics registry (all no-ops while metrics are disabled).
/// Records the shared task-queue depth into `edgerep_pool_queue_depth`.
void note_queue_depth(std::size_t depth) noexcept;
/// Counts a parallel_for / parallel_for_blocked dispatch of `n` items.
void note_parallel_for(std::size_t n) noexcept;
}  // namespace detail

/// Work-item count above which data-parallel helpers fan out onto the
/// global pool; below it the dispatch overhead outweighs the work.  Shared
/// by DelayMatrix::compute, DelayTable::compute, and hop_diameter so the
/// serial/parallel cutover is tuned in exactly one place.
inline constexpr std::size_t kParallelForThreshold = 64;

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (or 1 if that reports 0).
  explicit ThreadPool(std::size_t threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the returned future rethrows task exceptions.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace([task] { (*task)(); });
      detail::note_queue_depth(queue_.size());
    }
    cv_.notify_one();
    return fut;
  }

  /// Run body(i) for i in [0, n) across the pool and wait for completion.
  /// Workers claim contiguous index blocks off a shared atomic cursor
  /// (dynamic blocked chunking), so small per-index bodies pay one atomic
  /// bump per block instead of one per index.  Exceptions from any
  /// iteration are rethrown (the first one observed).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Blocked-range variant: run body(begin, end) over contiguous chunks of
  /// [0, n) claimed off the shared cursor, waiting for completion.  The
  /// callable is a template parameter, so tight inner loops see a directly
  /// inlinable body — no per-index (or even per-block) std::function
  /// dispatch, which the erased `parallel_for` pays.  Exception semantics
  /// match parallel_for: the first exception observed is rethrown after all
  /// workers drain.
  template <typename F>
  void parallel_for_blocked(std::size_t n, F&& body) {
    if (n == 0) return;
    detail::note_parallel_for(n);
    if (n == 1 || size() == 1) {
      body(std::size_t{0}, n);
      return;
    }
    std::atomic<std::size_t> next{0};
    std::exception_ptr error;
    std::mutex error_mutex;
    const std::size_t shards = std::min(size(), n);
    // ~8 blocks per worker keeps the tail balanced while amortizing the
    // shared-cursor bump over a whole block of indices.
    const std::size_t block = std::max<std::size_t>(1, n / (shards * 8));
    std::vector<std::future<void>> futs;
    futs.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      futs.push_back(submit([&] {
        for (;;) {
          const std::size_t begin = next.fetch_add(block);
          if (begin >= n) return;
          const std::size_t end = std::min(n, begin + block);
          try {
            body(begin, end);
          } catch (...) {
            const std::lock_guard<std::mutex> lock(error_mutex);
            if (!error) error = std::current_exception();
          }
        }
      }));
    }
    for (auto& f : futs) f.get();
    if (error) std::rethrow_exception(error);
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide shared pool (lazily constructed) for harness convenience.
ThreadPool& global_pool();

}  // namespace edgerep
