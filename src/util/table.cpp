#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace edgerep {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(std::string value) {
  if (rows_.empty()) row();
  if (rows_.back().size() >= headers_.size()) {
    throw std::out_of_range("Table: too many cells in row");
  }
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return cell(os.str());
}

Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }
Table& Table::cell(long long value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

const std::string& Table::at(std::size_t r, std::size_t c) const {
  return rows_.at(r).at(c);
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < r.size() ? r[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[c])) << v;
      if (c + 1 < headers_.size()) os << "  ";
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void Table::print_csv(std::ostream& os) const {
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(r[c]);
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& r : rows_) emit_row(r);
}

}  // namespace edgerep
