// Minimal CSV reading/writing — used to persist benchmark series and to load
// trace files in the examples.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace edgerep {

/// A parsed CSV document: a header row plus data rows (all cells as strings).
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column; returns npos when missing.
  [[nodiscard]] std::size_t column(const std::string& name) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Parse CSV with RFC-4180 quoting from a stream.  The first record is the
/// header.  Throws std::runtime_error on malformed quoting.
CsvDocument read_csv(std::istream& is);

/// Parse a single CSV record (one logical line, quotes already balanced).
std::vector<std::string> split_csv_line(const std::string& line);

/// Write a document back out (quoting as needed).
void write_csv(std::ostream& os, const CsvDocument& doc);

}  // namespace edgerep
