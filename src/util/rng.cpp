#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace edgerep {

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t range = hi - lo;
  if (range == std::numeric_limits<std::uint64_t>::max()) return next();
  const std::uint64_t bound = range + 1;
  // Lemire's multiply-shift with rejection on the low product word.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  // Marsaglia polar method; loop terminates with probability 1.
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::exponential(double rate) noexcept {
  assert(rate > 0.0);
  // 1 - uniform() is in (0, 1], so the log argument is never zero.
  return -std::log(1.0 - uniform()) / rate;
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) noexcept {
  assert(n >= 1 && s > 0.0);
  if (n == 1) return 1;
  // Rejection-inversion sampling (Hormann & Derflinger 1996).
  const double nd = static_cast<double>(n);
  auto h = [s](double x) {
    // Antiderivative of x^-s (handles s == 1 analytically).
    if (std::abs(s - 1.0) < 1e-12) return std::log(x);
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h_inv = [s](double x) {
    if (std::abs(s - 1.0) < 1e-12) return std::exp(x);
    return std::pow(1.0 + x * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double hx0 = h(0.5) - 1.0;  // h(x0) with x0 = 1/2 shifted by f(1)=1
  const double hn = h(nd + 0.5);
  for (;;) {
    const double u = hx0 + uniform() * (hn - hx0);
    const double x = h_inv(u);
    const auto k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1 || k > n) continue;
    const double kd = static_cast<double>(k);
    if (kd - x <= 0.5 || u >= h(kd + 0.5) - std::pow(kd, -s)) {
      return k;
    }
  }
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  assert(k <= n);
  // Floyd's algorithm would avoid the O(n) vector, but instance sizes here
  // are small; a partial Fisher–Yates is simpler and still O(n).
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(uniform_u64(
                                  0, static_cast<std::uint64_t>(n - 1 - i)));
    using std::swap;
    swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace edgerep
