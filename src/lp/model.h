// Builder for the paper's ILP (§3.2): objective (1) and constraints (2)–(7),
// generalized to multi-dataset queries with an explicit per-query admission
// variable.  Deadline constraint (4) is enforced by *pruning*: a variable
// π_{m,n,l} is only created when site l meets query m's deadline for
// dataset n, which is equivalent to forcing π = 0 there and keeps the LP
// small.
//
// Two objective variants:
//  * kAdmittedVolume — Σ_m vol(q_m)·z_m with z_m ≤ Σ_l π_{m,n,l} per demand:
//    credit only fully admitted queries (the metric the figures plot).
//  * kAssignedVolume — Σ vol(S_n)·π_{m,n,l}: per-demand partial credit,
//    the literal reading of objective (1); matches Appro-G's accumulator N'.
#pragma once

#include <cstddef>
#include <vector>

#include "cloud/instance.h"
#include "cloud/plan.h"
#include "lp/ilp.h"
#include "lp/simplex.h"

namespace edgerep {

enum class ModelObjective { kAdmittedVolume, kAssignedVolume };

class IlpModel {
 public:
  IlpModel(const Instance& inst, ModelObjective objective);

  [[nodiscard]] const LinearProgram& lp() const noexcept { return lp_; }
  [[nodiscard]] const std::vector<bool>& integrality() const noexcept {
    return is_integer_;
  }
  [[nodiscard]] ModelObjective objective_kind() const noexcept {
    return objective_;
  }

  /// Variable index of x_{n,l}.
  [[nodiscard]] std::size_t x_var(DatasetId n, SiteId l) const noexcept {
    return static_cast<std::size_t>(n) * num_sites_ + l;
  }

  /// One created π variable (deadline-feasible (query, demand, site)).
  struct PiVar {
    QueryId query = 0;
    std::uint32_t demand_index = 0;
    SiteId site = kInvalidSite;
  };
  [[nodiscard]] const std::vector<PiVar>& pi_vars() const noexcept {
    return pi_vars_;
  }
  [[nodiscard]] std::size_t pi_offset() const noexcept { return pi_offset_; }
  /// Index of z_m (only for kAdmittedVolume; 0 z-vars otherwise).
  [[nodiscard]] std::size_t z_var(QueryId m) const noexcept {
    return z_offset_ + m;
  }
  [[nodiscard]] bool has_z() const noexcept {
    return objective_ == ModelObjective::kAdmittedVolume;
  }

  /// Solve the LP relaxation (fractional upper bound).
  [[nodiscard]] LpSolution solve_relaxation(
      const SimplexOptions& opts = {}) const;

  /// Solve the ILP exactly (subject to node budget).
  [[nodiscard]] IlpSolution solve(const IlpOptions& opts = {}) const;

  /// Turn an integral solution vector into a validated ReplicaPlan.
  [[nodiscard]] ReplicaPlan extract_plan(const std::vector<double>& x) const;

 private:
  void build();

  const Instance* inst_;
  ModelObjective objective_;
  std::size_t num_sites_ = 0;
  std::size_t pi_offset_ = 0;
  std::size_t z_offset_ = 0;
  std::vector<PiVar> pi_vars_;
  LinearProgram lp_;
  std::vector<bool> is_integer_;
};

}  // namespace edgerep
