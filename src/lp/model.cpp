#include "lp/model.h"

#include <stdexcept>

#include "cloud/delay.h"

namespace edgerep {

IlpModel::IlpModel(const Instance& inst, ModelObjective objective)
    : inst_(&inst), objective_(objective) {
  if (!inst.finalized()) {
    throw std::invalid_argument("IlpModel: instance not finalized");
  }
  build();
}

void IlpModel::build() {
  const Instance& inst = *inst_;
  num_sites_ = inst.sites().size();
  const std::size_t num_x = inst.datasets().size() * num_sites_;

  // Enumerate deadline-feasible π variables (constraint (4) by pruning).
  pi_offset_ = num_x;
  for (const Query& q : inst.queries()) {
    for (std::uint32_t i = 0; i < q.demands.size(); ++i) {
      for (const Site& s : inst.sites()) {
        if (deadline_ok(inst, q, q.demands[i], s.id)) {
          pi_vars_.push_back(PiVar{q.id, i, s.id});
        }
      }
    }
  }
  z_offset_ = pi_offset_ + pi_vars_.size();
  const std::size_t num_z = has_z() ? inst.queries().size() : 0;

  lp_.num_vars = z_offset_ + num_z;
  lp_.objective.assign(lp_.num_vars, 0.0);
  is_integer_.assign(lp_.num_vars, true);

  if (has_z()) {
    for (const Query& q : inst.queries()) {
      lp_.objective[z_var(q.id)] = inst.demanded_volume(q.id);
    }
  } else {
    for (std::size_t p = 0; p < pi_vars_.size(); ++p) {
      const PiVar& pv = pi_vars_[p];
      const Query& q = inst.query(pv.query);
      lp_.objective[pi_offset_ + p] =
          inst.dataset(q.demands[pv.demand_index].dataset).volume;
    }
  }

  // (2) capacity per site: Σ vol·rate·π ≤ A(l).
  {
    std::vector<std::vector<std::pair<std::size_t, double>>> rows(num_sites_);
    for (std::size_t p = 0; p < pi_vars_.size(); ++p) {
      const PiVar& pv = pi_vars_[p];
      const Query& q = inst.query(pv.query);
      rows[pv.site].push_back(
          {pi_offset_ + p, resource_demand(inst, q, q.demands[pv.demand_index])});
    }
    for (const Site& s : inst.sites()) {
      if (!rows[s.id].empty()) {
        lp_.add_constraint(std::move(rows[s.id]), Relation::kLe, s.available);
      }
    }
  }

  // (3) π_{m,n,l} ≤ x_{n,l}.
  for (std::size_t p = 0; p < pi_vars_.size(); ++p) {
    const PiVar& pv = pi_vars_[p];
    const Query& q = inst.query(pv.query);
    const DatasetId n = q.demands[pv.demand_index].dataset;
    lp_.add_constraint(
        {{pi_offset_ + p, 1.0}, {x_var(n, pv.site), -1.0}}, Relation::kLe, 0.0);
  }

  // Each demand is evaluated at no more than one site, and (for the
  // admitted-volume objective) z_m ≤ Σ_l π for every demand of m.
  {
    // Group π vars by (query, demand_index).
    std::vector<std::vector<std::size_t>> by_demand;  // flattened per query
    std::vector<std::size_t> first_demand(inst.queries().size() + 1, 0);
    for (const Query& q : inst.queries()) {
      first_demand[q.id + 1] = first_demand[q.id] + q.demands.size();
    }
    by_demand.resize(first_demand.back());
    for (std::size_t p = 0; p < pi_vars_.size(); ++p) {
      const PiVar& pv = pi_vars_[p];
      by_demand[first_demand[pv.query] + pv.demand_index].push_back(p);
    }
    for (const Query& q : inst.queries()) {
      for (std::uint32_t i = 0; i < q.demands.size(); ++i) {
        const auto& group = by_demand[first_demand[q.id] + i];
        std::vector<std::pair<std::size_t, double>> at_most_one;
        at_most_one.reserve(group.size());
        for (const std::size_t p : group) {
          at_most_one.push_back({pi_offset_ + p, 1.0});
        }
        if (!at_most_one.empty()) {
          lp_.add_constraint(at_most_one, Relation::kLe, 1.0);
        }
        if (has_z()) {
          // z_m - Σ_l π_{m,i,l} ≤ 0.  With an empty group this forces z=0.
          std::vector<std::pair<std::size_t, double>> link;
          link.reserve(group.size() + 1);
          link.push_back({z_var(q.id), 1.0});
          for (const std::size_t p : group) {
            link.push_back({pi_offset_ + p, -1.0});
          }
          lp_.add_constraint(std::move(link), Relation::kLe, 0.0);
        }
      }
    }
  }

  // (5) replica budget: Σ_l x_{n,l} ≤ K.
  for (const Dataset& d : inst.datasets()) {
    std::vector<std::pair<std::size_t, double>> row;
    row.reserve(num_sites_);
    for (SiteId l = 0; l < num_sites_; ++l) {
      row.push_back({x_var(d.id, l), 1.0});
    }
    lp_.add_constraint(std::move(row), Relation::kLe,
                       static_cast<double>(inst.max_replicas()));
  }

  // (6)(7) binary relaxation bounds: every variable ≤ 1 (≥ 0 is implicit).
  for (std::size_t j = 0; j < lp_.num_vars; ++j) {
    lp_.add_upper_bound(j, 1.0);
  }
}

LpSolution IlpModel::solve_relaxation(const SimplexOptions& opts) const {
  return solve_lp(lp_, opts);
}

IlpSolution IlpModel::solve(const IlpOptions& opts) const {
  return solve_ilp(lp_, is_integer_, opts);
}

ReplicaPlan IlpModel::extract_plan(const std::vector<double>& x) const {
  const Instance& inst = *inst_;
  ReplicaPlan plan(inst);
  if (x.size() < lp_.num_vars) {
    throw std::invalid_argument("extract_plan: solution vector too short");
  }
  for (const Dataset& d : inst.datasets()) {
    for (SiteId l = 0; l < num_sites_; ++l) {
      if (x[x_var(d.id, l)] > 0.5) plan.place_replica(d.id, l);
    }
  }
  for (std::size_t p = 0; p < pi_vars_.size(); ++p) {
    if (x[pi_offset_ + p] > 0.5) {
      const PiVar& pv = pi_vars_[p];
      const Query& q = inst.query(pv.query);
      plan.assign(pv.query, q.demands[pv.demand_index].dataset, pv.site);
    }
  }
  return plan;
}

}  // namespace edgerep
