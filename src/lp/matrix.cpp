#include "lp/matrix.h"

#include <cassert>

namespace edgerep {

double Matrix::dot_row(std::size_t r, std::span<const double> x) const {
  assert(x.size() >= cols_);
  const double* row = data_.data() + r * cols_;
  double acc = 0.0;
  for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
  return acc;
}

void Matrix::axpy_row(std::size_t target, std::size_t source, double factor) {
  if (factor == 0.0) return;
  double* t = data_.data() + target * cols_;
  const double* s = data_.data() + source * cols_;
  for (std::size_t c = 0; c < cols_; ++c) t[c] += factor * s[c];
}

void Matrix::scale_row(std::size_t r, double factor) {
  double* row = data_.data() + r * cols_;
  for (std::size_t c = 0; c < cols_; ++c) row[c] *= factor;
}

}  // namespace edgerep
