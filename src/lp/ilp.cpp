#include "lp/ilp.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace edgerep {

namespace {

struct Bound {
  std::size_t var = 0;
  bool is_upper = true;
  double value = 0.0;
};

struct Node {
  std::vector<Bound> bounds;
  double parent_bound = 0.0;  ///< LP objective of the parent (pruning hint)
};

/// Most fractional integer-constrained variable, or num_vars when integral.
std::size_t pick_branch_var(const std::vector<double>& x,
                            const std::vector<bool>& is_integer,
                            double int_tol) {
  std::size_t best = x.size();
  double best_frac_dist = int_tol;
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (!is_integer[j]) continue;
    const double frac = x[j] - std::floor(x[j]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > best_frac_dist) {
      best_frac_dist = dist;
      best = j;
    }
  }
  return best;
}

}  // namespace

IlpSolution solve_ilp(const LinearProgram& lp,
                      const std::vector<bool>& is_integer,
                      const IlpOptions& opts) {
  if (is_integer.size() != lp.num_vars) {
    throw std::invalid_argument("solve_ilp: is_integer size mismatch");
  }
  IlpSolution best;
  best.status = LpStatus::kInfeasible;
  best.objective = -std::numeric_limits<double>::infinity();

  std::vector<Node> stack;
  stack.push_back(Node{{}, std::numeric_limits<double>::infinity()});
  bool budget_hit = false;
  double root_bound = std::numeric_limits<double>::infinity();
  bool root_solved = false;

  while (!stack.empty()) {
    if (best.nodes_explored >= opts.max_nodes) {
      budget_hit = true;
      break;
    }
    const Node node = std::move(stack.back());
    stack.pop_back();
    ++best.nodes_explored;

    // Prune by parent bound before paying for a simplex solve.
    if (best.status == LpStatus::kOptimal &&
        node.parent_bound <= best.objective + 1e-9) {
      continue;
    }

    LinearProgram relax = lp;
    for (const Bound& b : node.bounds) {
      relax.add_constraint({{b.var, 1.0}},
                           b.is_upper ? Relation::kLe : Relation::kGe, b.value);
    }
    const LpSolution sol = solve_lp(relax, opts.lp);
    if (!root_solved) {
      root_solved = true;
      if (sol.status == LpStatus::kOptimal) root_bound = sol.objective;
    }
    if (sol.status == LpStatus::kInfeasible) continue;
    if (sol.status == LpStatus::kUnbounded) {
      // An unbounded relaxation makes the ILP unbounded or ill-posed; report.
      best.status = LpStatus::kUnbounded;
      best.proven_optimal = false;
      return best;
    }
    if (sol.status == LpStatus::kIterLimit) {
      budget_hit = true;
      continue;
    }
    if (best.status == LpStatus::kOptimal &&
        sol.objective <= best.objective + 1e-9) {
      continue;  // bound prune
    }
    const std::size_t branch =
        pick_branch_var(sol.x, is_integer, opts.int_tol);
    if (branch == sol.x.size()) {
      // Integral: new incumbent (rounding off the fp fuzz).
      if (best.status != LpStatus::kOptimal ||
          sol.objective > best.objective) {
        best.status = LpStatus::kOptimal;
        best.objective = sol.objective;
        best.x = sol.x;
        for (std::size_t j = 0; j < best.x.size(); ++j) {
          if (is_integer[j]) best.x[j] = std::round(best.x[j]);
        }
      }
      continue;
    }
    const double v = sol.x[branch];
    Node down;
    down.bounds = node.bounds;
    down.bounds.push_back(Bound{branch, true, std::floor(v)});
    down.parent_bound = sol.objective;
    Node up;
    up.bounds = node.bounds;
    up.bounds.push_back(Bound{branch, false, std::ceil(v)});
    up.parent_bound = sol.objective;
    // DFS order: explore the branch nearer the fractional value first.
    if (v - std::floor(v) > 0.5) {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    } else {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    }
  }
  best.proven_optimal = best.status == LpStatus::kOptimal && !budget_hit;
  best.best_bound = root_bound;
  if (best.status != LpStatus::kOptimal) {
    best.objective = 0.0;
  }
  return best;
}

}  // namespace edgerep
