// A two-phase dense primal simplex solver for small/medium LPs.
//
// Problem form:  maximize c·x  s.t.  each constraint (a·x ⋚ b), x ≥ 0.
// Phase 1 minimizes the sum of artificial variables to find a basic feasible
// solution; phase 2 optimizes the real objective.  Dantzig pricing with an
// automatic switch to Bland's rule guards against cycling.
//
// This solver is the optimality reference for the paper's ILP relaxation
// (tests, ablation benches); it is exact up to floating-point tolerance, not
// tuned for large-scale performance.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace edgerep {

enum class Relation { kLe, kGe, kEq };

struct LinearConstraint {
  /// Sparse terms (variable index, coefficient); indices must be < num_vars.
  std::vector<std::pair<std::size_t, double>> terms;
  Relation rel = Relation::kLe;
  double rhs = 0.0;
};

/// maximize objective·x subject to constraints, x ≥ 0.
struct LinearProgram {
  std::size_t num_vars = 0;
  std::vector<double> objective;  ///< size num_vars
  std::vector<LinearConstraint> constraints;

  /// Append a constraint and return its index.
  std::size_t add_constraint(std::vector<std::pair<std::size_t, double>> terms,
                             Relation rel, double rhs);
  /// Convenience: bound a single variable (x_i ≤ ub as a constraint row).
  void add_upper_bound(std::size_t var, double ub);
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterLimit };

const char* to_string(LpStatus s) noexcept;

struct LpSolution {
  LpStatus status = LpStatus::kIterLimit;
  double objective = 0.0;
  std::vector<double> x;
  std::size_t iterations = 0;
};

struct SimplexOptions {
  std::size_t max_iterations = 200000;
  double eps = 1e-9;          ///< pivot / feasibility tolerance
  std::size_t bland_after = 5000;  ///< switch to Bland's rule after this many pivots
};

LpSolution solve_lp(const LinearProgram& lp, const SimplexOptions& opts = {});

/// Evaluate c·x for a candidate solution.
double objective_value(const LinearProgram& lp, const std::vector<double>& x);

/// Check primal feasibility of x within tolerance (used by property tests).
bool is_feasible(const LinearProgram& lp, const std::vector<double>& x,
                 double tol = 1e-6);

}  // namespace edgerep
