#include "lp/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "lp/matrix.h"

namespace edgerep {

std::size_t LinearProgram::add_constraint(
    std::vector<std::pair<std::size_t, double>> terms, Relation rel,
    double rhs) {
  constraints.push_back(LinearConstraint{std::move(terms), rel, rhs});
  return constraints.size() - 1;
}

void LinearProgram::add_upper_bound(std::size_t var, double ub) {
  add_constraint({{var, 1.0}}, Relation::kLe, ub);
}

const char* to_string(LpStatus s) noexcept {
  switch (s) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
    case LpStatus::kIterLimit:
      return "iteration-limit";
  }
  return "?";
}

double objective_value(const LinearProgram& lp, const std::vector<double>& x) {
  double acc = 0.0;
  for (std::size_t j = 0; j < lp.num_vars && j < x.size(); ++j) {
    acc += lp.objective[j] * x[j];
  }
  return acc;
}

bool is_feasible(const LinearProgram& lp, const std::vector<double>& x,
                 double tol) {
  if (x.size() < lp.num_vars) return false;
  for (std::size_t j = 0; j < lp.num_vars; ++j) {
    if (x[j] < -tol) return false;
  }
  for (const auto& c : lp.constraints) {
    double lhs = 0.0;
    for (const auto& [j, a] : c.terms) lhs += a * x[j];
    switch (c.rel) {
      case Relation::kLe:
        if (lhs > c.rhs + tol) return false;
        break;
      case Relation::kGe:
        if (lhs < c.rhs - tol) return false;
        break;
      case Relation::kEq:
        if (std::abs(lhs - c.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

namespace {

/// Dense two-phase simplex working state.
class Tableau {
 public:
  Tableau(const LinearProgram& lp, const SimplexOptions& opts)
      : lp_(lp), opts_(opts) {
    build();
  }

  LpSolution solve() {
    LpSolution sol;
    // ---- Phase 1: maximize -(sum of artificials) --------------------
    if (num_artificial_ > 0) {
      std::vector<double> cost(num_cols_, 0.0);
      for (std::size_t j = first_artificial_; j < num_cols_; ++j) {
        cost[j] = -1.0;
      }
      set_objective(cost);
      const LpStatus st = optimize(&sol.iterations, /*allow_artificial=*/true);
      if (st == LpStatus::kIterLimit) {
        sol.status = st;
        return sol;
      }
      // Phase 1 of a feasible LP always ends optimal (it is bounded by 0).
      if (obj_rhs_ < -opts_.eps) {
        sol.status = LpStatus::kInfeasible;
        return sol;
      }
      pivot_artificials_out();
    }
    // ---- Phase 2: maximize the real objective -----------------------
    std::vector<double> cost(num_cols_, 0.0);
    for (std::size_t j = 0; j < lp_.num_vars; ++j) cost[j] = lp_.objective[j];
    set_objective(cost);
    sol.status = optimize(&sol.iterations, /*allow_artificial=*/false);
    if (sol.status == LpStatus::kOptimal) {
      sol.x.assign(lp_.num_vars, 0.0);
      for (std::size_t i = 0; i < num_rows_; ++i) {
        if (basis_[i] < lp_.num_vars) {
          sol.x[basis_[i]] = rhs(i);
        }
      }
      sol.objective = objective_value(lp_, sol.x);
    }
    return sol;
  }

 private:
  void build() {
    const std::size_t m = lp_.constraints.size();
    num_rows_ = m;
    // Column layout: [0, num_vars) real, then one slack/surplus per Le/Ge
    // row, then artificials for Ge/Eq rows.
    std::size_t num_slack = 0;
    num_artificial_ = 0;
    // Normalize rhs sign first: a·x ≥ -5  ==  -a·x ≤ 5.
    rows_.reserve(m);
    for (const auto& c : lp_.constraints) {
      NormRow r;
      r.rel = c.rel;
      r.rhs = c.rhs;
      r.terms = c.terms;
      if (r.rhs < 0.0) {
        r.rhs = -r.rhs;
        for (auto& [j, a] : r.terms) a = -a;
        if (r.rel == Relation::kLe) {
          r.rel = Relation::kGe;
        } else if (r.rel == Relation::kGe) {
          r.rel = Relation::kLe;
        }
      }
      if (r.rel != Relation::kEq) ++num_slack;
      if (r.rel != Relation::kLe) ++num_artificial_;
      rows_.push_back(std::move(r));
    }
    first_slack_ = lp_.num_vars;
    first_artificial_ = first_slack_ + num_slack;
    num_cols_ = first_artificial_ + num_artificial_;
    // +1 column for rhs.
    t_ = Matrix(num_rows_, num_cols_ + 1, 0.0);
    basis_.assign(num_rows_, 0);
    std::size_t slack = first_slack_;
    std::size_t art = first_artificial_;
    for (std::size_t i = 0; i < num_rows_; ++i) {
      const NormRow& r = rows_[i];
      for (const auto& [j, a] : r.terms) {
        if (j >= lp_.num_vars) {
          throw std::invalid_argument("simplex: term index out of range");
        }
        t_.at(i, j) += a;
      }
      t_.at(i, num_cols_) = r.rhs;
      switch (r.rel) {
        case Relation::kLe:
          t_.at(i, slack) = 1.0;
          basis_[i] = slack++;
          break;
        case Relation::kGe:
          t_.at(i, slack) = -1.0;
          ++slack;
          t_.at(i, art) = 1.0;
          basis_[i] = art++;
          break;
        case Relation::kEq:
          t_.at(i, art) = 1.0;
          basis_[i] = art++;
          break;
      }
    }
    obj_.assign(num_cols_, 0.0);
    obj_rhs_ = 0.0;
  }

  [[nodiscard]] double rhs(std::size_t i) const { return t_.at(i, num_cols_); }

  /// Install a cost vector and canonicalize the objective row against the
  /// current basis (reduced costs of basic columns must be zero).
  void set_objective(const std::vector<double>& cost) {
    // Objective row entries are stored as (c_j - z_j); entering candidates
    // are columns with positive entries (maximization).
    obj_ = cost;
    obj_rhs_ = 0.0;
    for (std::size_t i = 0; i < num_rows_; ++i) {
      const double cb = cost[basis_[i]];
      if (cb == 0.0) continue;
      for (std::size_t j = 0; j < num_cols_; ++j) {
        obj_[j] -= cb * t_.at(i, j);
      }
      obj_rhs_ -= cb * rhs(i);
    }
    // obj_rhs_ holds -(current objective value); we track the value itself.
    obj_rhs_ = -obj_rhs_;
  }

  /// One pivot: bring `col` into the basis on row `row`.
  void pivot(std::size_t row, std::size_t col) {
    const double p = t_.at(row, col);
    assert(std::abs(p) > opts_.eps);
    t_.scale_row(row, 1.0 / p);
    for (std::size_t i = 0; i < num_rows_; ++i) {
      if (i == row) continue;
      const double f = t_.at(i, col);
      if (f != 0.0) t_.axpy_row(i, row, -f);
    }
    const double fo = obj_[col];
    if (fo != 0.0) {
      for (std::size_t j = 0; j < num_cols_; ++j) {
        obj_[j] -= fo * t_.at(row, j);
      }
      obj_rhs_ += fo * rhs(row);
    }
    basis_[row] = col;
  }

  /// Dantzig/Bland column selection; returns num_cols_ when optimal.
  std::size_t entering_column(bool bland, bool allow_artificial) const {
    const std::size_t limit = allow_artificial ? num_cols_ : first_artificial_;
    if (bland) {
      for (std::size_t j = 0; j < limit; ++j) {
        if (obj_[j] > opts_.eps) return j;
      }
      return num_cols_;
    }
    std::size_t best = num_cols_;
    double best_val = opts_.eps;
    for (std::size_t j = 0; j < limit; ++j) {
      if (obj_[j] > best_val) {
        best_val = obj_[j];
        best = j;
      }
    }
    return best;
  }

  /// Minimum-ratio row for the entering column; num_rows_ when unbounded.
  std::size_t leaving_row(std::size_t col, bool bland) const {
    std::size_t best = num_rows_;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < num_rows_; ++i) {
      const double a = t_.at(i, col);
      if (a <= opts_.eps) continue;
      const double ratio = rhs(i) / a;
      if (ratio < best_ratio - opts_.eps ||
          (bland && std::abs(ratio - best_ratio) <= opts_.eps &&
           best != num_rows_ && basis_[i] < basis_[best])) {
        best_ratio = ratio;
        best = i;
      }
    }
    return best;
  }

  LpStatus optimize(std::size_t* iterations, bool allow_artificial) {
    std::size_t local_iters = 0;
    for (;;) {
      if (*iterations >= opts_.max_iterations) return LpStatus::kIterLimit;
      const bool bland = local_iters > opts_.bland_after;
      const std::size_t col = entering_column(bland, allow_artificial);
      if (col == num_cols_) return LpStatus::kOptimal;
      const std::size_t row = leaving_row(col, bland);
      if (row == num_rows_) return LpStatus::kUnbounded;
      pivot(row, col);
      ++*iterations;
      ++local_iters;
    }
  }

  /// After phase 1, swap any artificial variable still basic (at value 0)
  /// for a non-artificial column, or mark the row redundant.
  void pivot_artificials_out() {
    for (std::size_t i = 0; i < num_rows_; ++i) {
      if (basis_[i] < first_artificial_) continue;
      bool swapped = false;
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (std::abs(t_.at(i, j)) > 1e-7) {
          pivot(i, j);
          swapped = true;
          break;
        }
      }
      // If no pivot target exists the row is all-zero over real columns
      // (a redundant constraint); the artificial stays basic at value 0 and
      // is harmless because phase 2 never lets artificials enter.
      (void)swapped;
    }
  }

  struct NormRow {
    std::vector<std::pair<std::size_t, double>> terms;
    Relation rel = Relation::kLe;
    double rhs = 0.0;
  };

  const LinearProgram& lp_;
  SimplexOptions opts_;
  std::vector<NormRow> rows_;
  Matrix t_;
  std::vector<std::size_t> basis_;
  std::vector<double> obj_;  ///< reduced-cost row (c_j - z_j)
  double obj_rhs_ = 0.0;     ///< current objective value
  std::size_t num_rows_ = 0;
  std::size_t num_cols_ = 0;
  std::size_t first_slack_ = 0;
  std::size_t first_artificial_ = 0;
  std::size_t num_artificial_ = 0;
};

}  // namespace

LpSolution solve_lp(const LinearProgram& lp, const SimplexOptions& opts) {
  if (lp.objective.size() != lp.num_vars) {
    throw std::invalid_argument("solve_lp: objective size != num_vars");
  }
  if (lp.num_vars == 0) {
    // Feasibility depends only on constant constraints.
    LpSolution sol;
    sol.status = LpStatus::kOptimal;
    for (const auto& c : lp.constraints) {
      const bool ok = (c.rel == Relation::kLe && 0.0 <= c.rhs + 1e-12) ||
                      (c.rel == Relation::kGe && 0.0 >= c.rhs - 1e-12) ||
                      (c.rel == Relation::kEq && std::abs(c.rhs) <= 1e-12);
      if (!ok) sol.status = LpStatus::kInfeasible;
    }
    return sol;
  }
  Tableau t(lp, opts);
  return t.solve();
}

}  // namespace edgerep
