// Branch-and-bound integer programming on top of the simplex solver.
// Depth-first search, most-fractional branching, LP-bound pruning.  Exact on
// the small instances used as optimality references in tests and the
// LP-gap ablation bench.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/simplex.h"

namespace edgerep {

struct IlpOptions {
  std::size_t max_nodes = 200000;  ///< B&B node budget
  double int_tol = 1e-6;           ///< |x - round(x)| below this is integral
  SimplexOptions lp;               ///< options for each node relaxation
};

struct IlpSolution {
  LpStatus status = LpStatus::kIterLimit;
  bool proven_optimal = false;  ///< false when a budget was exhausted
  double objective = 0.0;
  std::vector<double> x;
  std::size_t nodes_explored = 0;
  double best_bound = 0.0;  ///< tightest LP upper bound seen at the root frontier
};

/// Maximize lp subject to x_j integral for every j with is_integer[j].
/// `is_integer` must have size lp.num_vars.
IlpSolution solve_ilp(const LinearProgram& lp,
                      const std::vector<bool>& is_integer,
                      const IlpOptions& opts = {});

}  // namespace edgerep
