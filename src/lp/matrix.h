// Dense row-major matrix used by the simplex tableau.  Deliberately small:
// the LP substrate exists as an *optimality reference* on modest instances
// (tests and the ablation gap bench), not as a production LP code.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace edgerep {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  /// rows()×1 matrix-vector product helper: row r · x.
  [[nodiscard]] double dot_row(std::size_t r, std::span<const double> x) const;

  /// Gaussian row operation: row[target] += factor * row[source].
  void axpy_row(std::size_t target, std::size_t source, double factor);

  /// Scale a row in place.
  void scale_row(std::size_t r, double factor);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace edgerep
