// Umbrella public header for the edgerep library.
//
// edgerep reproduces "QoS-Aware Proactive Data Replication for Big Data
// Analytics in Edge Clouds" (Xia et al., ICPP 2019 Workshops): a two-tier
// edge-cloud model, the primal-dual approximation algorithms Appro-S and
// Appro-G, the paper's baselines, exact ILP reference solvers, workload
// generators, and a discrete-event testbed simulator.
//
// Typical use:
//   #include "edgerep/edgerep.h"
//   auto inst = edgerep::generate_instance(edgerep::special_case_config(), 42);
//   auto result = edgerep::appro_s(inst);
//   auto metrics = edgerep::evaluate(result.plan);
#pragma once

#include "baselines/centrality_baseline.h"  // IWYU pragma: export
#include "baselines/graph_baseline.h"   // IWYU pragma: export
#include "baselines/greedy.h"           // IWYU pragma: export
#include "baselines/popularity.h"       // IWYU pragma: export
#include "baselines/random_baseline.h"  // IWYU pragma: export
#include "cloud/availability.h"         // IWYU pragma: export
#include "cloud/consistency.h"          // IWYU pragma: export
#include "cloud/delay.h"                // IWYU pragma: export
#include "cloud/instance.h"             // IWYU pragma: export
#include "cloud/instance_io.h"          // IWYU pragma: export
#include "cloud/plan.h"                 // IWYU pragma: export
#include "cloud/plan_diff.h"            // IWYU pragma: export
#include "cloud/plan_io.h"              // IWYU pragma: export
#include "cloud/types.h"                // IWYU pragma: export
#include "core/appro.h"                 // IWYU pragma: export
#include "core/candidate_index.h"       // IWYU pragma: export
#include "core/exact.h"                 // IWYU pragma: export
#include "core/lagrangian.h"            // IWYU pragma: export
#include "core/local_search.h"          // IWYU pragma: export
#include "core/pricing.h"               // IWYU pragma: export
#include "core/primal_dual.h"           // IWYU pragma: export
#include "core/repair.h"                // IWYU pragma: export
#include "core/rounding.h"              // IWYU pragma: export
#include "lp/ilp.h"                     // IWYU pragma: export
#include "lp/model.h"                   // IWYU pragma: export
#include "lp/simplex.h"                 // IWYU pragma: export
#include "net/centrality.h"             // IWYU pragma: export
#include "net/graph.h"                  // IWYU pragma: export
#include "net/io.h"                     // IWYU pragma: export
#include "net/shortest_path.h"          // IWYU pragma: export
#include "net/topology.h"               // IWYU pragma: export
#include "obs/audit.h"                  // IWYU pragma: export
#include "obs/http_server.h"            // IWYU pragma: export
#include "obs/metrics.h"                // IWYU pragma: export
#include "obs/obs.h"                    // IWYU pragma: export
#include "obs/postmortem.h"             // IWYU pragma: export
#include "obs/recorder.h"               // IWYU pragma: export
#include "obs/timeseries.h"             // IWYU pragma: export
#include "obs/trace.h"                  // IWYU pragma: export
#include "obs/watchdog.h"               // IWYU pragma: export
#include "part/partitioner.h"           // IWYU pragma: export
#include "sim/event.h"                  // IWYU pragma: export
#include "sim/event_kernel.h"           // IWYU pragma: export
#include "sim/faults.h"                 // IWYU pragma: export
#include "sim/flows.h"                  // IWYU pragma: export
#include "sim/metrics.h"                // IWYU pragma: export
#include "sim/online.h"                 // IWYU pragma: export
#include "sim/simulator.h"              // IWYU pragma: export
#include "stream/ledger.h"              // IWYU pragma: export
#include "stream/shard_engine.h"        // IWYU pragma: export
#include "stream/shard_map.h"           // IWYU pragma: export
#include "stream/stream_engine.h"       // IWYU pragma: export
#include "util/args.h"                  // IWYU pragma: export
#include "util/log.h"                   // IWYU pragma: export
#include "util/rng.h"                   // IWYU pragma: export
#include "util/stats.h"                 // IWYU pragma: export
#include "util/table.h"                 // IWYU pragma: export
#include "workload/arrival_gen.h"       // IWYU pragma: export
#include "workload/config_io.h"         // IWYU pragma: export
#include "workload/fault_gen.h"         // IWYU pragma: export
#include "workload/generator.h"         // IWYU pragma: export
#include "workload/scenarios.h"         // IWYU pragma: export
#include "workload/sweep.h"             // IWYU pragma: export
#include "workload/testbed.h"           // IWYU pragma: export
#include "workload/trace.h"             // IWYU pragma: export
