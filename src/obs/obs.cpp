#include "obs/obs.h"

#include <chrono>
#include <cstdlib>

namespace edgerep::obs {

namespace detail {

std::atomic<bool> g_metrics_on{false};
std::atomic<bool> g_trace_on{false};
std::atomic<bool> g_audit_on{false};
std::atomic<bool> g_recorder_on{false};
std::atomic<bool> g_watchdog_on{false};

namespace {

bool env_default() {
  const char* v = std::getenv("EDGEREP_OBS");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

// Applies EDGEREP_OBS once during static initialization so main() and tests
// see the environment default without an explicit init call.
struct EnvInit {
  EnvInit() { init_from_env(); }
};
const EnvInit g_env_init;

}  // namespace
}  // namespace detail

void set_metrics_enabled(bool on) noexcept {
  detail::g_metrics_on.store(on, std::memory_order_relaxed);
}
void set_trace_enabled(bool on) noexcept {
  detail::g_trace_on.store(on, std::memory_order_relaxed);
}
void set_audit_enabled(bool on) noexcept {
  detail::g_audit_on.store(on, std::memory_order_relaxed);
}
void set_recorder_enabled(bool on) noexcept {
  detail::g_recorder_on.store(on, std::memory_order_relaxed);
}
void set_watchdog_enabled(bool on) noexcept {
  detail::g_watchdog_on.store(on, std::memory_order_relaxed);
}
void set_all_enabled(bool on) noexcept {
  set_metrics_enabled(on);
  set_trace_enabled(on);
  set_audit_enabled(on);
}

void init_from_env() {
  set_all_enabled(detail::env_default());
  detail::recorder_apply_env();
  detail::watchdog_apply_env();
}

std::uint64_t now_ns() noexcept {
  static const std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

std::size_t thread_ordinal() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace edgerep::obs
