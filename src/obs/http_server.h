// Embedded std-only HTTP/1.0 server for live telemetry.
//
// A blocking accept loop on one dedicated thread, loopback-only
// (127.0.0.1), no third-party dependencies: just enough HTTP to let `curl`
// and a Prometheus scraper read `/metrics`, `/healthz`, `/status`, and
// `/timeseries` while the engine runs.  Not a general web server — one
// request per connection ("Connection: close"), GET only, exact-path
// dispatch, 8 KiB header budget, and short socket timeouts so a stalled
// client cannot wedge the serving thread.
//
//   obs::HttpServer server;
//   server.route("/metrics", [](const obs::HttpRequest&) {
//     std::ostringstream os;
//     obs::metrics().write_prometheus(os);
//     return obs::HttpResponse{200, "text/plain; version=0.0.4", os.str()};
//   });
//   server.start(0);                 // 0 = kernel-assigned ephemeral port
//   ... server.port() is now bound ...
//   server.stop();                   // joins the serving thread
//
// Handlers run on the serving thread and must be thread-safe against the
// engine (the obs registries are; snapshot boards take their own locks).
// The server is start-once: construct a fresh instance to serve again.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "obs/obs.h"

namespace edgerep::obs {

struct HttpRequest {
  std::string method;  ///< "GET"
  std::string path;    ///< decoded-free path, no query string ("/metrics")
  std::string query;   ///< raw text after '?', empty when absent
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register an exact-match route.  Call before start(); unknown paths get
  /// a 404 and non-GET methods a 405.
  void route(const std::string& path, Handler handler);

  /// Bind 127.0.0.1:`port` (0 = ephemeral) and launch the accept thread.
  /// Throws std::runtime_error on bind failure or if already started.
  void start(std::uint16_t port);

  /// Stop accepting, close the listening socket, and join the thread.
  /// Idempotent; also called by the destructor.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// Bound port (the kernel's pick when started with 0); 0 before start().
  [[nodiscard]] std::uint16_t port() const noexcept {
    return port_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void handle_connection(int fd);

  std::map<std::string, Handler> routes_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint16_t> port_{0};
  std::atomic<std::uint64_t> requests_{0};
  int listen_fd_ = -1;
  bool started_ = false;
  std::thread thread_;
};

}  // namespace edgerep::obs
