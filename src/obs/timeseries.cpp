#include "obs/timeseries.h"

#include <chrono>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"

namespace edgerep::obs {

TimeSeriesSampler::TimeSeriesSampler(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {
  ring_.resize(capacity_);
}

TimeSeriesSampler::~TimeSeriesSampler() { stop(); }

void TimeSeriesSampler::add_series(std::string name, Probe probe) {
  if (started_) {
    throw std::logic_error("TimeSeriesSampler: add_series after start");
  }
  names_.push_back(std::move(name));
  probes_.push_back(std::move(probe));
}

void TimeSeriesSampler::add_counter_series(const std::string& metric_name) {
  Counter& c = metrics().counter(metric_name);
  add_series(metric_name,
             [&c] { return static_cast<double>(c.value()); });
}

void TimeSeriesSampler::add_gauge_series(const std::string& metric_name) {
  Gauge& g = metrics().gauge(metric_name);
  add_series(metric_name, [&g] { return g.value(); });
}

void TimeSeriesSampler::start(std::uint64_t interval_ms) {
  if (started_) {
    throw std::logic_error("TimeSeriesSampler: already started");
  }
  started_ = true;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this, interval_ms] { run_loop(interval_ms); });
}

void TimeSeriesSampler::stop() {
  if (!started_) return;
  {
    const std::lock_guard<std::mutex> lock(stop_mu_);
    running_.store(false, std::memory_order_release);
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

void TimeSeriesSampler::sample_now() {
  // Evaluate the probes outside the ring mutex: they may take their own
  // locks (status board, registry), and holding ours across them would
  // stall readers for no reason.
  Sample s;
  s.t_ns = now_ns();
  s.values.reserve(probes_.size());
  for (const Probe& p : probes_) s.values.push_back(p());

  const std::lock_guard<std::mutex> lock(mu_);
  ring_[head_] = std::move(s);
  head_ = (head_ + 1) % capacity_;
  if (count_ < capacity_) ++count_;
  total_.fetch_add(1, std::memory_order_relaxed);
}

void TimeSeriesSampler::run_loop(std::uint64_t interval_ms) {
  const auto interval =
      std::chrono::milliseconds(interval_ms > 0 ? interval_ms : 1);
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (running_.load(std::memory_order_acquire)) {
    lock.unlock();
    sample_now();
    lock.lock();
    stop_cv_.wait_for(lock, interval, [this] {
      return !running_.load(std::memory_order_acquire);
    });
  }
}

std::vector<std::string> TimeSeriesSampler::series_names() const {
  return names_;
}

std::vector<Sample> TimeSeriesSampler::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(count_);
  // Oldest sample sits at head_ once the ring has wrapped, at 0 before.
  const std::size_t start = count_ == capacity_ ? head_ : 0;
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

void TimeSeriesSampler::write_csv(std::ostream& os) const {
  os << "t_ns";
  for (const std::string& n : names_) os << "," << n;
  os << "\n";
  const auto old = os.precision(17);
  for (const Sample& s : snapshot()) {
    os << s.t_ns;
    for (double v : s.values) os << "," << v;
    os << "\n";
  }
  os.precision(old);
}

void TimeSeriesSampler::write_json(std::ostream& os) const {
  os << "{\n  \"series\": [";
  for (std::size_t i = 0; i < names_.size(); ++i) {
    os << (i == 0 ? "" : ", ") << "\"" << names_[i] << "\"";
  }
  os << "],\n  \"samples\": [";
  const std::vector<Sample> samples = snapshot();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"t_ns\": " << s.t_ns
       << ", \"values\": [";
    for (std::size_t j = 0; j < s.values.size(); ++j) {
      if (j > 0) os << ", ";
      write_json_double(os, s.values[j]);
    }
    os << "]}";
  }
  os << (samples.empty() ? "" : "\n  ") << "]\n}\n";
}

void DualPriceBoard::publish(std::uint32_t site, double theta) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (site >= theta_.size()) {
    theta_.resize(site + 1, 0.0);
    touched_.resize(site + 1, 0);
  }
  theta_[site] = theta;
  touched_[site] = 1;
}

double DualPriceBoard::theta(std::uint32_t site) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return site < theta_.size() ? theta_[site] : 0.0;
}

bool DualPriceBoard::touched(std::uint32_t site) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return site < touched_.size() && touched_[site] != 0;
}

std::size_t DualPriceBoard::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return theta_.size();
}

double DualPriceBoard::max_theta() const {
  const std::lock_guard<std::mutex> lock(mu_);
  double best = 0.0;
  for (std::size_t i = 0; i < theta_.size(); ++i) {
    if (touched_[i] != 0 && theta_[i] > best) best = theta_[i];
  }
  return best;
}

std::size_t DualPriceBoard::touched_sites() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (char t : touched_) n += t != 0 ? 1 : 0;
  return n;
}

void DualPriceBoard::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  theta_.clear();
  touched_.clear();
}

DualPriceBoard& dual_prices() {
  static DualPriceBoard board;
  return board;
}

}  // namespace edgerep::obs
