#include "obs/postmortem.h"

#include <algorithm>
#include <cstring>
#include <iomanip>
#include <map>
#include <ostream>

#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"

namespace edgerep::obs {

namespace {

// Mirror of util/stats.h percentile_sorted — the obs layer sits below util
// and cannot link it; bitwise agreement with the simulator's rollup is
// pinned by tests/obs/postmortem_test.cpp.
double percentile_sorted_mirror(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double slack_percentile_mirror(std::vector<double>& xs, double p) {
  std::sort(xs.begin(), xs.end());
  return percentile_sorted_mirror(xs, p);
}

constexpr double kSlackTolerance = -1e-9;  // mirrors finalize_online_result

struct DemandState {
  bool seen = false;
  bool on_dc = false;
  std::uint32_t site = kNoSite;
  std::uint32_t owner = 0;    ///< owning query id
  std::uint32_t idx = 0;      ///< demand index within the query
  std::uint32_t dataset = 0;  ///< latest flight's dataset
  /// Bottleneck link that last throttled this demand's flow (kNoLink until
  /// a kFlowRateChange rate transition names one; reset per flight).
  std::uint32_t bottleneck = kNoLink;
  double start = 0.0;  ///< latest flight's launch time
  double proc = 0.0;   ///< latest flight's processing share
  /// Latest flight's start + total delay; a flow retirement record
  /// max-accumulates the contended actual on top, mirroring the kernels.
  double completion = 0.0;
};

struct QueryState {
  bool arrived = false;
  bool rejected = false;
  bool failed = false;
  bool has_flight = false;
  std::uint8_t reject_reason = 0;
  std::uint32_t n_demands = 0;
  std::uint32_t relocations = 0;
  std::uint32_t sheds = 0;
  double arrival = 0.0;
  double deadline = 0.0;
  /// Running max over every flight record's completion — the same
  /// max-accumulate the kernels apply (admission response, then each
  /// relocation), so it is bit-identical to OnlineOutcome::completion_time.
  double completion = 0.0;
  // Critical flight: the record that set the running max.
  std::uint32_t crit_demand = 0;
  std::uint32_t crit_site = kNoSite;
  std::uint32_t crit_dataset = 0;
  std::uint32_t crit_link = kNoLink;
  bool crit_on_dc = false;
  double crit_start = 0.0;
  double crit_total = 0.0;
  double crit_proc = 0.0;
  std::size_t demand_off = 0;
};

struct BucketAccum {
  std::size_t breaches = 0;
  std::size_t served = 0;
  double worst_slack = 0.0;
  double total_overrun = 0.0;
};

std::vector<BreachBucket> flatten_buckets(
    const std::map<std::uint32_t, BucketAccum>& accum) {
  std::vector<BreachBucket> out;
  out.reserve(accum.size());
  for (const auto& [key, acc] : accum) {
    BreachBucket b;
    b.key = key;
    b.breaches = acc.breaches;
    b.served = acc.served;
    b.worst_slack = acc.worst_slack;
    b.total_overrun = acc.total_overrun;
    out.push_back(b);
  }
  return out;
}

}  // namespace

PostmortemReport analyze_journal(const Journal& journal) {
  PostmortemReport report;
  report.rejects_by_reason.assign(kAuditReasonCount, 0);

  std::vector<QueryState> queries;
  std::vector<DemandState> demands;
  std::uint32_t max_site = 0;
  bool any_site = false;

  auto query_at = [&queries](std::uint32_t id) -> QueryState& {
    if (id >= queries.size()) queries.resize(id + 1);
    return queries[id];
  };

  for (const JournalRecord& rec : journal.records) {
    switch (static_cast<RecordKind>(rec.kind)) {
      case RecordKind::kArrival: {
        QueryState& qs = query_at(rec.a);
        qs.arrived = true;
        qs.arrival = rec.time;
        qs.deadline = rec.v0;
        qs.n_demands = rec.b;
        qs.demand_off = demands.size();
        demands.resize(demands.size() + rec.b);
        ++report.arrivals;
        break;
      }
      case RecordKind::kTransferStart:
      case RecordKind::kRelocate: {
        QueryState& qs = query_at(rec.a);
        if (!qs.arrived || rec.arg >= qs.n_demands) break;  // ring orphan
        if (static_cast<RecordKind>(rec.kind) == RecordKind::kRelocate) {
          ++qs.relocations;
          ++report.relocations;
        }
        DemandState& ds = demands[qs.demand_off + rec.arg];
        ds.seen = true;
        ds.site = rec.site;
        ds.owner = rec.a;
        ds.idx = rec.arg;
        ds.dataset = rec.b;
        ds.on_dc = (rec.flags & 1u) != 0;
        ds.start = rec.time;
        ds.proc = rec.v1;
        ds.bottleneck = kNoLink;  // fresh flight → fresh flow
        ds.completion = rec.time + rec.v0;
        if (rec.site != kNoSite) {
          max_site = std::max(max_site, rec.site);
          any_site = true;
        }
        if (!qs.has_flight || ds.completion > qs.completion) {
          qs.completion = ds.completion;
          qs.crit_demand = rec.arg;
          qs.crit_site = rec.site;
          qs.crit_dataset = rec.b;
          qs.crit_link = kNoLink;
          qs.crit_on_dc = (rec.flags & 1u) != 0;
          qs.crit_start = rec.time;
          qs.crit_total = rec.v0;
          qs.crit_proc = rec.v1;
        }
        qs.has_flight = true;
        break;
      }
      case RecordKind::kComputeDone:
        break;
      case RecordKind::kReject: {
        QueryState& qs = query_at(rec.a);
        qs.rejected = true;
        qs.reject_reason = rec.arg;
        if (rec.arg < report.rejects_by_reason.size()) {
          ++report.rejects_by_reason[rec.arg];
        }
        ++report.rejected;
        break;
      }
      case RecordKind::kShed: {
        QueryState& qs = query_at(rec.a);
        ++qs.sheds;
        ++report.sheds;
        break;
      }
      case RecordKind::kFail: {
        QueryState& qs = query_at(rec.a);
        if (!qs.failed) {
          qs.failed = true;
          ++report.failed_by_fault;
        }
        break;
      }
      case RecordKind::kFaultApply:
        ++report.fault_events;
        break;
      case RecordKind::kEpochBegin: {
        EpochStats es;
        es.epoch = rec.b;
        es.batch = rec.a;
        es.window_end = rec.v0;
        report.epochs.push_back(es);
        break;
      }
      case RecordKind::kIntent:
        ++report.stream_intents;
        if (!report.epochs.empty()) ++report.epochs.back().intents;
        break;
      case RecordKind::kCommit:
        ++report.stream_commits;
        if (!report.epochs.empty()) ++report.epochs.back().commits;
        break;
      case RecordKind::kConflict:
        ++report.stream_conflicts;
        if (!report.epochs.empty()) ++report.epochs.back().conflicts;
        break;
      case RecordKind::kRequeue:
        ++report.stream_requeues;
        if (!report.epochs.empty()) ++report.epochs.back().requeues;
        break;
      case RecordKind::kStreamReject:
        ++report.stream_rejects;
        if (!report.epochs.empty()) ++report.epochs.back().rejects;
        break;
      case RecordKind::kFlowRateChange: {
        // rec.a is the kernels' flat (query, demand) layout slot.  Arrival
        // records replay queries in id order, so `demands` grows with the
        // exact same prefix sums and the slot indexes it directly — unless
        // a ring journal dropped arrivals, in which case the guard below
        // skips unattributable records (best-effort, like flight orphans).
        if (rec.a >= demands.size()) break;
        DemandState& ds = demands[rec.a];
        if (!ds.seen) break;
        if (rec.arg == 0) {
          ++report.flow_rate_changes;
          ds.bottleneck = rec.b;
          break;
        }
        // Retirement: the flow drained at rec.time — the authoritative
        // actual completion.  Max-accumulate onto the priced completion,
        // mirroring the kernels' deliver_transfer.
        ++report.flow_retirements;
        if (rec.time > ds.completion + 1e-9) ++report.flow_stretched;
        if (rec.time > ds.completion) ds.completion = rec.time;
        QueryState& qs = query_at(ds.owner);
        if (ds.completion > qs.completion) {
          qs.completion = ds.completion;
          qs.crit_demand = ds.idx;
          qs.crit_site = ds.site;
          qs.crit_dataset = ds.dataset;
          qs.crit_link = ds.bottleneck;
          qs.crit_on_dc = ds.on_dc;
          qs.crit_start = ds.start;
          qs.crit_total = ds.completion - ds.start;  // includes the stretch
          qs.crit_proc = ds.proc;
        }
        break;
      }
      case RecordKind::kAlert: {
        const bool resolve = (rec.flags & 1u) != 0;
        if (!resolve) {
          AlertWindow w;
          w.onset = rec.time;
          w.kind = rec.arg;
          w.severity = static_cast<std::uint8_t>((rec.flags >> 1) & 3u);
          w.subject_kind = static_cast<std::uint8_t>((rec.flags >> 3) & 3u);
          w.subject = rec.a;
          w.seq = rec.b;
          w.onset_value = rec.v0;
          w.threshold = rec.v1;
          report.alerts.push_back(w);
          ++report.alerts_opened;
          break;
        }
        // rec.b pairs the resolve with its open record.  A ring journal
        // may have overwritten the open — reconstruct the window from the
        // resolve, whose v1 carries the onset time.
        AlertWindow* w = nullptr;
        for (AlertWindow& cand : report.alerts) {
          if (cand.seq == rec.b) {
            w = &cand;
            break;
          }
        }
        if (w == nullptr) {
          AlertWindow orphan;
          orphan.onset = rec.v1;
          orphan.kind = rec.arg;
          orphan.severity = static_cast<std::uint8_t>((rec.flags >> 1) & 3u);
          orphan.subject_kind =
              static_cast<std::uint8_t>((rec.flags >> 3) & 3u);
          orphan.subject = rec.a;
          orphan.seq = rec.b;
          report.alerts.push_back(orphan);
          ++report.alerts_opened;
          w = &report.alerts.back();
        }
        w->resolve = rec.time;
        w->resolve_value = rec.v0;
        ++report.alerts_resolved;
        break;
      }
    }
  }

  // SLO rollup — the exact fold finalize_online_result applies, replayed
  // from the journal's doubles.
  std::vector<double> query_slacks;
  std::vector<std::vector<double>> site_slacks(any_site ? max_site + 1 : 0);
  std::vector<std::size_t> site_hits(site_slacks.size(), 0);
  report.timelines.reserve(report.arrivals);

  std::map<std::uint32_t, BucketAccum> by_site;
  std::map<std::uint32_t, BucketAccum> by_dataset;
  std::map<std::uint32_t, BucketAccum> by_role;
  std::map<std::uint32_t, BucketAccum> by_link;

  for (std::uint32_t id = 0; id < queries.size(); ++id) {
    const QueryState& qs = queries[id];
    if (!qs.arrived) continue;
    const bool admitted =
        qs.has_flight && !qs.rejected && !qs.failed;
    QueryTimeline tl;
    tl.query = id;
    tl.arrival = qs.arrival;
    tl.deadline = qs.deadline;
    tl.completion = qs.completion;
    tl.n_demands = qs.n_demands;
    tl.admitted = admitted;
    tl.rejected = qs.rejected;
    tl.failed = qs.failed;
    tl.reject_reason = qs.reject_reason;
    tl.relocations = qs.relocations;
    tl.sheds = qs.sheds;
    if (qs.has_flight) {
      tl.critical_demand = qs.crit_demand;
      tl.critical_site = qs.crit_site;
      tl.critical_dataset = qs.crit_dataset;
      tl.critical_link = qs.crit_link;
      tl.critical_on_dc = qs.crit_on_dc;
      tl.compute = qs.crit_proc;
      tl.transfer = qs.crit_total - qs.crit_proc;
      tl.wait = (qs.completion - qs.arrival) - qs.crit_total;
      tl.slack = qs.deadline - (qs.completion - qs.arrival);
    }
    if (admitted) {
      ++report.admitted;
      query_slacks.push_back(qs.deadline - (qs.completion - qs.arrival));
      for (std::uint32_t d = 0; d < qs.n_demands; ++d) {
        const DemandState& ds = demands[qs.demand_off + d];
        if (!ds.seen || ds.site == kNoSite) continue;
        const double slack = qs.deadline - (ds.completion - qs.arrival);
        site_slacks[ds.site].push_back(slack);
        if (slack >= kSlackTolerance) ++site_hits[ds.site];
      }
      const bool breach = tl.slack < kSlackTolerance;
      for (auto* accum : {&by_site, &by_dataset, &by_role}) {
        std::uint32_t key = 0;
        if (accum == &by_site) {
          key = qs.crit_site;
        } else if (accum == &by_dataset) {
          key = qs.crit_dataset;
        } else {
          key = qs.crit_on_dc ? 1u : 0u;
        }
        BucketAccum& acc = (*accum)[key];
        ++acc.served;
        if (breach) {
          ++acc.breaches;
          acc.worst_slack = std::min(acc.worst_slack, tl.slack);
          acc.total_overrun += -tl.slack;
        }
      }
      // Link attribution only covers queries whose critical flow was
      // actually throttled by a named link — cap-frozen and table-priced
      // completions have no link to blame.
      if (qs.crit_link != kNoLink) {
        BucketAccum& acc = by_link[qs.crit_link];
        ++acc.served;
        if (breach) {
          ++acc.breaches;
          acc.worst_slack = std::min(acc.worst_slack, tl.slack);
          acc.total_overrun += -tl.slack;
        }
      }
      // Watchdog attribution: count the breach in every alert window its
      // completion time fell inside (open windows run to journal end).
      if (breach) {
        for (AlertWindow& w : report.alerts) {
          if (qs.completion >= w.onset &&
              (w.resolve < 0.0 || qs.completion <= w.resolve)) {
            ++w.breaches_in_window;
          }
        }
      }
    }
    report.timelines.push_back(tl);
  }

  report.slo.admitted_queries = report.admitted;
  for (const double s : query_slacks) {
    if (s >= kSlackTolerance) ++report.slo.deadline_hits;
  }
  report.slo.hit_ratio =
      query_slacks.empty()
          ? 0.0
          : static_cast<double>(report.slo.deadline_hits) /
                static_cast<double>(query_slacks.size());
  report.slo.p50_slack = slack_percentile_mirror(query_slacks, 50.0);
  report.slo.p95_slack = slack_percentile_mirror(query_slacks, 5.0);
  report.slo.p99_slack = slack_percentile_mirror(query_slacks, 1.0);
  for (std::size_t s = 0; s < site_slacks.size(); ++s) {
    if (site_slacks[s].empty()) continue;
    PostmortemSiteSlo row;
    row.site = static_cast<std::uint32_t>(s);
    row.demands = site_slacks[s].size();
    row.deadline_hits = site_hits[s];
    row.p50_slack = slack_percentile_mirror(site_slacks[s], 50.0);
    row.p95_slack = slack_percentile_mirror(site_slacks[s], 5.0);
    row.p99_slack = slack_percentile_mirror(site_slacks[s], 1.0);
    report.slo.per_site.push_back(row);
  }

  report.by_site = flatten_buckets(by_site);
  report.by_dataset = flatten_buckets(by_dataset);
  report.by_role = flatten_buckets(by_role);
  report.by_link = flatten_buckets(by_link);
  return report;
}

namespace {

std::vector<const QueryTimeline*> worst_breaches(
    const PostmortemReport& report, std::size_t top) {
  std::vector<const QueryTimeline*> breached;
  for (const QueryTimeline& tl : report.timelines) {
    if (tl.admitted && tl.slack < kSlackTolerance) breached.push_back(&tl);
  }
  std::sort(breached.begin(), breached.end(),
            [](const QueryTimeline* a, const QueryTimeline* b) {
              if (a->slack != b->slack) return a->slack < b->slack;
              return a->query < b->query;
            });
  if (breached.size() > top) breached.resize(top);
  return breached;
}

const char* bucket_kind_name(int which) {
  switch (which) {
    case 0:
      return "site";
    case 1:
      return "dataset";
    case 2:
      return "role";
    default:
      return "link";
  }
}

void write_bucket_text(std::ostream& os, const std::vector<BreachBucket>& bs,
                       int which) {
  for (const BreachBucket& b : bs) {
    if (b.breaches == 0) continue;
    os << "  " << bucket_kind_name(which) << ' ';
    if (which == 2) {
      os << (b.key == 1 ? "data_center" : "cloudlet");
    } else {
      os << b.key;
    }
    os << ": " << b.breaches << " breach(es) / " << b.served
       << " served, worst slack " << b.worst_slack << " s, overrun "
       << b.total_overrun << " s\n";
  }
}

}  // namespace

void write_report_text(std::ostream& os, const PostmortemReport& report,
                       std::size_t top_breaches) {
  const auto flags = os.flags();
  const auto precision = os.precision();
  os << std::setprecision(17);
  if (report.arrivals > 0 || report.epochs.empty()) {
    os << "arrivals: " << report.arrivals << "\n"
       << "admitted: " << report.admitted << "\n"
       << "rejected: " << report.rejected << "\n"
       << "failed by fault: " << report.failed_by_fault << "\n"
       << "fault events: " << report.fault_events << ", sheds: "
       << report.sheds << ", relocations: " << report.relocations << "\n";
    os << "slo: hits " << report.slo.deadline_hits << "/"
       << report.slo.admitted_queries << ", hit ratio "
       << report.slo.hit_ratio << "\n"
       << "slack p50/p95/p99: " << report.slo.p50_slack << " "
       << report.slo.p95_slack << " " << report.slo.p99_slack << "\n";
    bool any_reason = false;
    for (std::size_t r = 1; r < report.rejects_by_reason.size(); ++r) {
      if (report.rejects_by_reason[r] == 0) continue;
      os << (any_reason ? " " : "rejections by reason: ")
         << to_string(static_cast<AuditReason>(r)) << "="
         << report.rejects_by_reason[r];
      any_reason = true;
    }
    if (any_reason) os << "\n";
    if (report.flow_rate_changes > 0 || report.flow_retirements > 0) {
      os << "flow backend: " << report.flow_rate_changes
         << " rate change(s), " << report.flow_retirements
         << " retirement(s), " << report.flow_stretched
         << " stretched past the priced completion\n";
    }
    if (report.alerts_opened > 0) write_alerts_text(os, report);
    const std::size_t total_breaches =
        report.slo.admitted_queries - report.slo.deadline_hits;
    if (total_breaches > 0) {
      os << "breach attribution (by critical demand):\n";
      write_bucket_text(os, report.by_site, 0);
      write_bucket_text(os, report.by_dataset, 1);
      write_bucket_text(os, report.by_role, 2);
      write_bucket_text(os, report.by_link, 3);
      const auto worst = worst_breaches(report, top_breaches);
      if (!worst.empty()) {
        os << "worst breaches:\n";
        for (const QueryTimeline* tl : worst) {
          os << "  query " << tl->query << ": slack " << tl->slack
             << " s (deadline " << tl->deadline << ", wait " << tl->wait
             << ", transfer " << tl->transfer << ", compute " << tl->compute
             << ") site " << tl->critical_site << " dataset "
             << tl->critical_dataset << " relocations " << tl->relocations;
          if (tl->critical_link != kNoLink) {
            os << " bottleneck link " << tl->critical_link;
          }
          os << "\n";
        }
      }
    }
  }
  if (!report.epochs.empty() || report.stream_intents > 0) {
    os << "stream: " << report.epochs.size() << " epoch(s), "
       << report.stream_intents << " intents, " << report.stream_commits
       << " commits, " << report.stream_conflicts << " conflicts, "
       << report.stream_requeues << " requeues, " << report.stream_rejects
       << " rejects\n";
    for (const EpochStats& es : report.epochs) {
      os << "  epoch " << es.epoch << ": batch " << es.batch << ", intents "
         << es.intents << ", commits " << es.commits << ", conflicts "
         << es.conflicts << ", requeues " << es.requeues << ", rejects "
         << es.rejects << "\n";
    }
  }
  os.flags(flags);
  os.precision(precision);
}

void write_alerts_text(std::ostream& os, const PostmortemReport& report) {
  const auto flags = os.flags();
  const auto precision = os.precision();
  os << std::setprecision(17);
  os << "alerts: " << report.alerts_opened << " opened, "
     << report.alerts_resolved << " resolved, "
     << report.alerts_opened - report.alerts_resolved << " still open\n";
  for (const AlertWindow& w : report.alerts) {
    os << "  [" << w.seq << "] "
       << to_string(static_cast<AlertKind>(w.kind)) << " "
       << to_string(static_cast<AlertSubjectKind>(w.subject_kind)) << " "
       << w.subject << " "
       << to_string(static_cast<AlertSeverity>(w.severity)) << " onset "
       << w.onset << " resolve ";
    if (w.resolve < 0.0) {
      os << "-";
    } else {
      os << w.resolve;
    }
    os << " value " << w.onset_value << "/" << w.threshold << " breaches "
       << w.breaches_in_window << "\n";
  }
  os.flags(flags);
  os.precision(precision);
}

namespace {

void write_bucket_json(std::ostream& os, const std::vector<BreachBucket>& bs,
                       const char* key_name) {
  os << "[";
  for (std::size_t i = 0; i < bs.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"" << key_name << "\":" << bs[i].key
       << ",\"breaches\":" << bs[i].breaches << ",\"served\":" << bs[i].served
       << ",\"worst_slack\":";
    write_json_double(os, bs[i].worst_slack);
    os << ",\"total_overrun\":";
    write_json_double(os, bs[i].total_overrun);
    os << "}";
  }
  os << "]";
}

}  // namespace

void write_report_json(std::ostream& os, const PostmortemReport& report,
                       std::size_t top_breaches) {
  os << "{\"arrivals\":" << report.arrivals
     << ",\"admitted\":" << report.admitted
     << ",\"rejected\":" << report.rejected
     << ",\"failed_by_fault\":" << report.failed_by_fault
     << ",\"fault_events\":" << report.fault_events
     << ",\"sheds\":" << report.sheds
     << ",\"relocations\":" << report.relocations;
  os << ",\"rejects_by_reason\":{";
  bool first = true;
  for (std::size_t r = 0; r < report.rejects_by_reason.size(); ++r) {
    if (report.rejects_by_reason[r] == 0) continue;
    if (!first) os << ",";
    first = false;
    os << "\"" << to_string(static_cast<AuditReason>(r))
       << "\":" << report.rejects_by_reason[r];
  }
  os << "}";
  os << ",\"slo\":{\"admitted_queries\":" << report.slo.admitted_queries
     << ",\"deadline_hits\":" << report.slo.deadline_hits
     << ",\"hit_ratio\":";
  write_json_double(os, report.slo.hit_ratio);
  os << ",\"p50_slack\":";
  write_json_double(os, report.slo.p50_slack);
  os << ",\"p95_slack\":";
  write_json_double(os, report.slo.p95_slack);
  os << ",\"p99_slack\":";
  write_json_double(os, report.slo.p99_slack);
  os << ",\"per_site\":[";
  for (std::size_t i = 0; i < report.slo.per_site.size(); ++i) {
    const PostmortemSiteSlo& row = report.slo.per_site[i];
    if (i > 0) os << ",";
    os << "{\"site\":" << row.site << ",\"demands\":" << row.demands
       << ",\"deadline_hits\":" << row.deadline_hits << ",\"p50_slack\":";
    write_json_double(os, row.p50_slack);
    os << ",\"p95_slack\":";
    write_json_double(os, row.p95_slack);
    os << ",\"p99_slack\":";
    write_json_double(os, row.p99_slack);
    os << "}";
  }
  os << "]}";
  os << ",\"flow\":{\"rate_changes\":" << report.flow_rate_changes
     << ",\"retirements\":" << report.flow_retirements
     << ",\"stretched\":" << report.flow_stretched << "}";
  os << ",\"breaches\":{\"by_site\":";
  write_bucket_json(os, report.by_site, "site");
  os << ",\"by_dataset\":";
  write_bucket_json(os, report.by_dataset, "dataset");
  os << ",\"by_role\":";
  write_bucket_json(os, report.by_role, "role");
  os << ",\"by_link\":";
  write_bucket_json(os, report.by_link, "link");
  os << ",\"worst\":[";
  const auto worst = worst_breaches(report, top_breaches);
  for (std::size_t i = 0; i < worst.size(); ++i) {
    const QueryTimeline* tl = worst[i];
    if (i > 0) os << ",";
    os << "{\"query\":" << tl->query << ",\"slack\":";
    write_json_double(os, tl->slack);
    os << ",\"deadline\":";
    write_json_double(os, tl->deadline);
    os << ",\"wait\":";
    write_json_double(os, tl->wait);
    os << ",\"transfer\":";
    write_json_double(os, tl->transfer);
    os << ",\"compute\":";
    write_json_double(os, tl->compute);
    os << ",\"site\":" << tl->critical_site
       << ",\"dataset\":" << tl->critical_dataset
       << ",\"relocations\":" << tl->relocations;
    if (tl->critical_link != kNoLink) {
      os << ",\"bottleneck_link\":" << tl->critical_link;
    }
    os << "}";
  }
  os << "]}";
  os << ",\"alerts\":{\"opened\":" << report.alerts_opened
     << ",\"resolved\":" << report.alerts_resolved << ",\"windows\":[";
  for (std::size_t i = 0; i < report.alerts.size(); ++i) {
    const AlertWindow& w = report.alerts[i];
    if (i > 0) os << ",";
    os << "{\"seq\":" << w.seq << ",\"kind\":\""
       << to_string(static_cast<AlertKind>(w.kind)) << "\",\"severity\":\""
       << to_string(static_cast<AlertSeverity>(w.severity))
       << "\",\"subject_kind\":\""
       << to_string(static_cast<AlertSubjectKind>(w.subject_kind))
       << "\",\"subject\":" << w.subject << ",\"onset\":";
    write_json_double(os, w.onset);
    os << ",\"resolve\":";
    if (w.resolve < 0.0) {
      os << "null";
    } else {
      write_json_double(os, w.resolve);
    }
    os << ",\"onset_value\":";
    write_json_double(os, w.onset_value);
    os << ",\"threshold\":";
    write_json_double(os, w.threshold);
    os << ",\"resolve_value\":";
    write_json_double(os, w.resolve_value);
    os << ",\"breaches_in_window\":" << w.breaches_in_window << "}";
  }
  os << "]}";
  os << ",\"stream\":{\"intents\":" << report.stream_intents
     << ",\"commits\":" << report.stream_commits
     << ",\"conflicts\":" << report.stream_conflicts
     << ",\"requeues\":" << report.stream_requeues
     << ",\"rejects\":" << report.stream_rejects << ",\"epochs\":[";
  for (std::size_t i = 0; i < report.epochs.size(); ++i) {
    const EpochStats& es = report.epochs[i];
    if (i > 0) os << ",";
    os << "{\"epoch\":" << es.epoch << ",\"window_end\":";
    write_json_double(os, es.window_end);
    os << ",\"batch\":" << es.batch << ",\"intents\":" << es.intents
       << ",\"commits\":" << es.commits << ",\"conflicts\":" << es.conflicts
       << ",\"requeues\":" << es.requeues << ",\"rejects\":" << es.rejects
       << "}";
  }
  os << "]}}";
  os << "\n";
}

JournalDiff diff_journals(const Journal& lhs, const Journal& rhs) {
  JournalDiff diff;
  diff.lhs_records = lhs.records.size();
  diff.rhs_records = rhs.records.size();
  diff.header_differs = lhs.header.mode != rhs.header.mode ||
                        lhs.header.appended != rhs.header.appended ||
                        lhs.header.retained != rhs.header.retained ||
                        lhs.header.dropped != rhs.header.dropped;
  const std::size_t common = std::min(lhs.records.size(), rhs.records.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (std::memcmp(&lhs.records[i], &rhs.records[i],
                    sizeof(JournalRecord)) != 0) {
      diff.has_divergence = true;
      diff.first_divergence = i;
      diff.lhs = lhs.records[i];
      diff.rhs = rhs.records[i];
      return diff;
    }
  }
  if (lhs.records.size() != rhs.records.size()) {
    diff.has_divergence = true;
    diff.first_divergence = common;
    if (common < lhs.records.size()) diff.lhs = lhs.records[common];
    if (common < rhs.records.size()) diff.rhs = rhs.records[common];
    return diff;
  }
  diff.identical = !diff.header_differs;
  return diff;
}

namespace {

void write_record_text(std::ostream& os, const JournalRecord& rec) {
  os << to_string(static_cast<RecordKind>(rec.kind)) << " t=" << rec.time
     << " a=" << rec.a << " b=" << rec.b << " site=";
  if (rec.site == kNoSite) {
    os << "-";
  } else {
    os << rec.site;
  }
  os << " arg=" << static_cast<unsigned>(rec.arg) << " flags=" << rec.flags
     << " v0=" << rec.v0 << " v1=" << rec.v1;
}

}  // namespace

void write_diff_text(std::ostream& os, const JournalDiff& diff) {
  const auto precision = os.precision();
  os << std::setprecision(17);
  if (diff.identical) {
    os << "journals identical: " << diff.lhs_records << " record(s)\n";
    os.precision(precision);
    return;
  }
  if (diff.header_differs) {
    os << "headers differ (" << diff.lhs_records << " vs " << diff.rhs_records
       << " records)\n";
  }
  if (diff.has_divergence) {
    os << "first divergence at record " << diff.first_divergence << "\n";
    if (diff.first_divergence < diff.lhs_records) {
      os << "  lhs: ";
      write_record_text(os, diff.lhs);
      os << "\n";
    } else {
      os << "  lhs: <end of journal>\n";
    }
    if (diff.first_divergence < diff.rhs_records) {
      os << "  rhs: ";
      write_record_text(os, diff.rhs);
      os << "\n";
    } else {
      os << "  rhs: <end of journal>\n";
    }
  }
  os.precision(precision);
}

}  // namespace edgerep::obs
