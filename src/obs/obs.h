// Engine-wide observability switches and the shared monotonic clock.
//
// Five independently toggleable facets:
//   metrics  — counters / gauges / histograms (obs/metrics.h)
//   trace    — RAII phase scopes → chrome://tracing JSON (obs/trace.h)
//   audit    — per-(query, demand) admission decisions (obs/audit.h)
//   recorder — deterministic causal-step journal (obs/recorder.h)
//   watchdog — streaming drift / SLO-anomaly detector (obs/watchdog.h)
//
// All facets default OFF; setting the environment variable EDGEREP_OBS=1
// turns metrics/trace/audit on at startup (CI runs the whole test suite
// that way).  The recorder has its own variable, EDGEREP_RECORD, because
// journals grow with the event count and must not piggyback on blanket obs
// runs; the watchdog likewise has EDGEREP_WATCHDOG, because its alert
// stream is run-scoped detector state rather than passive sampling.  The
// `set_*` functions override the environment at any time.
//
// Contract: with every facet disabled, instrumented code paths are
// bit-neutral — they read an atomic flag and do nothing else, so plans,
// duals, and simulation outcomes are identical to an uninstrumented build.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace edgerep::obs {

namespace detail {
extern std::atomic<bool> g_metrics_on;
extern std::atomic<bool> g_trace_on;
extern std::atomic<bool> g_audit_on;
extern std::atomic<bool> g_recorder_on;
extern std::atomic<bool> g_watchdog_on;
/// Defined in recorder.cpp: parse EDGEREP_RECORD and reset the recorder.
void recorder_apply_env();
/// Defined in watchdog.cpp: parse EDGEREP_WATCHDOG and reset the watchdog.
void watchdog_apply_env();
}  // namespace detail

[[nodiscard]] inline bool metrics_enabled() noexcept {
  return detail::g_metrics_on.load(std::memory_order_relaxed);
}
[[nodiscard]] inline bool trace_enabled() noexcept {
  return detail::g_trace_on.load(std::memory_order_relaxed);
}
[[nodiscard]] inline bool audit_enabled() noexcept {
  return detail::g_audit_on.load(std::memory_order_relaxed);
}
[[nodiscard]] inline bool recorder_enabled() noexcept {
  return detail::g_recorder_on.load(std::memory_order_relaxed);
}
[[nodiscard]] inline bool watchdog_enabled() noexcept {
  return detail::g_watchdog_on.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) noexcept;
void set_trace_enabled(bool on) noexcept;
void set_audit_enabled(bool on) noexcept;
void set_recorder_enabled(bool on) noexcept;
void set_watchdog_enabled(bool on) noexcept;
/// Convenience: flip metrics + trace + audit at once.  Deliberately leaves
/// the recorder and watchdog alone — enable them explicitly or via
/// EDGEREP_RECORD / EDGEREP_WATCHDOG.
void set_all_enabled(bool on) noexcept;

/// Re-read EDGEREP_OBS / EDGEREP_RECORD / EDGEREP_WATCHDOG and reset every
/// facet accordingly (tests use this to restore the process default after
/// toggling flags explicitly; it also clears the recorder's journal and the
/// watchdog's alert state).
void init_from_env();

/// Monotonic nanoseconds since process start.  Shared by LOG timestamps,
/// the phase tracer, and metric snapshots so all observability output is on
/// one clock.
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// Small dense per-thread ordinal (0, 1, 2, ...) assigned on first call;
/// used for counter striping and as the tracer's tid.
[[nodiscard]] std::size_t thread_ordinal() noexcept;

}  // namespace edgerep::obs
