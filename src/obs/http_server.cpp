#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"

namespace edgerep::obs {

namespace {

constexpr std::size_t kMaxHeaderBytes = 8 * 1024;

const char* status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Internal Server Error";
  }
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // client went away; nothing sensible to do
    }
    off += static_cast<std::size_t>(n);
  }
}

void send_response(int fd, const HttpResponse& resp) {
  std::ostringstream os;
  os << "HTTP/1.1 " << resp.status << " " << status_text(resp.status)
     << "\r\n"
     << "Content-Type: " << resp.content_type << "\r\n"
     << "Content-Length: " << resp.body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << resp.body;
  send_all(fd, os.str());
}

}  // namespace

HttpServer::~HttpServer() { stop(); }

void HttpServer::route(const std::string& path, Handler handler) {
  routes_[path] = std::move(handler);
}

void HttpServer::start(std::uint16_t port) {
  if (started_) {
    throw std::runtime_error("HttpServer: already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("HttpServer: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // telemetry stays local
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("HttpServer: bind(127.0.0.1:" +
                             std::to_string(port) +
                             ") failed: " + std::strerror(err));
  }
  if (::listen(fd, 16) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("HttpServer: listen() failed: " +
                             std::string(std::strerror(err)));
  }
  // Recover the kernel's port choice when started with 0.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_.store(ntohs(bound.sin_port), std::memory_order_release);
  } else {
    port_.store(port, std::memory_order_release);
  }

  listen_fd_ = fd;
  started_ = true;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
}

void HttpServer::stop() {
  if (!started_) return;
  if (running_.exchange(false, std::memory_order_acq_rel)) {
    // Break the blocking accept(): shutdown makes it return with an error
    // on every platform we care about; close() alone is not guaranteed to.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::serve_loop() {
  while (running_.load(std::memory_order_acquire)) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      if (!running_.load(std::memory_order_acquire)) break;
      continue;  // transient accept failure; keep serving
    }
    // A stalled or malicious client must not wedge the serving thread.
    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    handle_connection(conn);
    ::close(conn);
  }
}

void HttpServer::handle_connection(int fd) {
  std::string header;
  char buf[1024];
  while (header.find("\r\n\r\n") == std::string::npos) {
    if (header.size() > kMaxHeaderBytes) {
      send_response(fd, {400, "text/plain; charset=utf-8",
                         "request header too large\n"});
      return;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // timeout or disconnect mid-request
    }
    header.append(buf, static_cast<std::size_t>(n));
  }

  // Request line: METHOD SP target SP version.
  const std::size_t line_end = header.find("\r\n");
  const std::string line = header.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    send_response(fd,
                  {400, "text/plain; charset=utf-8", "malformed request\n"});
    return;
  }

  HttpRequest req;
  req.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t qmark = target.find('?');
  if (qmark == std::string::npos) {
    req.path = std::move(target);
  } else {
    req.path = target.substr(0, qmark);
    req.query = target.substr(qmark + 1);
  }

  requests_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_enabled()) {
    static Counter& served = metrics().counter(
        "edgerep_http_requests_total",
        "HTTP requests handled by the embedded telemetry server");
    served.inc();
  }

  if (req.method != "GET") {
    send_response(fd, {405, "text/plain; charset=utf-8",
                       "only GET is supported\n"});
    return;
  }
  const auto it = routes_.find(req.path);
  if (it == routes_.end()) {
    send_response(fd,
                  {404, "text/plain; charset=utf-8", "unknown endpoint\n"});
    return;
  }
  send_response(fd, it->second(req));
}

}  // namespace edgerep::obs
