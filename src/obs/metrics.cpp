#include "obs/metrics.h"

#include <algorithm>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace edgerep::obs {

namespace {

/// JSON-escape a metric name (names are identifiers, but stay strict).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Escape a HELP string: the exposition format requires `\\` and `\n` to be
/// backslash-escaped in help text.
std::string help_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

void write_prometheus_double(std::ostream& os, double v) {
  if (v != v) {
    os << "NaN";
    return;
  }
  if (v == std::numeric_limits<double>::infinity()) {
    os << "+Inf";
    return;
  }
  if (v == -std::numeric_limits<double>::infinity()) {
    os << "-Inf";
    return;
  }
  const auto old = os.precision(17);
  os << v;
  os.precision(old);
}

void write_json_double(std::ostream& os, double v) {
  if (v != v) {
    os << "null";
    return;
  }
  if (v == std::numeric_limits<double>::infinity()) {
    os << "\"+Inf\"";
    return;
  }
  if (v == -std::numeric_limits<double>::infinity()) {
    os << "\"-Inf\"";
    return;
  }
  const auto old = os.precision(17);
  os << v;
  os.precision(old);
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty() || !std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "Histogram: upper bounds must be non-empty and strictly ascending");
  }
  counts_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::observe(double x) noexcept {
  if (!metrics_enabled()) return;
  // Prometheus le semantics: first bucket whose bound is >= x.
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), x) - bounds_.begin());
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  detail::add_double(sum_, x);
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    total += counts_[i].load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (gauges_.count(name) || histograms_.count(name)) {
    throw std::invalid_argument("metric name already used by another kind: " +
                                name);
  }
  auto& slot = counters_[name];
  if (!slot.second) {
    slot.first = help;
    slot.second = std::make_unique<Counter>();
  }
  return *slot.second;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) || histograms_.count(name)) {
    throw std::invalid_argument("metric name already used by another kind: " +
                                name);
  }
  auto& slot = gauges_[name];
  if (!slot.second) {
    slot.first = help;
    slot.second = std::make_unique<Gauge>();
  }
  return *slot.second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds,
                                      const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) || gauges_.count(name)) {
    throw std::invalid_argument("metric name already used by another kind: " +
                                name);
  }
  auto& slot = histograms_[name];
  if (!slot.second) {
    slot.first = help;
    slot.second = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *slot.second;
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : counters_) {
    if (!entry.first.empty()) {
      os << "# HELP " << name << " " << help_escape(entry.first) << "\n";
    }
    os << "# TYPE " << name << " counter\n";
    os << name << " " << entry.second->value() << "\n";
  }
  for (const auto& [name, entry] : gauges_) {
    if (!entry.first.empty()) {
      os << "# HELP " << name << " " << help_escape(entry.first) << "\n";
    }
    os << "# TYPE " << name << " gauge\n";
    os << name << " ";
    write_prometheus_double(os, entry.second->value());
    os << "\n";
  }
  for (const auto& [name, entry] : histograms_) {
    const Histogram& h = *entry.second;
    if (!entry.first.empty()) {
      os << "# HELP " << name << " " << help_escape(entry.first) << "\n";
    }
    os << "# TYPE " << name << " histogram\n";
    const std::vector<std::uint64_t> buckets = h.bucket_counts();
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
      cum += buckets[i];
      os << name << "_bucket{le=\"";
      write_prometheus_double(os, h.upper_bounds()[i]);
      os << "\"} " << cum << "\n";
    }
    cum += buckets.back();
    os << name << "_bucket{le=\"+Inf\"} " << cum << "\n";
    os << name << "_sum ";
    write_prometheus_double(os, h.sum());
    os << "\n";
    os << name << "_count " << cum << "\n";
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, entry] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << entry.second->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, entry] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": ";
    write_json_double(os, entry.second->value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, entry] : histograms_) {
    const Histogram& h = *entry.second;
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": {\"buckets\": [";
    const std::vector<std::uint64_t> buckets = h.bucket_counts();
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
      cum += buckets[i];
      if (i > 0) os << ", ";
      os << "{\"le\": ";
      write_json_double(os, h.upper_bounds()[i]);
      os << ", \"count\": " << cum << "}";
    }
    cum += buckets.back();
    if (!h.upper_bounds().empty()) os << ", ";
    os << "{\"le\": \"+Inf\", \"count\": " << cum << "}";
    os << "], \"sum\": ";
    write_json_double(os, h.sum());
    os << ", \"count\": " << cum << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : counters_) entry.second->reset();
  for (auto& [name, entry] : gauges_) entry.second->reset();
  for (auto& [name, entry] : histograms_) entry.second->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace edgerep::obs
