// Deterministic workload-drift & SLO-anomaly watchdog — the 5th obs facet
// (metrics / trace / audit / recorder / watchdog) and the sensor plane for
// continuous rebalancing (ROADMAP item 3).
//
// The watchdog is a streaming anomaly detector driven purely by the
// *simulation clock*: both online kernels, the flow backend, and the stream
// plane's serial phase feed it at the exact sites mirrored by the flight
// recorder, so a fixed (instance, config, faults) input produces a
// bit-identical alert stream across kernels, thread counts, and repeated
// runs.  It maintains
//
//   * per-dataset popularity via a space-saving top-k heavy-hitter sketch
//     (hotspot / flash-crowd detection with open/resolve hysteresis),
//   * per-region arrival-rate samples (fixed sim-time windows online,
//     micro-epoch batches on the stream plane) run through an EWMA and a
//     one-sided CUSUM change-point detector,
//   * per-site utilization EWMAs run through Page–Hinkley change-point
//     detectors,
//   * a breach-burst detector over deadline slack (failures count as
//     breaches), and
//   * per-bottleneck-link flow-stretch EWMAs on --network=flow runs.
//
// Crossings open (and hysteresis resolutions close) typed `Alert` records
// carrying severity, subject, and onset/resolve sim-times.  When the flight
// recorder is also enabled each transition is journaled as a kAlert record,
// so `analyze_journal` reconstructs the alert timeline bit-exactly from the
// journal alone and attributes every SLO breach to the alert window it fell
// in (obs/postmortem.h).
//
// Switches: the facet defaults OFF, has its own EDGEREP_WATCHDOG variable
// (alert streams are run-scoped state, so it deliberately does not
// piggyback on EDGEREP_OBS / set_all_enabled), and follows the PR 3
// contract: when disabled, instrumented paths read one relaxed atomic and
// do nothing else — simulation outcomes are bit-identical either way.
//
// Threading: feeds are single-writer by design (the online simulators are
// single-threaded; the stream plane feeds only from its serial sections).
// Only the alert list itself is mutex-guarded so the /alerts endpoint can
// snapshot it while a run is in progress.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "obs/obs.h"

namespace edgerep::obs {

/// What a detector saw cross its threshold.
enum class AlertKind : std::uint8_t {
  kDatasetHotspot = 0,    ///< one dataset dominates the demand mix
  kSiteOverload = 1,      ///< a site's utilization EWMA shifted upward
  kArrivalRateShift = 2,  ///< a region's arrival rate left its baseline
  kBreachBurst = 3,       ///< deadline breaches / failures are bursting
  kFlowStretch = 4,       ///< a bottleneck link keeps stretching transfers
};
inline constexpr std::size_t kAlertKindCount = 5;

enum class AlertSeverity : std::uint8_t { kInfo = 0, kWarning = 1,
                                          kCritical = 2 };

/// What the alert's subject id names.
enum class AlertSubjectKind : std::uint8_t { kSite = 0, kDataset = 1,
                                             kRegion = 2, kLink = 3 };

[[nodiscard]] const char* to_string(AlertKind kind) noexcept;
[[nodiscard]] const char* to_string(AlertSeverity severity) noexcept;
[[nodiscard]] const char* to_string(AlertSubjectKind kind) noexcept;

/// One detector crossing, from onset until (possibly) resolution.  Times
/// are simulation seconds; `resolve < 0` means still open.
struct Alert {
  double onset = 0.0;
  double resolve = -1.0;
  AlertKind kind = AlertKind::kDatasetHotspot;
  AlertSeverity severity = AlertSeverity::kInfo;
  AlertSubjectKind subject_kind = AlertSubjectKind::kDataset;
  std::uint32_t subject = 0;   ///< site / dataset / region / link id
  std::uint32_t seq = 0;       ///< run-scoped sequence number (open order)
  double onset_value = 0.0;    ///< detector statistic at the crossing
  double threshold = 0.0;      ///< the threshold it crossed
  double resolve_value = 0.0;  ///< statistic at resolution (0 while open)
};

/// "No bottleneck link" sentinel for on_flow_retire (mirrors the flow
/// journal's ~0u edge id); such retirements skip the per-link detector.
inline constexpr std::uint32_t kNoAlertLink = 0xffffffffu;

/// Detector thresholds.  Defaults are tuned so steady workloads stay
/// silent and the drifting-Zipf / diurnal-wave generators (workload/
/// arrival_gen.h) fire within a few thousand queries.
struct WatchdogConfig {
  // Dataset popularity (space-saving sketch + share hysteresis).
  std::size_t sketch_size = 8;
  std::size_t hotspot_warmup = 128;     ///< demands before shares count
  double hotspot_open_share = 0.35;
  double hotspot_resolve_share = 0.22;
  double hotspot_critical_share = 0.6;
  // Per-region arrival rate (windowed counts -> EWMA ratio -> CUSUM).
  double arrival_window = 5.0;          ///< sim seconds per rate sample
  std::size_t rate_warmup = 4;          ///< windows fixing the baseline
  double rate_ewma_alpha = 0.3;
  double rate_cusum_slack = 0.25;       ///< tolerated ratio drift / window
  double rate_cusum_threshold = 2.0;    ///< cumulative excess to alarm
  double rate_resolve_ratio = 1.25;
  double rate_critical_ratio = 2.0;
  // Per-site utilization (EWMA -> Page–Hinkley).
  double site_ewma_alpha = 0.2;
  std::size_t site_warmup = 8;          ///< samples before alarms count
  double site_ph_delta = 0.02;          ///< tolerated mean drift per sample
  double site_ph_lambda = 1.0;          ///< cumulative excess to alarm
  double site_open_floor = 0.5;         ///< EWMA must exceed this to open
  double site_resolve_frac = 0.8;       ///< resolve below frac of open EWMA
  double site_critical_util = 0.95;
  // Breach burst (deadline slack; failures count as breaches).
  double breach_ewma_alpha = 0.2;
  std::size_t breach_warmup = 16;
  double breach_open_level = 0.2;
  double breach_resolve_level = 0.05;
  double breach_critical_level = 0.5;
  // Flow stretch (per bottleneck link, seconds past the priced completion).
  double stretch_ewma_alpha = 0.3;
  std::size_t stretch_warmup = 4;
  double stretch_open_seconds = 0.5;
  double stretch_resolve_seconds = 0.25;
};

/// Run-level rollup, copied into OnlineResult::watchdog so callers get the
/// alert counts without touching the singleton (deterministic and
/// bit-identical across kernels; excluded from online_result_hash like the
/// other diagnostic blocks).
struct WatchdogStats {
  std::size_t opened = 0;
  std::size_t resolved = 0;
  std::size_t open_at_end = 0;
  std::uint8_t worst_severity = 0;  ///< max AlertSeverity over the run
  std::array<std::size_t, kAlertKindCount> opened_by_kind{};
};

// --- detector primitives --------------------------------------------------
// Exposed so tests can pin them against hand-computed fixtures; every
// update is a fixed double-precision expression, so sequences are
// reproducible bit for bit.

/// Exponentially weighted moving average, seeded by the first sample.
struct WatchdogEwma {
  double alpha = 0.2;
  double value = 0.0;
  bool primed = false;
  void feed(double x) noexcept {
    value = primed ? value + alpha * (x - value) : x;
    primed = true;
  }
};

/// One-sided CUSUM for upward shifts.  The first `warmup` samples fix the
/// target mean; afterwards `pos += max(0, x - target - slack)` style
/// accumulation alarms once the cumulative excess passes `threshold`.
class WatchdogCusum {
 public:
  WatchdogCusum() = default;
  WatchdogCusum(std::size_t warmup, double slack, double threshold)
      : warmup_(warmup), slack_(slack), threshold_(threshold) {}

  /// Returns true on every sample while the statistic sits above the
  /// threshold (callers edge-detect with their own open flag).
  bool feed(double x) noexcept {
    if (seen_ < warmup_) {
      warm_sum_ += x;
      ++seen_;
      if (seen_ == warmup_) target_ = warm_sum_ / static_cast<double>(warmup_);
      return false;
    }
    pos_ += x - target_ - slack_;
    if (pos_ < 0.0) pos_ = 0.0;
    return pos_ > threshold_;
  }
  /// Drop the accumulated evidence (called on resolve); the warmed-up
  /// target is kept.
  void rearm() noexcept { pos_ = 0.0; }
  /// Skip warmup entirely and compare against a known target (used for
  /// pre-normalized statistics such as rate ratios, where target == 1).
  void preset_target(double target) noexcept {
    target_ = target;
    seen_ = warmup_;
  }
  [[nodiscard]] bool warmed() const noexcept { return seen_ >= warmup_; }
  [[nodiscard]] double target() const noexcept { return target_; }
  [[nodiscard]] double statistic() const noexcept { return pos_; }

 private:
  std::size_t warmup_ = 4;
  double slack_ = 0.25;
  double threshold_ = 2.0;
  std::size_t seen_ = 0;
  double warm_sum_ = 0.0;
  double target_ = 0.0;
  double pos_ = 0.0;
};

/// Page–Hinkley test for upward mean shifts: m_t += x_t − mean_t − delta,
/// alarm when m_t − min m exceeds lambda.
class WatchdogPageHinkley {
 public:
  WatchdogPageHinkley() = default;
  WatchdogPageHinkley(double delta, double lambda)
      : delta_(delta), lambda_(lambda) {}

  bool feed(double x) noexcept {
    ++n_;
    mean_ += (x - mean_) / static_cast<double>(n_);
    cum_ += x - mean_ - delta_;
    if (cum_ < min_cum_) min_cum_ = cum_;
    return cum_ - min_cum_ > lambda_;
  }
  void reset() noexcept {
    n_ = 0;
    mean_ = 0.0;
    cum_ = 0.0;
    min_cum_ = 0.0;
  }
  [[nodiscard]] std::size_t samples() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double statistic() const noexcept { return cum_ - min_cum_; }

 private:
  double delta_ = 0.02;
  double lambda_ = 1.0;
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double cum_ = 0.0;
  double min_cum_ = 0.0;
};

/// Space-saving top-k heavy-hitter sketch (Metwally et al.): k counters,
/// unseen keys evict the current minimum and inherit its count as error.
/// Ties break on the first minimum in slot order, so the structure is a
/// pure function of the feed sequence.
class SpaceSavingSketch {
 public:
  struct Entry {
    std::uint32_t key = 0;
    std::uint64_t count = 0;
    std::uint64_t error = 0;  ///< overestimate bound inherited on eviction
  };

  explicit SpaceSavingSketch(std::size_t k = 8) : capacity_(k == 0 ? 1 : k) {}

  void feed(std::uint32_t key) {
    ++total_;
    std::size_t min_at = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].key == key) {
        ++entries_[i].count;
        return;
      }
      if (entries_[i].count < entries_[min_at].count) min_at = i;
    }
    if (entries_.size() < capacity_) {
      entries_.push_back({key, 1, 0});
      return;
    }
    Entry& victim = entries_[min_at];
    victim.error = victim.count;
    victim.count = victim.count + 1;
    victim.key = key;
  }

  /// Estimated count (upper bound) of `key`; 0 when untracked.
  [[nodiscard]] std::uint64_t estimate(std::uint32_t key) const noexcept {
    for (const Entry& e : entries_) {
      if (e.key == key) return e.count;
    }
    return 0;
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }
  void clear() noexcept {
    entries_.clear();
    total_ = 0;
  }

 private:
  std::size_t capacity_;
  std::vector<Entry> entries_;
  std::uint64_t total_ = 0;
};

// --- the facet ------------------------------------------------------------

class Watchdog {
 public:
  Watchdog() = default;
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Replace the thresholds (takes effect at the next begin_run).
  void set_config(const WatchdogConfig& cfg);
  [[nodiscard]] const WatchdogConfig& config() const noexcept {
    return cfg_;
  }

  /// Reset every detector and the alert list for a new run, and sample the
  /// recorder facet once (kAlert records are journaled only when the
  /// recorder was enabled here, mirroring the kernels' facet sampling).
  void begin_run();

  // Feeds — sim-clock times and stable ids only; single-writer.
  void on_arrival(double t, std::uint32_t region);
  void on_demand(double t, std::uint32_t dataset);
  void on_site_util(double t, std::uint32_t site, double util);
  void on_completion(double t, double slack, bool failed);
  void on_flow_retire(double t, std::uint32_t link, double stretch);
  void on_stream_epoch(double t, std::uint32_t shard, std::size_t batch,
                       double window);

  /// Snapshot of every alert opened this run, open-order (= seq order).
  [[nodiscard]] std::vector<Alert> alerts() const;
  [[nodiscard]] WatchdogStats stats() const;
  /// One JSON object for the /alerts endpoint (thread-safe snapshot).
  void write_json(std::ostream& os) const;

 private:
  struct RegionState {
    double window_start = 0.0;
    std::size_t window_count = 0;
    bool windowing = false;
    std::size_t samples = 0;
    double warm_sum = 0.0;
    double baseline = 0.0;  ///< mean rate of the first rate_warmup samples
    WatchdogEwma ratio;     ///< EWMA of rate / baseline
    WatchdogCusum cusum;
    bool open = false;
  };
  struct SiteState {
    WatchdogEwma util;
    WatchdogPageHinkley ph;
    std::size_t samples = 0;
    double open_ewma = 0.0;
    bool open = false;
  };
  struct LinkState {
    WatchdogEwma stretch;
    std::size_t samples = 0;
    bool open = false;
  };

  void feed_rate_sample(double t, std::uint32_t region, double rate);
  void open_alert(double t, AlertKind kind, AlertSeverity severity,
                  AlertSubjectKind subject_kind, std::uint32_t subject,
                  double value, double threshold);
  void resolve_alert(double t, AlertKind kind, AlertSubjectKind subject_kind,
                     std::uint32_t subject, double value);
  [[nodiscard]] bool is_open(AlertKind kind, AlertSubjectKind subject_kind,
                             std::uint32_t subject) const;
  void journal_alert(const Alert& alert, bool resolve, double t,
                     double value);

  WatchdogConfig cfg_;
  void* rec_ = nullptr;  ///< Recorder* sampled at begin_run (null = off)
  bool metrics_on_ = false;

  SpaceSavingSketch sketch_{8};
  std::uint64_t demands_seen_ = 0;
  std::vector<RegionState> regions_;
  std::vector<SiteState> sites_;
  std::vector<LinkState> links_;
  WatchdogEwma breach_level_;
  std::size_t completions_seen_ = 0;
  bool breach_open_ = false;

  mutable std::mutex mu_;  ///< guards alerts_ / open_ / stats only
  std::vector<Alert> alerts_;
  std::map<std::tuple<std::uint8_t, std::uint8_t, std::uint32_t>, std::size_t>
      open_;
  std::uint8_t worst_severity_ = 0;
};

/// The process-wide watchdog every instrumented subsystem feeds.
[[nodiscard]] Watchdog& watchdog();

}  // namespace edgerep::obs
