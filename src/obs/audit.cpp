#include "obs/audit.h"

#include <map>
#include <ostream>
#include <string>
#include <utility>

namespace edgerep::obs {

const char* to_string(AuditReason r) noexcept {
  switch (r) {
    case AuditReason::kAdmitted:
      return "admitted";
    case AuditReason::kNoDeadlineFeasibleSite:
      return "no_deadline_feasible_site";
    case AuditReason::kCapacityExhausted:
      return "capacity_exhausted";
    case AuditReason::kReplicaBudgetSpent:
      return "replica_budget_spent";
    case AuditReason::kAtomicRollback:
      return "atomic_rollback";
    case AuditReason::kFaultEvicted:
      return "fault_evicted";
    case AuditReason::kReconcileConflict:
      return "reconcile_conflict";
  }
  return "?";
}

AuditSummary summarize_audit(const std::vector<AuditEntry>& entries) {
  // Per (algorithm, query): admitted unless any entry was rejected; the
  // binding reason is the first non-rollback rejection.
  struct Verdict {
    bool rejected = false;
    AuditReason reason = AuditReason::kAtomicRollback;
  };
  std::map<std::pair<std::string, std::uint32_t>, Verdict> verdicts;
  for (const AuditEntry& e : entries) {
    Verdict& v = verdicts[{e.algorithm, e.query}];
    if (e.admitted) continue;
    if (!v.rejected || (v.reason == AuditReason::kAtomicRollback &&
                        e.reason != AuditReason::kAtomicRollback)) {
      v.reason = e.reason;
    }
    v.rejected = true;
  }
  AuditSummary s;
  for (const auto& [key, v] : verdicts) {
    if (v.rejected) {
      ++s.rejected_queries;
      ++s.rejected_by_reason[static_cast<std::size_t>(v.reason)];
    } else {
      ++s.admitted_queries;
    }
  }
  return s;
}

void AuditLog::record(const AuditEntry& e) {
  const std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(e);
}

void AuditLog::record_batch(const std::vector<AuditEntry>& batch) {
  if (batch.empty()) return;
  // One lock and at most one reallocation per batch: the admission engines
  // log a whole run's entries in one call, so the hot path must not take
  // the mutex (or grow the vector) per entry.
  const std::lock_guard<std::mutex> lock(mu_);
  entries_.reserve(entries_.size() + batch.size());
  entries_.insert(entries_.end(), batch.begin(), batch.end());
}

std::vector<AuditEntry> AuditLog::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

std::size_t AuditLog::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void AuditLog::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

void AuditLog::write_json(std::ostream& os) const {
  std::vector<AuditEntry> entries = snapshot();
  const AuditSummary s = summarize_audit(entries);
  const auto old = os.precision(17);
  os << "{\n\"entries\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const AuditEntry& e = entries[i];
    os << (i == 0 ? "\n" : ",\n") << "  {\"algorithm\": \"" << e.algorithm
       << "\", \"query\": " << e.query << ", \"demand\": " << e.demand
       << ", \"dataset\": " << e.dataset
       << ", \"admitted\": " << (e.admitted ? "true" : "false")
       << ", \"reason\": \"" << to_string(e.reason) << "\"";
    if (e.admitted) {
      os << ", \"site\": " << e.site
         << ", \"placed_replica\": " << (e.placed_replica ? "true" : "false")
         << ", \"price\": {\"theta\": " << e.theta_term
         << ", \"capacity\": " << e.capacity_term
         << ", \"eta\": " << e.eta_term << ", \"mu\": " << e.mu_term
         << ", \"total\": " << e.total_price << "}";
    } else if (e.reason == AuditReason::kAtomicRollback) {
      os << ", \"site\": " << e.site;  // where it briefly ran before the abort
    }
    os << "}";
  }
  os << (entries.empty() ? "" : "\n") << "],\n\"summary\": {"
     << "\"admitted_queries\": " << s.admitted_queries
     << ", \"rejected_queries\": " << s.rejected_queries
     << ", \"rejected_by_reason\": {";
  bool first = true;
  for (std::size_t r = 1; r < kAuditReasonCount; ++r) {
    os << (first ? "" : ", ") << "\""
       << to_string(static_cast<AuditReason>(r))
       << "\": " << s.rejected_by_reason[r];
    first = false;
  }
  os << "}}\n}\n";
  os.precision(old);
}

AuditLog& audit_log() {
  static AuditLog log;
  return log;
}

}  // namespace edgerep::obs
