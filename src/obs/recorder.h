// Deterministic flight recorder: a fixed-width binary journal of every
// causal step the online simulator and the streaming plane take.
//
// The recorder is a fourth observability facet next to metrics / trace /
// audit (obs/obs.h), with its own switch: it defaults OFF, is enabled via
// `set_recorder_enabled(true)` or the EDGEREP_RECORD environment variable,
// and is deliberately *not* part of `set_all_enabled` / EDGEREP_OBS —
// journals grow with the event count, so blanket-enabling them alongside
// metrics would bloat every CI obs pass.
//
//   EDGEREP_RECORD=1          full journal (every record kept)
//   EDGEREP_RECORD=full       same
//   EDGEREP_RECORD=ring       ring journal, default capacity
//   EDGEREP_RECORD=ring:4096  ring journal keeping the last 4096 records
//
// Contract (mirrors PR 3): with the recorder disabled, instrumented paths
// read one relaxed atomic and do nothing else — plans, duals, and
// simulation outcomes are bit-identical to an uninstrumented build.  With
// the recorder enabled, a fixed online config produces a *byte-identical*
// journal across repeated runs and across the closure / typed kernels:
// records carry only simulation-clock times and stable ids, never
// wall-clock or addresses, and every append site is keyed to the pinned
// event order both kernels share.
//
// The append path is zero-allocation in ring mode (the buffer is sized at
// configure time) and amortized-allocation in full mode (geometric vector
// growth; call `reserve` up front to eliminate it).  Appends are
// single-writer by design: the online simulator is single-threaded and the
// stream plane appends only from its serial reconciliation phase, so the
// hot path takes no lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace edgerep::obs {

/// What happened at this causal step.  Online kinds (arrival .. fail) are
/// appended by both online kernels at mirrored points; stream kinds
/// (epoch_begin .. stream_reject) by run_stream's serial phase 2.
enum class RecordKind : std::uint8_t {
  // Online simulator.
  kArrival = 0,        ///< query arrived: a=query, b=n_demands, v0=deadline
  kTransferStart = 1,  ///< admission launched a flight: a=query, b=dataset,
                       ///< arg=demand, site, v0=total delay, v1=proc delay,
                       ///< flags bit0 = site is a data center
  kRelocate = 2,       ///< fault re-seated a flight (same payload as
                       ///< kTransferStart; supersedes the prior flight).
                       ///< Also emitted by the batch repair engine for each
                       ///< re-admitted demand (time 0, v0=v1=0)
  kComputeDone = 3,    ///< flight completed: a=query, arg=demand, site
  kReject = 4,         ///< admission refused: a=query, b=failing demand,
                       ///< arg=AuditReason
  kShed = 5,           ///< fault killed a flight: a=query, arg=demand, site,
                       ///< flags 0=site down, 1=capacity loss, 2=repair
                       ///< eviction (batch repair engine, b=dataset, time 0)
  kFail = 6,           ///< admitted query failed (no survivable re-seat):
                       ///< a=query
  kFaultApply = 7,     ///< fault event hit: site, a=edge endpoint or ~0,
                       ///< arg=FaultKind, v0=fraction
  // Streaming admission plane.
  kEpochBegin = 8,     ///< micro-epoch opened: b=epoch, a=batch size,
                       ///< v0=window end time
  kIntent = 9,         ///< phase-1 intent reached reconciliation: a=query,
                       ///< b=shard, arg=placements in the intent
  kCommit = 10,        ///< intent committed to the ledger: a=query, b=shard
  kConflict = 11,      ///< reservation conflict rolled an intent back:
                       ///< a=query, b=shard, site=first losing site
  kRequeue = 12,       ///< conflict loser re-queued: a=query, b=shard,
                       ///< arg=requeue count so far
  kStreamReject = 13,  ///< query left the stream unadmitted: a=query,
                       ///< b=shard, arg: 0=infeasible, 1=budget,
                       ///< 2=requeue budget spent
  // Flow-level network backend (online simulator, --network=flow).
  kFlowRateChange = 14,  ///< max-min re-fill changed a transfer's rate:
                         ///< a=(query,demand) layout slot, v0=rate,
                         ///< v1=remaining work, b=bottleneck edge (~0u when
                         ///< the flow's own rate cap froze it), arg: 0=rate
                         ///< transition, 1=retirement at actual completion
  // Watchdog facet (obs/watchdog.h).
  kAlert = 15,  ///< watchdog alert transition: arg=AlertKind, a=subject id,
                ///< b=alert seq (pairs the open with its resolve), site=
                ///< subject when it names a site else ~0u, v0=detector
                ///< statistic at the crossing, flags bit0: 0=open (v1=
                ///< threshold), 1=resolve (v1=onset time), bits1-2=
                ///< AlertSeverity, bits3-4=AlertSubjectKind
};

inline constexpr std::size_t kRecordKindCount = 16;

[[nodiscard]] const char* to_string(RecordKind kind) noexcept;

/// One causal step.  Exactly 40 bytes, no implicit padding, trivially
/// copyable — journals are raw little-endian dumps of these.  Field
/// meanings depend on `kind` (see RecordKind).
struct JournalRecord {
  double time = 0.0;        ///< simulation clock, seconds
  double v0 = 0.0;          ///< kind-specific (deadline / total delay / ...)
  double v1 = 0.0;          ///< kind-specific (proc delay / ...)
  std::uint32_t a = 0;      ///< kind-specific id (usually query)
  std::uint32_t b = 0;      ///< kind-specific id (dataset / shard / epoch)
  std::uint32_t site = 0;   ///< site id, or ~0u when not applicable
  std::uint8_t kind = 0;    ///< RecordKind
  std::uint8_t arg = 0;     ///< small kind-specific payload (demand, reason)
  std::uint16_t flags = 0;  ///< kind-specific bits (role tier, shed cause)
};
static_assert(sizeof(JournalRecord) == 40, "journal record layout is ABI");

inline constexpr std::uint32_t kNoSite = 0xffffffffu;

enum class RecorderMode : std::uint8_t { kFull = 0, kRing = 1 };

/// On-disk journal header, 48 bytes.  Deterministic: counts and mode only,
/// no timestamps.
struct JournalHeader {
  char magic[8];              ///< "EDGEREPJ"
  std::uint32_t version;      ///< kJournalVersion
  std::uint32_t record_size;  ///< sizeof(JournalRecord)
  std::uint64_t appended;     ///< records ever appended
  std::uint64_t retained;     ///< records present in this file
  std::uint64_t dropped;      ///< records overwritten (ring mode)
  std::uint8_t mode;          ///< RecorderMode
  std::uint8_t pad[7];        ///< zero
};
static_assert(sizeof(JournalHeader) == 48, "journal header layout is ABI");

inline constexpr std::uint32_t kJournalVersion = 1;
inline constexpr std::size_t kDefaultRingCapacity = 1u << 16;

/// Single-writer journal buffer.  Full mode keeps everything; ring mode
/// keeps the last `ring_capacity` records and counts the overwritten rest
/// as `dropped`.
class Recorder {
 public:
  Recorder() = default;
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Reset the journal and switch mode.  Ring mode preallocates the whole
  /// buffer here so `append` never allocates.
  void configure(RecorderMode mode,
                 std::size_t ring_capacity = kDefaultRingCapacity);

  /// Drop all records (mode and ring capacity are kept).
  void clear() noexcept;

  /// Pre-size the full-mode buffer (no-op in ring mode).
  void reserve(std::size_t records);

  /// Append one record.  Hot path: full mode is a bare push_back — the
  /// retained / appended counts are implied by the buffer size, so the
  /// serve path pays no bookkeeping beyond the capacity check.  Ring mode
  /// is a store + wrap with explicit drop accounting.
  void append(const JournalRecord& rec) noexcept(false) {
    if (mode_ == RecorderMode::kFull) {
      buf_.push_back(rec);
      return;
    }
    buf_[ring_head_] = rec;
    ring_head_ = (ring_head_ + 1 == buf_.size()) ? 0 : ring_head_ + 1;
    if (retained_ < buf_.size()) {
      ++retained_;
    } else {
      ++dropped_;
    }
    ++appended_;
  }

  [[nodiscard]] RecorderMode mode() const noexcept { return mode_; }
  [[nodiscard]] std::size_t size() const noexcept {
    return mode_ == RecorderMode::kFull ? buf_.size() : retained_;
  }
  [[nodiscard]] std::uint64_t total_appended() const noexcept {
    return mode_ == RecorderMode::kFull ? buf_.size() : appended_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return mode_ == RecorderMode::kFull ? 0 : dropped_;
  }
  [[nodiscard]] std::size_t ring_capacity() const noexcept {
    return mode_ == RecorderMode::kRing ? buf_.size() : 0;
  }

  /// Copy the retained records, oldest first (unrolls the ring).
  [[nodiscard]] std::vector<JournalRecord> snapshot() const;

  /// Serialize header + retained records (oldest first).  Byte-identical
  /// output for identical append sequences.
  void write(std::ostream& out) const;
  /// Convenience: write to a file.  Returns false on I/O failure.
  [[nodiscard]] bool write_file(const std::string& path) const;

 private:
  std::vector<JournalRecord> buf_;
  // Ring-mode accounting only; full mode derives every count from `buf_`.
  std::size_t ring_head_ = 0;  ///< next slot to write
  std::size_t retained_ = 0;
  std::uint64_t appended_ = 0;
  std::uint64_t dropped_ = 0;
  RecorderMode mode_ = RecorderMode::kFull;
};

/// The process-wide journal every instrumented subsystem appends to.
[[nodiscard]] Recorder& recorder();

/// A journal read back from disk.
struct Journal {
  JournalHeader header{};
  std::vector<JournalRecord> records;
};

/// Parse a serialized journal.  Returns false (with a diagnostic in
/// `*error` when non-null) on bad magic / version / truncation.
[[nodiscard]] bool read_journal(std::istream& in, Journal* out,
                                std::string* error = nullptr);
[[nodiscard]] bool read_journal_file(const std::string& path, Journal* out,
                                     std::string* error = nullptr);

}  // namespace edgerep::obs
