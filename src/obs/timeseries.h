// Time-series sampler and dual-price board for live telemetry.
//
// TimeSeriesSampler turns the point-in-time obs registries into history: it
// evaluates a set of named probes (counters, gauges, solver internals) at a
// fixed interval on its own thread and keeps the last `capacity` snapshots
// in a ring buffer, exportable as CSV or JSON and servable over the
// embedded HTTP server.  Probes are arbitrary `double()` callables; they
// run on the sampler thread and must be thread-safe (atomic reads or their
// own locks).
//
//   obs::TimeSeriesSampler sampler;
//   sampler.add_counter_series("edgerep_online_arrivals_total");
//   sampler.add_series("inflight", [&] { return double(board.inflight()); });
//   sampler.start(100);   // one snapshot every 100 ms
//   ...
//   sampler.stop();
//   sampler.write_csv(out);
//
// DualPriceBoard is the solver-side half: primal_dual and repair publish
// each θ (storage dual price) they touch, so the sampler — or a /status
// scrape — can watch prices move without reaching into solver state.  All
// publishes are gated by obs::metrics_enabled() at the call site, keeping
// the disabled path bit-neutral.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace edgerep::obs {

/// One snapshot: sample wall-clock time plus one value per registered
/// series, in registration order.
struct Sample {
  std::uint64_t t_ns = 0;
  std::vector<double> values;
};

class TimeSeriesSampler {
 public:
  using Probe = std::function<double()>;

  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit TimeSeriesSampler(std::size_t capacity = kDefaultCapacity);
  ~TimeSeriesSampler();
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// Register a named probe.  Call before start().
  void add_series(std::string name, Probe probe);
  /// Convenience: track a registry counter / gauge by name (registers the
  /// metric if it does not exist yet and caches the stable reference).
  void add_counter_series(const std::string& metric_name);
  void add_gauge_series(const std::string& metric_name);

  /// Launch the sampling thread; one snapshot every `interval_ms`.
  void start(std::uint64_t interval_ms);
  /// Stop promptly (condition-variable wakeup, no interval-long wait) and
  /// join.  Idempotent; also called by the destructor.
  void stop();

  /// Take one snapshot immediately (also usable without start()).
  void sample_now();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::vector<std::string> series_names() const;
  /// Buffered samples, oldest first (at most `capacity` of them).
  [[nodiscard]] std::vector<Sample> snapshot() const;
  /// Total snapshots ever taken, including ones the ring has overwritten.
  [[nodiscard]] std::uint64_t total_samples() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Header row `t_ns,<series...>` then one row per sample, oldest first.
  void write_csv(std::ostream& os) const;
  /// {"series": [...], "samples": [{"t_ns": ..., "values": [...]}, ...]}
  /// Non-finite values use the JSON-safe sentinels from metrics.h.
  void write_json(std::ostream& os) const;

 private:
  void run_loop(std::uint64_t interval_ms);

  const std::size_t capacity_;
  std::vector<std::string> names_;
  std::vector<Probe> probes_;

  mutable std::mutex mu_;          // guards ring_/head_/count_
  std::vector<Sample> ring_;
  std::size_t head_ = 0;           // next write slot
  std::size_t count_ = 0;          // filled slots, ≤ capacity_
  std::atomic<std::uint64_t> total_{0};

  std::mutex stop_mu_;             // pairs with stop_cv_ for prompt stop
  std::condition_variable stop_cv_;
  std::atomic<bool> running_{false};
  bool started_ = false;
  std::thread thread_;
};

/// Latest θ (storage dual price) per site, published by the solvers.
/// Readers (sampler probes, /status) see the most recent value and whether
/// the site was ever touched; reset() clears between runs.  Callers gate
/// publish() with obs::metrics_enabled() so the disabled path stays
/// bit-neutral.
class DualPriceBoard {
 public:
  void publish(std::uint32_t site, double theta);

  [[nodiscard]] double theta(std::uint32_t site) const;
  [[nodiscard]] bool touched(std::uint32_t site) const;
  [[nodiscard]] std::size_t size() const;
  /// Max θ across touched sites (0 when none) — a one-number congestion
  /// signal for dashboards.
  [[nodiscard]] double max_theta() const;
  [[nodiscard]] std::size_t touched_sites() const;
  void reset();

 private:
  mutable std::mutex mu_;
  std::vector<double> theta_;
  std::vector<char> touched_;
};

/// Process-wide board the solver hooks publish into.
DualPriceBoard& dual_prices();

}  // namespace edgerep::obs
