#include "obs/trace.h"

#include <ostream>

namespace edgerep::obs {

void Tracer::record(const TraceEvent& ev) {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(ev);
}

std::vector<TraceEvent> Tracer::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t Tracer::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

void Tracer::write_chrome_json(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  os << "{\"traceEvents\": [";
  const auto old = os.precision(3);
  os.setf(std::ios::fixed);
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& ev = events_[i];
    os << (i == 0 ? "\n" : ",\n") << "  {\"name\": \"" << ev.name
       << "\", \"cat\": \"edgerep\", \"ph\": \"X\", \"ts\": "
       << static_cast<double>(ev.start_ns) / 1e3
       << ", \"dur\": " << static_cast<double>(ev.dur_ns) / 1e3
       << ", \"pid\": 1, \"tid\": " << ev.tid << "}";
  }
  os.unsetf(std::ios::fixed);
  os.precision(old);
  os << (events_.empty() ? "" : "\n") << "], \"displayTimeUnit\": \"ms\"}\n";
}

Tracer& tracer() {
  static Tracer t;
  return t;
}

TraceScope::~TraceScope() {
  if (name_ == nullptr) return;
  TraceEvent ev;
  ev.name = name_;
  ev.start_ns = start_;
  ev.dur_ns = now_ns() - start_;
  ev.tid = static_cast<std::uint32_t>(thread_ordinal());
  tracer().record(ev);
}

}  // namespace edgerep::obs
