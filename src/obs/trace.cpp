#include "obs/trace.h"

#include <ostream>

#include "obs/metrics.h"

namespace edgerep::obs {

void Tracer::record(const TraceEvent& ev) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (events_.size() < capacity_) {
      events_.push_back(ev);
      return;
    }
  }
  dropped_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_enabled()) {
    static Counter& dropped_total = metrics().counter(
        "edgerep_trace_dropped_total",
        "trace events discarded because the tracer buffer was full");
    dropped_total.inc();
  }
}

void Tracer::record_async(char phase, const char* name, std::uint64_t id,
                          std::uint64_t ts_ns, std::uint32_t pid) {
  TraceEvent ev;
  ev.name = name;
  ev.start_ns = ts_ns;
  ev.tid = static_cast<std::uint32_t>(thread_ordinal());
  ev.phase = phase;
  ev.pid = pid;
  ev.id = id;
  record(ev);
}

std::vector<TraceEvent> Tracer::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t Tracer::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  events_.shrink_to_fit();
  dropped_.store(0, std::memory_order_relaxed);
}

void Tracer::set_capacity(std::size_t cap) {
  const std::lock_guard<std::mutex> lock(mu_);
  capacity_ = cap > 0 ? cap : 1;
}

std::size_t Tracer::capacity() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void Tracer::write_chrome_json(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  os << "{\"traceEvents\": [";
  const auto old = os.precision(3);
  os.setf(std::ios::fixed);
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& ev = events_[i];
    os << (i == 0 ? "\n" : ",\n") << "  {\"name\": \"" << ev.name
       << "\", \"cat\": \"edgerep\", \"ph\": \"" << ev.phase
       << "\", \"ts\": " << static_cast<double>(ev.start_ns) / 1e3;
    if (ev.phase == 'X') {
      os << ", \"dur\": " << static_cast<double>(ev.dur_ns) / 1e3;
    } else {
      os << ", \"id\": " << ev.id;
    }
    os << ", \"pid\": " << ev.pid << ", \"tid\": " << ev.tid << "}";
  }
  os.unsetf(std::ios::fixed);
  os.precision(old);
  os << (events_.empty() ? "" : "\n") << "], \"displayTimeUnit\": \"ms\"}\n";
}

Tracer& tracer() {
  static Tracer t;
  return t;
}

TraceScope::~TraceScope() {
  if (name_ == nullptr) return;
  TraceEvent ev;
  ev.name = name_;
  ev.start_ns = start_;
  ev.dur_ns = now_ns() - start_;
  ev.tid = static_cast<std::uint32_t>(thread_ordinal());
  tracer().record(ev);
}

}  // namespace edgerep::obs
