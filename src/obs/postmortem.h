// Causal postmortem over a flight-recorder journal (obs/recorder.h).
//
// The analyzer replays a journal's records — with no access to the
// instance, plan, or OnlineResult — and reconstructs:
//
//   * per-query causal timelines (arrival → admission → transfers →
//     relocations → completion/failure), with each query's deadline slack
//     decomposed into wait / transfer / compute along the critical demand;
//   * the run's deadline-SLO rollup.  The hit ratio and p50/p95/p99 slack
//     (overall and per site) reproduce `OnlineResult::slo` *bit-exactly*:
//     the journal carries the same doubles the kernel folded (deadline,
//     per-flight total and processing delay), completions are re-derived
//     with the identical FP operations, and the percentile formula below
//     mirrors util/stats.h `percentile_sorted` (the obs layer sits under
//     util and cannot link it; the agreement is pinned by
//     tests/obs/postmortem_test.cpp);
//   * SLO-breach attribution rolled up by site, dataset, and node role
//     (cloudlet vs data center), keyed to the breached query's critical
//     demand;
//   * flow-backend attribution when the journal came from a
//     `--network=flow` run: kFlowRateChange retirement records supersede
//     the priced completion with the contended actual (the same
//     max-accumulate the kernels apply), and breaches whose critical
//     demand was stretched are additionally bucketed by the bottleneck
//     link that last throttled it;
//   * per-micro-epoch stream statistics (intents, commits, conflicts,
//     requeues, rejects) when the journal came from the streaming plane.
//
// It can also diff two journals to the first divergent record, turning the
// cross-kernel / cross-thread-count determinism contracts from a pass/fail
// hash into a pinpointed debugging tool (`edgerep_cli postmortem --diff`).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/recorder.h"

namespace edgerep::obs {

/// "No bottleneck link" sentinel for flow-backend attribution (mirrors the
/// journal's ~0u edge id in kFlowRateChange records).
inline constexpr std::uint32_t kNoLink = 0xffffffffu;

/// Mirror of the simulator's per-site SLO row, rebuilt from the journal.
struct PostmortemSiteSlo {
  std::uint32_t site = kNoSite;
  std::size_t demands = 0;
  std::size_t deadline_hits = 0;
  double p50_slack = 0.0;
  double p95_slack = 0.0;
  double p99_slack = 0.0;
};

/// Mirror of the simulator's SloRollup, rebuilt from the journal.
struct PostmortemSlo {
  std::size_t admitted_queries = 0;
  std::size_t deadline_hits = 0;
  double hit_ratio = 0.0;
  double p50_slack = 0.0;
  double p95_slack = 0.0;
  double p99_slack = 0.0;
  std::vector<PostmortemSiteSlo> per_site;
};

/// One query's reconstructed causal timeline.
struct QueryTimeline {
  std::uint32_t query = 0;
  double arrival = 0.0;
  double deadline = 0.0;
  double completion = 0.0;  ///< max over admission + relocation completions
  std::uint32_t n_demands = 0;
  bool admitted = false;  ///< launched flights and survived the horizon
  bool rejected = false;  ///< refused at admission
  bool failed = false;    ///< admitted, then killed by a fault
  std::uint8_t reject_reason = 0;  ///< audit::AuditReason when rejected
  std::uint32_t relocations = 0;   ///< fault-forced re-seats
  std::uint32_t sheds = 0;         ///< flights killed by faults
  /// Critical demand: the one whose (possibly relocated) flight finished
  /// last and therefore set the query's completion time.
  std::uint32_t critical_demand = 0;
  std::uint32_t critical_site = kNoSite;
  std::uint32_t critical_dataset = 0;
  bool critical_on_dc = false;  ///< critical flight served by a data center
  /// Bottleneck link that last throttled the critical demand's flow
  /// (kNoLink when the run used the delay table, the flow was cap-frozen,
  /// or the critical flight finished exactly at its priced completion).
  std::uint32_t critical_link = kNoLink;
  /// Slack decomposition along the critical demand, seconds:
  ///   wait     — critical flight's start minus arrival (relocation lag)
  ///   transfer — data movement share of the flight (total − processing)
  ///   compute  — processing share
  /// wait + transfer + compute == completion − arrival (up to FP rounding).
  double wait = 0.0;
  double transfer = 0.0;
  double compute = 0.0;
  double slack = 0.0;  ///< deadline − (completion − arrival)
};

/// Breach attribution bucket: admitted queries that missed their deadline,
/// grouped by the critical demand's site / dataset / node role.
struct BreachBucket {
  std::uint32_t key = 0;  ///< site id, dataset id, or role (0=cloudlet,1=DC)
  std::size_t breaches = 0;      ///< breached queries attributed here
  std::size_t served = 0;        ///< admitted queries attributed here
  double worst_slack = 0.0;      ///< most negative slack in the bucket
  double total_overrun = 0.0;    ///< Σ(−slack) over breaches, seconds
};

/// One watchdog alert window reconstructed from kAlert records — the open
/// record carries onset/threshold, the paired resolve record (same seq)
/// closes it.  Reconstruction is bit-exact against the live
/// obs::Watchdog::alerts() snapshot for full-mode journals (pinned by
/// tests/obs/watchdog_test.cpp).
struct AlertWindow {
  double onset = 0.0;
  double resolve = -1.0;          ///< < 0 while still open at journal end
  std::uint8_t kind = 0;          ///< obs::AlertKind value
  std::uint8_t severity = 0;      ///< obs::AlertSeverity value
  std::uint8_t subject_kind = 0;  ///< obs::AlertSubjectKind value
  std::uint32_t subject = 0;      ///< site / dataset / region / link id
  std::uint32_t seq = 0;
  double onset_value = 0.0;
  double threshold = 0.0;
  double resolve_value = 0.0;
  /// Breached admitted queries whose completion time fell inside
  /// [onset, resolve] (open windows extend to the end of the journal).
  std::size_t breaches_in_window = 0;
};

/// Per-micro-epoch stream statistics.
struct EpochStats {
  std::uint32_t epoch = 0;
  double window_end = 0.0;
  std::size_t batch = 0;
  std::size_t intents = 0;
  std::size_t commits = 0;
  std::size_t conflicts = 0;
  std::size_t requeues = 0;
  std::size_t rejects = 0;
};

struct PostmortemReport {
  // --- online section (empty when the journal has no online records) ----
  std::size_t arrivals = 0;
  std::size_t admitted = 0;
  std::size_t rejected = 0;
  std::size_t failed_by_fault = 0;
  std::size_t relocations = 0;
  std::size_t sheds = 0;
  std::size_t fault_events = 0;
  /// Admission rejections by audit::AuditReason value.
  std::vector<std::size_t> rejects_by_reason;
  PostmortemSlo slo;
  /// Every arrived query, ascending query id.
  std::vector<QueryTimeline> timelines;
  /// Breach attribution, each ascending by key; empty when no breaches.
  std::vector<BreachBucket> by_site;
  std::vector<BreachBucket> by_dataset;
  std::vector<BreachBucket> by_role;
  /// Flow-backend attribution: breaches whose critical demand was last
  /// throttled by a known bottleneck link, keyed by edge id.  Empty for
  /// delay-table journals.
  std::vector<BreachBucket> by_link;
  // --- flow section (zero when the journal has no flow records) ---------
  std::size_t flow_rate_changes = 0;  ///< max-min re-fill rate transitions
  std::size_t flow_retirements = 0;   ///< flows drained to completion
  /// Retirements that landed later than the priced completion (the
  /// contention stretch the SLO gap measures), same 1e-9 slack as the
  /// kernels' late-transfer counter.
  std::size_t flow_stretched = 0;
  // --- watchdog section (empty when the journal has no kAlert records) --
  std::vector<AlertWindow> alerts;  ///< open order (ascending seq)
  std::size_t alerts_opened = 0;
  std::size_t alerts_resolved = 0;
  // --- stream section (empty when the journal has no stream records) ----
  std::vector<EpochStats> epochs;
  std::size_t stream_intents = 0;
  std::size_t stream_commits = 0;
  std::size_t stream_conflicts = 0;
  std::size_t stream_requeues = 0;
  std::size_t stream_rejects = 0;
};

/// Replay a journal into a report.  Ring-mode journals with dropped records
/// analyze best-effort: flight records whose arrival was overwritten are
/// skipped (they cannot be attributed to a deadline).
[[nodiscard]] PostmortemReport analyze_journal(const Journal& journal);

/// Human-readable report.  `top_breaches` caps the worst-slack timeline
/// listing (0 = omit the listing).
void write_report_text(std::ostream& os, const PostmortemReport& report,
                       std::size_t top_breaches = 10);
/// One JSON object mirroring PostmortemReport (timelines capped likewise).
void write_report_json(std::ostream& os, const PostmortemReport& report,
                       std::size_t top_breaches = 10);
/// Just the reconstructed alert timeline with per-window breach counts
/// (the `edgerep_cli postmortem --alerts` view).
void write_alerts_text(std::ostream& os, const PostmortemReport& report);

/// Result of comparing two journals record-by-record.
struct JournalDiff {
  bool identical = false;
  bool header_differs = false;    ///< mode / counts differ
  std::size_t lhs_records = 0;
  std::size_t rhs_records = 0;
  /// Index of the first record whose 40 bytes differ (or the length of the
  /// shorter journal when one is a prefix of the other); npos if none.
  std::size_t first_divergence = 0;
  bool has_divergence = false;
  JournalRecord lhs{};  ///< the diverging records (valid when in range)
  JournalRecord rhs{};
};

[[nodiscard]] JournalDiff diff_journals(const Journal& lhs,
                                        const Journal& rhs);
/// Render a diff with both diverging records decoded.
void write_diff_text(std::ostream& os, const JournalDiff& diff);

}  // namespace edgerep::obs
