#include "obs/watchdog.h"

#include <algorithm>
#include <cstdlib>
#include <ostream>

#include "obs/metrics.h"
#include "obs/recorder.h"

namespace edgerep::obs {

namespace {

/// Breaches are slacks below the same tolerance finalize_online_result and
/// the postmortem use, so all three agree on what counts as a breach.
constexpr double kSlackTolerance = -1e-9;

void count_transition(bool resolve, std::size_t open_now, double value,
                      AlertKind kind) {
  if (!metrics_enabled()) return;
  static Counter& opened = metrics().counter(
      "edgerep_watchdog_alerts_opened_total", "Watchdog alerts opened.");
  static Counter& resolved = metrics().counter(
      "edgerep_watchdog_alerts_resolved_total", "Watchdog alerts resolved.");
  static Gauge& open_now_g = metrics().gauge(
      "edgerep_watchdog_open_alerts", "Watchdog alerts currently open.");
  static Gauge& breach_g = metrics().gauge(
      "edgerep_watchdog_breach_level",
      "Breach-burst EWMA at the last breach-burst alert transition.");
  static Gauge& share_g = metrics().gauge(
      "edgerep_watchdog_top_share",
      "Estimated demand share at the last dataset-hotspot transition.");
  (resolve ? resolved : opened).inc();
  open_now_g.set(static_cast<double>(open_now));
  if (kind == AlertKind::kBreachBurst) breach_g.set(value);
  if (kind == AlertKind::kDatasetHotspot) share_g.set(value);
}

}  // namespace

const char* to_string(AlertKind kind) noexcept {
  switch (kind) {
    case AlertKind::kDatasetHotspot:
      return "dataset_hotspot";
    case AlertKind::kSiteOverload:
      return "site_overload";
    case AlertKind::kArrivalRateShift:
      return "arrival_rate_shift";
    case AlertKind::kBreachBurst:
      return "breach_burst";
    case AlertKind::kFlowStretch:
      return "flow_stretch";
  }
  return "unknown";
}

const char* to_string(AlertSeverity severity) noexcept {
  switch (severity) {
    case AlertSeverity::kInfo:
      return "info";
    case AlertSeverity::kWarning:
      return "warning";
    case AlertSeverity::kCritical:
      return "critical";
  }
  return "unknown";
}

const char* to_string(AlertSubjectKind kind) noexcept {
  switch (kind) {
    case AlertSubjectKind::kSite:
      return "site";
    case AlertSubjectKind::kDataset:
      return "dataset";
    case AlertSubjectKind::kRegion:
      return "region";
    case AlertSubjectKind::kLink:
      return "link";
  }
  return "unknown";
}

void Watchdog::set_config(const WatchdogConfig& cfg) { cfg_ = cfg; }

void Watchdog::begin_run() {
  rec_ = recorder_enabled() ? static_cast<void*>(&recorder()) : nullptr;
  sketch_ = SpaceSavingSketch(cfg_.sketch_size);
  demands_seen_ = 0;
  regions_.clear();
  sites_.clear();
  links_.clear();
  breach_level_ = WatchdogEwma{cfg_.breach_ewma_alpha};
  completions_seen_ = 0;
  breach_open_ = false;
  std::lock_guard<std::mutex> lock(mu_);
  alerts_.clear();
  open_.clear();
  worst_severity_ = 0;
}

void Watchdog::on_arrival(double t, std::uint32_t region) {
  if (region >= regions_.size()) {
    regions_.resize(region + 1);
    for (RegionState& r : regions_) {
      if (!r.windowing) {
        r.ratio = WatchdogEwma{cfg_.rate_ewma_alpha};
        r.cusum = WatchdogCusum(0, cfg_.rate_cusum_slack,
                                cfg_.rate_cusum_threshold);
        r.cusum.preset_target(1.0);
        r.windowing = true;
      }
    }
  }
  RegionState& r = regions_[region];
  while (t >= r.window_start + cfg_.arrival_window) {
    feed_rate_sample(r.window_start + cfg_.arrival_window, region,
                     static_cast<double>(r.window_count) /
                         cfg_.arrival_window);
    r.window_count = 0;
    r.window_start += cfg_.arrival_window;
  }
  ++r.window_count;
}

void Watchdog::on_stream_epoch(double t, std::uint32_t shard,
                               std::size_t batch, double window) {
  if (window <= 0.0) return;
  if (shard >= regions_.size()) {
    regions_.resize(shard + 1);
    for (RegionState& r : regions_) {
      if (!r.windowing) {
        r.ratio = WatchdogEwma{cfg_.rate_ewma_alpha};
        r.cusum = WatchdogCusum(0, cfg_.rate_cusum_slack,
                                cfg_.rate_cusum_threshold);
        r.cusum.preset_target(1.0);
        r.windowing = true;
      }
    }
  }
  feed_rate_sample(t, shard, static_cast<double>(batch) / window);
}

void Watchdog::feed_rate_sample(double t, std::uint32_t region, double rate) {
  RegionState& r = regions_[region];
  if (r.samples < cfg_.rate_warmup) {
    r.warm_sum += rate;
    ++r.samples;
    if (r.samples == cfg_.rate_warmup) {
      r.baseline = r.warm_sum / static_cast<double>(cfg_.rate_warmup);
    }
    return;
  }
  ++r.samples;
  if (r.baseline <= 0.0) return;  // silent warmup: no baseline to compare to
  r.ratio.feed(rate / r.baseline);
  const bool alarm = r.cusum.feed(r.ratio.value);
  if (!r.open && alarm) {
    r.open = true;
    open_alert(t, AlertKind::kArrivalRateShift,
               r.ratio.value > cfg_.rate_critical_ratio
                   ? AlertSeverity::kCritical
                   : AlertSeverity::kWarning,
               AlertSubjectKind::kRegion, region, r.ratio.value,
               1.0 + cfg_.rate_cusum_slack);
  } else if (r.open && r.ratio.value < cfg_.rate_resolve_ratio) {
    r.open = false;
    r.cusum.rearm();
    resolve_alert(t, AlertKind::kArrivalRateShift, AlertSubjectKind::kRegion,
                  region, r.ratio.value);
  }
}

void Watchdog::on_demand(double t, std::uint32_t dataset) {
  sketch_.feed(dataset);
  ++demands_seen_;
  if (demands_seen_ < cfg_.hotspot_warmup) return;
  const double total = static_cast<double>(sketch_.total());
  const double share =
      static_cast<double>(sketch_.estimate(dataset)) / total;
  if (share > cfg_.hotspot_open_share &&
      !is_open(AlertKind::kDatasetHotspot, AlertSubjectKind::kDataset,
               dataset)) {
    open_alert(t, AlertKind::kDatasetHotspot,
               share > cfg_.hotspot_critical_share ? AlertSeverity::kCritical
                                                   : AlertSeverity::kWarning,
               AlertSubjectKind::kDataset, dataset, share,
               cfg_.hotspot_open_share);
  }
  // Hysteresis resolution for every hotspot still open, in ascending
  // dataset order (std::map order — deterministic).
  std::vector<std::uint32_t> open_hotspots;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, idx] : open_) {
      if (std::get<0>(key) ==
              static_cast<std::uint8_t>(AlertKind::kDatasetHotspot) &&
          std::get<1>(key) ==
              static_cast<std::uint8_t>(AlertSubjectKind::kDataset)) {
        open_hotspots.push_back(std::get<2>(key));
      }
    }
  }
  for (std::uint32_t ds : open_hotspots) {
    const double s = static_cast<double>(sketch_.estimate(ds)) / total;
    if (s < cfg_.hotspot_resolve_share) {
      resolve_alert(t, AlertKind::kDatasetHotspot, AlertSubjectKind::kDataset,
                    ds, s);
    }
  }
}

void Watchdog::on_site_util(double t, std::uint32_t site, double util) {
  if (site >= sites_.size()) {
    const std::size_t old = sites_.size();
    sites_.resize(site + 1);
    for (std::size_t i = old; i < sites_.size(); ++i) {
      sites_[i].util = WatchdogEwma{cfg_.site_ewma_alpha};
      sites_[i].ph =
          WatchdogPageHinkley(cfg_.site_ph_delta, cfg_.site_ph_lambda);
    }
  }
  SiteState& s = sites_[site];
  s.util.feed(util);
  ++s.samples;
  if (!s.open) {
    const bool alarm = s.ph.feed(s.util.value);
    if (alarm && s.samples >= cfg_.site_warmup &&
        s.util.value > cfg_.site_open_floor) {
      s.open = true;
      s.open_ewma = s.util.value;
      open_alert(t, AlertKind::kSiteOverload,
                 s.util.value > cfg_.site_critical_util
                     ? AlertSeverity::kCritical
                     : AlertSeverity::kWarning,
                 AlertSubjectKind::kSite, site, s.util.value,
                 cfg_.site_ph_lambda);
    }
  } else if (s.util.value < s.open_ewma * cfg_.site_resolve_frac) {
    s.open = false;
    s.ph.reset();
    s.samples = 0;
    resolve_alert(t, AlertKind::kSiteOverload, AlertSubjectKind::kSite, site,
                  s.util.value);
  }
}

void Watchdog::on_completion(double t, double slack, bool failed) {
  const bool breach = failed || slack < kSlackTolerance;
  breach_level_.feed(breach ? 1.0 : 0.0);
  ++completions_seen_;
  if (completions_seen_ < cfg_.breach_warmup) return;
  if (!breach_open_ && breach_level_.value > cfg_.breach_open_level) {
    breach_open_ = true;
    open_alert(t, AlertKind::kBreachBurst,
               breach_level_.value > cfg_.breach_critical_level
                   ? AlertSeverity::kCritical
                   : AlertSeverity::kWarning,
               AlertSubjectKind::kRegion, 0, breach_level_.value,
               cfg_.breach_open_level);
  } else if (breach_open_ &&
             breach_level_.value < cfg_.breach_resolve_level) {
    breach_open_ = false;
    resolve_alert(t, AlertKind::kBreachBurst, AlertSubjectKind::kRegion, 0,
                  breach_level_.value);
  }
}

void Watchdog::on_flow_retire(double t, std::uint32_t link, double stretch) {
  if (link == kNoAlertLink) return;
  if (link >= links_.size()) {
    const std::size_t old = links_.size();
    links_.resize(link + 1);
    for (std::size_t i = old; i < links_.size(); ++i) {
      links_[i].stretch = WatchdogEwma{cfg_.stretch_ewma_alpha};
    }
  }
  LinkState& s = links_[link];
  s.stretch.feed(std::max(stretch, 0.0));
  ++s.samples;
  if (s.samples < cfg_.stretch_warmup) return;
  if (!s.open && s.stretch.value > cfg_.stretch_open_seconds) {
    s.open = true;
    open_alert(t, AlertKind::kFlowStretch, AlertSeverity::kWarning,
               AlertSubjectKind::kLink, link, s.stretch.value,
               cfg_.stretch_open_seconds);
  } else if (s.open && s.stretch.value < cfg_.stretch_resolve_seconds) {
    s.open = false;
    resolve_alert(t, AlertKind::kFlowStretch, AlertSubjectKind::kLink, link,
                  s.stretch.value);
  }
}

bool Watchdog::is_open(AlertKind kind, AlertSubjectKind subject_kind,
                       std::uint32_t subject) const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_.count({static_cast<std::uint8_t>(kind),
                      static_cast<std::uint8_t>(subject_kind), subject}) > 0;
}

void Watchdog::open_alert(double t, AlertKind kind, AlertSeverity severity,
                          AlertSubjectKind subject_kind, std::uint32_t subject,
                          double value, double threshold) {
  Alert alert;
  alert.onset = t;
  alert.kind = kind;
  alert.severity = severity;
  alert.subject_kind = subject_kind;
  alert.subject = subject;
  alert.onset_value = value;
  alert.threshold = threshold;
  std::size_t open_now = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    alert.seq = static_cast<std::uint32_t>(alerts_.size());
    open_[{static_cast<std::uint8_t>(kind),
           static_cast<std::uint8_t>(subject_kind), subject}] =
        alerts_.size();
    alerts_.push_back(alert);
    worst_severity_ =
        std::max(worst_severity_, static_cast<std::uint8_t>(severity));
    open_now = open_.size();
  }
  journal_alert(alert, /*resolve=*/false, t, value);
  count_transition(false, open_now, value, kind);
}

void Watchdog::resolve_alert(double t, AlertKind kind,
                             AlertSubjectKind subject_kind,
                             std::uint32_t subject, double value) {
  Alert snapshot;
  std::size_t open_now = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = open_.find({static_cast<std::uint8_t>(kind),
                                static_cast<std::uint8_t>(subject_kind),
                                subject});
    if (it == open_.end()) return;
    Alert& alert = alerts_[it->second];
    alert.resolve = t;
    alert.resolve_value = value;
    snapshot = alert;
    open_.erase(it);
    open_now = open_.size();
  }
  journal_alert(snapshot, /*resolve=*/true, t, value);
  count_transition(true, open_now, value, kind);
}

void Watchdog::journal_alert(const Alert& alert, bool resolve, double t,
                             double value) {
  if (rec_ == nullptr) return;
  JournalRecord r;
  r.time = t;
  r.v0 = value;
  r.v1 = resolve ? alert.onset : alert.threshold;
  r.a = alert.subject;
  r.b = alert.seq;
  r.site = alert.subject_kind == AlertSubjectKind::kSite ? alert.subject
                                                         : kNoSite;
  r.kind = static_cast<std::uint8_t>(RecordKind::kAlert);
  r.arg = static_cast<std::uint8_t>(alert.kind);
  r.flags = static_cast<std::uint16_t>(
      (resolve ? 1u : 0u) |
      (static_cast<unsigned>(alert.severity) << 1) |
      (static_cast<unsigned>(alert.subject_kind) << 3));
  static_cast<Recorder*>(rec_)->append(r);
}

std::vector<Alert> Watchdog::alerts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alerts_;
}

WatchdogStats Watchdog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  WatchdogStats s;
  s.opened = alerts_.size();
  s.open_at_end = open_.size();
  s.resolved = s.opened - s.open_at_end;
  s.worst_severity = worst_severity_;
  for (const Alert& a : alerts_) {
    ++s.opened_by_kind[static_cast<std::size_t>(a.kind)];
  }
  return s;
}

void Watchdog::write_json(std::ostream& os) const {
  const std::vector<Alert> snapshot = alerts();
  std::size_t open_count = 0;
  for (const Alert& a : snapshot) {
    if (a.resolve < 0.0) ++open_count;
  }
  os << "{\"enabled\":" << (watchdog_enabled() ? "true" : "false")
     << ",\"opened\":" << snapshot.size()
     << ",\"resolved\":" << snapshot.size() - open_count
     << ",\"open\":" << open_count << ",\"alerts\":[";
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const Alert& a = snapshot[i];
    if (i > 0) os << ',';
    os << "{\"seq\":" << a.seq << ",\"kind\":\"" << to_string(a.kind)
       << "\",\"severity\":\"" << to_string(a.severity)
       << "\",\"subject_kind\":\"" << to_string(a.subject_kind)
       << "\",\"subject\":" << a.subject << ",\"onset\":";
    write_json_double(os, a.onset);
    os << ",\"resolve\":";
    if (a.resolve < 0.0) {
      os << "null";
    } else {
      write_json_double(os, a.resolve);
    }
    os << ",\"onset_value\":";
    write_json_double(os, a.onset_value);
    os << ",\"threshold\":";
    write_json_double(os, a.threshold);
    os << ",\"resolve_value\":";
    write_json_double(os, a.resolve_value);
    os << '}';
  }
  os << "]}";
}

Watchdog& watchdog() {
  static Watchdog instance;
  return instance;
}

namespace detail {

void watchdog_apply_env() {
  const char* v = std::getenv("EDGEREP_WATCHDOG");
  const bool on =
      v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
  set_watchdog_enabled(on);
  watchdog().begin_run();
}

}  // namespace detail

}  // namespace edgerep::obs
