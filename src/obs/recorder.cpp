#include "obs/recorder.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "obs/obs.h"

namespace edgerep::obs {

namespace {

constexpr char kMagic[8] = {'E', 'D', 'G', 'E', 'R', 'E', 'P', 'J'};

}  // namespace

const char* to_string(RecordKind kind) noexcept {
  switch (kind) {
    case RecordKind::kArrival:
      return "arrival";
    case RecordKind::kTransferStart:
      return "transfer_start";
    case RecordKind::kRelocate:
      return "relocate";
    case RecordKind::kComputeDone:
      return "compute_done";
    case RecordKind::kReject:
      return "reject";
    case RecordKind::kShed:
      return "shed";
    case RecordKind::kFail:
      return "fail";
    case RecordKind::kFaultApply:
      return "fault_apply";
    case RecordKind::kEpochBegin:
      return "epoch_begin";
    case RecordKind::kIntent:
      return "intent";
    case RecordKind::kCommit:
      return "commit";
    case RecordKind::kConflict:
      return "conflict";
    case RecordKind::kRequeue:
      return "requeue";
    case RecordKind::kStreamReject:
      return "stream_reject";
    case RecordKind::kFlowRateChange:
      return "flow_rate_change";
    case RecordKind::kAlert:
      return "alert";
  }
  return "unknown";
}

void Recorder::configure(RecorderMode mode, std::size_t ring_capacity) {
  mode_ = mode;
  buf_.clear();
  ring_head_ = 0;
  retained_ = 0;
  appended_ = 0;
  dropped_ = 0;
  if (mode_ == RecorderMode::kRing) {
    if (ring_capacity == 0) ring_capacity = 1;
    buf_.resize(ring_capacity);
  } else {
    buf_.shrink_to_fit();
  }
}

void Recorder::clear() noexcept {
  if (mode_ == RecorderMode::kFull) buf_.clear();
  ring_head_ = 0;
  retained_ = 0;
  appended_ = 0;
  dropped_ = 0;
}

void Recorder::reserve(std::size_t records) {
  if (mode_ == RecorderMode::kFull) buf_.reserve(records);
}

std::vector<JournalRecord> Recorder::snapshot() const {
  std::vector<JournalRecord> out;
  out.reserve(size());
  if (mode_ == RecorderMode::kRing && retained_ == buf_.size()) {
    // Full ring: oldest record sits at the next write position.
    out.insert(out.end(), buf_.begin() + static_cast<std::ptrdiff_t>(ring_head_),
               buf_.end());
    out.insert(out.end(), buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(ring_head_));
  } else {
    out.insert(out.end(), buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(size()));
  }
  return out;
}

void Recorder::write(std::ostream& out) const {
  JournalHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kJournalVersion;
  header.record_size = sizeof(JournalRecord);
  header.appended = total_appended();
  header.retained = size();
  header.dropped = dropped();
  header.mode = static_cast<std::uint8_t>(mode_);
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  auto write_range = [&out](const JournalRecord* first, std::size_t n) {
    if (n > 0) {
      out.write(reinterpret_cast<const char*>(first),
                static_cast<std::streamsize>(n * sizeof(JournalRecord)));
    }
  };
  if (mode_ == RecorderMode::kRing && retained_ == buf_.size()) {
    write_range(buf_.data() + ring_head_, buf_.size() - ring_head_);
    write_range(buf_.data(), ring_head_);
  } else {
    write_range(buf_.data(), size());
  }
}

bool Recorder::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  write(out);
  out.flush();
  return static_cast<bool>(out);
}

Recorder& recorder() {
  static Recorder instance;
  return instance;
}

bool read_journal(std::istream& in, Journal* out, std::string* error) {
  auto fail = [error](const char* msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  JournalHeader header{};
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in) return fail("journal truncated before header");
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return fail("bad journal magic");
  }
  if (header.version != kJournalVersion) return fail("unknown journal version");
  if (header.record_size != sizeof(JournalRecord)) {
    return fail("journal record size mismatch");
  }
  out->header = header;
  out->records.resize(header.retained);
  if (header.retained > 0) {
    in.read(reinterpret_cast<char*>(out->records.data()),
            static_cast<std::streamsize>(header.retained *
                                         sizeof(JournalRecord)));
    if (!in) return fail("journal truncated mid-records");
  }
  return true;
}

bool read_journal_file(const std::string& path, Journal* out,
                       std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  return read_journal(in, out, error);
}

namespace detail {

// Called from obs::init_from_env(): parse EDGEREP_RECORD and reset the
// process recorder to the environment default (off, full mode, empty).
void recorder_apply_env() {
  const char* v = std::getenv("EDGEREP_RECORD");
  if (v == nullptr || v[0] == '\0' || (v[0] == '0' && v[1] == '\0')) {
    set_recorder_enabled(false);
    recorder().configure(RecorderMode::kFull);
    return;
  }
  if (std::strncmp(v, "ring", 4) == 0) {
    std::size_t capacity = kDefaultRingCapacity;
    if (v[4] == ':') {
      const long parsed = std::strtol(v + 5, nullptr, 10);
      if (parsed > 0) capacity = static_cast<std::size_t>(parsed);
    }
    recorder().configure(RecorderMode::kRing, capacity);
  } else {
    recorder().configure(RecorderMode::kFull);
  }
  set_recorder_enabled(true);
}

}  // namespace detail

}  // namespace edgerep::obs
