// Admission-decision audit log.
//
// The admission engines (core/appro.cpp, baselines/greedy.cpp) record one
// entry per (query, demand) decision when obs::audit_enabled(): admitted
// entries carry the winning site and its dual price breakdown (θ, capacity,
// η, μ terms); rejected entries carry the binding reason.  Demands that were
// admitted and then undone by an atomic-query abort are re-recorded with
// reason kAtomicRollback (their site/price fields keep the original values
// for forensics).
//
// Reason classification is a deterministic precedence over the constraints
// the engine actually checked:
//   1. kNoDeadlineFeasibleSite — no site satisfies the QoS deadline at all;
//   2. kReplicaBudgetSpent     — some deadline-feasible site has room but no
//                                replica, and the budget K is exhausted;
//   3. kCapacityExhausted      — every deadline-feasible site lacks residual
//                                capacity.
// The classification pass runs only on failure with auditing on; the hot
// admission scan is untouched, so enabling the audit never changes a plan.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

#include "obs/obs.h"

namespace edgerep::obs {

enum class AuditReason : std::uint8_t {
  kAdmitted = 0,
  kNoDeadlineFeasibleSite,
  kCapacityExhausted,
  kReplicaBudgetSpent,
  kAtomicRollback,
  /// The demand was admitted but its site (or path, or capacity headroom)
  /// was lost to an injected fault; recorded by the repair engine when it
  /// evicts the assignment (core/repair.cpp).
  kFaultEvicted,
  /// A shard's phase-1 intent lost the serial reconciliation race — another
  /// shard committed the capacity or replica budget first — and the query
  /// was re-queued into a later epoch (stream/stream_engine.cpp).
  kReconcileConflict,
};
inline constexpr std::size_t kAuditReasonCount = 7;

[[nodiscard]] const char* to_string(AuditReason r) noexcept;

struct AuditEntry {
  const char* algorithm = "";  ///< static string: "appro", "greedy", ...
  std::uint32_t query = 0;
  std::uint32_t demand = 0;    ///< index into the query's demand list
  std::uint32_t dataset = 0;
  bool admitted = false;
  AuditReason reason = AuditReason::kAdmitted;
  std::uint32_t site = static_cast<std::uint32_t>(-1);  ///< winning site
  bool placed_replica = false;
  /// Dual price breakdown of the winning site (admitted entries only).
  double theta_term = 0.0;     ///< θ_site: capacity price before this demand
  double capacity_term = 0.0;  ///< need / A(site)
  double eta_term = 0.0;       ///< η weight · delay / deadline
  double mu_term = 0.0;        ///< replica-creation surcharge (fresh replicas)
  double total_price = 0.0;    ///< the argmin price the scan selected
};

/// Per-query aggregate over a batch of entries, keyed by (algorithm, query).
/// A query is rejected when any of its demands has a non-admitted entry; its
/// binding reason is the first non-rollback rejection recorded for it.
struct AuditSummary {
  std::size_t admitted_queries = 0;
  std::size_t rejected_queries = 0;
  /// Rejected-query counts indexed by AuditReason (kAdmitted slot unused;
  /// kAtomicRollback counts queries whose only rejection was the rollback
  /// of a sibling demand — by construction that does not happen, every
  /// aborted query also logs the failing demand's reason).
  std::array<std::size_t, kAuditReasonCount> rejected_by_reason{};
};

[[nodiscard]] AuditSummary summarize_audit(
    const std::vector<AuditEntry>& entries);

class AuditLog {
 public:
  void record(const AuditEntry& e);
  void record_batch(const std::vector<AuditEntry>& batch);
  [[nodiscard]] std::vector<AuditEntry> snapshot() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

  /// {"entries": [...], "summary": {...}} with reason names spelled out.
  void write_json(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::vector<AuditEntry> entries_;
};

/// Process-wide audit log used by the admission engines.
AuditLog& audit_log();

}  // namespace edgerep::obs
