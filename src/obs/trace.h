// RAII phase tracer emitting a chrome://tracing-compatible profile.
//
//   void Instance::finalize() {
//     EDGEREP_TRACE_SCOPE("instance.finalize");
//     ...
//     { EDGEREP_TRACE_SCOPE("finalize.delay_table"); compute(); }
//   }
//
// Scopes record complete ("ph":"X") events on obs::now_ns(); nesting shows
// up as the flame layout chrome://tracing / Perfetto derive from
// overlapping events on one tid.  Scope names must be string literals (the
// tracer stores the pointer, not a copy).
//
// Async spans ("ph":"b"/"e"/"n" with an explicit id) carry caller-supplied
// timestamps, so the online simulator can emit per-query timelines on the
// *simulated* clock (sim/online.cpp maps sim seconds to trace seconds and
// uses pid 2 to keep them off the wall-clock track).  Events with the same
// id render as one per-query row.
//
// When obs::trace_enabled() is false a scope costs one relaxed atomic load
// at construction and one null check at destruction; nothing is recorded.
// Recording takes a mutex, so scopes belong around phases (finalize, an
// algorithm run, a simulation), not in per-item inner loops.
//
// The event buffer is bounded (kDefaultCapacity events, ~48 MB; tune with
// set_capacity) so a week-long `online --serve` run cannot grow memory
// without bound: once full, new events are dropped, counted by dropped()
// and the edgerep_trace_dropped_total counter.  The cap never truncates
// events already recorded.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

#include "obs/obs.h"

namespace edgerep::obs {

struct TraceEvent {
  const char* name = "";      ///< static string (scope macro literal)
  std::uint64_t start_ns = 0;  ///< obs::now_ns() at scope entry
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;       ///< obs::thread_ordinal() of the recording thread
  /// Chrome trace-event phase: 'X' complete (default), 'b'/'e' async
  /// begin/end, 'n' async instant.  Async phases carry `id` and ignore
  /// dur_ns.
  char phase = 'X';
  std::uint32_t pid = 1;       ///< track group: 1 = wall clock, 2 = sim clock
  std::uint64_t id = 0;        ///< async span id (same id ⇒ same row)
};

class Tracer {
 public:
  /// Default event cap: generous (≈48 MB of events) but finite.
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  void record(const TraceEvent& ev);
  /// Record an async event ('b' begin / 'e' end / 'n' instant) at an
  /// explicit timestamp.  `name` must be a string literal.
  void record_async(char phase, const char* name, std::uint64_t id,
                    std::uint64_t ts_ns, std::uint32_t pid = 2);
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  [[nodiscard]] std::size_t size() const;
  void clear();  ///< drops events and zeroes the dropped counter

  /// Maximum events held; once reached, record() drops (and counts) new
  /// events instead of growing.  Lowering the cap below size() keeps the
  /// stored events and only blocks future growth.
  void set_capacity(std::size_t cap);
  [[nodiscard]] std::size_t capacity() const;
  /// Events discarded because the buffer was full (also exported as the
  /// edgerep_trace_dropped_total counter when metrics are on).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Chrome trace-event JSON ({"traceEvents": [...]}, ts/dur in µs) —
  /// loadable in chrome://tracing and Perfetto.
  void write_chrome_json(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::size_t capacity_ = kDefaultCapacity;
  std::atomic<std::uint64_t> dropped_{0};
};

/// Process-wide tracer used by all engine instrumentation.
Tracer& tracer();

class TraceScope {
 public:
  explicit TraceScope(const char* name) noexcept {
    if (trace_enabled()) {
      name_ = name;
      start_ = now_ns();
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope();

 private:
  const char* name_ = nullptr;  ///< null when tracing was off at entry
  std::uint64_t start_ = 0;
};

#define EDGEREP_TRACE_CONCAT_IMPL(a, b) a##b
#define EDGEREP_TRACE_CONCAT(a, b) EDGEREP_TRACE_CONCAT_IMPL(a, b)
/// Trace the enclosing scope under `name` (a string literal).
#define EDGEREP_TRACE_SCOPE(name)          \
  ::edgerep::obs::TraceScope EDGEREP_TRACE_CONCAT(edgerep_trace_scope_, \
                                                  __COUNTER__)(name)

}  // namespace edgerep::obs
