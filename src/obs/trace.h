// RAII phase tracer emitting a chrome://tracing-compatible profile.
//
//   void Instance::finalize() {
//     EDGEREP_TRACE_SCOPE("instance.finalize");
//     ...
//     { EDGEREP_TRACE_SCOPE("finalize.delay_table"); compute(); }
//   }
//
// Scopes record complete ("ph":"X") events on obs::now_ns(); nesting shows
// up as the flame layout chrome://tracing / Perfetto derive from
// overlapping events on one tid.  Scope names must be string literals (the
// tracer stores the pointer, not a copy).
//
// When obs::trace_enabled() is false a scope costs one relaxed atomic load
// at construction and one null check at destruction; nothing is recorded.
// Recording takes a mutex, so scopes belong around phases (finalize, an
// algorithm run, a simulation), not in per-item inner loops.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

#include "obs/obs.h"

namespace edgerep::obs {

struct TraceEvent {
  const char* name = "";      ///< static string (scope macro literal)
  std::uint64_t start_ns = 0;  ///< obs::now_ns() at scope entry
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;       ///< obs::thread_ordinal() of the recording thread
};

class Tracer {
 public:
  void record(const TraceEvent& ev);
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

  /// Chrome trace-event JSON ({"traceEvents": [...]}, ts/dur in µs) —
  /// loadable in chrome://tracing and Perfetto.
  void write_chrome_json(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// Process-wide tracer used by all engine instrumentation.
Tracer& tracer();

class TraceScope {
 public:
  explicit TraceScope(const char* name) noexcept {
    if (trace_enabled()) {
      name_ = name;
      start_ = now_ns();
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope();

 private:
  const char* name_ = nullptr;  ///< null when tracing was off at entry
  std::uint64_t start_ = 0;
};

#define EDGEREP_TRACE_CONCAT_IMPL(a, b) a##b
#define EDGEREP_TRACE_CONCAT(a, b) EDGEREP_TRACE_CONCAT_IMPL(a, b)
/// Trace the enclosing scope under `name` (a string literal).
#define EDGEREP_TRACE_SCOPE(name)          \
  ::edgerep::obs::TraceScope EDGEREP_TRACE_CONCAT(edgerep_trace_scope_, \
                                                  __COUNTER__)(name)

}  // namespace edgerep::obs
