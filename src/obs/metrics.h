// Lock-cheap metrics registry: monotonic counters, gauges, and fixed-bucket
// histograms, with Prometheus-text and JSON exporters.
//
// Counters stripe their cells across cache lines and pick a stripe by
// thread ordinal, so concurrent increments from `parallel_for` workers sum
// exactly without a shared hot cache line.  All cells are relaxed atomics:
// a snapshot taken while writers are active is race-free (it may simply
// miss in-flight increments); a snapshot taken after joining the writers
// (futures, `parallel_for` return) is exact.
//
// When obs::metrics_enabled() is false every mutation is a single relaxed
// atomic load and an untaken branch — nothing is recorded.
//
// Instrumented call sites cache the handle so the name lookup happens once:
//
//   if (obs::metrics_enabled()) {
//     static obs::Counter& c =
//         obs::metrics().counter("edgerep_appro_runs_total", "appro runs");
//     c.inc();
//   }
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace edgerep::obs {

namespace detail {
/// Portable fetch-add for atomic<double> (CAS loop; relaxed is enough for
/// statistics accumulation).
inline void add_double(std::atomic<double>& a, double x) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Monotonic counter with cache-line-striped cells.
class Counter {
 public:
  static constexpr std::size_t kStripes = 16;

  void inc(std::uint64_t n = 1) noexcept {
    if (!metrics_enabled()) return;
    cells_[thread_ordinal() % kStripes].v.fetch_add(n,
                                                    std::memory_order_relaxed);
  }

  /// Sum of all stripes.  Exact once writers are joined; a lower bound while
  /// they run.
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kStripes> cells_{};
};

/// Last-write-wins instantaneous value (e.g. queue depth).
class Gauge {
 public:
  void set(double v) noexcept {
    if (!metrics_enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(double delta) noexcept {
    if (!metrics_enabled()) return;
    detail::add_double(v_, delta);
  }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram with Prometheus `le` semantics: bucket i counts
/// observations x ≤ upper_bounds[i]; one implicit +Inf bucket catches the
/// rest.  Bounds are fixed at registration and must be strictly ascending.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Per-bucket (non-cumulative) counts; last entry is the +Inf bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] const std::vector<double>& upper_bounds() const noexcept {
    return bounds_;
  }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds_.size()+1
  std::atomic<double> sum_{0.0};
};

/// Name → metric registry.  Registration takes a mutex; returned references
/// are stable for the registry's lifetime, so call sites cache them and the
/// hot path never locks.  `reset()` zeroes values but keeps registrations
/// (cached references stay valid).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  /// Re-registering an existing histogram returns it unchanged (the bounds
  /// argument is ignored); a name may hold only one metric kind.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds,
                       const std::string& help = "");

  /// Prometheus text exposition format (HELP/TYPE comments, cumulative
  /// histogram buckets with `le` labels).
  void write_prometheus(std::ostream& os) const;
  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}} with cumulative bucket counts.
  void write_json(std::ostream& os) const;

  /// Zero every value, keep every registration.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::pair<std::string, std::unique_ptr<Counter>>>
      counters_;
  std::map<std::string, std::pair<std::string, std::unique_ptr<Gauge>>>
      gauges_;
  std::map<std::string, std::pair<std::string, std::unique_ptr<Histogram>>>
      histograms_;
};

/// Process-wide registry used by all engine instrumentation.
MetricsRegistry& metrics();

/// Write `v` in Prometheus text exposition form.  Non-finite values use the
/// spelling the format defines: `+Inf`, `-Inf`, `NaN`.
void write_prometheus_double(std::ostream& os, double v);

/// Write `v` as a valid JSON value.  JSON has no non-finite literals, so
/// NaN becomes `null` and infinities become the string sentinels `"+Inf"` /
/// `"-Inf"` — the output always parses.
void write_json_double(std::ostream& os, double v);

}  // namespace edgerep::obs
