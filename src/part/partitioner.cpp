#include "part/partitioner.h"

#include <algorithm>
#include <stdexcept>

namespace edgerep {

namespace {

/// Adjacency built once: per vertex, (neighbor, edge weight).
std::vector<std::vector<std::pair<std::uint32_t, double>>> build_adjacency(
    const PartitionProblem& p) {
  std::vector<std::vector<std::pair<std::uint32_t, double>>> adj(
      p.num_vertices);
  for (const auto& e : p.edges) {
    adj.at(e.u).push_back({e.v, e.weight});
    adj.at(e.v).push_back({e.u, e.weight});
  }
  return adj;
}

void check_problem(const PartitionProblem& p) {
  if (p.vertex_weight.size() != p.num_vertices) {
    throw std::invalid_argument("partition: vertex_weight size mismatch");
  }
  if (p.part_capacity.size() != p.num_parts || p.num_parts == 0) {
    throw std::invalid_argument("partition: part_capacity size mismatch");
  }
  for (const auto& e : p.edges) {
    if (e.u >= p.num_vertices || e.v >= p.num_vertices) {
      throw std::invalid_argument("partition: edge endpoint out of range");
    }
  }
}

}  // namespace

double cut_weight(const PartitionProblem& p,
                  const std::vector<std::uint32_t>& part_of) {
  double cut = 0.0;
  for (const auto& e : p.edges) {
    const std::uint32_t pu = part_of.at(e.u);
    const std::uint32_t pv = part_of.at(e.v);
    if (pu != pv || pu == kUnassignedPart) cut += e.weight;
  }
  return cut;
}

std::vector<double> part_loads(const PartitionProblem& p,
                               const std::vector<std::uint32_t>& part_of) {
  std::vector<double> load(p.num_parts, 0.0);
  for (std::size_t v = 0; v < p.num_vertices; ++v) {
    if (part_of[v] != kUnassignedPart) load[part_of[v]] += p.vertex_weight[v];
  }
  return load;
}

PartitionResult partition_graph(const PartitionProblem& p,
                                const PartitionOptions& opts) {
  check_problem(p);
  const auto adj = build_adjacency(p);
  PartitionResult res;
  res.part_of.assign(p.num_vertices, kUnassignedPart);
  std::vector<double> load(p.num_parts, 0.0);
  Rng rng(opts.seed);

  // --- growth phase: heaviest vertices first, each to the part where its
  // already-placed neighbors weigh the most (ties: lightest load).
  std::vector<std::uint32_t> order(p.num_vertices);
  for (std::uint32_t v = 0; v < p.num_vertices; ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return p.vertex_weight[a] > p.vertex_weight[b];
                   });
  std::vector<double> affinity(p.num_parts, 0.0);
  for (const std::uint32_t v : order) {
    std::fill(affinity.begin(), affinity.end(), 0.0);
    for (const auto& [u, w] : adj[v]) {
      if (res.part_of[u] != kUnassignedPart) affinity[res.part_of[u]] += w;
    }
    std::uint32_t best = kUnassignedPart;
    for (std::uint32_t part = 0; part < p.num_parts; ++part) {
      if (load[part] + p.vertex_weight[v] > p.part_capacity[part] + 1e-12) {
        continue;
      }
      if (best == kUnassignedPart || affinity[part] > affinity[best] ||
          (affinity[part] == affinity[best] && load[part] < load[best])) {
        best = part;
      }
    }
    if (best != kUnassignedPart) {
      res.part_of[v] = best;
      load[best] += p.vertex_weight[v];
    }
  }

  // --- FM-style refinement: single-vertex moves with positive cut gain.
  for (std::size_t pass = 0; pass < opts.max_refinement_passes; ++pass) {
    bool improved = false;
    for (std::uint32_t v = 0; v < p.num_vertices; ++v) {
      const std::uint32_t from = res.part_of[v];
      if (from == kUnassignedPart) continue;
      std::fill(affinity.begin(), affinity.end(), 0.0);
      for (const auto& [u, w] : adj[v]) {
        if (res.part_of[u] != kUnassignedPart) affinity[res.part_of[u]] += w;
      }
      std::uint32_t best = from;
      double best_gain = 1e-12;  // strict improvement only
      for (std::uint32_t part = 0; part < p.num_parts; ++part) {
        if (part == from) continue;
        if (load[part] + p.vertex_weight[v] > p.part_capacity[part] + 1e-12) {
          continue;
        }
        const double gain = affinity[part] - affinity[from];
        if (gain > best_gain) {
          best_gain = gain;
          best = part;
        }
      }
      if (best != from) {
        load[from] -= p.vertex_weight[v];
        load[best] += p.vertex_weight[v];
        res.part_of[v] = best;
        ++res.refinement_moves;
        improved = true;
      }
    }
    if (!improved) break;
  }
  res.cut_weight = cut_weight(p, res.part_of);
  return res;
}

}  // namespace edgerep
