// Balanced weighted graph partitioning: greedy region growth followed by
// Fiduccia–Mattheyses-style single-vertex move refinement.
//
// This is the substrate behind the Graph-S/G baseline (Golab et al.,
// SSDBM'14 place data "to minimize communication via graph partitioning"):
// queries that share datasets are connected by edges weighted with the
// shared volume; partitioning them across sites with capacity limits keeps
// data-sharing queries together so replicas are reused.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace edgerep {

struct PartitionProblem {
  std::size_t num_vertices = 0;
  std::vector<double> vertex_weight;  ///< size num_vertices (≥ 0)
  struct WeightedEdge {
    std::uint32_t u = 0;
    std::uint32_t v = 0;
    double weight = 0.0;  ///< affinity; cutting it costs this much
  };
  std::vector<WeightedEdge> edges;
  std::size_t num_parts = 0;
  /// Maximum total vertex weight each part may hold (size num_parts).
  std::vector<double> part_capacity;
};

struct PartitionResult {
  /// part_of[v] ∈ [0, num_parts), or kUnassignedPart if v fit nowhere.
  std::vector<std::uint32_t> part_of;
  double cut_weight = 0.0;
  std::size_t refinement_moves = 0;
};

inline constexpr std::uint32_t kUnassignedPart = static_cast<std::uint32_t>(-1);

/// Total weight of edges whose endpoints lie in different parts (unassigned
/// vertices count as cut on every incident edge).
double cut_weight(const PartitionProblem& p,
                  const std::vector<std::uint32_t>& part_of);

/// Sum of vertex weights per part.
std::vector<double> part_loads(const PartitionProblem& p,
                               const std::vector<std::uint32_t>& part_of);

struct PartitionOptions {
  std::size_t max_refinement_passes = 8;
  std::uint64_t seed = 0x9a27;  ///< tie-breaking for the growth phase
};

/// Greedy growth + FM refinement.  Vertices that exceed every remaining
/// capacity stay kUnassignedPart (the caller decides what that means).
PartitionResult partition_graph(const PartitionProblem& p,
                                const PartitionOptions& opts = {});

}  // namespace edgerep
