// Full-instance serialization: a single text document holding the graph,
// placement sites, datasets, queries and the replica budget, so a problem
// instance can be archived next to experiment results and reloaded
// bit-exactly (delays and volumes round-trip at full precision).
//
// Format (line-oriented, '#' comments):
//   node <id> <role>
//   edge <u> <v> <delay>
//   site <id> <node> <capacity> <available> <proc_delay>
//   dataset <id> <volume> <origin|-> <name...>      (name = rest of line)
//   query <id> <home> <rate> <deadline> <n> (<dataset> <alpha>){n}
//   max_replicas <K>
#pragma once

#include <iosfwd>

#include "cloud/instance.h"

namespace edgerep {

/// Write a finalized (or at least consistent) instance.
void write_instance(std::ostream& os, const Instance& inst);

/// Parse and finalize.  Throws std::runtime_error on malformed input and
/// std::invalid_argument if the parsed instance fails finalize().
Instance read_instance(std::istream& is);

}  // namespace edgerep
