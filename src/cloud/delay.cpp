#include "cloud/delay.h"

#include <algorithm>

namespace edgerep {

double evaluation_delay(const Instance& inst, const Query& q,
                        const DatasetDemand& dd, SiteId site) {
  const Dataset& ds = inst.dataset(dd.dataset);
  const Site& s = inst.site(site);
  const double processing = ds.volume * s.proc_delay;
  const double transmission =
      dd.selectivity * ds.volume * inst.path_delay(site, q.home);
  return processing + transmission;
}

bool deadline_ok(const Instance& inst, const Query& q, const DatasetDemand& dd,
                 SiteId site) {
  return evaluation_delay(inst, q, dd, site) <= q.deadline;
}

double resource_demand(const Instance& inst, const Query& q,
                       const DatasetDemand& dd) {
  return inst.dataset(dd.dataset).volume * q.rate;
}

double best_possible_delay(const Instance& inst, const Query& q,
                           const DatasetDemand& dd) {
  // Hoist the per-demand constants; only proc_delay and the path vary per
  // site.  `sel_vol · path` keeps evaluation_delay's operation order, so the
  // per-site values are bit-identical to calling it directly.
  const Dataset& ds = inst.dataset(dd.dataset);
  const double vol = ds.volume;
  const double sel_vol = dd.selectivity * vol;
  double best = kInfDelay;
  for (const Site& s : inst.sites()) {
    best = std::min(best,
                    vol * s.proc_delay + sel_vol * inst.path_delay(s.id, q.home));
  }
  return best;
}

}  // namespace edgerep
