// Replica availability analysis (paper §2.3: replication exists "to make
// datasets in the two-tier edge cloud highly available, reliable and
// scalable").
//
// Model: every site fails independently with probability `site_failure_prob`
// (a failed site loses its replicas and its computing capacity).  An
// admitted query *survives* a failure scenario when every one of its demands
// still has at least one alive replica site that meets the query's deadline.
//
// Per-demand survival has a closed form, 1 − p^{|feasible replica sites|};
// per-query survival does not (demands share sites), so the joint figure is
// estimated by seeded Monte Carlo over site-failure scenarios, with the
// product of marginals reported as the independence approximation it is.
#pragma once

#include <cstdint>
#include <vector>

#include "cloud/plan.h"

namespace edgerep {

struct AvailabilityConfig {
  double site_failure_prob = 0.05;  ///< i.i.d. per site, in [0, 1]
  std::size_t trials = 20000;       ///< Monte Carlo scenarios
  std::uint64_t seed = 0xa1b2;
};

struct QueryAvailability {
  QueryId query = 0;
  bool admitted = false;
  /// Monte Carlo estimate of P(all demands still servable).
  double survival = 0.0;
  /// Product of exact per-demand marginals (exact when demands share no
  /// sites; an approximation otherwise).
  double marginal_product = 0.0;
  /// Smallest per-demand marginal (the query's weakest link).
  double weakest_demand = 0.0;
};

struct AvailabilityReport {
  std::vector<QueryAvailability> per_query;  ///< one entry per admitted query
  double mean_survival = 0.0;  ///< over admitted queries
  double min_survival = 1.0;
  /// Expected admitted volume surviving a random failure scenario.
  double expected_surviving_volume = 0.0;
};

/// Analyze the availability of `plan`'s admitted queries.  Throws
/// std::invalid_argument for probabilities outside [0, 1] or zero trials.
AvailabilityReport analyze_availability(const ReplicaPlan& plan,
                                        const AvailabilityConfig& cfg = {});

/// Exact per-demand survival: 1 − p^k where k is the number of alive-able
/// replica sites meeting the deadline for this (query, demand).
double demand_survival(const ReplicaPlan& plan, const Query& q,
                       const DatasetDemand& dd, double site_failure_prob);

/// Harden a plan for availability: for every admitted query's demand with
/// fewer than `min_servable` deadline-feasible replica sites, place extra
/// replicas at additional feasible sites (spreading across distinct sites,
/// budget K permitting).  Admissions and assignments are untouched — only
/// x_{nl} grows — so the plan stays valid and its admitted volume is
/// unchanged while survival can only improve.  Returns replicas added.
std::size_t harden_plan(ReplicaPlan& plan, std::size_t min_servable);

}  // namespace edgerep
