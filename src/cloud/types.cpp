#include "cloud/types.h"

// Currently header-only; this TU anchors the library target and is the home
// for any future out-of-line members of the domain types.
