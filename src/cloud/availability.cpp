#include "cloud/availability.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cloud/delay.h"
#include "util/rng.h"

namespace edgerep {

namespace {

/// Replica sites of (q, dd) that meet the deadline — the sites whose
/// survival keeps the demand servable.
std::vector<SiteId> servable_sites(const ReplicaPlan& plan, const Query& q,
                                   const DatasetDemand& dd) {
  const Instance& inst = plan.instance();
  std::vector<SiteId> sites;
  for (const SiteId l : plan.replica_sites(dd.dataset)) {
    if (deadline_ok(inst, q, dd, l)) sites.push_back(l);
  }
  return sites;
}

}  // namespace

double demand_survival(const ReplicaPlan& plan, const Query& q,
                       const DatasetDemand& dd, double site_failure_prob) {
  const std::size_t k = servable_sites(plan, q, dd).size();
  if (k == 0) return 0.0;
  return 1.0 - std::pow(site_failure_prob, static_cast<double>(k));
}

std::size_t harden_plan(ReplicaPlan& plan, std::size_t min_servable) {
  const Instance& inst = plan.instance();
  std::size_t added = 0;
  for (const Query& q : inst.queries()) {
    if (!plan.admitted(q.id)) continue;
    for (const DatasetDemand& dd : q.demands) {
      std::size_t servable = servable_sites(plan, q, dd).size();
      if (servable >= min_servable) continue;
      // Feasible sites without a replica, most residual capacity first so
      // the backup could actually absorb failed-over load.
      std::vector<SiteId> candidates;
      for (const Site& s : inst.sites()) {
        if (plan.has_replica(dd.dataset, s.id)) continue;
        if (deadline_ok(inst, q, dd, s.id)) candidates.push_back(s.id);
      }
      std::stable_sort(candidates.begin(), candidates.end(),
                       [&](SiteId a, SiteId b) {
                         return plan.residual(a) > plan.residual(b);
                       });
      for (const SiteId l : candidates) {
        if (servable >= min_servable) break;
        if (plan.replica_count(dd.dataset) >= inst.max_replicas()) break;
        plan.place_replica(dd.dataset, l);
        ++added;
        ++servable;
      }
    }
  }
  return added;
}

AvailabilityReport analyze_availability(const ReplicaPlan& plan,
                                        const AvailabilityConfig& cfg) {
  if (cfg.site_failure_prob < 0.0 || cfg.site_failure_prob > 1.0) {
    throw std::invalid_argument("availability: probability out of [0, 1]");
  }
  if (cfg.trials == 0) {
    throw std::invalid_argument("availability: need at least one trial");
  }
  const Instance& inst = plan.instance();
  AvailabilityReport rep;

  // Collect admitted queries and their per-demand servable site sets once.
  struct Entry {
    QueryId query;
    double volume;
    std::vector<std::vector<SiteId>> demand_sites;
  };
  std::vector<Entry> entries;
  for (const Query& q : inst.queries()) {
    if (!plan.admitted(q.id)) continue;
    Entry e;
    e.query = q.id;
    e.volume = inst.demanded_volume(q.id);
    for (const DatasetDemand& dd : q.demands) {
      e.demand_sites.push_back(servable_sites(plan, q, dd));
    }
    entries.push_back(std::move(e));
  }
  if (entries.empty()) return rep;

  // Monte Carlo over failure scenarios.
  Rng rng(cfg.seed);
  std::vector<char> alive(inst.sites().size(), 1);
  std::vector<std::size_t> survived(entries.size(), 0);
  double surviving_volume = 0.0;
  for (std::size_t t = 0; t < cfg.trials; ++t) {
    for (std::size_t l = 0; l < alive.size(); ++l) {
      alive[l] = rng.bernoulli(cfg.site_failure_prob) ? 0 : 1;
    }
    for (std::size_t i = 0; i < entries.size(); ++i) {
      bool ok = true;
      for (const auto& sites : entries[i].demand_sites) {
        bool any_alive = false;
        for (const SiteId l : sites) {
          if (alive[l]) {
            any_alive = true;
            break;
          }
        }
        if (!any_alive) {
          ok = false;
          break;
        }
      }
      if (ok) {
        ++survived[i];
        surviving_volume += entries[i].volume;
      }
    }
  }

  const double trials = static_cast<double>(cfg.trials);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Query& q = inst.query(entries[i].query);
    QueryAvailability qa;
    qa.query = entries[i].query;
    qa.admitted = true;
    qa.survival = static_cast<double>(survived[i]) / trials;
    qa.marginal_product = 1.0;
    qa.weakest_demand = 1.0;
    for (const DatasetDemand& dd : q.demands) {
      const double m = demand_survival(plan, q, dd, cfg.site_failure_prob);
      qa.marginal_product *= m;
      qa.weakest_demand = std::min(qa.weakest_demand, m);
    }
    rep.mean_survival += qa.survival;
    rep.min_survival = std::min(rep.min_survival, qa.survival);
    rep.per_query.push_back(qa);
  }
  rep.mean_survival /= static_cast<double>(entries.size());
  rep.expected_surviving_volume = surviving_volume / trials;
  return rep;
}

}  // namespace edgerep
