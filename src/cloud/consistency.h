// Data-consistency maintenance for replicated datasets (paper §2.4).
//
// The paper handles dynamic data with a threshold rule: "we set a threshold,
// which is a ratio of the volume of new generated data to the volume of
// original data ...  When the ratio of the volume of new generated data
// achieves the threshold, an update operation is made between the original
// data and its replicas to keep data consistent in the whole network."
//
// This module quantifies what that rule costs for a given replica plan:
// given per-dataset growth rates, it derives the update cadence, the update
// traffic shipped from each dataset's origin to its replicas along
// minimum-delay paths, the average replica staleness, and a *net benefit*
// score (admitted volume minus weighted consistency cost).  The intro's
// claim that "more replicas will [not necessarily] lead to better system
// performance, due to ... the cost of data consistency" becomes measurable —
// the ABL-CONSISTENCY bench sweeps K against this trade-off.
#pragma once

#include <vector>

#include "cloud/plan.h"

namespace edgerep {

/// How fast each dataset accumulates new data.
struct GrowthModel {
  /// GB of new data per hour, indexed by DatasetId.
  std::vector<double> growth_gb_per_hour;

  /// Uniform growth for every dataset of the instance.
  static GrowthModel uniform(const Instance& inst, double gb_per_hour);
  /// Growth proportional to dataset volume (busier services grow faster).
  static GrowthModel proportional(const Instance& inst,
                                  double fraction_per_hour);
};

struct ConsistencyConfig {
  /// Update threshold: replicas are refreshed when new data reaches
  /// `threshold` × |S_n| (paper §2.4).  Must be in (0, 1].
  double threshold = 0.1;
  /// Weight converting update *transfer cost* (GB·s/GB summed over paths)
  /// into the same units as admitted volume for the net-benefit score.
  double cost_weight = 1.0;
};

/// Per-dataset consistency figures.
struct DatasetConsistency {
  DatasetId dataset = 0;
  std::size_t replicas = 0;
  double update_interval_hours = 0.0;  ///< ∞ encoded as 0 when growth is 0
  double delta_gb = 0.0;               ///< data shipped per update per replica
  double traffic_gb_per_hour = 0.0;    ///< total across replicas
  double transfer_cost_per_hour = 0.0; ///< traffic weighted by path delay
  double mean_staleness_gb = 0.0;      ///< average replica lag (Δ/2)
};

struct ConsistencyReport {
  std::vector<DatasetConsistency> per_dataset;
  double total_traffic_gb_per_hour = 0.0;
  double total_transfer_cost_per_hour = 0.0;
  double mean_staleness_gb = 0.0;  ///< volume-weighted over datasets
  /// evaluate(plan).admitted_volume − cost_weight × total_transfer_cost.
  double net_benefit = 0.0;
};

/// Analyze the consistency cost of `plan` under `growth`.  Replicas at a
/// dataset's own origin cost nothing.  Throws std::invalid_argument when
/// growth rates are missing or the threshold is out of range.
ConsistencyReport analyze_consistency(const ReplicaPlan& plan,
                                      const GrowthModel& growth,
                                      const ConsistencyConfig& cfg = {});

/// One scheduled replica refresh.
struct UpdateEvent {
  double time_hours = 0.0;
  DatasetId dataset = 0;
  SiteId from = kInvalidSite;  ///< origin
  SiteId to = kInvalidSite;    ///< replica being refreshed
  double delta_gb = 0.0;
};

/// Expand the threshold rule into a concrete update schedule over
/// [0, horizon_hours), ordered by time (ties by dataset, then site).
std::vector<UpdateEvent> schedule_updates(const ReplicaPlan& plan,
                                          const GrowthModel& growth,
                                          const ConsistencyConfig& cfg,
                                          double horizon_hours);

}  // namespace edgerep
