// Solution representation shared by every algorithm: which sites hold a
// replica of each dataset (x_{nl}) and which site evaluates each
// (query, demand) pair (π_{ml}), plus a capacity ledger.
//
// `validate` independently re-checks every ILP constraint — capacity (2),
// assignment-needs-replica (3), deadline (4) and replica budget (5) — so
// tests can certify any algorithm's output without trusting its bookkeeping.
//
// Plans also support copy-free transactions via an append-only undo log:
// `savepoint()` marks a point, mutations made while any savepoint is live
// are journaled, and `rollback_to()` replays the journal backwards.  Undo
// entries store the *previous* ledger value rather than re-deriving it, so
// rollback restores loads bit-exactly (no `x += a; x -= a` drift), and
// replica-list positions are journaled so site orderings are restored
// exactly too — a rolled-back plan is indistinguishable from a copy that
// was thrown away.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cloud/delay.h"
#include "cloud/instance.h"

namespace edgerep {

/// Slack for floating-point capacity comparisons.  Shared with the pricing
/// kernel so its feasibility mask reproduces `ReplicaPlan::fits` bit-exactly.
inline constexpr double kCapacityEps = 1e-9;

class ReplicaPlan {
 public:
  /// The instance must already be finalized and must outlive the plan.
  explicit ReplicaPlan(const Instance& inst);

  /// --- replicas (x_{nl}) ----------------------------------------------
  /// Place a replica of dataset n at site s.  Idempotent; throws when the
  /// replica budget K would be exceeded.
  void place_replica(DatasetId n, SiteId s);
  /// Remove an *unused* replica (frees budget for re-placement, e.g. during
  /// local search).  Throws if any assignment still evaluates n at s.
  void remove_replica(DatasetId n, SiteId s);
  [[nodiscard]] bool has_replica(DatasetId n, SiteId s) const;
  [[nodiscard]] std::size_t replica_count(DatasetId n) const;
  [[nodiscard]] const std::vector<SiteId>& replica_sites(DatasetId n) const;

  /// --- assignments (π_{ml}) -------------------------------------------
  /// Assign query m's demand on dataset n to site s.  Requires a replica at
  /// s and enough residual capacity; debits the ledger.  Throws on violation
  /// (algorithms are expected to check feasibility first).
  void assign(QueryId m, DatasetId n, SiteId s);
  /// Undo an assignment, crediting the ledger.  Throws when not assigned.
  void unassign(QueryId m, DatasetId n);
  /// Site evaluating (m, n), if assigned.
  [[nodiscard]] std::optional<SiteId> assignment(QueryId m, DatasetId n) const;
  /// Number of assigned demands of query m.
  [[nodiscard]] std::size_t assigned_demands(QueryId m) const;
  /// True when every demand of m is assigned (the query is fully admitted).
  [[nodiscard]] bool admitted(QueryId m) const;

  /// --- ledger ----------------------------------------------------------
  /// Resource already committed at site s by this plan.
  [[nodiscard]] double load(SiteId s) const;
  /// A(v_l) minus committed load.
  [[nodiscard]] double residual(SiteId s) const;
  /// Can `amount` more resource fit at s (with a small epsilon slack)?
  [[nodiscard]] bool fits(SiteId s, double amount) const;
  /// The whole committed-load ledger, indexed by site.  Read-only view for
  /// the pricing kernel's feasibility gathers and the shard engines'
  /// epoch-start snapshots.
  [[nodiscard]] std::span<const double> loads() const noexcept {
    return load_;
  }

  /// --- transactions -----------------------------------------------------
  /// Opaque marker into the undo log.  Savepoints nest: roll back to an
  /// inner one first, then to an outer one.
  using Savepoint = std::size_t;
  /// Start (or continue) journaling mutations; returns the current log mark.
  Savepoint savepoint();
  /// Undo every mutation made after `sp`, restoring replica lists (including
  /// element order), assignments, and the ledger bit-exactly.  Throws when
  /// `sp` is ahead of the log (e.g. already committed past it).
  void rollback_to(Savepoint sp);
  /// Accept all journaled mutations and stop journaling.  Invalidates every
  /// outstanding savepoint; call once the transaction scope is decided.
  void commit() noexcept;
  /// Journaled-but-uncommitted mutation count (0 when not in a transaction).
  [[nodiscard]] std::size_t undo_log_size() const noexcept {
    return undo_log_.size();
  }

  [[nodiscard]] const Instance& instance() const noexcept { return *inst_; }
  [[nodiscard]] std::size_t total_replicas() const noexcept;

 private:
  struct UndoEntry {
    enum class Op : std::uint8_t {
      kPlaceReplica,   ///< undo: pop the site appended to replicas_[dataset]
      kRemoveReplica,  ///< undo: re-insert site at `index` in replicas_[dataset]
      kAssign,         ///< undo: clear demand slot, restore prev_load
      kUnassign,       ///< undo: re-set demand slot to site, restore prev_load
    };
    Op op;
    DatasetId dataset = 0;
    SiteId site = kInvalidSite;
    QueryId query = 0;
    std::uint32_t index = 0;  ///< demand index (assign) or replica slot (remove)
    double prev_load = 0.0;   ///< load_[site] before the mutation
  };

  const Instance* inst_;
  std::vector<std::vector<SiteId>> replicas_;          // per dataset
  std::vector<std::vector<SiteId>> demand_sites_;      // per query, per demand index
  std::vector<double> load_;                           // per site
  std::vector<UndoEntry> undo_log_;
  bool journaling_ = false;
};

/// Aggregate quality metrics of a plan (the paper's two reported series).
struct PlanMetrics {
  /// Objective (1): Σ over admitted queries of their demanded volume (GB).
  double admitted_volume = 0.0;
  /// Volume over *assigned demands* only (partial credit; Appro-G's N').
  double assigned_volume = 0.0;
  std::size_t admitted_queries = 0;
  std::size_t total_queries = 0;
  /// System throughput: admitted / total (paper §4.2).
  double throughput = 0.0;
  std::size_t replicas_placed = 0;
  /// Fraction of total available computing resource committed.
  double utilization = 0.0;
};

PlanMetrics evaluate(const ReplicaPlan& plan);

/// Independent constraint re-check; `violations` lists each broken
/// constraint in human-readable form.
struct ValidationResult {
  bool ok = true;
  std::vector<std::string> violations;
};

ValidationResult validate(const ReplicaPlan& plan);

}  // namespace edgerep
