#include "cloud/consistency.h"

#include <algorithm>
#include <stdexcept>

namespace edgerep {

GrowthModel GrowthModel::uniform(const Instance& inst, double gb_per_hour) {
  GrowthModel g;
  g.growth_gb_per_hour.assign(inst.datasets().size(), gb_per_hour);
  return g;
}

GrowthModel GrowthModel::proportional(const Instance& inst,
                                      double fraction_per_hour) {
  GrowthModel g;
  g.growth_gb_per_hour.reserve(inst.datasets().size());
  for (const Dataset& d : inst.datasets()) {
    g.growth_gb_per_hour.push_back(fraction_per_hour * d.volume);
  }
  return g;
}

namespace {

void check(const ReplicaPlan& plan, const GrowthModel& growth,
           const ConsistencyConfig& cfg) {
  if (growth.growth_gb_per_hour.size() !=
      plan.instance().datasets().size()) {
    throw std::invalid_argument("consistency: growth model size mismatch");
  }
  if (cfg.threshold <= 0.0 || cfg.threshold > 1.0) {
    throw std::invalid_argument("consistency: threshold must be in (0, 1]");
  }
  for (const double g : growth.growth_gb_per_hour) {
    if (g < 0.0) {
      throw std::invalid_argument("consistency: negative growth rate");
    }
  }
}

}  // namespace

ConsistencyReport analyze_consistency(const ReplicaPlan& plan,
                                      const GrowthModel& growth,
                                      const ConsistencyConfig& cfg) {
  check(plan, growth, cfg);
  const Instance& inst = plan.instance();
  ConsistencyReport rep;
  double staleness_weight = 0.0;
  for (const Dataset& d : inst.datasets()) {
    DatasetConsistency dc;
    dc.dataset = d.id;
    const double g = growth.growth_gb_per_hour[d.id];
    dc.delta_gb = cfg.threshold * d.volume;
    // Replicas co-located with the origin need no refresh traffic.
    double path_cost = 0.0;  // Σ over remote replicas of dt(origin → replica)
    for (const SiteId l : plan.replica_sites(d.id)) {
      if (d.origin != kInvalidSite && l != d.origin) {
        path_cost += inst.path_delay(d.origin, l);
        ++dc.replicas;
      } else if (d.origin == kInvalidSite) {
        ++dc.replicas;
      }
    }
    if (g > 0.0 && dc.replicas > 0) {
      dc.update_interval_hours = dc.delta_gb / g;
      // Each update ships Δ to every remote replica: traffic rate is
      // growth × replica count, independent of the threshold (the threshold
      // trades burst size against freshness, not total traffic).
      dc.traffic_gb_per_hour = g * static_cast<double>(dc.replicas);
      dc.transfer_cost_per_hour = g * path_cost;
      dc.mean_staleness_gb = 0.5 * dc.delta_gb;
    }
    rep.total_traffic_gb_per_hour += dc.traffic_gb_per_hour;
    rep.total_transfer_cost_per_hour += dc.transfer_cost_per_hour;
    if (dc.replicas > 0) {
      rep.mean_staleness_gb += dc.mean_staleness_gb * d.volume;
      staleness_weight += d.volume;
    }
    rep.per_dataset.push_back(dc);
  }
  if (staleness_weight > 0.0) rep.mean_staleness_gb /= staleness_weight;
  rep.net_benefit = evaluate(plan).admitted_volume -
                    cfg.cost_weight * rep.total_transfer_cost_per_hour;
  return rep;
}

std::vector<UpdateEvent> schedule_updates(const ReplicaPlan& plan,
                                          const GrowthModel& growth,
                                          const ConsistencyConfig& cfg,
                                          double horizon_hours) {
  check(plan, growth, cfg);
  if (horizon_hours < 0.0) {
    throw std::invalid_argument("consistency: negative horizon");
  }
  const Instance& inst = plan.instance();
  std::vector<UpdateEvent> events;
  for (const Dataset& d : inst.datasets()) {
    const double g = growth.growth_gb_per_hour[d.id];
    if (g <= 0.0) continue;
    const double delta = cfg.threshold * d.volume;
    const double interval = delta / g;
    for (double t = interval; t < horizon_hours; t += interval) {
      for (const SiteId l : plan.replica_sites(d.id)) {
        if (l == d.origin) continue;
        events.push_back(UpdateEvent{t, d.id, d.origin, l, delta});
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const UpdateEvent& a, const UpdateEvent& b) {
              if (a.time_hours != b.time_hours) {
                return a.time_hours < b.time_hours;
              }
              if (a.dataset != b.dataset) return a.dataset < b.dataset;
              return a.to < b.to;
            });
  return events;
}

}  // namespace edgerep
