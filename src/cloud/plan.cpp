#include "cloud/plan.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace edgerep {

namespace {

/// Index of dataset n inside query m's demand list, or npos.
std::size_t demand_index(const Query& q, DatasetId n) {
  for (std::size_t i = 0; i < q.demands.size(); ++i) {
    if (q.demands[i].dataset == n) return i;
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace

ReplicaPlan::ReplicaPlan(const Instance& inst) : inst_(&inst) {
  if (!inst.finalized()) {
    throw std::invalid_argument("ReplicaPlan: instance not finalized");
  }
  replicas_.resize(inst.datasets().size());
  demand_sites_.resize(inst.queries().size());
  for (const Query& q : inst.queries()) {
    demand_sites_[q.id].assign(q.demands.size(), kInvalidSite);
  }
  load_.assign(inst.sites().size(), 0.0);
}

void ReplicaPlan::place_replica(DatasetId n, SiteId s) {
  auto& sites = replicas_.at(n);
  if (std::find(sites.begin(), sites.end(), s) != sites.end()) return;
  if (sites.size() >= inst_->max_replicas()) {
    throw std::runtime_error("place_replica: replica budget K exhausted");
  }
  if (s >= inst_->sites().size()) {
    throw std::invalid_argument("place_replica: site out of range");
  }
  sites.push_back(s);
  if (journaling_) {
    undo_log_.push_back({UndoEntry::Op::kPlaceReplica, n, s, 0, 0, 0.0});
  }
}

void ReplicaPlan::remove_replica(DatasetId n, SiteId s) {
  auto& sites = replicas_.at(n);
  const auto it = std::find(sites.begin(), sites.end(), s);
  if (it == sites.end()) {
    throw std::runtime_error("remove_replica: no replica at site");
  }
  for (const Query& q : inst_->queries()) {
    if (!q.demands_dataset(n)) continue;
    const auto a = assignment(q.id, n);
    if (a && *a == s) {
      throw std::runtime_error("remove_replica: replica still in use");
    }
  }
  if (journaling_) {
    const auto slot = static_cast<std::uint32_t>(it - sites.begin());
    undo_log_.push_back({UndoEntry::Op::kRemoveReplica, n, s, 0, slot, 0.0});
  }
  sites.erase(it);
}

bool ReplicaPlan::has_replica(DatasetId n, SiteId s) const {
  const auto& sites = replicas_.at(n);
  return std::find(sites.begin(), sites.end(), s) != sites.end();
}

std::size_t ReplicaPlan::replica_count(DatasetId n) const {
  return replicas_.at(n).size();
}

const std::vector<SiteId>& ReplicaPlan::replica_sites(DatasetId n) const {
  return replicas_.at(n);
}

void ReplicaPlan::assign(QueryId m, DatasetId n, SiteId s) {
  const Query& q = inst_->query(m);
  const std::size_t di = demand_index(q, n);
  if (di == static_cast<std::size_t>(-1)) {
    throw std::invalid_argument("assign: query does not demand this dataset");
  }
  if (demand_sites_.at(m)[di] != kInvalidSite) {
    throw std::runtime_error("assign: demand already assigned");
  }
  if (!has_replica(n, s)) {
    throw std::runtime_error("assign: no replica at target site");
  }
  const double need = resource_demand(*inst_, q, q.demands[di]);
  if (!fits(s, need)) {
    throw std::runtime_error("assign: insufficient residual capacity");
  }
  if (journaling_) {
    undo_log_.push_back({UndoEntry::Op::kAssign, n, s, m,
                         static_cast<std::uint32_t>(di), load_[s]});
  }
  demand_sites_[m][di] = s;
  load_[s] += need;
}

void ReplicaPlan::unassign(QueryId m, DatasetId n) {
  const Query& q = inst_->query(m);
  const std::size_t di = demand_index(q, n);
  if (di == static_cast<std::size_t>(-1) ||
      demand_sites_.at(m)[di] == kInvalidSite) {
    throw std::runtime_error("unassign: demand is not assigned");
  }
  const SiteId s = demand_sites_[m][di];
  if (journaling_) {
    undo_log_.push_back({UndoEntry::Op::kUnassign, n, s, m,
                         static_cast<std::uint32_t>(di), load_[s]});
  }
  load_[s] -= resource_demand(*inst_, q, q.demands[di]);
  demand_sites_[m][di] = kInvalidSite;
}

ReplicaPlan::Savepoint ReplicaPlan::savepoint() {
  journaling_ = true;
  return undo_log_.size();
}

void ReplicaPlan::rollback_to(Savepoint sp) {
  if (sp > undo_log_.size()) {
    throw std::invalid_argument("rollback_to: savepoint ahead of undo log");
  }
  // LIFO replay: when entry k is undone every later entry already is, so the
  // plan is in exactly the state right after mutation k — a placed replica
  // is the last element of its list and a removed one re-inserts at its
  // journaled slot.
  while (undo_log_.size() > sp) {
    const UndoEntry& e = undo_log_.back();
    switch (e.op) {
      case UndoEntry::Op::kPlaceReplica:
        replicas_[e.dataset].pop_back();
        break;
      case UndoEntry::Op::kRemoveReplica: {
        auto& sites = replicas_[e.dataset];
        sites.insert(sites.begin() + e.index, e.site);
        break;
      }
      case UndoEntry::Op::kAssign:
        demand_sites_[e.query][e.index] = kInvalidSite;
        load_[e.site] = e.prev_load;
        break;
      case UndoEntry::Op::kUnassign:
        demand_sites_[e.query][e.index] = e.site;
        load_[e.site] = e.prev_load;
        break;
    }
    undo_log_.pop_back();
  }
}

void ReplicaPlan::commit() noexcept {
  undo_log_.clear();
  journaling_ = false;
}

std::optional<SiteId> ReplicaPlan::assignment(QueryId m, DatasetId n) const {
  const Query& q = inst_->query(m);
  const std::size_t di = demand_index(q, n);
  if (di == static_cast<std::size_t>(-1)) return std::nullopt;
  const SiteId s = demand_sites_.at(m)[di];
  return s == kInvalidSite ? std::nullopt : std::optional<SiteId>(s);
}

std::size_t ReplicaPlan::assigned_demands(QueryId m) const {
  const auto& sites = demand_sites_.at(m);
  return static_cast<std::size_t>(
      std::count_if(sites.begin(), sites.end(),
                    [](SiteId s) { return s != kInvalidSite; }));
}

bool ReplicaPlan::admitted(QueryId m) const {
  const auto& sites = demand_sites_.at(m);
  return !sites.empty() &&
         std::all_of(sites.begin(), sites.end(),
                     [](SiteId s) { return s != kInvalidSite; });
}

double ReplicaPlan::load(SiteId s) const { return load_.at(s); }

double ReplicaPlan::residual(SiteId s) const {
  return inst_->site(s).available - load_.at(s);
}

bool ReplicaPlan::fits(SiteId s, double amount) const {
  return amount <= residual(s) + kCapacityEps;
}

std::size_t ReplicaPlan::total_replicas() const noexcept {
  std::size_t total = 0;
  for (const auto& r : replicas_) total += r.size();
  return total;
}

PlanMetrics evaluate(const ReplicaPlan& plan) {
  const Instance& inst = plan.instance();
  PlanMetrics pm;
  pm.total_queries = inst.queries().size();
  for (const Query& q : inst.queries()) {
    double assigned = 0.0;
    for (const DatasetDemand& dd : q.demands) {
      if (plan.assignment(q.id, dd.dataset)) {
        assigned += inst.dataset(dd.dataset).volume;
      }
    }
    pm.assigned_volume += assigned;
    if (plan.admitted(q.id)) {
      ++pm.admitted_queries;
      pm.admitted_volume += inst.demanded_volume(q.id);
    }
  }
  pm.throughput = pm.total_queries
                      ? static_cast<double>(pm.admitted_queries) /
                            static_cast<double>(pm.total_queries)
                      : 0.0;
  pm.replicas_placed = plan.total_replicas();
  double avail = 0.0;
  double used = 0.0;
  for (const Site& s : inst.sites()) {
    avail += s.available;
    used += plan.load(s.id);
  }
  pm.utilization = avail > 0.0 ? used / avail : 0.0;
  return pm;
}

ValidationResult validate(const ReplicaPlan& plan) {
  const Instance& inst = plan.instance();
  ValidationResult vr;
  auto violation = [&vr](const std::string& msg) {
    vr.ok = false;
    vr.violations.push_back(msg);
  };

  // Constraint (5): replica budget per dataset.
  for (const Dataset& ds : inst.datasets()) {
    if (plan.replica_count(ds.id) > inst.max_replicas()) {
      std::ostringstream os;
      os << "dataset " << ds.id << " has " << plan.replica_count(ds.id)
         << " replicas > K=" << inst.max_replicas();
      violation(os.str());
    }
  }

  // Constraints (2)–(4), rebuilt from scratch per site/demand.
  std::vector<double> load(inst.sites().size(), 0.0);
  for (const Query& q : inst.queries()) {
    for (const DatasetDemand& dd : q.demands) {
      const auto site = plan.assignment(q.id, dd.dataset);
      if (!site) continue;
      // (3): assignment requires a replica.
      if (!plan.has_replica(dd.dataset, *site)) {
        std::ostringstream os;
        os << "query " << q.id << " dataset " << dd.dataset
           << " assigned to site " << *site << " without a replica";
        violation(os.str());
      }
      // (4): deadline.
      const double delay = evaluation_delay(inst, q, dd, *site);
      if (delay > q.deadline + 1e-9) {
        std::ostringstream os;
        os << "query " << q.id << " dataset " << dd.dataset << " at site "
           << *site << " misses deadline: " << delay << " > " << q.deadline;
        violation(os.str());
      }
      load[*site] += resource_demand(inst, q, dd);
    }
  }
  for (const Site& s : inst.sites()) {
    // (2): capacity.
    if (load[s.id] > s.available + 1e-6) {
      std::ostringstream os;
      os << "site " << s.id << " overloaded: " << load[s.id] << " > "
         << s.available;
      violation(os.str());
    }
    // The plan's own ledger must agree with the rebuilt load.
    if (std::abs(load[s.id] - plan.load(s.id)) > 1e-6) {
      std::ostringstream os;
      os << "site " << s.id << " ledger drift: ledger=" << plan.load(s.id)
         << " recomputed=" << load[s.id];
      violation(os.str());
    }
  }
  return vr;
}

}  // namespace edgerep
