#include "cloud/plan_io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace edgerep {

void write_plan(std::ostream& os, const ReplicaPlan& plan) {
  const Instance& inst = plan.instance();
  os << "# edgerep plan: " << plan.total_replicas() << " replicas\n";
  for (const Dataset& d : inst.datasets()) {
    for (const SiteId l : plan.replica_sites(d.id)) {
      os << "replica " << d.id << ' ' << l << '\n';
    }
  }
  for (const Query& q : inst.queries()) {
    for (const DatasetDemand& dd : q.demands) {
      const auto site = plan.assignment(q.id, dd.dataset);
      if (site) {
        os << "assign " << q.id << ' ' << dd.dataset << ' ' << *site << '\n';
      }
    }
  }
}

ReplicaPlan read_plan(const Instance& inst, std::istream& is) {
  ReplicaPlan plan(inst);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string kind;
    ss >> kind;
    auto fail = [&](const std::string& why) -> void {
      throw std::runtime_error("read_plan: line " + std::to_string(lineno) +
                               ": " + why);
    };
    if (kind == "replica") {
      std::uint64_t n = 0;
      std::uint64_t l = 0;
      if (!(ss >> n >> l)) fail("malformed replica line");
      if (n >= inst.datasets().size()) fail("dataset out of range");
      plan.place_replica(static_cast<DatasetId>(n), static_cast<SiteId>(l));
    } else if (kind == "assign") {
      std::uint64_t m = 0;
      std::uint64_t n = 0;
      std::uint64_t l = 0;
      if (!(ss >> m >> n >> l)) fail("malformed assign line");
      if (m >= inst.queries().size()) fail("query out of range");
      plan.assign(static_cast<QueryId>(m), static_cast<DatasetId>(n),
                  static_cast<SiteId>(l));
    } else {
      fail("unknown keyword '" + kind + "'");
    }
  }
  return plan;
}

}  // namespace edgerep
