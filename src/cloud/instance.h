// A complete problem instance: topology + placement sites + datasets +
// queries + the replica budget K.  Instances are built incrementally and
// then `finalize()`d, which validates cross-references, seals the graph
// into its CSR form, and precomputes the minimum-delay rows used by the
// delay model.
//
// The delay model only ever asks for delays *from placement sites* (the
// nodes that may evaluate queries) *to query homes* (also sites), so the
// default backend stores one Dijkstra row per site — |V|·n entries instead
// of the dense n×n all-pairs matrix.  The dense matrix survives behind
// DelayBackend::kDense as the equivalence oracle.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "cloud/types.h"
#include "net/graph.h"
#include "net/shortest_path.h"

namespace edgerep {

/// Which precomputed structure backs Instance::path_delay().
enum class DelayBackend : std::uint8_t {
  kSiteRows,  ///< default: one Dijkstra row per placement site (|V|·n entries)
  kDense,     ///< full n×n DelayMatrix — equivalence oracle / diagnostics
};

class Instance {
 public:
  Instance() = default;
  explicit Instance(Graph graph) : graph_(std::move(graph)) {}

  /// --- construction ---------------------------------------------------
  Graph& graph() noexcept { return graph_; }

  /// Register a placement site on graph node `node`.  Returns its SiteId.
  SiteId add_site(NodeId node, double capacity, double proc_delay);
  /// Shrink available resource of a site (models pre-existing load).
  void set_available(SiteId s, double available);

  DatasetId add_dataset(double volume, SiteId origin, std::string name = {});
  QueryId add_query(SiteId home, double rate, double deadline,
                    std::vector<DatasetDemand> demands);

  void set_max_replicas(std::size_t k) { max_replicas_ = k; }

  /// Choose the delay precompute (default kSiteRows).  Switching after
  /// finalize() un-finalizes the instance; call finalize() again to rebuild
  /// the chosen structure.  kDense is the bit-for-bit equivalence oracle.
  void set_delay_backend(DelayBackend backend) noexcept {
    if (backend != backend_) {
      backend_ = backend;
      finalized_ = false;
    }
  }
  [[nodiscard]] DelayBackend delay_backend() const noexcept { return backend_; }

  /// Validate cross-references, seal the graph (CSR adjacency), and compute
  /// the delay rows for the selected backend.  Throws std::invalid_argument
  /// on inconsistency.  Must be called before the query API below;
  /// idempotent.
  void finalize();

  /// --- queries (require finalize()) ------------------------------------
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }
  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] std::span<const Site> sites() const noexcept { return sites_; }
  [[nodiscard]] std::span<const Dataset> datasets() const noexcept {
    return datasets_;
  }
  [[nodiscard]] std::span<const Query> queries() const noexcept {
    return queries_;
  }
  [[nodiscard]] const Site& site(SiteId s) const { return sites_.at(s); }
  [[nodiscard]] const Dataset& dataset(DatasetId n) const {
    return datasets_.at(n);
  }
  [[nodiscard]] const Query& query(QueryId m) const { return queries_.at(m); }
  [[nodiscard]] std::size_t max_replicas() const noexcept {
    return max_replicas_;
  }

  /// Minimum path delay per unit data between two sites' graph nodes.
  /// Hot path: unchecked indexing with debug asserts (requires finalize()).
  [[nodiscard]] double path_delay(SiteId from, SiteId to) const {
    assert(finalized_);
    assert(from < sites_.size() && to < sites_.size());
    const NodeId dst = sites_[to].node;
    if (backend_ == DelayBackend::kDense) {
      return dense_delays_.at(sites_[from].node, dst);
    }
    return site_delays_.at(from, dst);
  }

  /// The site-rows table (row r = delays from site r's node).  Empty under
  /// DelayBackend::kDense.
  [[nodiscard]] const DelayTable& site_delays() const noexcept {
    return site_delays_;
  }

  /// Total volume demanded by a query: Σ_{S_n ∈ S(q_m)} |S_n|.
  [[nodiscard]] double demanded_volume(QueryId m) const;

  /// Sum of demanded volume over all queries (the objective's upper bound).
  [[nodiscard]] double total_demanded_volume() const;

  /// Site whose graph node is `node`, or kInvalidSite.
  [[nodiscard]] SiteId site_of_node(NodeId node) const;

 private:
  Graph graph_;
  std::vector<Site> sites_;
  std::vector<Dataset> datasets_;
  std::vector<Query> queries_;
  std::size_t max_replicas_ = 3;
  DelayBackend backend_ = DelayBackend::kSiteRows;
  DelayTable site_delays_;     ///< kSiteRows: one row per site
  DelayMatrix dense_delays_;   ///< kDense oracle: n×n, empty otherwise
  std::vector<SiteId> node_to_site_;
  bool finalized_ = false;
};

}  // namespace edgerep
