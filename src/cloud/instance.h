// A complete problem instance: topology + placement sites + datasets +
// queries + the replica budget K.  Instances are built incrementally and
// then `finalize()`d, which validates cross-references and precomputes the
// all-pairs minimum-delay matrix used by the delay model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cloud/types.h"
#include "net/graph.h"
#include "net/shortest_path.h"

namespace edgerep {

class Instance {
 public:
  Instance() = default;
  explicit Instance(Graph graph) : graph_(std::move(graph)) {}

  /// --- construction ---------------------------------------------------
  Graph& graph() noexcept { return graph_; }

  /// Register a placement site on graph node `node`.  Returns its SiteId.
  SiteId add_site(NodeId node, double capacity, double proc_delay);
  /// Shrink available resource of a site (models pre-existing load).
  void set_available(SiteId s, double available);

  DatasetId add_dataset(double volume, SiteId origin, std::string name = {});
  QueryId add_query(SiteId home, double rate, double deadline,
                    std::vector<DatasetDemand> demands);

  void set_max_replicas(std::size_t k) { max_replicas_ = k; }

  /// Validate cross-references and compute the delay matrix.  Throws
  /// std::invalid_argument on inconsistency.  Must be called before the
  /// query API below; idempotent.
  void finalize();

  /// --- queries (require finalize()) ------------------------------------
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }
  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] std::span<const Site> sites() const noexcept { return sites_; }
  [[nodiscard]] std::span<const Dataset> datasets() const noexcept {
    return datasets_;
  }
  [[nodiscard]] std::span<const Query> queries() const noexcept {
    return queries_;
  }
  [[nodiscard]] const Site& site(SiteId s) const { return sites_.at(s); }
  [[nodiscard]] const Dataset& dataset(DatasetId n) const {
    return datasets_.at(n);
  }
  [[nodiscard]] const Query& query(QueryId m) const { return queries_.at(m); }
  [[nodiscard]] std::size_t max_replicas() const noexcept {
    return max_replicas_;
  }

  /// Minimum path delay per unit data between two sites' graph nodes.
  [[nodiscard]] double path_delay(SiteId from, SiteId to) const {
    return delays_.at(sites_.at(from).node, sites_.at(to).node);
  }

  /// Total volume demanded by a query: Σ_{S_n ∈ S(q_m)} |S_n|.
  [[nodiscard]] double demanded_volume(QueryId m) const;

  /// Sum of demanded volume over all queries (the objective's upper bound).
  [[nodiscard]] double total_demanded_volume() const;

  /// Site whose graph node is `node`, or kInvalidSite.
  [[nodiscard]] SiteId site_of_node(NodeId node) const;

 private:
  Graph graph_;
  std::vector<Site> sites_;
  std::vector<Dataset> datasets_;
  std::vector<Query> queries_;
  std::size_t max_replicas_ = 3;
  DelayMatrix delays_;
  std::vector<SiteId> node_to_site_;
  bool finalized_ = false;
};

}  // namespace edgerep
