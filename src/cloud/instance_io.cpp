#include "cloud/instance_io.h"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "net/io.h"

namespace edgerep {

void write_instance(std::ostream& os, const Instance& inst) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "# edgerep instance: " << inst.sites().size() << " sites, "
     << inst.datasets().size() << " datasets, " << inst.queries().size()
     << " queries\n";
  const Graph& g = inst.graph();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "node " << v << ' ' << to_string(g.role(v)) << '\n';
  }
  for (const Edge& e : g.edges()) {
    os << "edge " << e.u << ' ' << e.v << ' ' << e.delay << '\n';
  }
  for (const Site& s : inst.sites()) {
    os << "site " << s.id << ' ' << s.node << ' ' << s.capacity << ' '
       << s.available << ' ' << s.proc_delay << '\n';
  }
  for (const Dataset& d : inst.datasets()) {
    os << "dataset " << d.id << ' ' << d.volume << ' ';
    if (d.origin == kInvalidSite) {
      os << '-';
    } else {
      os << d.origin;
    }
    if (!d.name.empty()) os << ' ' << d.name;
    os << '\n';
  }
  for (const Query& q : inst.queries()) {
    os << "query " << q.id << ' ' << q.home << ' ' << q.rate << ' '
       << q.deadline << ' ' << q.demands.size();
    for (const DatasetDemand& dd : q.demands) {
      os << ' ' << dd.dataset << ' ' << dd.selectivity;
    }
    os << '\n';
  }
  os << "max_replicas " << inst.max_replicas() << '\n';
}

Instance read_instance(std::istream& is) {
  Graph g;
  struct PendingSite {
    NodeId node;
    double capacity;
    double available;
    double proc_delay;
  };
  std::vector<PendingSite> sites;
  struct PendingDataset {
    double volume;
    SiteId origin;
    std::string name;
  };
  std::vector<PendingDataset> datasets;
  struct PendingQuery {
    SiteId home;
    double rate;
    double deadline;
    std::vector<DatasetDemand> demands;
  };
  std::vector<PendingQuery> queries;
  std::size_t max_replicas = 3;

  std::string line;
  std::size_t lineno = 0;
  auto fail = [&lineno](const std::string& why) -> void {
    throw std::runtime_error("read_instance: line " + std::to_string(lineno) +
                             ": " + why);
  };
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string kind;
    ss >> kind;
    if (kind == "node") {
      std::uint64_t id = 0;
      std::string role;
      if (!(ss >> id >> role)) fail("malformed node");
      if (id != g.num_nodes()) fail("node ids must be dense");
      g.add_node(parse_role(role));
    } else if (kind == "edge") {
      std::uint64_t u = 0;
      std::uint64_t v = 0;
      double delay = 0.0;
      if (!(ss >> u >> v >> delay)) fail("malformed edge");
      if (u >= g.num_nodes() || v >= g.num_nodes()) fail("edge out of range");
      g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v), delay);
    } else if (kind == "site") {
      std::uint64_t id = 0;
      PendingSite s{};
      std::uint64_t node = 0;
      if (!(ss >> id >> node >> s.capacity >> s.available >> s.proc_delay)) {
        fail("malformed site");
      }
      if (id != sites.size()) fail("site ids must be dense");
      s.node = static_cast<NodeId>(node);
      sites.push_back(s);
    } else if (kind == "dataset") {
      std::uint64_t id = 0;
      PendingDataset d{};
      std::string origin;
      if (!(ss >> id >> d.volume >> origin)) fail("malformed dataset");
      if (id != datasets.size()) fail("dataset ids must be dense");
      d.origin = origin == "-"
                     ? kInvalidSite
                     : static_cast<SiteId>(std::stoul(origin));
      std::getline(ss, d.name);
      if (!d.name.empty() && d.name.front() == ' ') d.name.erase(0, 1);
      datasets.push_back(std::move(d));
    } else if (kind == "query") {
      std::uint64_t id = 0;
      std::uint64_t home = 0;
      std::size_t n = 0;
      PendingQuery q{};
      if (!(ss >> id >> home >> q.rate >> q.deadline >> n)) {
        fail("malformed query");
      }
      if (id != queries.size()) fail("query ids must be dense");
      q.home = static_cast<SiteId>(home);
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t ds = 0;
        double alpha = 0.0;
        if (!(ss >> ds >> alpha)) fail("query demand list truncated");
        q.demands.push_back(
            DatasetDemand{static_cast<DatasetId>(ds), alpha});
      }
      queries.push_back(std::move(q));
    } else if (kind == "max_replicas") {
      if (!(ss >> max_replicas)) fail("malformed max_replicas");
    } else {
      fail("unknown keyword '" + kind + "'");
    }
  }

  Instance inst(std::move(g));
  for (const PendingSite& s : sites) {
    const SiteId id = inst.add_site(s.node, s.capacity, s.proc_delay);
    inst.set_available(id, s.available);
  }
  for (PendingDataset& d : datasets) {
    inst.add_dataset(d.volume, d.origin, std::move(d.name));
  }
  for (PendingQuery& q : queries) {
    inst.add_query(q.home, q.rate, q.deadline, std::move(q.demands));
  }
  inst.set_max_replicas(max_replicas);
  inst.finalize();
  return inst;
}

}  // namespace edgerep
