// The QoS delay model (paper §2.3, constraint (4)).
//
// Evaluating query q_m's demand on dataset S_n at site v_l costs
//   |S_n|·d(v_l)              processing delay, plus
//   α_{nm}·|S_n|·dt(p_{v_l,h_m})   transmission of the intermediate result
// along the minimum-delay path to the query's home h_m.  Demands of one
// query run in parallel, so a query's response delay is the maximum over its
// demands, and the query meets QoS iff that max is ≤ d_{q_m}.
#pragma once

#include "cloud/instance.h"

namespace edgerep {

/// Delay of evaluating one (query, demand) at `site`.
double evaluation_delay(const Instance& inst, const Query& q,
                        const DatasetDemand& dd, SiteId site);

/// Does evaluating this demand at `site` respect the query's deadline?
bool deadline_ok(const Instance& inst, const Query& q, const DatasetDemand& dd,
                 SiteId site);

/// Computing resource the demand consumes at its evaluation site:
/// |S_n|·r_m  (constraint (2)).
double resource_demand(const Instance& inst, const Query& q,
                       const DatasetDemand& dd);

/// Smallest deadline that would make this demand feasible at the *best*
/// site for it (used by workload generators to synthesize satisfiable but
/// tight QoS requirements).
double best_possible_delay(const Instance& inst, const Query& q,
                           const DatasetDemand& dd);

}  // namespace edgerep
