#include "cloud/instance.h"

#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace edgerep {

SiteId Instance::add_site(NodeId node, double capacity, double proc_delay) {
  if (node >= graph_.num_nodes()) {
    throw std::invalid_argument("add_site: node out of range");
  }
  if (capacity < 0.0 || proc_delay < 0.0) {
    throw std::invalid_argument("add_site: negative capacity or delay");
  }
  const auto id = static_cast<SiteId>(sites_.size());
  sites_.push_back(Site{id, node, graph_.role(node), capacity, capacity,
                        proc_delay});
  finalized_ = false;
  return id;
}

void Instance::set_available(SiteId s, double available) {
  Site& site = sites_.at(s);
  if (available < 0.0 || available > site.capacity) {
    throw std::invalid_argument("set_available: out of [0, capacity]");
  }
  site.available = available;
}

DatasetId Instance::add_dataset(double volume, SiteId origin,
                                std::string name) {
  if (volume <= 0.0) {
    throw std::invalid_argument("add_dataset: volume must be positive");
  }
  const auto id = static_cast<DatasetId>(datasets_.size());
  datasets_.push_back(Dataset{id, volume, origin, std::move(name)});
  finalized_ = false;
  return id;
}

QueryId Instance::add_query(SiteId home, double rate, double deadline,
                            std::vector<DatasetDemand> demands) {
  if (rate <= 0.0) throw std::invalid_argument("add_query: rate must be > 0");
  if (deadline <= 0.0) {
    throw std::invalid_argument("add_query: deadline must be > 0");
  }
  if (demands.empty()) {
    throw std::invalid_argument("add_query: query demands no datasets");
  }
  const auto id = static_cast<QueryId>(queries_.size());
  queries_.push_back(Query{id, home, rate, deadline, std::move(demands)});
  finalized_ = false;
  return id;
}

void Instance::finalize() {
  if (finalized_) return;
  EDGEREP_TRACE_SCOPE("instance.finalize");
  if (sites_.empty()) throw std::invalid_argument("finalize: no sites");
  for (const Site& s : sites_) {
    if (s.node >= graph_.num_nodes()) {
      throw std::invalid_argument("finalize: site node out of range");
    }
  }
  for (const Dataset& d : datasets_) {
    if (d.origin != kInvalidSite && d.origin >= sites_.size()) {
      throw std::invalid_argument("finalize: dataset origin out of range");
    }
  }
  for (const Query& q : queries_) {
    if (q.home >= sites_.size()) {
      throw std::invalid_argument("finalize: query home out of range");
    }
    for (const DatasetDemand& dd : q.demands) {
      if (dd.dataset >= datasets_.size()) {
        throw std::invalid_argument("finalize: demand references dataset " +
                                    std::to_string(dd.dataset) +
                                    " which does not exist");
      }
      if (dd.selectivity <= 0.0 || dd.selectivity > 1.0) {
        throw std::invalid_argument("finalize: selectivity must be in (0, 1]");
      }
    }
  }
  if (max_replicas_ < 1) {
    throw std::invalid_argument("finalize: max_replicas must be >= 1");
  }
  node_to_site_.assign(graph_.num_nodes(), kInvalidSite);
  for (const Site& s : sites_) node_to_site_[s.node] = s.id;
  {
    EDGEREP_TRACE_SCOPE("finalize.seal_graph");
    graph_.seal();
  }
  {
    EDGEREP_TRACE_SCOPE("finalize.delay_table");
    if (backend_ == DelayBackend::kDense) {
      dense_delays_ = DelayMatrix::compute(graph_);
      site_delays_ = DelayTable{};
    } else {
      std::vector<NodeId> sources;
      sources.reserve(sites_.size());
      for (const Site& s : sites_) sources.push_back(s.node);
      site_delays_ = DelayTable::compute(graph_, sources);
      dense_delays_ = DelayMatrix{};
    }
  }
  if (obs::metrics_enabled()) {
    static obs::Counter& finalizes = obs::metrics().counter(
        "edgerep_instance_finalize_total", "Instance::finalize calls");
    static obs::Counter& entries = obs::metrics().counter(
        "edgerep_delay_entries_total",
        "delay-table entries precomputed by finalize");
    finalizes.inc();
    const std::size_t rows =
        backend_ == DelayBackend::kDense ? graph_.num_nodes() : sites_.size();
    entries.inc(rows * graph_.num_nodes());
  }
  finalized_ = true;
}

double Instance::demanded_volume(QueryId m) const {
  double total = 0.0;
  for (const DatasetDemand& dd : query(m).demands) {
    total += dataset(dd.dataset).volume;
  }
  return total;
}

double Instance::total_demanded_volume() const {
  double total = 0.0;
  for (const Query& q : queries_) total += demanded_volume(q.id);
  return total;
}

SiteId Instance::site_of_node(NodeId node) const {
  if (node >= node_to_site_.size()) return kInvalidSite;
  return node_to_site_[node];
}

}  // namespace edgerep
