// Structural diff between two replica plans over the same instance — what
// an operator reviews before rolling a new placement: replica additions and
// removals (each a data transfer or a deletion in production) and query
// reassignments (each a routing change).
#pragma once

#include <iosfwd>
#include <vector>

#include "cloud/plan.h"

namespace edgerep {

struct PlanDiff {
  struct ReplicaChange {
    DatasetId dataset = 0;
    SiteId site = kInvalidSite;
  };
  struct AssignmentChange {
    QueryId query = 0;
    DatasetId dataset = 0;
    SiteId before = kInvalidSite;  ///< kInvalidSite = was unassigned
    SiteId after = kInvalidSite;   ///< kInvalidSite = now unassigned
  };

  std::vector<ReplicaChange> replicas_added;
  std::vector<ReplicaChange> replicas_removed;
  std::vector<AssignmentChange> reassigned;

  [[nodiscard]] bool empty() const noexcept {
    return replicas_added.empty() && replicas_removed.empty() &&
           reassigned.empty();
  }
  /// Total GB that must move to realize the replica additions.
  [[nodiscard]] double migration_volume_gb(const Instance& inst) const;
};

/// Diff `after` against `before`.  Throws std::invalid_argument when the
/// plans belong to different instances.
PlanDiff diff_plans(const ReplicaPlan& before, const ReplicaPlan& after);

/// Human-readable rendering ("+replica d3 @ site 7", "~query 12/d3: 2 → 7").
void print_diff(std::ostream& os, const PlanDiff& diff, const Instance& inst);

}  // namespace edgerep
