#include "cloud/plan_diff.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace edgerep {

double PlanDiff::migration_volume_gb(const Instance& inst) const {
  double total = 0.0;
  for (const ReplicaChange& rc : replicas_added) {
    total += inst.dataset(rc.dataset).volume;
  }
  return total;
}

PlanDiff diff_plans(const ReplicaPlan& before, const ReplicaPlan& after) {
  if (&before.instance() != &after.instance()) {
    throw std::invalid_argument("diff_plans: plans are for different "
                                "instances");
  }
  const Instance& inst = before.instance();
  PlanDiff diff;
  for (const Dataset& d : inst.datasets()) {
    for (const Site& s : inst.sites()) {
      const bool b = before.has_replica(d.id, s.id);
      const bool a = after.has_replica(d.id, s.id);
      if (!b && a) diff.replicas_added.push_back({d.id, s.id});
      if (b && !a) diff.replicas_removed.push_back({d.id, s.id});
    }
  }
  for (const Query& q : inst.queries()) {
    for (const DatasetDemand& dd : q.demands) {
      const auto b = before.assignment(q.id, dd.dataset);
      const auto a = after.assignment(q.id, dd.dataset);
      if (b != a) {
        diff.reassigned.push_back({q.id, dd.dataset,
                                   b.value_or(kInvalidSite),
                                   a.value_or(kInvalidSite)});
      }
    }
  }
  return diff;
}

void print_diff(std::ostream& os, const PlanDiff& diff, const Instance& inst) {
  if (diff.empty()) {
    os << "plans are identical\n";
    return;
  }
  for (const auto& rc : diff.replicas_added) {
    os << "+replica d" << rc.dataset << " @ site " << rc.site << '\n';
  }
  for (const auto& rc : diff.replicas_removed) {
    os << "-replica d" << rc.dataset << " @ site " << rc.site << '\n';
  }
  auto site_str = [](SiteId s) {
    return s == kInvalidSite ? std::string("∅") : std::to_string(s);
  };
  for (const auto& ac : diff.reassigned) {
    os << "~query " << ac.query << "/d" << ac.dataset << ": "
       << site_str(ac.before) << " -> " << site_str(ac.after) << '\n';
  }
  os << diff.replicas_added.size() << " replica(s) added ("
     << diff.migration_volume_gb(inst) << " GB to migrate), "
     << diff.replicas_removed.size() << " removed, "
     << diff.reassigned.size() << " demand(s) reassigned\n";
}

}  // namespace edgerep
