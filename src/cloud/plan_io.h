// ReplicaPlan serialization: persist a placement decision (x_{nl} and
// π_{ml}) so it can be audited, diffed, re-validated, or replayed on the
// simulator later — the deployment artifact a real operator would ship.
//
// Format (line-oriented, '#' comments):
//   replica <dataset> <site>
//   assign <query> <dataset> <site>
#pragma once

#include <iosfwd>

#include "cloud/plan.h"

namespace edgerep {

void write_plan(std::ostream& os, const ReplicaPlan& plan);

/// Parse against `inst` (which must be the plan's instance).  Replica and
/// assignment rules are enforced while loading, so a tampered file that
/// violates capacity, the replica budget or dangling ids is rejected
/// (std::runtime_error / std::invalid_argument).  Deadline violations are
/// not structural and are reported by `validate` instead.
ReplicaPlan read_plan(const Instance& inst, std::istream& is);

}  // namespace edgerep
