#include "net/centrality.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "net/shortest_path.h"

namespace edgerep {

std::vector<double> closeness_centrality(const Graph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<double> c(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    const auto t = dijkstra(g, v);
    double sum = 0.0;
    std::size_t reachable = 0;
    for (NodeId u = 0; u < n; ++u) {
      if (u != v && t.reachable(u)) {
        sum += t.dist[u];
        ++reachable;
      }
    }
    if (sum > 0.0) c[v] = static_cast<double>(reachable) / sum;
  }
  return c;
}

std::vector<double> betweenness_centrality(const Graph& g) {
  // Brandes (2001), weighted variant: one Dijkstra per source with shortest
  // path counting, then dependency accumulation in reverse finish order.
  const std::size_t n = g.num_nodes();
  std::vector<double> bc(n, 0.0);
  constexpr double kEps = 1e-12;
  for (NodeId s = 0; s < n; ++s) {
    std::vector<double> dist(n, kInfDelay);
    std::vector<double> sigma(n, 0.0);   // number of shortest s→v paths
    std::vector<std::vector<NodeId>> preds(n);
    std::vector<NodeId> finish_order;    // nodes in nondecreasing dist order
    finish_order.reserve(n);
    using Item = std::pair<double, NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    std::vector<char> settled(n, 0);
    dist[s] = 0.0;
    sigma[s] = 1.0;
    heap.emplace(0.0, s);
    while (!heap.empty()) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (settled[v]) continue;
      settled[v] = 1;
      finish_order.push_back(v);
      for (const HalfEdge& he : g.neighbors(v)) {
        const double nd = d + he.delay;
        if (nd < dist[he.to] - kEps) {
          dist[he.to] = nd;
          sigma[he.to] = sigma[v];
          preds[he.to].assign(1, v);
          heap.emplace(nd, he.to);
        } else if (nd <= dist[he.to] + kEps && !settled[he.to]) {
          // Another shortest path through v.
          bool already = false;
          for (const NodeId p : preds[he.to]) already |= p == v;
          if (!already) {
            sigma[he.to] += sigma[v];
            preds[he.to].push_back(v);
          }
        }
      }
    }
    // Dependency accumulation.
    std::vector<double> delta(n, 0.0);
    for (auto it = finish_order.rbegin(); it != finish_order.rend(); ++it) {
      const NodeId w = *it;
      for (const NodeId p : preds[w]) {
        if (sigma[w] > 0.0) {
          delta[p] += sigma[p] / sigma[w] * (1.0 + delta[w]);
        }
      }
      if (w != s) bc[w] += delta[w];
    }
  }
  // Each undirected pair was counted twice (once per endpoint as source).
  for (double& v : bc) v *= 0.5;
  return bc;
}

}  // namespace edgerep
