// Topology generators.
//
// The paper builds its simulation networks with GT-ITM: "there is a link
// between each pair of nodes (data centers, cloudlets, and switches) with a
// probability of 0.2" (§4.1).  `make_two_tier` reproduces exactly that
// construction (flat random links over DC ∪ CL ∪ SW with role-dependent
// delays plus a connectivity repair pass, since admission needs finite
// shortest-path delays).  A Waxman generator and a plain G(n, p) generator
// are provided for robustness studies.
#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.h"
#include "util/rng.h"

namespace edgerep {

/// Closed interval used for randomly drawn parameters.
struct Range {
  double lo = 0.0;
  double hi = 0.0;

  [[nodiscard]] double sample(Rng& rng) const { return rng.uniform(lo, hi); }
  [[nodiscard]] double mid() const noexcept { return 0.5 * (lo + hi); }
};

/// Plain Erdős–Rényi G(n, p) with uniform link delays, connectivity-repaired.
Graph gnp(std::size_t n, double p, Range link_delay, Rng& rng);

/// Waxman random graph: nodes on the unit square, link probability
/// a·exp(-dist/(b·L)); link delay scales with Euclidean distance mapped
/// into `link_delay`.  Connectivity-repaired.
Graph waxman(std::size_t n, double a, double b, Range link_delay, Rng& rng);

/// Configuration of the two-tier edge cloud (§2.1, §4.1 defaults).
struct TwoTierConfig {
  std::size_t num_data_centers = 6;
  std::size_t num_cloudlets = 24;
  std::size_t num_switches = 2;
  std::size_t num_base_stations = 0;  ///< base stations only issue queries; optional
  double link_prob = 0.2;             ///< GT-ITM pairwise link probability

  // Per-unit-data (per-GB) transmission delays in seconds.  WAN links are an
  // order of magnitude slower than the metro network: remote data centers
  // are only viable evaluation sites for queries with loose QoS budgets.
  Range metro_delay{0.05, 0.25};   ///< links inside the WMAN (CL/SW endpoints)
  Range wan_delay{1.20, 3.00};     ///< links with a data-center endpoint
  Range access_delay{0.01, 0.05};  ///< base station → switch attachment

  // Nominal link capacities: how many concurrent unit-rate transfers a link
  // carries before the flow backend's max-min fair sharing starts stretching
  // completions.  WAN uplinks are the scarce resource.  Capacities are
  // assigned in a deterministic per-edge post-pass (hashed from the edge id,
  // not drawn from the topology Rng), so enabling them does not shift the
  // delay/link draw sequence of previously committed instances.
  Range metro_capacity{8.0, 16.0};   ///< links inside the WMAN
  Range wan_capacity{2.0, 6.0};      ///< links with a data-center endpoint
  Range access_capacity{4.0, 8.0};   ///< base station attachments
};

/// A generated two-tier topology with role index lists.
struct TwoTierTopology {
  Graph graph;
  std::vector<NodeId> data_centers;
  std::vector<NodeId> cloudlets;
  std::vector<NodeId> switches;
  std::vector<NodeId> base_stations;

  /// V = CL ∪ DC: the nodes that may hold replicas and evaluate queries.
  [[nodiscard]] std::vector<NodeId> placement_nodes() const;
};

/// Generate a two-tier topology per the paper's GT-ITM recipe.
TwoTierTopology make_two_tier(const TwoTierConfig& cfg, Rng& rng);

/// Scale the default 6 DC / 24 CL / 2 SW mix to `total_nodes` nodes,
/// preserving the role proportions (used by the network-size sweeps of
/// Figures 2 and 3).  total_nodes must be >= 4.
TwoTierConfig scaled_config(std::size_t total_nodes,
                            const TwoTierConfig& base = {});

/// Add the cheapest possible random repair edges until `g` is connected.
/// Repair edges draw their delay from `link_delay`.
void repair_connectivity(Graph& g, Range link_delay, Rng& rng);

/// Deterministic capacity in [range.lo, range.hi) for edge `e`: the fraction
/// is hashed from the edge id through SplitMix64 rather than drawn from a
/// shared Rng, keeping topology Rng streams bit-identical to capacity-less
/// builds.
[[nodiscard]] double derived_capacity(const Range& range, EdgeId e) noexcept;

/// GT-ITM's hierarchical transit-stub model: a backbone of transit domains
/// (dense, fast links), each transit node anchoring several stub domains
/// (sparser, slower links).  The flat model above is what the paper's §4.1
/// uses; transit-stub is provided for robustness studies on more realistic
/// Internet-like topologies.
struct TransitStubConfig {
  std::size_t num_transit_domains = 2;
  std::size_t transit_nodes_per_domain = 4;
  double transit_edge_prob = 0.6;
  std::size_t stubs_per_transit_node = 2;
  std::size_t nodes_per_stub = 4;
  double stub_edge_prob = 0.4;
  Range transit_delay{0.02, 0.10};       ///< backbone links
  Range stub_delay{0.05, 0.25};          ///< links inside a stub domain
  Range attachment_delay{0.05, 0.30};    ///< stub → transit uplinks
};

struct TransitStubTopology {
  Graph graph;
  std::vector<NodeId> transit_nodes;
  std::vector<NodeId> stub_nodes;
  /// Stub-domain index per node (transit nodes carry kNoStub).
  std::vector<std::uint32_t> stub_of_node;
  static constexpr std::uint32_t kNoStub = static_cast<std::uint32_t>(-1);
};

TransitStubTopology transit_stub(const TransitStubConfig& cfg, Rng& rng);

}  // namespace edgerep
