// Minimum-delay paths.  The paper routes intermediate results from the
// evaluation node to the query's home node "via a shortest path whose
// transmission delay is the minimum one" (§3.2); dt(p_{v,h}) below is the
// summed per-unit-data delay along that path.
//
// The scale-out substrate is the `DelayTable`: the delay model only ever
// consumes minimum delays *from placement sites* to other sites' nodes, so
// the table stores one Dijkstra row per site (|V|·n entries) instead of the
// dense n×n matrix.  `DelayMatrix` is kept as the all-pairs oracle (and for
// diagnostics); `DijkstraWorkspace` is the shared row engine.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "net/graph.h"

namespace edgerep {

inline constexpr double kInfDelay = std::numeric_limits<double>::infinity();

/// Single-source shortest path result.
struct ShortestPathTree {
  NodeId source = kInvalidNode;
  std::vector<double> dist;     ///< dist[v] = min total delay source→v (inf if unreachable)
  std::vector<NodeId> parent;   ///< predecessor on the shortest path (kInvalidNode at source/unreachable)

  [[nodiscard]] bool reachable(NodeId v) const {
    assert(v < dist.size());
    return dist[v] < kInfDelay;
  }

  /// Node sequence source→target (empty when unreachable).
  [[nodiscard]] std::vector<NodeId> path_to(NodeId target) const;
};

/// Reusable single-source Dijkstra engine.  The dist/parent/heap buffers
/// belong to the workspace, so repeated runs (one per table row) allocate
/// nothing; visited marks are generation-stamped, making the per-run reset
/// O(1) instead of an O(n) clear.  The heap is 4-ary (shallower than binary,
/// parent/child index math stays cheap) with lazy deletion and pops in the
/// same strict (dist, node) total order as the std::priority_queue it
/// replaced, so distances, parents, and tie-breaks are bit-identical.
class DijkstraWorkspace {
 public:
  /// Minimum delays from `source` into out_dist (size g.num_nodes(),
  /// kInfDelay when unreachable).  When out_parent is non-empty it receives
  /// predecessor ids (kInvalidNode at the source and unreachable nodes).
  /// Walks the CSR arrays when the graph is sealed.
  void run(const Graph& g, NodeId source, std::span<double> out_dist,
           std::span<NodeId> out_parent = {});

 private:
  struct HeapItem {
    double dist = 0.0;
    NodeId node = kInvalidNode;
  };

  /// Strict (dist, node) lexicographic order — the exact comparator of the
  /// std::priority_queue<pair<double, NodeId>, ..., greater<>> this engine
  /// replaced, so pop order (and hence tie-breaking) is unchanged.
  [[nodiscard]] static bool less(const HeapItem& a, const HeapItem& b) noexcept {
    return a.dist < b.dist || (a.dist == b.dist && a.node < b.node);
  }

  void ensure_size(std::size_t n);
  void heap_push(HeapItem item);
  HeapItem heap_pop();

  std::vector<double> dist_;
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> stamp_;  ///< dist_/parent_[v] valid iff == generation_
  std::vector<HeapItem> heap_;
  std::uint32_t generation_ = 0;
};

/// Dijkstra with the workspace engine; O((V+E) log V).
ShortestPathTree dijkstra(const Graph& g, NodeId source);

/// Minimum delays from a fixed set of source nodes (one row per source) to
/// every node — |sources|·n entries instead of n·n.  Rows are independent
/// per-source Dijkstras and are computed in parallel when `parallel` is
/// true; Instance::finalize builds one with the placement sites' nodes as
/// sources, so row r is the delay row of site r.
class DelayTable {
 public:
  DelayTable() = default;

  /// Throws std::invalid_argument when a source is out of range.
  static DelayTable compute(const Graph& g, std::span<const NodeId> sources,
                            bool parallel = true);

  [[nodiscard]] std::size_t rows() const noexcept { return sources_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return n_; }
  [[nodiscard]] std::span<const NodeId> sources() const noexcept {
    return sources_;
  }
  [[nodiscard]] double at(std::size_t row, NodeId to) const {
    assert(row < sources_.size() && to < n_);
    return data_[row * n_ + to];
  }
  [[nodiscard]] bool reachable(std::size_t row, NodeId to) const {
    return at(row, to) < kInfDelay;
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    assert(r < sources_.size());
    return {data_.data() + r * n_, n_};
  }

 private:
  std::size_t n_ = 0;
  std::vector<NodeId> sources_;
  std::vector<double> data_;
};

/// All-pairs minimum delays as a dense matrix (row-major, n×n).  Computed by
/// n Dijkstra runs; rows are independent and are computed in parallel when
/// `parallel` is true.  Superseded on the hot path by DelayTable (site rows
/// only); kept as the equivalence oracle and for all-pairs diagnostics.
class DelayMatrix {
 public:
  DelayMatrix() = default;

  static DelayMatrix compute(const Graph& g, bool parallel = true);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] double at(NodeId from, NodeId to) const {
    assert(from < n_ && to < n_);
    return data_[static_cast<std::size_t>(from) * n_ + to];
  }
  [[nodiscard]] bool reachable(NodeId from, NodeId to) const {
    return at(from, to) < kInfDelay;
  }

 private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

/// Hop-count BFS distances from one source (used by topology diagnostics).
std::vector<std::uint32_t> bfs_hops(const Graph& g, NodeId source);

/// Graph diameter in hops over the largest component (0 for empty graphs).
std::uint32_t hop_diameter(const Graph& g);

}  // namespace edgerep
