// Minimum-delay paths.  The paper routes intermediate results from the
// evaluation node to the query's home node "via a shortest path whose
// transmission delay is the minimum one" (§3.2); dt(p_{v,h}) below is the
// summed per-unit-data delay along that path.
#pragma once

#include <limits>
#include <vector>

#include "net/graph.h"

namespace edgerep {

inline constexpr double kInfDelay = std::numeric_limits<double>::infinity();

/// Single-source shortest path result.
struct ShortestPathTree {
  NodeId source = kInvalidNode;
  std::vector<double> dist;     ///< dist[v] = min total delay source→v (inf if unreachable)
  std::vector<NodeId> parent;   ///< predecessor on the shortest path (kInvalidNode at source/unreachable)

  [[nodiscard]] bool reachable(NodeId v) const {
    return dist.at(v) < kInfDelay;
  }

  /// Node sequence source→target (empty when unreachable).
  [[nodiscard]] std::vector<NodeId> path_to(NodeId target) const;
};

/// Dijkstra with a binary heap; O((V+E) log V).
ShortestPathTree dijkstra(const Graph& g, NodeId source);

/// All-pairs minimum delays as a dense matrix (row-major, n×n).  Computed by
/// n Dijkstra runs; rows are independent and are computed in parallel when
/// `parallel` is true.
class DelayMatrix {
 public:
  DelayMatrix() = default;

  static DelayMatrix compute(const Graph& g, bool parallel = true);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] double at(NodeId from, NodeId to) const {
    return data_.at(static_cast<std::size_t>(from) * n_ + to);
  }
  [[nodiscard]] bool reachable(NodeId from, NodeId to) const {
    return at(from, to) < kInfDelay;
  }

 private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

/// Hop-count BFS distances from one source (used by topology diagnostics).
std::vector<std::uint32_t> bfs_hops(const Graph& g, NodeId source);

/// Graph diameter in hops over the largest component (0 for empty graphs).
std::uint32_t hop_diameter(const Graph& g);

}  // namespace edgerep
