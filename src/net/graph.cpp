#include "net/graph.h"

#include <algorithm>
#include <stdexcept>

namespace edgerep {

const char* to_string(NodeRole role) noexcept {
  switch (role) {
    case NodeRole::kDataCenter:
      return "dc";
    case NodeRole::kCloudlet:
      return "cloudlet";
    case NodeRole::kSwitch:
      return "switch";
    case NodeRole::kBaseStation:
      return "bs";
  }
  return "?";
}

NodeId Graph::add_node(NodeRole role) {
  const auto id = static_cast<NodeId>(adjacency_.size());
  adjacency_.emplace_back();
  roles_.push_back(role);
  sealed_ = false;
  return id;
}

void Graph::add_nodes(std::size_t count, NodeRole role) {
  adjacency_.resize(adjacency_.size() + count);
  roles_.resize(roles_.size() + count, role);
  sealed_ = false;
}

EdgeId Graph::add_edge(NodeId u, NodeId v, double delay, double capacity) {
  if (u >= num_nodes() || v >= num_nodes()) {
    throw std::invalid_argument("Graph::add_edge: node id out of range");
  }
  if (u == v) throw std::invalid_argument("Graph::add_edge: self-loop");
  if (delay < 0.0) throw std::invalid_argument("Graph::add_edge: negative delay");
  if (capacity <= 0.0) {
    throw std::invalid_argument("Graph::add_edge: capacity must be > 0");
  }
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v, delay, capacity});
  adjacency_[u].push_back(HalfEdge{v, id, delay});
  adjacency_[v].push_back(HalfEdge{u, id, delay});
  sealed_ = false;
  return id;
}

void Graph::set_capacity(EdgeId e, double capacity) {
  if (capacity <= 0.0) {
    throw std::invalid_argument("Graph::set_capacity: capacity must be > 0");
  }
  edges_.at(e).capacity = capacity;
}

void Graph::seal() {
  if (sealed_) return;
  const std::size_t n = num_nodes();
  csr_offset_.resize(n + 1);
  std::size_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    csr_offset_[v] = total;
    total += adjacency_[v].size();
  }
  csr_offset_[n] = total;
  csr_half_.resize(total);
  for (std::size_t v = 0; v < n; ++v) {
    std::copy(adjacency_[v].begin(), adjacency_[v].end(),
              csr_half_.begin() + static_cast<std::ptrdiff_t>(csr_offset_[v]));
  }
  sealed_ = true;
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const {
  for (const HalfEdge& he : neighbors(u)) {
    if (he.to == v) return he.edge;
  }
  return kInvalidEdge;
}

std::vector<std::uint32_t> Graph::components() const {
  std::vector<std::uint32_t> label(num_nodes(), static_cast<std::uint32_t>(-1));
  std::uint32_t next = 0;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < num_nodes(); ++s) {
    if (label[s] != static_cast<std::uint32_t>(-1)) continue;
    const std::uint32_t comp = next++;
    stack.push_back(s);
    label[s] = comp;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const HalfEdge& he : adjacency_[v]) {
        if (label[he.to] == static_cast<std::uint32_t>(-1)) {
          label[he.to] = comp;
          stack.push_back(he.to);
        }
      }
    }
  }
  return label;
}

bool Graph::connected() const {
  if (num_nodes() <= 1) return true;
  const auto label = components();
  for (const auto c : label) {
    if (c != 0) return false;
  }
  return true;
}

}  // namespace edgerep
