// Undirected weighted graph used to model the edge-cloud communication
// network.  Edge weights are per-unit-data transmission delays dt(e).
//
// The structure is append-only (nodes and edges are added, never removed),
// which lets us hand out stable ids and keep adjacency as flat vectors.
//
// Two adjacency representations coexist: per-node vectors (the append
// path) and, after `seal()`, a CSR copy (one offset array + one flat
// half-edge array) that traversal kernels walk as contiguous memory.
// `neighbors()` serves from the CSR arrays when sealed; half-edge order is
// identical in both, so traversal results do not depend on sealing.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace edgerep {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// Role of a node in the two-tier edge cloud (paper §2.1).
enum class NodeRole : std::uint8_t {
  kDataCenter,   ///< remote data center (DC)
  kCloudlet,     ///< edge cloudlet co-located with a switch (CL)
  kSwitch,       ///< WMAN switch / access point (SW)
  kBaseStation,  ///< user-facing base station (BS)
};

const char* to_string(NodeRole role) noexcept;

/// One undirected edge with a per-unit-data transmission delay and a
/// nominal capacity (how many concurrent unit-rate transfers the link
/// carries before max-min fair sharing starts stretching them).
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  double delay = 0.0;     ///< dt(e): delay to transfer one unit (GB) of data
  double capacity = 1.0;  ///< c(e): concurrent nominal transfers before contention

  /// The endpoint that is not `from` (precondition: from is an endpoint).
  [[nodiscard]] NodeId other(NodeId from) const noexcept {
    return from == u ? v : u;
  }
};

/// Half-edge stored in adjacency lists.
struct HalfEdge {
  NodeId to = kInvalidNode;
  EdgeId edge = kInvalidEdge;
  double delay = 0.0;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t num_nodes) { add_nodes(num_nodes); }

  /// Append one node; returns its id.
  NodeId add_node(NodeRole role = NodeRole::kSwitch);
  /// Append `count` nodes with the default role.
  void add_nodes(std::size_t count, NodeRole role = NodeRole::kSwitch);

  /// Append an undirected edge u—v with the given per-unit delay and
  /// nominal capacity.  Self-loops, negative delays, and non-positive
  /// capacities are rejected (std::invalid_argument).
  EdgeId add_edge(NodeId u, NodeId v, double delay, double capacity = 1.0);

  /// Overwrite one edge's nominal capacity (must be > 0).  Capacities do
  /// not live in the adjacency lists, so this never unseals the graph.
  void set_capacity(EdgeId e, double capacity);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return adjacency_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }

  [[nodiscard]] const Edge& edge(EdgeId e) const { return edges_.at(e); }
  [[nodiscard]] std::span<const Edge> edges() const noexcept { return edges_; }

  [[nodiscard]] std::span<const HalfEdge> neighbors(NodeId v) const {
    if (sealed_) {
      if (v >= num_nodes()) {
        throw std::out_of_range("Graph::neighbors: node out of range");
      }
      return {csr_half_.data() + csr_offset_[v],
              csr_half_.data() + csr_offset_[v + 1]};
    }
    return adjacency_.at(v);
  }
  [[nodiscard]] std::size_t degree(NodeId v) const {
    return adjacency_.at(v).size();
  }

  /// Build the flat CSR adjacency (offsets + half-edges) so traversal inner
  /// loops walk contiguous memory.  Idempotent; any later mutation unseals.
  /// Instance::finalize() seals its graph, so algorithm hot paths always run
  /// on the CSR form.
  void seal();
  [[nodiscard]] bool sealed() const noexcept { return sealed_; }

  /// CSR arrays (require sealed()): offsets has num_nodes()+1 entries;
  /// node v's half-edges are csr_half()[csr_offsets()[v] ..
  /// csr_offsets()[v+1]).
  [[nodiscard]] std::span<const std::size_t> csr_offsets() const noexcept {
    return csr_offset_;
  }
  [[nodiscard]] std::span<const HalfEdge> csr_half_edges() const noexcept {
    return csr_half_;
  }

  [[nodiscard]] NodeRole role(NodeId v) const { return roles_.at(v); }
  void set_role(NodeId v, NodeRole role) { roles_.at(v) = role; }

  /// First edge between u and v, or kInvalidEdge when absent.  O(deg(u)).
  [[nodiscard]] EdgeId find_edge(NodeId u, NodeId v) const;
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const {
    return find_edge(u, v) != kInvalidEdge;
  }

  /// True when every node can reach every other node.
  [[nodiscard]] bool connected() const;

  /// Connected-component label per node (labels are 0..k-1, ordered by the
  /// smallest node id in the component).
  [[nodiscard]] std::vector<std::uint32_t> components() const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<HalfEdge>> adjacency_;
  std::vector<NodeRole> roles_;
  std::vector<std::size_t> csr_offset_;  ///< valid when sealed_; n+1 entries
  std::vector<HalfEdge> csr_half_;       ///< valid when sealed_; 2·|E| entries
  bool sealed_ = false;
};

}  // namespace edgerep
