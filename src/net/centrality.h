// Node centrality measures over the delay-weighted network, used by the
// Centrality-S/G baseline (place replicas at topologically central nodes)
// and by topology diagnostics.
#pragma once

#include <vector>

#include "net/graph.h"

namespace edgerep {

/// Closeness centrality with delay-weighted distances:
/// c(v) = (reachable(v)) / Σ_u dist(v, u), 0 for isolated nodes.  Values
/// are comparable within one connected component.
std::vector<double> closeness_centrality(const Graph& g);

/// Betweenness centrality (Brandes' algorithm on delay-weighted shortest
/// paths): the fraction of pairwise shortest paths passing through each
/// node.  Undirected normalization (each pair counted once).
std::vector<double> betweenness_centrality(const Graph& g);

}  // namespace edgerep
