#include "net/topology.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace edgerep {

double derived_capacity(const Range& range, EdgeId e) noexcept {
  SplitMix64 sm(derive_seed(0xca9ac117e5ULL, e));
  const double frac = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  return range.lo + (range.hi - range.lo) * frac;
}

void repair_connectivity(Graph& g, Range link_delay, Rng& rng) {
  if (g.num_nodes() <= 1) return;
  for (;;) {
    const auto label = g.components();
    const std::uint32_t num_comps =
        label.empty() ? 0 : *std::max_element(label.begin(), label.end()) + 1;
    if (num_comps <= 1) return;
    // Connect a random node of component 1.. to a random node of component 0.
    std::vector<NodeId> comp0;
    std::vector<NodeId> other;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      (label[v] == 0 ? comp0 : other).push_back(v);
    }
    const NodeId a = comp0[static_cast<std::size_t>(
        rng.uniform_u64(0, comp0.size() - 1))];
    const NodeId b = other[static_cast<std::size_t>(
        rng.uniform_u64(0, other.size() - 1))];
    g.add_edge(a, b, link_delay.sample(rng));
  }
}

Graph gnp(std::size_t n, double p, Range link_delay, Rng& rng) {
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) g.add_edge(u, v, link_delay.sample(rng));
    }
  }
  repair_connectivity(g, link_delay, rng);
  return g;
}

Graph waxman(std::size_t n, double a, double b, Range link_delay, Rng& rng) {
  if (b <= 0.0) throw std::invalid_argument("waxman: b must be positive");
  Graph g(n);
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }
  const double max_dist = std::sqrt(2.0);  // diagonal of the unit square
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double dx = x[u] - x[v];
      const double dy = y[u] - y[v];
      const double dist = std::sqrt(dx * dx + dy * dy);
      if (rng.bernoulli(a * std::exp(-dist / (b * max_dist)))) {
        // Delay grows with geometric distance inside the configured range.
        const double delay =
            link_delay.lo + (link_delay.hi - link_delay.lo) * (dist / max_dist);
        g.add_edge(u, v, delay);
      }
    }
  }
  repair_connectivity(g, link_delay, rng);
  return g;
}

std::vector<NodeId> TwoTierTopology::placement_nodes() const {
  std::vector<NodeId> v;
  v.reserve(cloudlets.size() + data_centers.size());
  v.insert(v.end(), cloudlets.begin(), cloudlets.end());
  v.insert(v.end(), data_centers.begin(), data_centers.end());
  return v;
}

TwoTierTopology make_two_tier(const TwoTierConfig& cfg, Rng& rng) {
  if (cfg.num_data_centers + cfg.num_cloudlets + cfg.num_switches < 2) {
    throw std::invalid_argument("make_two_tier: need at least two core nodes");
  }
  TwoTierTopology t;
  Graph& g = t.graph;
  for (std::size_t i = 0; i < cfg.num_switches; ++i) {
    t.switches.push_back(g.add_node(NodeRole::kSwitch));
  }
  for (std::size_t i = 0; i < cfg.num_cloudlets; ++i) {
    t.cloudlets.push_back(g.add_node(NodeRole::kCloudlet));
  }
  for (std::size_t i = 0; i < cfg.num_data_centers; ++i) {
    t.data_centers.push_back(g.add_node(NodeRole::kDataCenter));
  }
  // GT-ITM-style flat links among DC/CL/SW with probability link_prob.
  // Links touching a data center are WAN links (via gateway/Internet); links
  // inside the WMAN are metro links.
  std::vector<NodeId> core;
  core.insert(core.end(), t.switches.begin(), t.switches.end());
  core.insert(core.end(), t.cloudlets.begin(), t.cloudlets.end());
  core.insert(core.end(), t.data_centers.begin(), t.data_centers.end());
  for (std::size_t i = 0; i < core.size(); ++i) {
    for (std::size_t j = i + 1; j < core.size(); ++j) {
      if (!rng.bernoulli(cfg.link_prob)) continue;
      const NodeId u = core[i];
      const NodeId v = core[j];
      const bool wan = g.role(u) == NodeRole::kDataCenter ||
                       g.role(v) == NodeRole::kDataCenter;
      const Range& range = wan ? cfg.wan_delay : cfg.metro_delay;
      g.add_edge(u, v, range.sample(rng));
    }
  }
  // Guarantee each data center has at least one WAN uplink to a gateway
  // switch (the paper connects DCs "to the WMAN via the Internet to/from
  // gateway nodes in SW").
  if (!t.switches.empty()) {
    for (const NodeId dc : t.data_centers) {
      bool has_gateway = false;
      for (const HalfEdge& he : g.neighbors(dc)) {
        if (g.role(he.to) == NodeRole::kSwitch) {
          has_gateway = true;
          break;
        }
      }
      if (!has_gateway) {
        const NodeId sw = t.switches[static_cast<std::size_t>(
            rng.uniform_u64(0, t.switches.size() - 1))];
        g.add_edge(dc, sw, cfg.wan_delay.sample(rng));
      }
    }
  }
  // Base stations hang off random switches (or cloudlets when no switches).
  std::vector<NodeId> attach = t.switches.empty() ? t.cloudlets : t.switches;
  for (std::size_t i = 0; i < cfg.num_base_stations && !attach.empty(); ++i) {
    const NodeId bs = g.add_node(NodeRole::kBaseStation);
    t.base_stations.push_back(bs);
    const NodeId up = attach[static_cast<std::size_t>(
        rng.uniform_u64(0, attach.size() - 1))];
    g.add_edge(bs, up, cfg.access_delay.sample(rng));
  }
  repair_connectivity(g, cfg.metro_delay, rng);
  // Capacity post-pass: role-dependent ranges, per-edge hashed fractions.
  // Runs after every edge exists (including repair edges) and consumes no
  // Rng state, so delay/link draws above are untouched.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    const bool access = g.role(edge.u) == NodeRole::kBaseStation ||
                        g.role(edge.v) == NodeRole::kBaseStation;
    const bool wan = g.role(edge.u) == NodeRole::kDataCenter ||
                     g.role(edge.v) == NodeRole::kDataCenter;
    const Range& range = access ? cfg.access_capacity
                                : (wan ? cfg.wan_capacity : cfg.metro_capacity);
    g.set_capacity(e, derived_capacity(range, e));
  }
  return t;
}

TransitStubTopology transit_stub(const TransitStubConfig& cfg, Rng& rng) {
  if (cfg.num_transit_domains == 0 || cfg.transit_nodes_per_domain == 0) {
    throw std::invalid_argument("transit_stub: empty backbone");
  }
  TransitStubTopology t;
  Graph& g = t.graph;
  std::uint32_t next_stub = 0;

  // Backbone: one dense random domain per transit domain.
  std::vector<std::vector<NodeId>> transit_domains(cfg.num_transit_domains);
  for (auto& domain : transit_domains) {
    for (std::size_t i = 0; i < cfg.transit_nodes_per_domain; ++i) {
      const NodeId v = g.add_node(NodeRole::kSwitch);
      domain.push_back(v);
      t.transit_nodes.push_back(v);
      t.stub_of_node.push_back(TransitStubTopology::kNoStub);
    }
    for (std::size_t i = 0; i < domain.size(); ++i) {
      for (std::size_t j = i + 1; j < domain.size(); ++j) {
        if (rng.bernoulli(cfg.transit_edge_prob)) {
          g.add_edge(domain[i], domain[j], cfg.transit_delay.sample(rng));
        }
      }
    }
  }
  // Inter-domain backbone links: one random edge per domain pair.
  for (std::size_t a = 0; a < transit_domains.size(); ++a) {
    for (std::size_t b = a + 1; b < transit_domains.size(); ++b) {
      const NodeId u = transit_domains[a][static_cast<std::size_t>(
          rng.uniform_u64(0, transit_domains[a].size() - 1))];
      const NodeId v = transit_domains[b][static_cast<std::size_t>(
          rng.uniform_u64(0, transit_domains[b].size() - 1))];
      g.add_edge(u, v, cfg.transit_delay.sample(rng));
    }
  }

  // Stub domains hanging off each transit node.
  for (const NodeId anchor : t.transit_nodes) {
    for (std::size_t s = 0; s < cfg.stubs_per_transit_node; ++s) {
      const std::uint32_t stub_id = next_stub++;
      std::vector<NodeId> stub;
      for (std::size_t i = 0; i < cfg.nodes_per_stub; ++i) {
        const NodeId v = g.add_node(NodeRole::kCloudlet);
        stub.push_back(v);
        t.stub_nodes.push_back(v);
        t.stub_of_node.push_back(stub_id);
      }
      for (std::size_t i = 0; i < stub.size(); ++i) {
        for (std::size_t j = i + 1; j < stub.size(); ++j) {
          if (rng.bernoulli(cfg.stub_edge_prob)) {
            g.add_edge(stub[i], stub[j], cfg.stub_delay.sample(rng));
          }
        }
      }
      if (!stub.empty()) {
        // Cheap intra-stub repair: chain-link any node with no edge inside
        // its own stub (global connectivity is re-checked at the end).
        for (std::size_t i = 1; i < stub.size(); ++i) {
          bool linked = false;
          for (const HalfEdge& he : g.neighbors(stub[i])) {
            for (std::size_t j = 0; j < stub.size(); ++j) {
              if (j != i && he.to == stub[j]) {
                linked = true;
                break;
              }
            }
            if (linked) break;
          }
          if (!linked) {
            g.add_edge(stub[i], stub[i - 1], cfg.stub_delay.sample(rng));
          }
        }
        const NodeId gateway = stub[static_cast<std::size_t>(
            rng.uniform_u64(0, stub.size() - 1))];
        g.add_edge(gateway, anchor, cfg.attachment_delay.sample(rng));
      }
    }
  }
  repair_connectivity(g, cfg.transit_delay, rng);
  return t;
}

TwoTierConfig scaled_config(std::size_t total_nodes, const TwoTierConfig& base) {
  if (total_nodes < 4) {
    throw std::invalid_argument("scaled_config: total_nodes must be >= 4");
  }
  const double base_total = static_cast<double>(
      base.num_data_centers + base.num_cloudlets + base.num_switches);
  const double scale = static_cast<double>(total_nodes) / base_total;
  TwoTierConfig cfg = base;
  cfg.num_data_centers = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(static_cast<double>(base.num_data_centers) * scale)));
  cfg.num_switches = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(static_cast<double>(base.num_switches) * scale)));
  // Cloudlets absorb the remainder so the total is exact.
  const std::size_t used = cfg.num_data_centers + cfg.num_switches;
  cfg.num_cloudlets = total_nodes > used + 1 ? total_nodes - used : 1;
  return cfg;
}

}  // namespace edgerep
