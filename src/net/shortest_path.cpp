#include "net/shortest_path.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "util/thread_pool.h"

namespace edgerep {

std::vector<NodeId> ShortestPathTree::path_to(NodeId target) const {
  std::vector<NodeId> path;
  if (!reachable(target)) return path;
  for (NodeId v = target; v != kInvalidNode; v = parent[v]) {
    path.push_back(v);
    if (v == source) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

void DijkstraWorkspace::ensure_size(std::size_t n) {
  if (dist_.size() < n) {
    dist_.resize(n);
    parent_.resize(n);
    stamp_.resize(n, 0);
  }
}

void DijkstraWorkspace::heap_push(HeapItem item) {
  std::size_t i = heap_.size();
  heap_.push_back(item);
  while (i > 0) {
    const std::size_t p = (i - 1) / 4;
    if (!less(item, heap_[p])) break;
    heap_[i] = heap_[p];
    i = p;
  }
  heap_[i] = item;
}

DijkstraWorkspace::HeapItem DijkstraWorkspace::heap_pop() {
  const HeapItem top = heap_.front();
  const HeapItem last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t lim = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < lim; ++c) {
        if (less(heap_[c], heap_[best])) best = c;
      }
      if (!less(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

void DijkstraWorkspace::run(const Graph& g, NodeId source,
                            std::span<double> out_dist,
                            std::span<NodeId> out_parent) {
  const std::size_t n = g.num_nodes();
  if (source >= n) {
    throw std::invalid_argument("DijkstraWorkspace::run: source out of range");
  }
  assert(out_dist.size() == n);
  assert(out_parent.empty() || out_parent.size() == n);
  ensure_size(n);
  if (++generation_ == 0) {  // stamp wrap: invalidate every mark once
    std::fill(stamp_.begin(), stamp_.end(), 0u);
    generation_ = 1;
  }
  heap_.clear();
  dist_[source] = 0.0;
  parent_[source] = kInvalidNode;
  stamp_[source] = generation_;
  heap_push({0.0, source});

  // Hoist the CSR arrays out of the loop when available; otherwise fall
  // back to the per-node adjacency vectors (unsealed graphs).
  const bool csr = g.sealed();
  const std::size_t* off = csr ? g.csr_offsets().data() : nullptr;
  const HalfEdge* half = csr ? g.csr_half_edges().data() : nullptr;

  while (!heap_.empty()) {
    const HeapItem item = heap_pop();
    const NodeId v = item.node;
    if (item.dist > dist_[v]) continue;  // stale entry
    const HalfEdge* he;
    const HalfEdge* end;
    if (csr) {
      he = half + off[v];
      end = half + off[v + 1];
    } else {
      const auto nb = g.neighbors(v);
      he = nb.data();
      end = he + nb.size();
    }
    for (; he != end; ++he) {
      const NodeId to = he->to;
      const double nd = item.dist + he->delay;
      if (stamp_[to] != generation_ || nd < dist_[to]) {
        dist_[to] = nd;
        parent_[to] = v;
        stamp_[to] = generation_;
        heap_push({nd, to});
      }
    }
  }

  for (std::size_t v = 0; v < n; ++v) {
    out_dist[v] = stamp_[v] == generation_ ? dist_[v] : kInfDelay;
  }
  if (!out_parent.empty()) {
    for (std::size_t v = 0; v < n; ++v) {
      out_parent[v] = stamp_[v] == generation_ ? parent_[v] : kInvalidNode;
    }
  }
}

ShortestPathTree dijkstra(const Graph& g, NodeId source) {
  if (source >= g.num_nodes()) {
    throw std::invalid_argument("dijkstra: source out of range");
  }
  ShortestPathTree t;
  t.source = source;
  t.dist.resize(g.num_nodes());
  t.parent.resize(g.num_nodes());
  thread_local DijkstraWorkspace ws;
  ws.run(g, source, t.dist, t.parent);
  return t;
}

DelayTable DelayTable::compute(const Graph& g, std::span<const NodeId> sources,
                               bool parallel) {
  DelayTable t;
  t.n_ = g.num_nodes();
  t.sources_.assign(sources.begin(), sources.end());
  for (const NodeId s : t.sources_) {
    if (s >= t.n_) {
      throw std::invalid_argument("DelayTable::compute: source out of range");
    }
  }
  t.data_.resize(t.sources_.size() * t.n_);
  auto fill_row = [&](std::size_t r) {
    thread_local DijkstraWorkspace ws;
    ws.run(g, t.sources_[r],
           std::span<double>(t.data_.data() + r * t.n_, t.n_));
  };
  const bool fan_out =
      parallel && t.sources_.size() > 1 &&
      (t.n_ > kParallelForThreshold || t.sources_.size() > kParallelForThreshold);
  if (fan_out) {
    global_pool().parallel_for(t.sources_.size(), fill_row);
  } else {
    for (std::size_t r = 0; r < t.sources_.size(); ++r) fill_row(r);
  }
  return t;
}

DelayMatrix DelayMatrix::compute(const Graph& g, bool parallel) {
  DelayMatrix m;
  m.n_ = g.num_nodes();
  m.data_.resize(m.n_ * m.n_);
  auto fill_row = [&](std::size_t v) {
    thread_local DijkstraWorkspace ws;
    ws.run(g, static_cast<NodeId>(v),
           std::span<double>(m.data_.data() + v * m.n_, m.n_));
  };
  if (parallel && m.n_ > kParallelForThreshold) {
    global_pool().parallel_for(m.n_, fill_row);
  } else {
    for (std::size_t v = 0; v < m.n_; ++v) fill_row(v);
  }
  return m;
}

std::vector<std::uint32_t> bfs_hops(const Graph& g, NodeId source) {
  constexpr auto kUnseen = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> hops(g.num_nodes(), kUnseen);
  std::queue<NodeId> q;
  hops.at(source) = 0;
  q.push(source);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const HalfEdge& he : g.neighbors(v)) {
      if (hops[he.to] == kUnseen) {
        hops[he.to] = hops[v] + 1;
        q.push(he.to);
      }
    }
  }
  return hops;
}

std::uint32_t hop_diameter(const Graph& g) {
  constexpr auto kUnseen = static_cast<std::uint32_t>(-1);
  const std::size_t n = g.num_nodes();
  // BFS sources are independent; write each source's eccentricity to its own
  // slot and reduce afterwards, so the parallel run is deterministic.
  std::vector<std::uint32_t> ecc(n, 0);
  auto from_source = [&](std::size_t s) {
    const auto hops = bfs_hops(g, static_cast<NodeId>(s));
    std::uint32_t best = 0;
    for (const auto h : hops) {
      if (h != kUnseen) best = std::max(best, h);
    }
    ecc[s] = best;
  };
  if (n > kParallelForThreshold) {
    global_pool().parallel_for(n, from_source);
  } else {
    for (std::size_t s = 0; s < n; ++s) from_source(s);
  }
  std::uint32_t best = 0;
  for (const auto e : ecc) best = std::max(best, e);
  return best;
}

}  // namespace edgerep
