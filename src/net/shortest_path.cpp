#include "net/shortest_path.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "util/thread_pool.h"

namespace edgerep {

std::vector<NodeId> ShortestPathTree::path_to(NodeId target) const {
  std::vector<NodeId> path;
  if (!reachable(target)) return path;
  for (NodeId v = target; v != kInvalidNode; v = parent[v]) {
    path.push_back(v);
    if (v == source) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ShortestPathTree dijkstra(const Graph& g, NodeId source) {
  if (source >= g.num_nodes()) {
    throw std::invalid_argument("dijkstra: source out of range");
  }
  ShortestPathTree t;
  t.source = source;
  t.dist.assign(g.num_nodes(), kInfDelay);
  t.parent.assign(g.num_nodes(), kInvalidNode);
  using Item = std::pair<double, NodeId>;  // (dist, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  t.dist[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > t.dist[v]) continue;  // stale entry
    for (const HalfEdge& he : g.neighbors(v)) {
      const double nd = d + he.delay;
      if (nd < t.dist[he.to]) {
        t.dist[he.to] = nd;
        t.parent[he.to] = v;
        heap.emplace(nd, he.to);
      }
    }
  }
  return t;
}

DelayMatrix DelayMatrix::compute(const Graph& g, bool parallel) {
  DelayMatrix m;
  m.n_ = g.num_nodes();
  m.data_.assign(m.n_ * m.n_, kInfDelay);
  auto fill_row = [&](std::size_t v) {
    const auto t = dijkstra(g, static_cast<NodeId>(v));
    std::copy(t.dist.begin(), t.dist.end(), m.data_.begin() + v * m.n_);
  };
  if (parallel && m.n_ > 64) {
    global_pool().parallel_for(m.n_, fill_row);
  } else {
    for (std::size_t v = 0; v < m.n_; ++v) fill_row(v);
  }
  return m;
}

std::vector<std::uint32_t> bfs_hops(const Graph& g, NodeId source) {
  constexpr auto kUnseen = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> hops(g.num_nodes(), kUnseen);
  std::queue<NodeId> q;
  hops.at(source) = 0;
  q.push(source);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const HalfEdge& he : g.neighbors(v)) {
      if (hops[he.to] == kUnseen) {
        hops[he.to] = hops[v] + 1;
        q.push(he.to);
      }
    }
  }
  return hops;
}

std::uint32_t hop_diameter(const Graph& g) {
  constexpr auto kUnseen = static_cast<std::uint32_t>(-1);
  const std::size_t n = g.num_nodes();
  // BFS sources are independent; write each source's eccentricity to its own
  // slot and reduce afterwards, so the parallel run is deterministic.
  std::vector<std::uint32_t> ecc(n, 0);
  auto from_source = [&](std::size_t s) {
    const auto hops = bfs_hops(g, static_cast<NodeId>(s));
    std::uint32_t best = 0;
    for (const auto h : hops) {
      if (h != kUnseen) best = std::max(best, h);
    }
    ecc[s] = best;
  };
  if (n > 64) {
    global_pool().parallel_for(n, from_source);
  } else {
    for (std::size_t s = 0; s < n; ++s) from_source(s);
  }
  std::uint32_t best = 0;
  for (const auto e : ecc) best = std::max(best, e);
  return best;
}

}  // namespace edgerep
