// Topology serialization: Graphviz DOT export for visual inspection and a
// round-trippable edge-list text format ("ncol"-style with roles) so that
// generated topologies can be archived with experiment results.
#pragma once

#include <iosfwd>

#include "net/graph.h"

namespace edgerep {

/// Write Graphviz DOT; node shape/color encodes the role.
void write_dot(std::ostream& os, const Graph& g);

/// Text format:
///   node <id> <role>
///   edge <u> <v> <delay> [capacity]
/// The capacity token is omitted when it is the default 1.0, so files
/// written before capacities existed and files of capacity-less graphs are
/// byte-identical to the old format.  Lines starting with '#' are comments.
void write_topology(std::ostream& os, const Graph& g);

/// Parse the `write_topology` format.  Throws std::runtime_error on
/// malformed input (unknown keyword/role, edge before nodes, bad ids).
Graph read_topology(std::istream& is);

/// Parse a role keyword as emitted by to_string(NodeRole).
NodeRole parse_role(const std::string& token);

}  // namespace edgerep
