// Shortest-path edge routing shared by the testbed simulator and the
// online flow backend.
//
// The delay model only needs minimum *delays* (DelayTable); the flow-level
// network model additionally needs the concrete edge sequence each transfer
// occupies.  `RouteTable` stores one shortest-path parent forest per source
// (the placement sites' nodes, mirroring DelayTable rows) and extracts the
// edge ids of a source→target path on demand, picking the cheapest parallel
// edge at every hop with the same tie-break the testbed simulator has
// always used (first cheapest wins), so both transfer models route
// identically.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/graph.h"

namespace edgerep {

/// Edge sequence of a node path, taking the cheapest parallel edge at each
/// hop.  Throws std::logic_error when consecutive nodes are not adjacent
/// ("broken shortest path").
std::vector<EdgeId> path_edges(const Graph& g,
                               const std::vector<NodeId>& nodes);

/// Per-source shortest-path parent forests with edge-path extraction.
/// Rows follow the source order handed to compute(); row r of a table built
/// from the placement sites' nodes is the route forest of site r.  Rows are
/// independent Dijkstra runs and deterministic at any thread count (the
/// workspace engine's strict (dist, node) tie-break fixes every parent).
class RouteTable {
 public:
  RouteTable() = default;

  /// Throws std::invalid_argument when a source is out of range.
  static RouteTable compute(const Graph& g, std::span<const NodeId> sources,
                            bool parallel = true);

  [[nodiscard]] std::size_t rows() const noexcept { return sources_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return n_; }
  [[nodiscard]] std::span<const NodeId> sources() const noexcept {
    return sources_;
  }

  /// Edge ids of the shortest path source(row) → target, in travel order.
  /// `out` is cleared and refilled (reusing its capacity keeps repeated
  /// extraction allocation-free).  Empty when target == source(row).
  /// Returns false (with `out` cleared) when target is unreachable.
  bool edge_path(const Graph& g, std::size_t row, NodeId target,
                 std::vector<EdgeId>& out) const;

 private:
  std::size_t n_ = 0;
  std::vector<NodeId> sources_;
  std::vector<NodeId> parent_;  ///< rows() × n_, row-major parent forests
};

}  // namespace edgerep
