#include "net/io.h"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace edgerep {

namespace {

const char* dot_color(NodeRole role) {
  switch (role) {
    case NodeRole::kDataCenter:
      return "lightblue";
    case NodeRole::kCloudlet:
      return "palegreen";
    case NodeRole::kSwitch:
      return "gray80";
    case NodeRole::kBaseStation:
      return "khaki";
  }
  return "white";
}

}  // namespace

void write_dot(std::ostream& os, const Graph& g) {
  os << "graph edgecloud {\n  node [style=filled];\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  n" << v << " [label=\"" << to_string(g.role(v)) << v
       << "\", fillcolor=" << dot_color(g.role(v)) << "];\n";
  }
  for (const Edge& e : g.edges()) {
    os << "  n" << e.u << " -- n" << e.v << " [label=\"" << e.delay << "\"];\n";
  }
  os << "}\n";
}

void write_topology(std::ostream& os, const Graph& g) {
  // Full round-trip precision: delays must survive write → read exactly.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "# edgerep topology: " << g.num_nodes() << " nodes, " << g.num_edges()
     << " edges\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "node " << v << ' ' << to_string(g.role(v)) << '\n';
  }
  for (const Edge& e : g.edges()) {
    os << "edge " << e.u << ' ' << e.v << ' ' << e.delay;
    if (e.capacity != 1.0) os << ' ' << e.capacity;
    os << '\n';
  }
}

NodeRole parse_role(const std::string& token) {
  if (token == "dc") return NodeRole::kDataCenter;
  if (token == "cloudlet") return NodeRole::kCloudlet;
  if (token == "switch") return NodeRole::kSwitch;
  if (token == "bs") return NodeRole::kBaseStation;
  throw std::runtime_error("read_topology: unknown role '" + token + "'");
}

Graph read_topology(std::istream& is) {
  Graph g;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string kind;
    ss >> kind;
    auto fail = [&](const std::string& why) {
      throw std::runtime_error("read_topology: line " + std::to_string(lineno) +
                               ": " + why);
    };
    if (kind == "node") {
      std::uint64_t id = 0;
      std::string role;
      if (!(ss >> id >> role)) fail("malformed node line");
      if (id != g.num_nodes()) fail("node ids must be dense and in order");
      g.add_node(parse_role(role));
    } else if (kind == "edge") {
      std::uint64_t u = 0;
      std::uint64_t v = 0;
      double delay = 0.0;
      if (!(ss >> u >> v >> delay)) fail("malformed edge line");
      if (u >= g.num_nodes() || v >= g.num_nodes()) fail("edge id out of range");
      double capacity = 1.0;  // optional trailing token, pre-capacity default
      if (!(ss >> capacity)) capacity = 1.0;
      if (capacity <= 0.0) fail("edge capacity must be > 0");
      g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v), delay,
                 capacity);
    } else {
      fail("unknown keyword '" + kind + "'");
    }
  }
  return g;
}

}  // namespace edgerep
