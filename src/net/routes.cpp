#include "net/routes.h"

#include <algorithm>
#include <stdexcept>

#include "net/shortest_path.h"
#include "util/thread_pool.h"

namespace edgerep {

std::vector<EdgeId> path_edges(const Graph& g,
                               const std::vector<NodeId>& nodes) {
  std::vector<EdgeId> edges;
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    EdgeId best = kInvalidEdge;
    for (const HalfEdge& he : g.neighbors(nodes[i])) {
      if (he.to != nodes[i + 1]) continue;
      if (best == kInvalidEdge || he.delay < g.edge(best).delay) {
        best = he.edge;
      }
    }
    if (best == kInvalidEdge) {
      throw std::logic_error("path_edges: broken shortest path");
    }
    edges.push_back(best);
  }
  return edges;
}

RouteTable RouteTable::compute(const Graph& g,
                               std::span<const NodeId> sources,
                               bool parallel) {
  RouteTable t;
  t.n_ = g.num_nodes();
  t.sources_.assign(sources.begin(), sources.end());
  for (const NodeId s : t.sources_) {
    if (s >= t.n_) {
      throw std::invalid_argument("RouteTable::compute: source out of range");
    }
  }
  t.parent_.resize(t.sources_.size() * t.n_);
  auto fill_row = [&](std::size_t r) {
    thread_local DijkstraWorkspace ws;
    thread_local std::vector<double> dist;
    dist.resize(t.n_);
    ws.run(g, t.sources_[r], dist,
           std::span<NodeId>(t.parent_.data() + r * t.n_, t.n_));
  };
  const bool fan_out =
      parallel && t.sources_.size() > 1 &&
      (t.n_ > kParallelForThreshold ||
       t.sources_.size() > kParallelForThreshold);
  if (fan_out) {
    global_pool().parallel_for(t.sources_.size(), fill_row);
  } else {
    for (std::size_t r = 0; r < t.sources_.size(); ++r) fill_row(r);
  }
  return t;
}

bool RouteTable::edge_path(const Graph& g, std::size_t row, NodeId target,
                           std::vector<EdgeId>& out) const {
  out.clear();
  if (row >= sources_.size() || target >= n_) {
    throw std::out_of_range("RouteTable::edge_path: row or target out of range");
  }
  const NodeId source = sources_[row];
  if (target == source) return true;
  const NodeId* parent = parent_.data() + row * n_;
  // Walk target → source through the parent forest, resolving each hop to
  // the cheapest parallel edge (same tie-break as path_edges: first
  // cheapest wins when delays are equal).
  for (NodeId v = target; v != source;) {
    const NodeId p = parent[v];
    if (p == kInvalidNode) {  // unreachable from this source
      out.clear();
      return false;
    }
    EdgeId best = kInvalidEdge;
    for (const HalfEdge& he : g.neighbors(p)) {
      if (he.to != v) continue;
      if (best == kInvalidEdge || he.delay < g.edge(best).delay) {
        best = he.edge;
      }
    }
    if (best == kInvalidEdge) {
      throw std::logic_error("RouteTable::edge_path: broken parent forest");
    }
    out.push_back(best);
    v = p;
  }
  std::reverse(out.begin(), out.end());
  return true;
}

}  // namespace edgerep
