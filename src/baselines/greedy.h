// Greedy-S / Greedy-G baseline (paper §4.1, first benchmark):
//
//   "It selects a data center or cloudlet with the largest available
//    computing resource to place a replica of a dataset.  If the delay
//    requirement cannot be satisfied, it then selects a data center or
//    cloudlet with the second largest available computing resource to place
//    the replica.  This procedure continues until the query is admitted or
//    there are already K replicas of the dataset in the system."
//
// Faithfully to that description, the replica is placed at the
// largest-capacity site *before* the delay requirement is checked, so a
// failed attempt permanently consumes replica budget — the main reason the
// paper observes Greedy trailing Appro by several times.
#pragma once

#include "baselines/baseline.h"
#include "cloud/instance.h"

namespace edgerep {

struct GreedyOptions {
  /// Default (false) reproduces the paper's per-demand procedure: a query
  /// can end up partially assigned, stranding capacity on demands that
  /// never complete.  When true, each query's demands run under a plan
  /// savepoint and roll back unless every demand lands (wasted replica
  /// placements from failed delay checks roll back too) — the same
  /// transaction layer the Appro engines use.
  bool atomic_queries = false;
};

/// Special case: every query must demand exactly one dataset (throws
/// std::invalid_argument otherwise).
BaselineResult greedy_s(const Instance& inst, const GreedyOptions& opts = {});

/// General case: the same per-demand procedure for multi-dataset queries.
BaselineResult greedy_g(const Instance& inst, const GreedyOptions& opts = {});

}  // namespace edgerep
