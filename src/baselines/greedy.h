// Greedy-S / Greedy-G baseline (paper §4.1, first benchmark):
//
//   "It selects a data center or cloudlet with the largest available
//    computing resource to place a replica of a dataset.  If the delay
//    requirement cannot be satisfied, it then selects a data center or
//    cloudlet with the second largest available computing resource to place
//    the replica.  This procedure continues until the query is admitted or
//    there are already K replicas of the dataset in the system."
//
// Faithfully to that description, the replica is placed at the
// largest-capacity site *before* the delay requirement is checked, so a
// failed attempt permanently consumes replica budget — the main reason the
// paper observes Greedy trailing Appro by several times.
#pragma once

#include "baselines/baseline.h"
#include "cloud/instance.h"

namespace edgerep {

/// Special case: every query must demand exactly one dataset (throws
/// std::invalid_argument otherwise).
BaselineResult greedy_s(const Instance& inst);

/// General case: the same per-demand procedure for multi-dataset queries.
BaselineResult greedy_g(const Instance& inst);

}  // namespace edgerep
