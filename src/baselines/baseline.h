// Shared result type for the benchmark baselines (paper §4.1).
#pragma once

#include "cloud/plan.h"

namespace edgerep {

struct BaselineResult {
  ReplicaPlan plan;
  PlanMetrics metrics;
  std::size_t demands_assigned = 0;
  std::size_t demands_rejected = 0;
};

}  // namespace edgerep
