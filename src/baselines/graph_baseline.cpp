#include "baselines/graph_baseline.h"

#include <stdexcept>
#include <vector>

#include "cloud/delay.h"

namespace edgerep {

PartitionProblem build_affinity_problem(const Instance& inst) {
  PartitionProblem p;
  p.num_vertices = inst.queries().size();
  p.vertex_weight.resize(p.num_vertices);
  for (const Query& q : inst.queries()) {
    double demand = 0.0;
    for (const DatasetDemand& dd : q.demands) {
      demand += resource_demand(inst, q, dd);
    }
    p.vertex_weight[q.id] = demand;
  }
  // Edge weight = total volume of datasets both queries demand.
  for (QueryId a = 0; a < p.num_vertices; ++a) {
    for (QueryId b = a + 1; b < p.num_vertices; ++b) {
      double shared = 0.0;
      for (const DatasetDemand& dd : inst.query(a).demands) {
        if (inst.query(b).demands_dataset(dd.dataset)) {
          shared += inst.dataset(dd.dataset).volume;
        }
      }
      if (shared > 0.0) {
        p.edges.push_back({a, b, shared});
      }
    }
  }
  p.num_parts = inst.sites().size();
  p.part_capacity.resize(p.num_parts);
  for (const Site& s : inst.sites()) p.part_capacity[s.id] = s.available;
  return p;
}

namespace {

bool admit_demand_at(const Instance& inst, const Query& q,
                     const DatasetDemand& dd, SiteId l, ReplicaPlan& plan) {
  const double need = resource_demand(inst, q, dd);
  if (!deadline_ok(inst, q, dd, l) || !plan.fits(l, need)) return false;
  if (!plan.has_replica(dd.dataset, l)) {
    if (plan.replica_count(dd.dataset) >= inst.max_replicas()) return false;
    plan.place_replica(dd.dataset, l);
  }
  plan.assign(q.id, dd.dataset, l);
  return true;
}

BaselineResult run(const Instance& inst, const GraphBaselineOptions& opts) {
  if (!inst.finalized()) {
    throw std::invalid_argument("graph baseline: instance not finalized");
  }
  const PartitionProblem problem = build_affinity_problem(inst);
  const PartitionResult partition = partition_graph(problem, opts.partition);

  BaselineResult res{ReplicaPlan(inst), {}, 0, 0};
  for (const Query& q : inst.queries()) {
    const std::uint32_t home_part = partition.part_of[q.id];
    for (const DatasetDemand& dd : q.demands) {
      bool ok = false;
      // Preferred: the query's partition site.
      if (home_part != kUnassignedPart) {
        ok = admit_demand_at(inst, q, dd, static_cast<SiteId>(home_part),
                             res.plan);
      }
      // Spill: any site already holding a replica of the dataset.
      if (!ok) {
        for (const SiteId l : res.plan.replica_sites(dd.dataset)) {
          if (admit_demand_at(inst, q, dd, l, res.plan)) {
            ok = true;
            break;
          }
        }
      }
      if (ok) {
        ++res.demands_assigned;
      } else {
        ++res.demands_rejected;
      }
    }
  }
  res.metrics = evaluate(res.plan);
  return res;
}

}  // namespace

BaselineResult graph_s(const Instance& inst, const GraphBaselineOptions& opts) {
  for (const Query& q : inst.queries()) {
    if (q.demands.size() != 1) {
      throw std::invalid_argument(
          "graph_s: special case requires single-dataset queries");
    }
  }
  return run(inst, opts);
}

BaselineResult graph_g(const Instance& inst, const GraphBaselineOptions& opts) {
  return run(inst, opts);
}

}  // namespace edgerep
