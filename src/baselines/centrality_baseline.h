// Centrality baseline (not in the paper; a classic CDN/caching heuristic
// added as an extra comparison point): place replicas at the most *central*
// placement nodes of the delay-weighted topology — central nodes minimize
// expected transfer delay to uniformly distributed consumers — then admit
// demands in centrality order subject to deadline and capacity.
//
// Like Popularity it ignores the actual query population when ranking
// sites; unlike Popularity the ranking is topology-driven and static.
#pragma once

#include "baselines/baseline.h"
#include "cloud/instance.h"

namespace edgerep {

enum class CentralityKind : std::uint8_t { kCloseness, kBetweenness };

/// Special case (single-dataset queries; throws otherwise).
BaselineResult centrality_s(const Instance& inst,
                            CentralityKind kind = CentralityKind::kCloseness);

/// General case.
BaselineResult centrality_g(const Instance& inst,
                            CentralityKind kind = CentralityKind::kCloseness);

}  // namespace edgerep
