// Graph-S / Graph-G baseline (paper §4.1, second benchmark, after Golab et
// al., "Distributed data placement to minimize communication costs via graph
// partitioning", SSDBM'14):
//
//   "places K replicas for each dataset at data centers or cloudlets, if the
//    delay requirement of the query can be satisfied by evaluating the
//    replica at the data center or the cloudlet ... It then makes a graph
//    partitioning with maximum volume of datasets demanded by admitted
//    queries."
//
// Realization:
//  1. Build the query-affinity graph: one vertex per query (weight = its
//     computing-resource demand), an edge between two queries weighted by
//     the volume of the datasets they share.
//  2. Partition it across the sites (part capacity = available resource)
//     with the KL/FM partitioner, so data-sharing queries co-locate.
//  3. For each query in its assigned part, place replicas of its datasets at
//     that site while the delay requirement holds and the budget K allows,
//     then assign; spill to other replica-holding sites when the home part
//     fails.
#pragma once

#include "baselines/baseline.h"
#include "cloud/instance.h"
#include "part/partitioner.h"

namespace edgerep {

struct GraphBaselineOptions {
  PartitionOptions partition;
};

/// Special case (single-dataset queries; throws otherwise).
BaselineResult graph_s(const Instance& inst,
                       const GraphBaselineOptions& opts = {});

/// General case.
BaselineResult graph_g(const Instance& inst,
                       const GraphBaselineOptions& opts = {});

/// Exposed for tests: the affinity graph of step 1 (vertices = queries).
PartitionProblem build_affinity_problem(const Instance& inst);

}  // namespace edgerep
