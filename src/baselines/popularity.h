// Popularity-S / Popularity-G baseline (paper §4.1, testbed benchmark,
// after Hou et al., "Proactive content caching by exploiting transfer
// learning for mobile edge computing"):
//
//   "It first calculates the popularity of a node (cloudlet and data
//    center) according to the ratio of the number of dataset replicas on
//    the node to the total number of dataset replicas of all nodes.  It
//    then selects a node with the highest popularity for each dataset, and
//    places a replica of the dataset if the delay requirement of a query
//    can be satisfied; otherwise, it then selects another node with the
//    second highest popularity to place the replica; this procedure
//    continues until the query is admitted or there are already K replicas
//    of the dataset."
//
// Popularity is recomputed as replicas accumulate, seeded by each dataset's
// origin replica, so popular nodes attract ever more replicas — the
// rich-get-richer behaviour that ignores capacity and deadline structure.
#pragma once

#include "baselines/baseline.h"
#include "cloud/instance.h"

namespace edgerep {

/// Special case (single-dataset queries; throws otherwise).
BaselineResult popularity_s(const Instance& inst);

/// General case.
BaselineResult popularity_g(const Instance& inst);

}  // namespace edgerep
