#include "baselines/greedy.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "cloud/delay.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace edgerep {

namespace {

/// Sites ordered by residual capacity, largest first (recomputed per demand
/// because assignments change the residuals).
std::vector<SiteId> by_residual_desc(const Instance& inst,
                                     const ReplicaPlan& plan) {
  std::vector<SiteId> order(inst.sites().size());
  for (SiteId l = 0; l < order.size(); ++l) order[l] = l;
  std::stable_sort(order.begin(), order.end(), [&](SiteId a, SiteId b) {
    return plan.residual(a) > plan.residual(b);
  });
  return order;
}

/// Audit-only classification mirroring core/appro.cpp's precedence
/// (deadline < replica budget < capacity), evaluated against the plan state
/// *after* the failed greedy attempt — greedy burns budget on replicas it
/// places speculatively, and that spent budget is what binds.
obs::AuditReason classify_rejection_greedy(const Instance& inst,
                                           const Query& q,
                                           const DatasetDemand& dd,
                                           const ReplicaPlan& plan,
                                           double need) {
  bool any_deadline_ok = false;
  bool budget_blocked = false;
  const bool budget_left =
      plan.replica_count(dd.dataset) < inst.max_replicas();
  for (const Site& s : inst.sites()) {
    if (!deadline_ok(inst, q, dd, s.id)) continue;
    any_deadline_ok = true;
    if (!plan.fits(s.id, need)) continue;
    if (!budget_left && !plan.has_replica(dd.dataset, s.id)) {
      budget_blocked = true;
    }
  }
  if (!any_deadline_ok) return obs::AuditReason::kNoDeadlineFeasibleSite;
  return budget_blocked ? obs::AuditReason::kReplicaBudgetSpent
                        : obs::AuditReason::kCapacityExhausted;
}

bool admit_demand_greedy(const Instance& inst, const Query& q,
                         const DatasetDemand& dd, ReplicaPlan& plan,
                         std::size_t di, obs::AuditEntry* audit) {
  const double need = resource_demand(inst, q, dd);
  if (audit != nullptr) {
    audit->query = q.id;
    audit->demand = static_cast<std::uint32_t>(di);
    audit->dataset = dd.dataset;
  }
  auto admitted_at = [&](SiteId l, bool placed) {
    if (audit != nullptr) {
      audit->admitted = true;
      audit->reason = obs::AuditReason::kAdmitted;
      audit->site = l;
      audit->placed_replica = placed;
    }
    return true;
  };
  // First try sites that already hold a replica (no budget cost), largest
  // residual capacity first.
  for (const SiteId l : by_residual_desc(inst, plan)) {
    if (!plan.has_replica(dd.dataset, l)) continue;
    if (deadline_ok(inst, q, dd, l) && plan.fits(l, need)) {
      plan.assign(q.id, dd.dataset, l);
      return admitted_at(l, /*placed=*/false);
    }
  }
  // Then burn replica budget in capacity order: place at the largest
  // available site, check the deadline afterwards, move on if it fails.
  for (const SiteId l : by_residual_desc(inst, plan)) {
    if (plan.has_replica(dd.dataset, l)) continue;
    if (plan.replica_count(dd.dataset) >= inst.max_replicas()) break;
    plan.place_replica(dd.dataset, l);  // spent even if the check fails
    if (deadline_ok(inst, q, dd, l) && plan.fits(l, need)) {
      plan.assign(q.id, dd.dataset, l);
      return admitted_at(l, /*placed=*/true);
    }
  }
  if (audit != nullptr) {
    audit->admitted = false;
    audit->reason = classify_rejection_greedy(inst, q, dd, plan, need);
  }
  return false;
}

BaselineResult run(const Instance& inst, const GreedyOptions& opts) {
  EDGEREP_TRACE_SCOPE("greedy.run");
  if (!inst.finalized()) {
    throw std::invalid_argument("greedy: instance not finalized");
  }
  std::vector<obs::AuditEntry> audit_entries;
  std::vector<obs::AuditEntry>* audit =
      obs::audit_enabled() ? &audit_entries : nullptr;
  BaselineResult res{ReplicaPlan(inst), {}, 0, 0};
  for (const Query& q : inst.queries()) {
    const std::size_t audit_begin = audit != nullptr ? audit->size() : 0;
    if (opts.atomic_queries) {
      const ReplicaPlan::Savepoint sp = res.plan.savepoint();
      bool all_ok = true;
      std::size_t di = 0;
      for (const DatasetDemand& dd : q.demands) {
        obs::AuditEntry* entry = nullptr;
        if (audit != nullptr) entry = &audit->emplace_back();
        if (!admit_demand_greedy(inst, q, dd, res.plan, di, entry)) {
          all_ok = false;
          break;
        }
        ++di;
      }
      if (all_ok) {
        res.plan.commit();
        res.demands_assigned += q.demands.size();
      } else {
        res.plan.rollback_to(sp);
        res.plan.commit();
        res.demands_rejected += q.demands.size();
        if (audit != nullptr) {
          // Every sibling admitted before the failing demand was undone.
          for (std::size_t i = audit_begin; i + 1 < audit->size(); ++i) {
            (*audit)[i].admitted = false;
            (*audit)[i].reason = obs::AuditReason::kAtomicRollback;
          }
        }
      }
    } else {
      std::size_t di = 0;
      for (const DatasetDemand& dd : q.demands) {
        obs::AuditEntry* entry = nullptr;
        if (audit != nullptr) entry = &audit->emplace_back();
        if (admit_demand_greedy(inst, q, dd, res.plan, di, entry)) {
          ++res.demands_assigned;
        } else {
          ++res.demands_rejected;
        }
        ++di;
      }
    }
  }
  res.metrics = evaluate(res.plan);
  if (audit != nullptr) {
    for (obs::AuditEntry& e : audit_entries) e.algorithm = "greedy";
    obs::audit_log().record_batch(audit_entries);
  }
  if (obs::metrics_enabled()) {
    static obs::Counter& runs = obs::metrics().counter(
        "edgerep_greedy_runs_total", "greedy baseline runs");
    static obs::Counter& dem_adm = obs::metrics().counter(
        "edgerep_greedy_demands_admitted_total",
        "demands assigned by the greedy baseline");
    static obs::Counter& dem_rej = obs::metrics().counter(
        "edgerep_greedy_demands_rejected_total",
        "demands rejected by the greedy baseline");
    static obs::Counter& replicas = obs::metrics().counter(
        "edgerep_greedy_replicas_placed_total",
        "replicas in plans produced by the greedy baseline");
    runs.inc();
    dem_adm.inc(res.demands_assigned);
    dem_rej.inc(res.demands_rejected);
    replicas.inc(res.plan.total_replicas());
  }
  return res;
}

}  // namespace

BaselineResult greedy_s(const Instance& inst, const GreedyOptions& opts) {
  for (const Query& q : inst.queries()) {
    if (q.demands.size() != 1) {
      throw std::invalid_argument(
          "greedy_s: special case requires single-dataset queries");
    }
  }
  return run(inst, opts);
}

BaselineResult greedy_g(const Instance& inst, const GreedyOptions& opts) {
  return run(inst, opts);
}

}  // namespace edgerep
