#include "baselines/greedy.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "cloud/delay.h"

namespace edgerep {

namespace {

/// Sites ordered by residual capacity, largest first (recomputed per demand
/// because assignments change the residuals).
std::vector<SiteId> by_residual_desc(const Instance& inst,
                                     const ReplicaPlan& plan) {
  std::vector<SiteId> order(inst.sites().size());
  for (SiteId l = 0; l < order.size(); ++l) order[l] = l;
  std::stable_sort(order.begin(), order.end(), [&](SiteId a, SiteId b) {
    return plan.residual(a) > plan.residual(b);
  });
  return order;
}

bool admit_demand_greedy(const Instance& inst, const Query& q,
                         const DatasetDemand& dd, ReplicaPlan& plan) {
  const double need = resource_demand(inst, q, dd);
  // First try sites that already hold a replica (no budget cost), largest
  // residual capacity first.
  for (const SiteId l : by_residual_desc(inst, plan)) {
    if (!plan.has_replica(dd.dataset, l)) continue;
    if (deadline_ok(inst, q, dd, l) && plan.fits(l, need)) {
      plan.assign(q.id, dd.dataset, l);
      return true;
    }
  }
  // Then burn replica budget in capacity order: place at the largest
  // available site, check the deadline afterwards, move on if it fails.
  for (const SiteId l : by_residual_desc(inst, plan)) {
    if (plan.has_replica(dd.dataset, l)) continue;
    if (plan.replica_count(dd.dataset) >= inst.max_replicas()) break;
    plan.place_replica(dd.dataset, l);  // spent even if the check fails
    if (deadline_ok(inst, q, dd, l) && plan.fits(l, need)) {
      plan.assign(q.id, dd.dataset, l);
      return true;
    }
  }
  return false;
}

BaselineResult run(const Instance& inst, const GreedyOptions& opts) {
  if (!inst.finalized()) {
    throw std::invalid_argument("greedy: instance not finalized");
  }
  BaselineResult res{ReplicaPlan(inst), {}, 0, 0};
  for (const Query& q : inst.queries()) {
    if (opts.atomic_queries) {
      const ReplicaPlan::Savepoint sp = res.plan.savepoint();
      bool all_ok = true;
      for (const DatasetDemand& dd : q.demands) {
        if (!admit_demand_greedy(inst, q, dd, res.plan)) {
          all_ok = false;
          break;
        }
      }
      if (all_ok) {
        res.plan.commit();
        res.demands_assigned += q.demands.size();
      } else {
        res.plan.rollback_to(sp);
        res.plan.commit();
        res.demands_rejected += q.demands.size();
      }
    } else {
      for (const DatasetDemand& dd : q.demands) {
        if (admit_demand_greedy(inst, q, dd, res.plan)) {
          ++res.demands_assigned;
        } else {
          ++res.demands_rejected;
        }
      }
    }
  }
  res.metrics = evaluate(res.plan);
  return res;
}

}  // namespace

BaselineResult greedy_s(const Instance& inst, const GreedyOptions& opts) {
  for (const Query& q : inst.queries()) {
    if (q.demands.size() != 1) {
      throw std::invalid_argument(
          "greedy_s: special case requires single-dataset queries");
    }
  }
  return run(inst, opts);
}

BaselineResult greedy_g(const Instance& inst, const GreedyOptions& opts) {
  return run(inst, opts);
}

}  // namespace edgerep
