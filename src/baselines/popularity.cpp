#include "baselines/popularity.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "cloud/delay.h"

namespace edgerep {

namespace {

/// Replicas per site under `plan`, counting each dataset's origin copy.
std::vector<std::size_t> replica_counts(const Instance& inst,
                                        const ReplicaPlan& plan) {
  std::vector<std::size_t> counts(inst.sites().size(), 0);
  for (const Dataset& d : inst.datasets()) {
    for (const SiteId l : plan.replica_sites(d.id)) ++counts[l];
    if (d.origin != kInvalidSite && !plan.has_replica(d.id, d.origin)) {
      ++counts[d.origin];
    }
  }
  return counts;
}

/// Sites by popularity (replica share), most popular first; capacity breaks
/// ties so the very first placements are not arbitrary.
std::vector<SiteId> by_popularity(const Instance& inst,
                                  const ReplicaPlan& plan) {
  const auto counts = replica_counts(inst, plan);
  std::vector<SiteId> order(inst.sites().size());
  for (SiteId l = 0; l < order.size(); ++l) order[l] = l;
  std::stable_sort(order.begin(), order.end(), [&](SiteId a, SiteId b) {
    if (counts[a] != counts[b]) return counts[a] > counts[b];
    return inst.site(a).available > inst.site(b).available;
  });
  return order;
}

bool admit_demand_popularity(const Instance& inst, const Query& q,
                             const DatasetDemand& dd, ReplicaPlan& plan) {
  const double need = resource_demand(inst, q, dd);
  const auto order = by_popularity(inst, plan);
  // Reuse an existing replica at the most popular site that works.
  for (const SiteId l : order) {
    if (!plan.has_replica(dd.dataset, l)) continue;
    if (deadline_ok(inst, q, dd, l) && plan.fits(l, need)) {
      plan.assign(q.id, dd.dataset, l);
      return true;
    }
  }
  // Otherwise place replicas in popularity order until admitted or K spent.
  for (const SiteId l : order) {
    if (plan.has_replica(dd.dataset, l)) continue;
    if (plan.replica_count(dd.dataset) >= inst.max_replicas()) break;
    if (!deadline_ok(inst, q, dd, l)) continue;  // "places ... if the delay
                                                 // requirement can be satisfied"
    plan.place_replica(dd.dataset, l);
    if (plan.fits(l, need)) {
      plan.assign(q.id, dd.dataset, l);
      return true;
    }
  }
  return false;
}

BaselineResult run(const Instance& inst) {
  if (!inst.finalized()) {
    throw std::invalid_argument("popularity: instance not finalized");
  }
  BaselineResult res{ReplicaPlan(inst), {}, 0, 0};
  for (const Query& q : inst.queries()) {
    for (const DatasetDemand& dd : q.demands) {
      if (admit_demand_popularity(inst, q, dd, res.plan)) {
        ++res.demands_assigned;
      } else {
        ++res.demands_rejected;
      }
    }
  }
  res.metrics = evaluate(res.plan);
  return res;
}

}  // namespace

BaselineResult popularity_s(const Instance& inst) {
  for (const Query& q : inst.queries()) {
    if (q.demands.size() != 1) {
      throw std::invalid_argument(
          "popularity_s: special case requires single-dataset queries");
    }
  }
  return run(inst);
}

BaselineResult popularity_g(const Instance& inst) { return run(inst); }

}  // namespace edgerep
