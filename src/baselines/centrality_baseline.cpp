#include "baselines/centrality_baseline.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "cloud/delay.h"
#include "net/centrality.h"

namespace edgerep {

namespace {

/// Placement sites ranked by the chosen centrality of their graph node,
/// highest first (capacity breaks ties).
std::vector<SiteId> by_centrality(const Instance& inst, CentralityKind kind) {
  const std::vector<double> score = kind == CentralityKind::kCloseness
                                        ? closeness_centrality(inst.graph())
                                        : betweenness_centrality(inst.graph());
  std::vector<SiteId> order(inst.sites().size());
  for (SiteId l = 0; l < order.size(); ++l) order[l] = l;
  std::stable_sort(order.begin(), order.end(), [&](SiteId a, SiteId b) {
    const double sa = score[inst.site(a).node];
    const double sb = score[inst.site(b).node];
    if (sa != sb) return sa > sb;
    return inst.site(a).available > inst.site(b).available;
  });
  return order;
}

bool admit_demand(const Instance& inst, const Query& q,
                  const DatasetDemand& dd, const std::vector<SiteId>& order,
                  ReplicaPlan& plan) {
  const double need = resource_demand(inst, q, dd);
  // Reuse an existing replica at the most central feasible site.
  for (const SiteId l : order) {
    if (!plan.has_replica(dd.dataset, l)) continue;
    if (deadline_ok(inst, q, dd, l) && plan.fits(l, need)) {
      plan.assign(q.id, dd.dataset, l);
      return true;
    }
  }
  // Place new replicas in centrality order where the deadline holds.
  for (const SiteId l : order) {
    if (plan.has_replica(dd.dataset, l)) continue;
    if (plan.replica_count(dd.dataset) >= inst.max_replicas()) break;
    if (!deadline_ok(inst, q, dd, l)) continue;
    plan.place_replica(dd.dataset, l);
    if (plan.fits(l, need)) {
      plan.assign(q.id, dd.dataset, l);
      return true;
    }
  }
  return false;
}

BaselineResult run(const Instance& inst, CentralityKind kind) {
  if (!inst.finalized()) {
    throw std::invalid_argument("centrality: instance not finalized");
  }
  const std::vector<SiteId> order = by_centrality(inst, kind);
  BaselineResult res{ReplicaPlan(inst), {}, 0, 0};
  for (const Query& q : inst.queries()) {
    for (const DatasetDemand& dd : q.demands) {
      if (admit_demand(inst, q, dd, order, res.plan)) {
        ++res.demands_assigned;
      } else {
        ++res.demands_rejected;
      }
    }
  }
  res.metrics = evaluate(res.plan);
  return res;
}

}  // namespace

BaselineResult centrality_s(const Instance& inst, CentralityKind kind) {
  for (const Query& q : inst.queries()) {
    if (q.demands.size() != 1) {
      throw std::invalid_argument(
          "centrality_s: special case requires single-dataset queries");
    }
  }
  return run(inst, kind);
}

BaselineResult centrality_g(const Instance& inst, CentralityKind kind) {
  return run(inst, kind);
}

}  // namespace edgerep
