#include "baselines/random_baseline.h"

#include <stdexcept>
#include <vector>

#include "cloud/delay.h"
#include "util/rng.h"

namespace edgerep {

BaselineResult random_baseline(const Instance& inst, std::uint64_t seed) {
  if (!inst.finalized()) {
    throw std::invalid_argument("random_baseline: instance not finalized");
  }
  Rng rng(seed);
  BaselineResult res{ReplicaPlan(inst), {}, 0, 0};
  for (const Query& q : inst.queries()) {
    for (const DatasetDemand& dd : q.demands) {
      const double need = resource_demand(inst, q, dd);
      std::vector<SiteId> feasible;
      for (const Site& s : inst.sites()) {
        if (!deadline_ok(inst, q, dd, s.id) || !res.plan.fits(s.id, need)) {
          continue;
        }
        if (res.plan.has_replica(dd.dataset, s.id) ||
            res.plan.replica_count(dd.dataset) < inst.max_replicas()) {
          feasible.push_back(s.id);
        }
      }
      if (feasible.empty()) {
        ++res.demands_rejected;
        continue;
      }
      const SiteId l = feasible[static_cast<std::size_t>(
          rng.uniform_u64(0, feasible.size() - 1))];
      if (!res.plan.has_replica(dd.dataset, l)) {
        res.plan.place_replica(dd.dataset, l);
      }
      res.plan.assign(q.id, dd.dataset, l);
      ++res.demands_assigned;
    }
  }
  res.metrics = evaluate(res.plan);
  return res;
}

}  // namespace edgerep
