// Random baseline (not in the paper; ablation floor): each demand is
// assigned to a uniformly random feasible site, placing a replica there when
// the budget allows.  Any algorithm worth publishing should clear this bar.
#pragma once

#include <cstdint>

#include "baselines/baseline.h"
#include "cloud/instance.h"

namespace edgerep {

BaselineResult random_baseline(const Instance& inst,
                               std::uint64_t seed = 0xace5);

}  // namespace edgerep
