// The paper's approximation algorithms.
//
// Appro-S (Algorithm 1): special case, each query demands exactly one
// dataset.  Queries are processed in a configurable order; for each, the
// algorithm prices every deadline- and capacity-feasible site with the
// current dual variables (capacity price θ_l, deadline tightness, and a
// replica-creation price when no replica is present yet), picks the
// cheapest site — the site where dual constraint (9) becomes tight first
// under uniform raising — places a replica there if needed (raising μ), and
// admits the query.
//
// Appro-G (Algorithm 2): general case; invokes the Appro-S admission step
// once per (query, dataset) demand, exactly as the paper's loop does.
//
// Both return the plan together with a repaired feasible dual solution so
// callers can certify weak duality.
#pragma once

#include <cstdint>

#include "cloud/plan.h"
#include "core/primal_dual.h"

namespace edgerep {

struct ApproOptions {
  /// Query processing order ("uniform raising" reaches big queries first
  /// under volume-descending order; ablation bench sweeps these).
  enum class Order : std::uint8_t {
    kInput,         ///< as given in the instance
    kVolumeDesc,    ///< largest demanded volume first (default)
    kVolumeAsc,
    kDeadlineAsc,   ///< tightest QoS first
    kRandom,        ///< shuffled with `seed`
  };
  Order order = Order::kVolumeDesc;

  /// Default (false): existing replicas and fresh placements compete on
  /// price, with fresh ones paying a replica-creation surcharge — the joint
  /// replication/assignment view.  When true, an existing replica site is
  /// always preferred if any is feasible (maximally conserves the budget K
  /// but can trap demands on overloaded sites); this is the ABL-REUSE
  /// ablation.
  bool strict_reuse = false;

  /// Weight of the deadline-tightness (η) term in the site price.
  double eta_weight = 0.25;

  /// Weight of the replica-creation (μ) surcharge, amortized over K.
  double replica_weight = 0.5;

  /// When true (default), a multi-dataset query's demands are committed
  /// transactionally: if any demand has no feasible site, the query's
  /// earlier demands are rolled back, so capacity and replica budget are
  /// never stranded on queries that can't be admitted — objective (1) only
  /// credits fully admitted queries.  The paper's Algorithm 2 literally
  /// invokes the Appro-S step once per demand with no rollback; set false
  /// for that behaviour (the ABL-ORDER/ABL-REUSE benches exercise both).
  bool atomic_queries = true;

  /// Pricing implementation for the default (joint) admission scan.
  /// kVectorized (default) prices a demand's whole candidate list in one
  /// branch-light pass over the CandidateIndex's struct-of-arrays buffers
  /// with a replica byte-mask; kScalar is the per-candidate walk kept as the
  /// equivalence oracle — both produce bit-identical plans (same winner,
  /// same price, ties broken by candidate order).  The strict_reuse ablation
  /// always uses its own scalar scan.
  enum class Pricing : std::uint8_t { kVectorized, kScalar };
  Pricing pricing = Pricing::kVectorized;

  /// Mechanism behind atomic_queries.  kSavepoint (default) mutates the
  /// plan and duals in place and rolls back rejected queries through the
  /// undo log — no per-query state copies.  kCopy is the legacy
  /// trial-copy-then-swap implementation; it produces bit-identical results
  /// and is kept only for the equivalence tests and as the micro_appro
  /// speedup baseline.
  enum class Txn : std::uint8_t { kSavepoint, kCopy };
  Txn txn = Txn::kSavepoint;

  std::uint64_t seed = 0x5eed;  ///< used only by Order::kRandom
};

struct ApproResult {
  ReplicaPlan plan;
  DualState duals;          ///< repaired: feasible, objective() bounds OPT
  double dual_objective = 0.0;
  PlanMetrics metrics;
  std::size_t demands_assigned = 0;
  std::size_t demands_rejected = 0;
};

/// Appro-S.  Throws std::invalid_argument if any query demands more than one
/// dataset (use appro_g for the general case).
ApproResult appro_s(const Instance& inst, const ApproOptions& opts = {});

/// Appro-G: general case, any number of datasets per query.
ApproResult appro_g(const Instance& inst, const ApproOptions& opts = {});

}  // namespace edgerep
