#include "core/lagrangian.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cloud/delay.h"

namespace edgerep {

namespace {

/// One (query, demand) occurrence of a dataset with its precomputed
/// feasible-site list.
struct DemandRef {
  QueryId query = 0;
  DatasetId dataset = 0;
  double value = 0.0;  ///< vol_n: objective credit when served
  double need = 0.0;   ///< vol_n·r_m: capacity consumed
  std::vector<SiteId> feasible;
};

/// Greedy inner subproblem for one dataset: open up to K sites maximizing
/// Σ_demands max_{l ∈ open ∩ feasible} (value − λ_l·need)⁺.
std::vector<SiteId> open_sites_greedy(const Instance& inst,
                                      const std::vector<const DemandRef*>&
                                          demands,
                                      const std::vector<double>& lambda) {
  std::vector<SiteId> open;
  std::vector<double> best_value(demands.size(), 0.0);
  std::vector<char> used(inst.sites().size(), 0);
  for (std::size_t round = 0; round < inst.max_replicas(); ++round) {
    SiteId best_site = kInvalidSite;
    double best_gain = 1e-12;
    for (const Site& s : inst.sites()) {
      if (used[s.id]) continue;
      double gain = 0.0;
      for (std::size_t d = 0; d < demands.size(); ++d) {
        const DemandRef& dr = *demands[d];
        if (std::find(dr.feasible.begin(), dr.feasible.end(), s.id) ==
            dr.feasible.end()) {
          continue;
        }
        const double v =
            std::max(0.0, dr.value - lambda[s.id] * dr.need);
        gain += std::max(0.0, v - best_value[d]);
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_site = s.id;
      }
    }
    if (best_site == kInvalidSite) break;
    used[best_site] = 1;
    open.push_back(best_site);
    for (std::size_t d = 0; d < demands.size(); ++d) {
      const DemandRef& dr = *demands[d];
      if (std::find(dr.feasible.begin(), dr.feasible.end(), best_site) !=
          dr.feasible.end()) {
        best_value[d] = std::max(
            best_value[d],
            std::max(0.0, dr.value - lambda[best_site] * dr.need));
      }
    }
  }
  return open;
}

}  // namespace

LagrangianResult lagrangian_placement(const Instance& inst,
                                      const LagrangianOptions& opts) {
  if (!inst.finalized()) {
    throw std::invalid_argument("lagrangian: instance not finalized");
  }
  // Precompute demand references grouped by dataset.
  std::vector<DemandRef> demands;
  for (const Query& q : inst.queries()) {
    for (const DatasetDemand& dd : q.demands) {
      DemandRef dr;
      dr.query = q.id;
      dr.dataset = dd.dataset;
      dr.value = inst.dataset(dd.dataset).volume;
      dr.need = resource_demand(inst, q, dd);
      for (const Site& s : inst.sites()) {
        if (deadline_ok(inst, q, dd, s.id)) dr.feasible.push_back(s.id);
      }
      demands.push_back(std::move(dr));
    }
  }
  std::vector<std::vector<const DemandRef*>> by_dataset(
      inst.datasets().size());
  for (const DemandRef& dr : demands) {
    by_dataset[dr.dataset].push_back(&dr);
  }

  LagrangianResult res{ReplicaPlan(inst), {}, 0.0, {}, 0};
  res.best_bound = std::numeric_limits<double>::infinity();
  double best_primal = -1.0;
  std::vector<double> lambda(inst.sites().size(), 0.0);

  for (std::size_t t = 0; t < opts.iterations; ++t) {
    ++res.iterations_run;
    // --- dual function: capacity AND replica budget relaxed -----------
    // Each demand takes its best feasible site outright, so L(λ) is a
    // genuine upper bound on the assigned-volume optimum.
    double relaxed = 0.0;
    std::vector<SiteId> relaxed_site(demands.size(), kInvalidSite);
    for (std::size_t d = 0; d < demands.size(); ++d) {
      const DemandRef& dr = demands[d];
      double best = 0.0;
      for (const SiteId l : dr.feasible) {
        const double v = std::max(0.0, dr.value - lambda[l] * dr.need);
        if (v > best) {
          best = v;
          relaxed_site[d] = l;
        }
      }
      relaxed += best;
    }
    for (const Site& s : inst.sites()) {
      relaxed += lambda[s.id] * s.available;
    }
    res.bound_trace.push_back(relaxed);
    res.best_bound = std::min(res.best_bound, relaxed);

    // --- inner K-site selection per dataset (primal side only) --------
    std::vector<std::vector<SiteId>> open(inst.datasets().size());
    for (const Dataset& ds : inst.datasets()) {
      open[ds.id] = open_sites_greedy(inst, by_dataset[ds.id], lambda);
    }

    // --- primal repair: honour true capacities ------------------------
    ReplicaPlan plan(inst);
    for (const Dataset& ds : inst.datasets()) {
      for (const SiteId l : open[ds.id]) plan.place_replica(ds.id, l);
    }
    std::vector<std::size_t> order(demands.size());
    for (std::size_t d = 0; d < order.size(); ++d) order[d] = d;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return demands[a].value > demands[b].value;
                     });
    for (const std::size_t d : order) {
      const DemandRef& dr = demands[d];
      if (plan.assignment(dr.query, dr.dataset)) continue;
      // Preferred: the relaxed choice; fallback: any open feasible site.
      std::vector<SiteId> candidates;
      if (relaxed_site[d] != kInvalidSite) {
        candidates.push_back(relaxed_site[d]);
      }
      for (const SiteId l : open[dr.dataset]) {
        if (l != relaxed_site[d]) candidates.push_back(l);
      }
      for (const SiteId l : candidates) {
        if (!plan.has_replica(dr.dataset, l)) continue;
        if (std::find(dr.feasible.begin(), dr.feasible.end(), l) ==
            dr.feasible.end()) {
          continue;
        }
        if (!plan.fits(l, dr.need)) continue;
        plan.assign(dr.query, dr.dataset, l);
        break;
      }
    }
    const PlanMetrics pm = evaluate(plan);
    if (pm.assigned_volume > best_primal) {
      best_primal = pm.assigned_volume;
      res.plan = std::move(plan);
      res.metrics = pm;
    }

    // --- subgradient step on λ ----------------------------------------
    const double step =
        opts.initial_step / std::sqrt(static_cast<double>(t + 1));
    std::vector<double> load(inst.sites().size(), 0.0);
    for (std::size_t d = 0; d < demands.size(); ++d) {
      if (relaxed_site[d] != kInvalidSite) {
        load[relaxed_site[d]] += demands[d].need;
      }
    }
    for (const Site& s : inst.sites()) {
      const double violation =
          (load[s.id] - s.available) / std::max(s.available, 1.0);
      lambda[s.id] = std::max(opts.min_multiplier,
                              lambda[s.id] + step * violation);
    }
  }
  return res;
}

}  // namespace edgerep
