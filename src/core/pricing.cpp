#include "core/pricing.h"

#include <limits>

// x86 SIMD paths.  The intrinsics live behind GCC/Clang `target` attributes
// so the translation unit still compiles with baseline flags; the dispatch
// below probes the CPU once at runtime and falls back to the portable loop.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define EDGEREP_PRICING_X86 1
#else
#define EDGEREP_PRICING_X86 0
#endif

namespace edgerep {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The portable branch-light scan over candidates [begin, end), updating the
/// running argmin.  Also serves as the tail loop of the SIMD paths: indices
/// past `begin` are larger than any SIMD-scanned index, so the strict `<`
/// keeps first-wins tie-breaking intact.
inline void portable_scan(const SiteId* sites, const double* inv,
                          const double* dod, const double* theta,
                          const double* avail, const double* load,
                          const std::uint8_t* replica, double budget,
                          double need, double eta_weight, double mu_term,
                          std::size_t begin, std::size_t end,
                          double& best_price, std::size_t& best_i) {
  for (std::size_t i = begin; i < end; ++i) {
    const SiteId s = sites[i];
    const double has = static_cast<double>(replica[s]);
    // Same FP sequence as the scalar walk: θ + need·inv + η·dod, then a
    // conditional μ surcharge.  `has` selects between +μ and +0.0; adding
    // 0.0 to a non-negative finite price keeps its bits, so the branchy
    // `if (!has) p += μ` and this select agree exactly.
    double p = theta[s] + need * inv[i] + eta_weight * dod[i];
    p += (has != 0.0) ? 0.0 : mu_term;
    // Feasibility mask: (replica already there OR budget left) AND capacity
    // fits.  The comparison mirrors ReplicaPlan::fits bit-exactly.
    const bool allowed = (has != 0.0) || (budget != 0.0);
    const bool fits = need <= (avail[s] - load[s]) + kCapacityEps;
    // Infeasible candidates price at +inf, which strict `<` never selects.
    p = (allowed && fits) ? p : kInf;
    if (p < best_price) {
      best_price = p;
      best_i = i;
    }
  }
}

#if EDGEREP_PRICING_X86

/// 4-wide AVX2 scan.  Each lane executes exactly the portable per-candidate
/// FP sequence (vector add/mul/sub are per-lane IEEE operations and
/// intrinsics are never fused into FMA), so prices stay bit-identical.  The
/// running argmin keeps per-lane (price, index) pairs — within a lane,
/// strict `<` preserves the earliest index; across lanes the horizontal
/// reduction prefers the smaller index on exact price ties, which together
/// reproduce the scalar first-wins order.
__attribute__((target("avx2"))) void avx2_scan(
    const SiteId* sites, const double* inv, const double* dod,
    const double* theta, const double* avail, const double* load,
    const std::uint8_t* replica, double budget, double need,
    double eta_weight, double mu_term, std::size_t n, double& best_price,
    std::size_t& best_i) {
  const __m256d vneed = _mm256_set1_pd(need);
  const __m256d veta = _mm256_set1_pd(eta_weight);
  const __m256d vmu = _mm256_set1_pd(mu_term);
  const __m256d veps = _mm256_set1_pd(kCapacityEps);
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vinf = _mm256_set1_pd(kInf);
  const __m256d mbudget =
      _mm256_cmp_pd(_mm256_set1_pd(budget), vzero, _CMP_NEQ_OQ);

  __m256d vbest = vinf;
  __m256d vbesti = _mm256_set1_pd(-1.0);
  __m256d vcuri = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
  const __m256d vstep = _mm256_set1_pd(4.0);

  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vsite =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(sites + i));
    const __m256d vth = _mm256_i32gather_pd(theta, vsite, 8);
    const __m256d vav = _mm256_i32gather_pd(avail, vsite, 8);
    const __m256d vld = _mm256_i32gather_pd(load, vsite, 8);
    const __m256d vhas = _mm256_set_pd(
        static_cast<double>(replica[sites[i + 3]]),
        static_cast<double>(replica[sites[i + 2]]),
        static_cast<double>(replica[sites[i + 1]]),
        static_cast<double>(replica[sites[i]]));
    const __m256d vinv = _mm256_loadu_pd(inv + i);
    const __m256d vdod = _mm256_loadu_pd(dod + i);

    __m256d p = _mm256_add_pd(
        _mm256_add_pd(vth, _mm256_mul_pd(vneed, vinv)),
        _mm256_mul_pd(veta, vdod));
    const __m256d mhas = _mm256_cmp_pd(vhas, vzero, _CMP_NEQ_OQ);
    p = _mm256_add_pd(p, _mm256_blendv_pd(vmu, vzero, mhas));
    const __m256d resid = _mm256_add_pd(_mm256_sub_pd(vav, vld), veps);
    const __m256d mok = _mm256_and_pd(
        _mm256_or_pd(mhas, mbudget), _mm256_cmp_pd(vneed, resid, _CMP_LE_OQ));
    p = _mm256_blendv_pd(vinf, p, mok);

    const __m256d mlt = _mm256_cmp_pd(p, vbest, _CMP_LT_OQ);
    vbest = _mm256_blendv_pd(vbest, p, mlt);
    vbesti = _mm256_blendv_pd(vbesti, vcuri, mlt);
    vcuri = _mm256_add_pd(vcuri, vstep);
  }

  alignas(32) double lane_price[4];
  alignas(32) double lane_index[4];
  _mm256_store_pd(lane_price, vbest);
  _mm256_store_pd(lane_index, vbesti);
  for (int k = 0; k < 4; ++k) {
    if (lane_price[k] < best_price ||
        (lane_price[k] == best_price && best_price < kInf &&
         lane_index[k] < static_cast<double>(best_i))) {
      best_price = lane_price[k];
      best_i = static_cast<std::size_t>(lane_index[k]);
    }
  }
  portable_scan(sites, inv, dod, theta, avail, load, replica, budget, need,
                eta_weight, mu_term, i, n, best_price, best_i);
}

bool cpu_has_avx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

#endif  // EDGEREP_PRICING_X86

}  // namespace

PricedChoice price_candidates(const CandidateSoA& soa,
                              const PricingState& state, double need,
                              double eta_weight, double mu_term) {
  const std::size_t n = soa.size();
  const SiteId* const sites = soa.site.data();
  const double* const inv = soa.inv_avail.data();
  const double* const dod = soa.dod.data();
  const double* const theta = state.theta.data();
  const double* const avail = state.avail.data();
  const double* const load = state.load.data();
  const std::uint8_t* const replica = state.replica.data();
  const double budget = state.budget_left ? 1.0 : 0.0;

  PricedChoice best;
  double best_price = kInf;
  std::size_t best_i = PricedChoice::kNoCandidate;
#if EDGEREP_PRICING_X86
  if (n >= 8 && cpu_has_avx2()) {
    avx2_scan(sites, inv, dod, theta, avail, load, replica, budget, need,
              eta_weight, mu_term, n, best_price, best_i);
  } else {
    portable_scan(sites, inv, dod, theta, avail, load, replica, budget, need,
                  eta_weight, mu_term, 0, n, best_price, best_i);
  }
#else
  portable_scan(sites, inv, dod, theta, avail, load, replica, budget, need,
                eta_weight, mu_term, 0, n, best_price, best_i);
#endif
  if (best_i != PricedChoice::kNoCandidate) {
    const SiteId s = sites[best_i];
    best.candidate = best_i;
    best.site = s;
    best.price = best_price;
    best.needs_replica = replica[s] == 0;
  }
  return best;
}

PricedChoice price_candidates_scalar(const CandidateSoA& soa,
                                     const PricingState& state, double need,
                                     double eta_weight, double mu_term) {
  const std::size_t n = soa.size();
  PricedChoice best;
  double best_price = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    const SiteId s = soa.site[i];
    const bool has = state.replica[s] != 0;
    if (!has && !state.budget_left) continue;
    if (!(need <= (state.avail[s] - state.load[s]) + kCapacityEps)) continue;
    double p = state.theta[s] + need * soa.inv_avail[i] +
               eta_weight * soa.dod[i];
    if (!has) p += mu_term;
    if (p < best_price) {
      best_price = p;
      best.candidate = i;
      best.site = s;
      best.price = p;
      best.needs_replica = !has;
    }
  }
  return best;
}

PricedChoice price_candidates_reference(const CandidateSoA& soa,
                                        const ReferencePricingState& state,
                                        double need, double eta_weight,
                                        double mu_term) {
  const std::size_t n = soa.size();
  PricedChoice best;
  double best_price = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    const SiteId s = soa.site[i];
    // ReplicaPlan::has_replica is a linear scan of the dataset's replica
    // list — reproduced verbatim; this is what the byte mask replaces.
    bool has = false;
    for (const SiteId r : state.replicas) {
      if (r == s) {
        has = true;
        break;
      }
    }
    if (!has && !state.budget_left) continue;
    if (!(need <= (state.avail[s] - state.load[s]) + kCapacityEps)) continue;
    double p = state.theta[s] + need * soa.inv_avail[i] +
               eta_weight * soa.dod[i];
    if (!has) p += mu_term;
    if (p < best_price) {
      best_price = p;
      best.candidate = i;
      best.site = s;
      best.price = p;
      best.needs_replica = !has;
    }
  }
  return best;
}

}  // namespace edgerep
