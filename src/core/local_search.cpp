#include "core/local_search.h"

#include <algorithm>

#include "cloud/delay.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace edgerep {

namespace {

/// Relocate assigned demands toward sites with more head-room.  A move is
/// applied when the destination's residual *after* the move still exceeds
/// the source's residual *before* it — load strictly spreads, so sweeps
/// terminate.
std::size_t rebalance_pass(ReplicaPlan& plan) {
  const Instance& inst = plan.instance();
  std::size_t moves = 0;
  for (const Query& q : inst.queries()) {
    for (const DatasetDemand& dd : q.demands) {
      const auto current = plan.assignment(q.id, dd.dataset);
      if (!current) continue;
      const double need = resource_demand(inst, q, dd);
      SiteId best = kInvalidSite;
      double best_residual = plan.residual(*current);
      for (const SiteId l : plan.replica_sites(dd.dataset)) {
        if (l == *current) continue;
        if (!deadline_ok(inst, q, dd, l)) continue;
        if (!plan.fits(l, need)) continue;
        const double after = plan.residual(l) - need;
        if (after > best_residual + 1e-9) {
          best_residual = after;
          best = l;
        }
      }
      if (best != kInvalidSite) {
        plan.unassign(q.id, dd.dataset);
        plan.assign(q.id, dd.dataset, best);
        ++moves;
      }
    }
  }
  return moves;
}

/// Is any replica of dataset n at site l unused by assignments?
bool replica_unused(const ReplicaPlan& plan, DatasetId n, SiteId l) {
  const Instance& inst = plan.instance();
  for (const Query& q : inst.queries()) {
    if (!q.demands_dataset(n)) continue;
    const auto a = plan.assignment(q.id, n);
    if (a && *a == l) return false;
  }
  return true;
}

/// Try to fully admit query q in place under a savepoint; roll back the
/// partial work (including any replica reclaimed in step 3) on failure.
bool try_admit(ReplicaPlan& plan, const Query& q) {
  const Instance& inst = plan.instance();
  const ReplicaPlan::Savepoint sp = plan.savepoint();
  auto abort = [&] {
    plan.rollback_to(sp);
    plan.commit();
    return false;
  };
  for (const DatasetDemand& dd : q.demands) {
    if (plan.assignment(q.id, dd.dataset)) continue;
    const double need = resource_demand(inst, q, dd);
    SiteId chosen = kInvalidSite;
    // 1. An existing replica site.
    for (const SiteId l : plan.replica_sites(dd.dataset)) {
      if (deadline_ok(inst, q, dd, l) && plan.fits(l, need)) {
        chosen = l;
        break;
      }
    }
    // 2. A fresh replica within the budget (max head-room first).
    if (chosen == kInvalidSite) {
      auto fresh_candidate = [&]() {
        SiteId best = kInvalidSite;
        for (const Site& s : inst.sites()) {
          if (plan.has_replica(dd.dataset, s.id)) continue;
          if (!deadline_ok(inst, q, dd, s.id)) continue;
          if (!plan.fits(s.id, need)) continue;
          if (best == kInvalidSite ||
              plan.residual(s.id) > plan.residual(best)) {
            best = s.id;
          }
        }
        return best;
      };
      if (plan.replica_count(dd.dataset) < inst.max_replicas()) {
        chosen = fresh_candidate();
      } else {
        // 3. Reclaim budget from an unused replica of this dataset.
        for (const SiteId l : plan.replica_sites(dd.dataset)) {
          if (replica_unused(plan, dd.dataset, l)) {
            plan.remove_replica(dd.dataset, l);
            chosen = fresh_candidate();
            break;
          }
        }
      }
      if (chosen != kInvalidSite) plan.place_replica(dd.dataset, chosen);
    }
    if (chosen == kInvalidSite) return abort();
    plan.assign(q.id, dd.dataset, chosen);
  }
  plan.commit();
  return true;
}

}  // namespace

LocalSearchResult improve_plan(ReplicaPlan plan,
                               const LocalSearchOptions& opts) {
  EDGEREP_TRACE_SCOPE("local_search.improve");
  LocalSearchResult res{std::move(plan), {}, 0, 0, 0};
  const Instance& inst = res.plan.instance();
  for (std::size_t pass = 0; pass < opts.max_passes; ++pass) {
    EDGEREP_TRACE_SCOPE("local_search.pass");
    ++res.passes;
    res.relocations += rebalance_pass(res.plan);
    std::size_t admitted_this_pass = 0;
    for (const Query& q : inst.queries()) {
      if (res.plan.admitted(q.id)) continue;
      if (try_admit(res.plan, q)) ++admitted_this_pass;
    }
    res.queries_admitted += admitted_this_pass;
    if (admitted_this_pass == 0) break;
  }
  res.metrics = evaluate(res.plan);
  if (obs::metrics_enabled()) {
    static obs::Counter& runs = obs::metrics().counter(
        "edgerep_local_search_runs_total", "improve_plan calls");
    static obs::Counter& passes = obs::metrics().counter(
        "edgerep_local_search_passes_total", "local-search sweeps executed");
    static obs::Counter& moves = obs::metrics().counter(
        "edgerep_local_search_relocations_total",
        "assignments relocated by rebalancing");
    static obs::Counter& admitted = obs::metrics().counter(
        "edgerep_local_search_queries_admitted_total",
        "previously rejected queries admitted by local search");
    runs.inc();
    passes.inc(res.passes);
    moves.inc(res.relocations);
    admitted.inc(res.queries_admitted);
  }
  return res;
}

}  // namespace edgerep
