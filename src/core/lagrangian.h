// Lagrangian relaxation of the placement ILP.
//
// Dualizing the capacity constraints (2) with multipliers λ_l ≥ 0 — and,
// for the *bound*, additionally relaxing the replica budget (5) — makes the
// remaining problem separable per (query, demand): each demand contributes
// max over deadline-feasible sites l of (vol_n − λ_l·vol_n·r_m)⁺.  Since
// both relaxations only enlarge the feasible region, every iterate
//   L(λ) = Σ_demands max_l (…)⁺ + Σ_l λ_l·A(v_l)
// is a valid upper bound on the assigned-volume optimum; subgradient
// descent on λ tightens it.
//
// Each iteration also produces a *feasible* primal plan: per dataset, up to
// K replica sites are opened greedily against the λ-priced demand values
// (monotone submodular → (1−1/e) greedy), then demands are repaired against
// the true capacities.  The best plan across iterations is returned, so the
// method is simultaneously a third bound (besides the LP relaxation and the
// repaired primal-dual certificate) and another placement heuristic.
#pragma once

#include <cstddef>

#include "baselines/baseline.h"
#include "cloud/instance.h"

namespace edgerep {

struct LagrangianOptions {
  std::size_t iterations = 60;
  double initial_step = 2.0;   ///< subgradient step, decays as 1/√t
  double min_multiplier = 0.0;
};

struct LagrangianResult {
  /// Best feasible plan found by primal repair across iterations.
  ReplicaPlan plan;
  PlanMetrics metrics;
  /// Smallest relaxed objective seen (≈ upper bound on OPT_assigned; exact
  /// up to the greedy inner approximation).
  double best_bound = 0.0;
  /// Relaxed objective per iteration (for convergence plots).
  std::vector<double> bound_trace;
  std::size_t iterations_run = 0;
};

LagrangianResult lagrangian_placement(const Instance& inst,
                                      const LagrangianOptions& opts = {});

}  // namespace edgerep
