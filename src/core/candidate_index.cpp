#include "core/candidate_index.h"

#include <algorithm>
#include <stdexcept>

#include "util/thread_pool.h"

namespace edgerep {

CandidateIndex::CandidateIndex(const Instance& inst, bool parallel) {
  if (!inst.finalized()) {
    throw std::invalid_argument("CandidateIndex: instance not finalized");
  }
  const auto sites = inst.sites();
  const auto queries = inst.queries();

  inv_avail_.resize(sites.size());
  avail_.resize(sites.size());
  for (const Site& s : sites) {
    inv_avail_[s.id] = 1.0 / std::max(s.available, 1e-12);
    avail_[s.id] = s.available;
  }

  query_offset_.resize(queries.size() + 1);
  std::size_t slots = 0;
  for (const Query& q : queries) {
    query_offset_[q.id] = slots;
    slots += q.demands.size();
  }
  query_offset_[queries.size()] = slots;
  need_.resize(slots);

  // Sweep each demand's row of the delay model once; rows are independent,
  // so big instances fill them in parallel (per-slot writes keep the result
  // deterministic).
  std::vector<std::vector<CandidateSite>> rows(slots);
  auto fill_query = [&](std::size_t m) {
    const Query& q = queries[m];
    std::size_t slot = query_offset_[m];
    for (const DatasetDemand& dd : q.demands) {
      const Dataset& ds = inst.dataset(dd.dataset);
      const double vol = ds.volume;
      const double sel_vol = dd.selectivity * vol;
      need_[slot] = vol * q.rate;
      auto& row = rows[slot];
      for (const Site& s : sites) {
        const double delay =
            vol * s.proc_delay + sel_vol * inst.path_delay(s.id, q.home);
        if (delay <= q.deadline) {
          row.push_back({s.id, delay, delay / q.deadline});
        }
      }
      ++slot;
    }
  };
  if (parallel && queries.size() * sites.size() > 4096) {
    global_pool().parallel_for(queries.size(), fill_query);
  } else {
    for (std::size_t m = 0; m < queries.size(); ++m) fill_query(m);
  }

  slot_begin_.resize(slots + 1);
  std::size_t total = 0;
  for (std::size_t s = 0; s < slots; ++s) {
    slot_begin_[s] = total;
    total += rows[s].size();
  }
  slot_begin_[slots] = total;
  candidates_.resize(total);
  for (std::size_t s = 0; s < slots; ++s) {
    std::copy(rows[s].begin(), rows[s].end(),
              candidates_.begin() + slot_begin_[s]);
  }

  // SoA mirrors for the vectorized pricing kernel: same entries, same order,
  // split into contiguous parallel arrays with the reciprocal pre-gathered.
  soa_site_.resize(total);
  soa_inv_.resize(total);
  soa_dod_.resize(total);
  for (std::size_t i = 0; i < total; ++i) {
    const CandidateSite& c = candidates_[i];
    soa_site_[i] = c.site;
    soa_inv_[i] = inv_avail_[c.site];
    soa_dod_[i] = c.delay_over_deadline;
  }
}

}  // namespace edgerep
