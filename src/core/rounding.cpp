#include "core/rounding.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "cloud/delay.h"
#include "lp/model.h"
#include "util/rng.h"

namespace edgerep {

namespace {

/// Pick up to K sites for one dataset from fractional x values.
std::vector<SiteId> round_sites(const std::vector<std::pair<SiteId, double>>&
                                    fractional,
                                std::size_t k, const RoundingOptions& opts,
                                Rng& rng) {
  std::vector<std::pair<SiteId, double>> pool;
  for (const auto& [site, x] : fractional) {
    if (x > opts.x_floor) pool.push_back({site, x});
  }
  std::vector<SiteId> chosen;
  if (pool.empty()) return chosen;
  if (!opts.randomized) {
    std::stable_sort(pool.begin(), pool.end(),
                     [](const auto& a, const auto& b) {
                       return a.second > b.second;
                     });
    for (std::size_t i = 0; i < std::min(k, pool.size()); ++i) {
      chosen.push_back(pool[i].first);
    }
    return chosen;
  }
  // Randomized: weighted sampling without replacement.
  while (chosen.size() < k && !pool.empty()) {
    double total = 0.0;
    for (const auto& [site, x] : pool) total += x;
    double pick = rng.uniform(0.0, total);
    std::size_t idx = 0;
    for (; idx + 1 < pool.size(); ++idx) {
      pick -= pool[idx].second;
      if (pick <= 0.0) break;
    }
    chosen.push_back(pool[idx].first);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  return chosen;
}

}  // namespace

BaselineResult lp_rounding(const Instance& inst, const RoundingOptions& opts) {
  const IlpModel model(inst, ModelObjective::kAdmittedVolume);
  const LpSolution relax = model.solve_relaxation();
  if (relax.status != LpStatus::kOptimal) {
    throw std::runtime_error(std::string("lp_rounding: relaxation ") +
                             to_string(relax.status));
  }
  Rng rng(opts.seed);
  BaselineResult res{ReplicaPlan(inst), {}, 0, 0};

  // Round x_{nl} dataset by dataset.
  for (const Dataset& d : inst.datasets()) {
    std::vector<std::pair<SiteId, double>> fractional;
    for (const Site& s : inst.sites()) {
      fractional.push_back({s.id, relax.x[model.x_var(d.id, s.id)]});
    }
    for (const SiteId l :
         round_sites(fractional, inst.max_replicas(), opts, rng)) {
      res.plan.place_replica(d.id, l);
    }
  }

  // Assign demands in descending fractional-π order against the real
  // capacity/deadline/replica constraints.
  std::vector<std::size_t> order(model.pi_vars().size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return relax.x[model.pi_offset() + a] > relax.x[model.pi_offset() + b];
  });
  for (const std::size_t p : order) {
    const auto& pv = model.pi_vars()[p];
    if (relax.x[model.pi_offset() + p] <= opts.x_floor) break;
    const Query& q = inst.query(pv.query);
    const DatasetDemand& dd = q.demands[pv.demand_index];
    if (res.plan.assignment(pv.query, dd.dataset)) continue;  // already served
    if (!res.plan.has_replica(dd.dataset, pv.site)) continue;
    const double need = resource_demand(inst, q, dd);
    if (!res.plan.fits(pv.site, need)) continue;
    // Deadline holds by construction (π vars are deadline-pruned).
    res.plan.assign(pv.query, dd.dataset, pv.site);
  }
  // Second pass: demands the fractional solution ignored may still fit.
  for (const Query& q : inst.queries()) {
    for (const DatasetDemand& dd : q.demands) {
      if (res.plan.assignment(q.id, dd.dataset)) continue;
      const double need = resource_demand(inst, q, dd);
      for (const SiteId l : res.plan.replica_sites(dd.dataset)) {
        if (deadline_ok(inst, q, dd, l) && res.plan.fits(l, need)) {
          res.plan.assign(q.id, dd.dataset, l);
          break;
        }
      }
    }
  }
  for (const Query& q : inst.queries()) {
    for (const DatasetDemand& dd : q.demands) {
      if (res.plan.assignment(q.id, dd.dataset)) {
        ++res.demands_assigned;
      } else {
        ++res.demands_rejected;
      }
    }
  }
  res.metrics = evaluate(res.plan);
  return res;
}

}  // namespace edgerep
