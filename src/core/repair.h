// Incremental primal-dual repair of a replication plan after failures.
//
// The paper's primal-dual machinery is built for dynamic updates: dual
// prices summarize the load state, so when a cloudlet crashes or a link
// goes down we do not have to re-run `run_appro` from scratch.  The repair
// engine instead
//
//   1. **evicts** exactly the (query, demand) assignments invalidated by the
//      faults — evaluation site down, effective delay past the deadline,
//      home site down, or capacity overflow after degradation — plus the
//      replicas stored on crashed sites (data is lost, freeing budget K),
//   2. **re-prices** the duals: θ_l is reset to `load_l / effective A(v_l)`
//      at every touched site (the invariant uniform raising maintains), and
//      evicted queries' y_m return to 0, and
//   3. **re-admits** the displaced queries through the same savepoint
//      transactions as the admission engine (PR 1), pricing candidates from
//      the fault-free pruned CandidateIndex — a valid superset because
//      faults only remove edges and capacity, never add them — with the
//      effective feasibility checks layered on top.
//
// A full-recompute oracle lives behind `RepairOptions::full_recompute`: it
// rebuilds the plan from scratch under the same faulted constraints, so
// tests can assert the incremental result is admissible and within a
// bounded objective gap, and the `micro_repair` bench can report the
// latency advantage.
//
// Guarantees of the incremental path (tests/core/repair_test.cpp):
//   * the repaired plan passes `validate_under_faults` (capacity with
//     degraded availability, replica budget, effective deadlines, no use of
//     downed sites),
//   * untouched queries keep their exact assignments, so
//     admitted_volume(after) ≥ admitted_volume(before) − evicted volume,
//   * the whole procedure is a pure function of (plan, duals, faults,
//     options): repairing a copy of the same state twice yields
//     bit-identical plans.
#pragma once

#include <cstdint>

#include "cloud/plan.h"
#include "core/appro.h"
#include "core/candidate_index.h"
#include "core/primal_dual.h"
#include "sim/faults.h"

namespace edgerep {

struct RepairOptions {
  /// Pricing and ordering knobs for the re-admission pass (the same struct
  /// the admission engine takes; `order` ranks the displaced queries).
  ApproOptions admission;

  /// Full-recompute oracle: discard the incumbent plan and duals, then run
  /// fault-aware admission over *every* query from scratch.  Produces the
  /// reference result the incremental path is tested against; costs a full
  /// solve instead of work proportional to the blast radius.
  bool full_recompute = false;
};

struct RepairStats {
  std::size_t queries_evicted = 0;     ///< admitted before, displaced by faults
  std::size_t queries_readmitted = 0;  ///< displaced queries re-seated
  std::size_t queries_lost = 0;        ///< displaced and not re-seatable
  std::size_t replicas_lost = 0;       ///< replicas on crashed sites
  std::size_t replicas_placed = 0;     ///< fresh replicas from re-admission
  double evicted_volume = 0.0;         ///< Σ demanded volume of evicted queries
  double readmitted_volume = 0.0;      ///< Σ demanded volume re-seated
};

/// Re-admission + repair engine.  Owns the pruned candidate index (built
/// once per instance, shared across repairs — in a deployment it persists
/// from the original solve).
class RepairEngine {
 public:
  explicit RepairEngine(const Instance& inst);

  [[nodiscard]] const Instance& instance() const noexcept { return *inst_; }
  [[nodiscard]] const CandidateIndex& index() const noexcept { return index_; }

  /// Repair `plan`/`duals` in place against the effective network in
  /// `faults`.  Deterministic; transactional per re-admitted query (a query
  /// that cannot be fully re-seated leaves no partial state).  The plan and
  /// duals must belong to this engine's instance.
  RepairStats repair(ReplicaPlan& plan, DualState& duals,
                     const FaultState& faults,
                     const RepairOptions& opts = {}) const;

 private:
  const Instance* inst_;
  CandidateIndex index_;
};

/// Independent constraint re-check under faults: everything `validate`
/// checks, with availability scaled by the fault state, effective
/// (downed-link) delays against deadlines, and no replica or assignment on
/// a downed site.
ValidationResult validate_under_faults(const ReplicaPlan& plan,
                                       const FaultState& faults);

}  // namespace edgerep
