#include "core/repair.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "cloud/delay.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace edgerep {

namespace {

/// Rank `queries` by the admission order knob (same comparators as the
/// admission engine, applied to the displaced subset).  The input is sorted
/// by id first so the result is a pure function of the set, not of the
/// order eviction passes discovered its members in.
void order_displaced(const Instance& inst, const ApproOptions& opts,
                     std::vector<QueryId>& queries) {
  std::sort(queries.begin(), queries.end());
  switch (opts.order) {
    case ApproOptions::Order::kInput:
      break;
    case ApproOptions::Order::kVolumeDesc:
      std::stable_sort(queries.begin(), queries.end(),
                       [&](QueryId a, QueryId b) {
                         return inst.demanded_volume(a) >
                                inst.demanded_volume(b);
                       });
      break;
    case ApproOptions::Order::kVolumeAsc:
      std::stable_sort(queries.begin(), queries.end(),
                       [&](QueryId a, QueryId b) {
                         return inst.demanded_volume(a) <
                                inst.demanded_volume(b);
                       });
      break;
    case ApproOptions::Order::kDeadlineAsc:
      std::stable_sort(queries.begin(), queries.end(),
                       [&](QueryId a, QueryId b) {
                         return inst.query(a).deadline < inst.query(b).deadline;
                       });
      break;
    case ApproOptions::Order::kRandom: {
      Rng rng(opts.seed);
      rng.shuffle(std::span<QueryId>(queries));
      break;
    }
  }
}

/// Fault-aware flavour of the admission engine's per-demand step: candidates
/// come from the fault-free pruned index (a superset — faults only remove
/// edges and capacity), then the effective checks (site up, degraded
/// capacity, downed-link delays) filter and re-price them.
bool admit_demand_faulted(const Instance& inst, const CandidateIndex& index,
                          const FaultState& faults, const Query& q,
                          std::size_t di, ReplicaPlan& plan, DualState& duals,
                          const ApproOptions& opts,
                          obs::AuditEntry* audit = nullptr) {
  const DatasetDemand& dd = q.demands[di];
  const double need = index.need(q.id, di);
  const bool budget_left = plan.replica_count(dd.dataset) < inst.max_replicas();
  const double mu_term =
      opts.replica_weight / static_cast<double>(inst.max_replicas());
  const bool link_faults = faults.any_link_down();

  SiteId best_site = kInvalidSite;
  bool best_needs_replica = false;
  double best_price = 0.0;
  double best_eta = 0.0;
  double best_capacity_term = 0.0;
  // Rejection diagnostics, gathered in the same scan (repair runs are rare
  // enough that the hot-path/audit split of the admission engine would buy
  // nothing here).
  bool saw_feasible_site = false;
  bool blocked_by_budget = false;

  for (const CandidateSite& c : index.candidates(q.id, di)) {
    if (!faults.site_up(c.site)) continue;
    double eta_base = c.delay_over_deadline;
    if (link_faults) {
      const double ed = faults.evaluation_delay(q, dd, c.site);
      if (ed > q.deadline) continue;
      eta_base = ed / q.deadline;
    }
    saw_feasible_site = true;
    const bool has = plan.has_replica(dd.dataset, c.site);
    const double eff = faults.available(c.site);
    if (plan.load(c.site) + need > eff + kCapacityEps) continue;
    if (!has && !budget_left) {
      blocked_by_budget = true;
      continue;
    }
    const double capacity_term = need / std::max(eff, 1e-12);
    double p = duals.theta(c.site) + capacity_term +
               opts.eta_weight * eta_base;
    if (!has) p += mu_term;
    if (best_site == kInvalidSite || p < best_price) {
      best_site = c.site;
      best_needs_replica = !has;
      best_price = p;
      best_eta = opts.eta_weight * eta_base;
      best_capacity_term = capacity_term;
    }
  }

  if (audit != nullptr) {
    audit->query = q.id;
    audit->demand = static_cast<std::uint32_t>(di);
    audit->dataset = dd.dataset;
    if (best_site == kInvalidSite) {
      audit->admitted = false;
      if (!saw_feasible_site) {
        audit->reason = obs::AuditReason::kNoDeadlineFeasibleSite;
      } else if (blocked_by_budget) {
        audit->reason = obs::AuditReason::kReplicaBudgetSpent;
      } else {
        audit->reason = obs::AuditReason::kCapacityExhausted;
      }
    } else {
      audit->admitted = true;
      audit->reason = obs::AuditReason::kAdmitted;
      audit->site = best_site;
      audit->placed_replica = best_needs_replica;
      audit->theta_term = duals.theta(best_site);
      audit->capacity_term = best_capacity_term;
      audit->eta_term = best_eta;
      audit->mu_term = best_needs_replica ? mu_term : 0.0;
      audit->total_price = best_price;
    }
  }

  if (best_site == kInvalidSite) return false;
  if (best_needs_replica) {
    plan.place_replica(dd.dataset, best_site);
    duals.raise_mu(q.id);
  }
  plan.assign(q.id, dd.dataset, best_site);
  // Uniform raise of the capacity price against the *effective*
  // availability; set_theta journals, so rollback restores it exactly.
  const double eff = faults.available(best_site);
  duals.set_theta(best_site,
                  duals.theta(best_site) + need / std::max(eff, 1e-12));
  const double vol = inst.dataset(dd.dataset).volume;
  const double tight =
      std::max(0.0, vol * (1.0 - q.rate * duals.theta(best_site)));
  duals.set_y(q.id, std::max(duals.y(q.id), tight));
  return true;
}

void mark_rolled_back(std::vector<obs::AuditEntry>* audit,
                      std::size_t query_begin) {
  if (audit == nullptr) return;
  for (std::size_t i = query_begin; i + 1 < audit->size(); ++i) {
    (*audit)[i].admitted = false;
    (*audit)[i].reason = obs::AuditReason::kAtomicRollback;
  }
}

/// Transactional re-admission of one displaced query (the PR-1 savepoint
/// pattern): roll the plan and duals back on the first infeasible demand.
bool readmit_query(const Instance& inst, const CandidateIndex& index,
                   const FaultState& faults, const Query& q, ReplicaPlan& plan,
                   DualState& duals, const ApproOptions& opts,
                   std::vector<obs::AuditEntry>* audit) {
  const std::size_t audit_begin = audit != nullptr ? audit->size() : 0;
  if (!faults.site_up(q.home)) {
    // Nowhere to aggregate results: the query is infeasible outright.
    if (audit != nullptr) {
      obs::AuditEntry& e = audit->emplace_back();
      e.query = q.id;
      e.dataset = q.demands.empty() ? 0 : q.demands[0].dataset;
      e.admitted = false;
      e.reason = obs::AuditReason::kNoDeadlineFeasibleSite;
    }
    return false;
  }
  const ReplicaPlan::Savepoint sp_plan = plan.savepoint();
  const DualState::Savepoint sp_duals = duals.savepoint();
  for (std::size_t di = 0; di < q.demands.size(); ++di) {
    obs::AuditEntry* entry = nullptr;
    if (audit != nullptr) entry = &audit->emplace_back();
    if (!admit_demand_faulted(inst, index, faults, q, di, plan, duals, opts,
                              entry)) {
      plan.rollback_to(sp_plan);
      duals.rollback_to(sp_duals);
      plan.commit();
      duals.commit();
      mark_rolled_back(audit, audit_begin);
      return false;
    }
  }
  plan.commit();
  duals.commit();
  return true;
}

}  // namespace

RepairEngine::RepairEngine(const Instance& inst)
    : inst_(&inst), index_(inst) {
  if (!inst.finalized()) {
    throw std::invalid_argument("RepairEngine: instance not finalized");
  }
}

RepairStats RepairEngine::repair(ReplicaPlan& plan, DualState& duals,
                                 const FaultState& faults,
                                 const RepairOptions& opts) const {
  EDGEREP_TRACE_SCOPE("repair.run");
  const Instance& inst = *inst_;
  if (&plan.instance() != inst_ || &faults.instance() != inst_) {
    throw std::invalid_argument("repair: plan/faults built for a different "
                                "instance");
  }

  RepairStats stats;
  std::vector<obs::AuditEntry> audit_entries;
  std::vector<obs::AuditEntry>* audit =
      obs::audit_enabled() ? &audit_entries : nullptr;
  // Flight-recorder facet: the batch repair engine has no simulation clock,
  // so its evict / re-admit records carry time 0 — the journal still names
  // every displaced (query, demand, site) and where it was re-seated.
  const bool rec_on = obs::recorder_enabled();
  obs::Recorder* const rec = rec_on ? &obs::recorder() : nullptr;
  std::vector<QueryId> displaced;
  std::vector<char> evicted(inst.queries().size(), 0);
  const std::size_t replicas_before = plan.total_replicas();

  // Evict one query entirely: unassign every demand (crediting the ledger)
  // and zero its dual y.  Queries stay atomic through repair — a displaced
  // query either re-seats every demand or contributes nothing.
  auto evict_query = [&](const Query& q) {
    if (evicted[q.id]) return;
    evicted[q.id] = 1;
    for (std::size_t di = 0; di < q.demands.size(); ++di) {
      const DatasetDemand& dd = q.demands[di];
      const auto site = plan.assignment(q.id, dd.dataset);
      if (!site) continue;
      if (audit != nullptr) {
        obs::AuditEntry& e = audit->emplace_back();
        e.query = q.id;
        e.demand = static_cast<std::uint32_t>(di);
        e.dataset = dd.dataset;
        e.admitted = false;
        e.reason = obs::AuditReason::kFaultEvicted;
        e.site = *site;  // where it ran before the fault (forensics)
      }
      if (rec_on) {
        obs::JournalRecord r;
        r.a = q.id;
        r.b = dd.dataset;
        r.site = *site;
        r.kind = static_cast<std::uint8_t>(obs::RecordKind::kShed);
        r.arg = static_cast<std::uint8_t>(di);
        r.flags = 2;  // repair eviction (vs. online site-down / capacity)
        rec->append(r);
      }
      plan.unassign(q.id, dd.dataset);
    }
    duals.set_y(q.id, 0.0);
    ++stats.queries_evicted;
    stats.evicted_volume += inst.demanded_volume(q.id);
    displaced.push_back(q.id);
  };

  if (opts.full_recompute) {
    // Oracle: forget the incumbent entirely and re-run fault-aware
    // admission over the whole query population.
    EDGEREP_TRACE_SCOPE("repair.full_recompute_reset");
    for (const Query& q : inst.queries()) {
      if (plan.assigned_demands(q.id) > 0) evict_query(q);
    }
    displaced.clear();
    displaced.reserve(inst.queries().size());
    for (const Query& q : inst.queries()) displaced.push_back(q.id);
    plan = ReplicaPlan(inst);
    duals = DualState(inst);
    stats.replicas_lost = replicas_before;
  } else {
    {
      EDGEREP_TRACE_SCOPE("repair.evict");
      const bool link_faults = faults.any_link_down();
      // Pass 1: assignments invalidated outright — evaluation site down,
      // home site down, or effective delay past the deadline.
      for (const Query& q : inst.queries()) {
        bool bad = false;
        bool any = false;
        for (const DatasetDemand& dd : q.demands) {
          const auto site = plan.assignment(q.id, dd.dataset);
          if (!site) continue;
          any = true;
          if (!faults.site_up(*site) ||
              (link_faults && !faults.deadline_ok(q, dd, *site))) {
            bad = true;
            break;
          }
        }
        if (any && !faults.site_up(q.home)) bad = true;
        if (bad) evict_query(q);
      }
      // Pass 2: replicas stored on crashed sites are lost; their budget
      // frees up for re-placement (every user was evicted in pass 1).
      for (const Dataset& d : inst.datasets()) {
        const std::vector<SiteId> sites = plan.replica_sites(d.id);
        for (const SiteId s : sites) {
          if (faults.site_up(s)) continue;
          plan.remove_replica(d.id, s);
          ++stats.replicas_lost;
        }
      }
      // Pass 3: degraded sites may now be overcommitted; shed queries in
      // ascending (demanded volume, id) order — a deterministic greedy that
      // sacrifices the least objective per unit of freed capacity — until
      // the committed load fits the effective availability.
      for (const Site& s : inst.sites()) {
        if (!faults.site_up(s.id)) continue;
        const double eff = faults.available(s.id);
        if (plan.load(s.id) <= eff + kCapacityEps) continue;
        std::vector<QueryId> here;
        for (const Query& q : inst.queries()) {
          if (evicted[q.id]) continue;
          for (const DatasetDemand& dd : q.demands) {
            const auto site = plan.assignment(q.id, dd.dataset);
            if (site && *site == s.id) {
              here.push_back(q.id);
              break;
            }
          }
        }
        std::sort(here.begin(), here.end(), [&](QueryId a, QueryId b) {
          const double va = inst.demanded_volume(a);
          const double vb = inst.demanded_volume(b);
          if (va != vb) return va < vb;
          return a < b;
        });
        for (const QueryId m : here) {
          if (plan.load(s.id) <= eff + kCapacityEps) break;
          evict_query(inst.query(m));
        }
      }
    }
    {
      // Re-price θ at every site the faults or evictions touched: uniform
      // raising maintains θ_l = load_l / A(v_l), so after capacity or load
      // changed we reset it to load / effective availability (0 for downed
      // sites — they are excluded from candidacy anyway).
      EDGEREP_TRACE_SCOPE("repair.reprice");
      for (const Site& s : inst.sites()) {
        const double scale = faults.capacity_scale(s.id);
        const bool touched = scale != 1.0 || stats.queries_evicted > 0;
        if (!touched) continue;
        const double eff = faults.available(s.id);
        duals.set_theta(s.id, eff > 0.0 ? plan.load(s.id) / eff : 0.0);
      }
    }
  }

  {
    EDGEREP_TRACE_SCOPE("repair.readmit");
    order_displaced(inst, opts.admission, displaced);
    for (const QueryId m : displaced) {
      const Query& q = inst.query(m);
      if (q.demands.empty()) continue;
      if (readmit_query(inst, index_, faults, q, plan, duals, opts.admission,
                        audit)) {
        ++stats.queries_readmitted;
        stats.readmitted_volume += inst.demanded_volume(m);
        if (rec_on) {
          for (std::size_t di = 0; di < q.demands.size(); ++di) {
            const auto site = plan.assignment(q.id, q.demands[di].dataset);
            if (!site) continue;
            obs::JournalRecord r;
            r.a = q.id;
            r.b = q.demands[di].dataset;
            r.site = *site;
            r.kind = static_cast<std::uint8_t>(obs::RecordKind::kRelocate);
            r.arg = static_cast<std::uint8_t>(di);
            r.flags = inst.site(*site).is_data_center() ? 1 : 0;
            rec->append(r);
          }
        }
      }
    }
    stats.queries_lost = stats.queries_evicted >= stats.queries_readmitted
                             ? stats.queries_evicted - stats.queries_readmitted
                             : 0;
  }
  stats.replicas_placed =
      plan.total_replicas() + stats.replicas_lost >= replicas_before
          ? plan.total_replicas() + stats.replicas_lost - replicas_before
          : 0;

  duals.repair();

  if (audit != nullptr) {
    for (obs::AuditEntry& e : audit_entries) e.algorithm = "repair";
    obs::audit_log().record_batch(audit_entries);
  }
  if (obs::metrics_enabled()) {
    static obs::Counter& runs = obs::metrics().counter(
        "edgerep_repair_runs_total", "repair engine invocations");
    static obs::Counter& evicted_total = obs::metrics().counter(
        "edgerep_repair_queries_evicted_total",
        "queries displaced by injected faults");
    static obs::Counter& readmitted_total = obs::metrics().counter(
        "edgerep_repair_queries_readmitted_total",
        "displaced queries re-seated by repair");
    static obs::Counter& lost_total = obs::metrics().counter(
        "edgerep_repair_queries_lost_total",
        "displaced queries repair could not re-seat");
    static obs::Counter& replicas_lost_total = obs::metrics().counter(
        "edgerep_repair_replicas_lost_total",
        "replicas lost to crashed sites");
    static obs::Counter& replicas_placed_total = obs::metrics().counter(
        "edgerep_repair_replicas_placed_total",
        "fresh replicas placed during re-admission");
    static obs::Gauge& evicted_volume = obs::metrics().gauge(
        "edgerep_repair_evicted_volume_gb",
        "cumulative demanded volume displaced by faults across repair runs");
    runs.inc();
    evicted_total.inc(stats.queries_evicted);
    readmitted_total.inc(stats.queries_readmitted);
    lost_total.inc(stats.queries_lost);
    replicas_lost_total.inc(stats.replicas_lost);
    replicas_placed_total.inc(stats.replicas_placed);
    evicted_volume.add(stats.evicted_volume);
  }
  return stats;
}

ValidationResult validate_under_faults(const ReplicaPlan& plan,
                                       const FaultState& faults) {
  const Instance& inst = plan.instance();
  if (&faults.instance() != &inst) {
    throw std::invalid_argument("validate_under_faults: fault state built "
                                "for a different instance");
  }
  ValidationResult vr = validate(plan);  // fault-free constraints first
  auto violation = [&vr](std::string msg) {
    vr.ok = false;
    vr.violations.push_back(std::move(msg));
  };
  for (const Dataset& d : inst.datasets()) {
    for (const SiteId s : plan.replica_sites(d.id)) {
      if (!faults.site_up(s)) {
        violation("replica of dataset " + std::to_string(d.id) +
                  " on downed site " + std::to_string(s));
      }
    }
  }
  for (const Site& s : inst.sites()) {
    const double eff = faults.available(s.id);
    if (plan.load(s.id) > eff + 1e-6) {
      violation("site " + std::to_string(s.id) + " load " +
                std::to_string(plan.load(s.id)) +
                " exceeds effective availability " + std::to_string(eff));
    }
  }
  for (const Query& q : inst.queries()) {
    for (const DatasetDemand& dd : q.demands) {
      const auto site = plan.assignment(q.id, dd.dataset);
      if (!site) continue;
      if (!faults.site_up(*site)) {
        violation("query " + std::to_string(q.id) + " assigned to downed "
                  "site " + std::to_string(*site));
      } else if (!faults.deadline_ok(q, dd, *site)) {
        violation("query " + std::to_string(q.id) + " misses its deadline "
                  "at site " + std::to_string(*site) +
                  " under effective delays");
      }
      if (!faults.site_up(q.home)) {
        violation("query " + std::to_string(q.id) + " assigned while its "
                  "home site " + std::to_string(q.home) + " is down");
      }
    }
  }
  return vr;
}

}  // namespace edgerep
