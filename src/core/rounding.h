// LP-rounding placement: solve the LP relaxation of the paper's ILP, round
// the fractional replica variables x_{nl} (top-K deterministic or
// proportional randomized), then assign demands greedily by descending
// fractional π weight subject to the real constraints.
//
// This is the classic LP-based alternative the paper alludes to via the
// capacitated-facility-location literature [An–Singh–Svensson, FOCS'14].
// Practical only where the LP is (small/medium instances); used by the
// ABL-GAP bench as a third point between the primal-dual heuristic and the
// exact ILP.
#pragma once

#include <cstdint>

#include "baselines/baseline.h"
#include "cloud/instance.h"

namespace edgerep {

struct RoundingOptions {
  /// false: each dataset keeps its K largest-x sites (deterministic).
  /// true: sites are sampled without replacement with probability
  /// proportional to x (seeded).
  bool randomized = false;
  std::uint64_t seed = 0x10c4;
  /// Drop fractional values below this before rounding (noise filter).
  double x_floor = 1e-6;
};

/// Solve the relaxation and round.  Throws std::runtime_error if the LP
/// fails to solve (it is always feasible, so this indicates size limits).
BaselineResult lp_rounding(const Instance& inst,
                           const RoundingOptions& opts = {});

}  // namespace edgerep
