// Local-search improvement for any replica plan.
//
// Alternates two passes until a fixed point (or the pass limit):
//  * rebalance — relocate assigned demands of admitted queries to feasible
//    replica sites with more head-room, spreading load without changing the
//    objective;
//  * admit — try to fully admit each unadmitted query transactionally,
//    using existing replicas, leftover replica budget, or budget reclaimed
//    by dropping an *unused* replica of the needed dataset.
//
// The admitted volume is non-decreasing across passes by construction, so
// `improve_plan(x).metrics.admitted_volume ≥ evaluate(x).admitted_volume`
// for every input plan — a property the tests assert for every algorithm's
// output.  The ABL-LOCALSEARCH bench measures how much head-room each
// placement heuristic leaves on the table.
#pragma once

#include "cloud/plan.h"

namespace edgerep {

struct LocalSearchOptions {
  std::size_t max_passes = 16;
};

struct LocalSearchResult {
  ReplicaPlan plan;
  PlanMetrics metrics;
  std::size_t relocations = 0;      ///< rebalance moves applied
  std::size_t queries_admitted = 0; ///< newly admitted by the search
  std::size_t passes = 0;
};

LocalSearchResult improve_plan(ReplicaPlan plan,
                               const LocalSearchOptions& opts = {});

}  // namespace edgerep
