// Vectorized dual-pricing kernel for the admission hot loop.
//
// The per-candidate price of serving a demand at site l is
//
//   p(l) = θ_l + need·(1/A(v_l)) + η·(delay_l/deadline) [+ μ/K if fresh]
//
// and the admission step is an argmin over the pruned candidate list with
// feasibility masking (existing replica or budget left, residual capacity
// fits).  The scalar path walks the candidates as an array of structs and
// asks the plan per candidate (`has_replica` is a linear scan of the replica
// list, `fits` a call chain); this kernel instead lays the static factors
// out as struct-of-arrays (site ids, capacity reciprocals, η bases) and
// computes every candidate's price in one branch-light pass over contiguous
// buffers, gathering only the dynamic state (θ, committed load, a replica
// byte-mask) by site id.
//
// Equivalence contract: the kernel performs *exactly* the scalar path's
// floating-point operations in the same order — `θ + need·inv + η·dod`, a
// conditional `+ μ` (adding 0.0 keeps bits: every term is ≥ 0), and the
// `fits` comparison against `(available − load) + kCapacityEps` — and its
// strict `<` argmin visits candidates in the same ascending-site order, so
// winner and price are bit-identical to the scalar oracle, ties broken by
// candidate order.  tests/core/pricing_test.cpp pins this over randomized
// instances; bench/micro_stream.cpp measures the speedup.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "cloud/plan.h"
#include "cloud/types.h"

namespace edgerep {

/// Struct-of-arrays view of one demand's pruned candidate list.  All three
/// spans have equal length; entry i describes the i-th deadline-feasible
/// site in ascending site-id order.
struct CandidateSoA {
  std::span<const SiteId> site;        ///< candidate site ids
  std::span<const double> inv_avail;   ///< 1 / max(A(v), 1e-12), pre-gathered
  std::span<const double> dod;         ///< delay / deadline (the η base)

  [[nodiscard]] std::size_t size() const noexcept { return site.size(); }
};

/// Dynamic state the kernel gathers by site id.  `avail` and `load` back the
/// capacity check `need ≤ (avail[s] − load[s]) + kCapacityEps`; `replica`
/// is a byte-mask (1 = site holds a replica of the demanded dataset) over
/// all sites, maintained by the caller (see ReplicaMaskWorkspace).
struct PricingState {
  std::span<const double> theta;         ///< per site: dual capacity price
  std::span<const double> avail;         ///< per site: A(v_l), raw
  std::span<const double> load;          ///< per site: committed load
  std::span<const std::uint8_t> replica; ///< per site: replica mask bytes
  bool budget_left = true;               ///< replica budget K not exhausted
};

/// Argmin result.  `candidate == kNoCandidate` when no feasible site exists.
struct PricedChoice {
  static constexpr std::size_t kNoCandidate = static_cast<std::size_t>(-1);
  std::size_t candidate = kNoCandidate;  ///< index into the SoA arrays
  SiteId site = kInvalidSite;
  double price = 0.0;
  bool needs_replica = false;
};

/// One branch-light pass over the SoA buffers: price every candidate, mask
/// infeasible ones, and return the strict-< argmin (first winner on ties).
PricedChoice price_candidates(const CandidateSoA& soa,
                              const PricingState& state, double need,
                              double eta_weight, double mu_term);

/// Scalar walk over the same mask-backed inputs as the kernel: one candidate
/// at a time with branchy skips.  Used by the engines' Pricing::kScalar mode
/// and as the same-inputs equivalence baseline; must stay in lockstep with
/// price_candidates.
PricedChoice price_candidates_scalar(const CandidateSoA& soa,
                                     const PricingState& state, double need,
                                     double eta_weight, double mu_term);

/// Inputs of the reference oracle — the pre-kernel `site_price` walk, which
/// asked the *plan* per candidate: replica membership is a linear scan of
/// the demanded dataset's replica site list (`ReplicaPlan::has_replica`),
/// not an O(1) byte-mask probe.  The kernel's PricingState flattens exactly
/// this list into ReplicaMaskWorkspace bytes.
struct ReferencePricingState {
  std::span<const double> theta;         ///< per site: dual capacity price
  std::span<const double> avail;         ///< per site: A(v_l), raw
  std::span<const double> load;          ///< per site: committed load
  std::span<const SiteId> replicas;      ///< sites holding the dataset
  bool budget_left = true;               ///< replica budget K not exhausted
};

/// Reference oracle: the original per-candidate walk, bit-identical to the
/// kernel by construction (same FP sequence, same strict-< argmin) but with
/// the plan-shaped replica scan.  This is the speedup denominator committed
/// in BENCH_throughput.json and the third leg of the equivalence suite.
PricedChoice price_candidates_reference(const CandidateSoA& soa,
                                        const ReferencePricingState& state,
                                        double need, double eta_weight,
                                        double mu_term);

/// Reusable per-site replica byte-mask.  The kernel needs O(1) "does site s
/// hold a replica of dataset n" lookups; plans store replica lists (a few
/// entries), so callers set the listed sites before pricing and clear them
/// after — O(K) per demand instead of O(candidates·K) scalar scans.
class ReplicaMaskWorkspace {
 public:
  void resize(std::size_t sites) { mask_.assign(sites, 0); }

  /// Mark every site in `sites` as holding a replica.
  void set(std::span<const SiteId> sites) {
    for (const SiteId s : sites) mask_[s] = 1;
  }
  void set_one(SiteId s) { mask_[s] = 1; }

  /// Clear exactly the sites set since the last clear (callers pass the same
  /// lists back; the mask itself keeps no touch journal).
  void clear(std::span<const SiteId> sites) {
    for (const SiteId s : sites) mask_[s] = 0;
  }
  void clear_one(SiteId s) { mask_[s] = 0; }

  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    return mask_;
  }
  [[nodiscard]] bool test(SiteId s) const noexcept { return mask_[s] != 0; }

 private:
  std::vector<std::uint8_t> mask_;
};

}  // namespace edgerep
