// Exact and fractional reference solvers built on the ILP substrate.
// Practical only on small instances (≤ ~25 queries × ~12 sites); used by
// correctness tests and the LP-gap ablation bench to measure how far the
// primal-dual heuristic sits from optimal.
#pragma once

#include <optional>

#include "cloud/plan.h"
#include "lp/model.h"

namespace edgerep {

struct ExactResult {
  ReplicaPlan plan;
  PlanMetrics metrics;
  double objective = 0.0;       ///< ILP objective value
  double lp_upper_bound = 0.0;  ///< root LP relaxation (≥ objective)
  bool proven_optimal = false;
  std::size_t nodes_explored = 0;
};

/// Solve the instance exactly.  Returns std::nullopt when the node budget is
/// exhausted before any incumbent is found.
std::optional<ExactResult> solve_exact(
    const Instance& inst,
    ModelObjective objective = ModelObjective::kAdmittedVolume,
    const IlpOptions& opts = {});

/// Fractional optimum of the LP relaxation (an upper bound on OPT).
double lp_upper_bound(const Instance& inst,
                      ModelObjective objective = ModelObjective::kAdmittedVolume);

}  // namespace edgerep
