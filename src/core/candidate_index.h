// Per-demand candidate-site index for the admission hot path.
//
// For every (query, demand) pair the index precomputes the deadline-feasible
// site list in one pass over the delay rows, caching the evaluation delay
// and its deadline-relative form so `admit_demand`'s pricing scan touches
// only feasible sites and never recomputes `volume·proc_delay +
// α·volume·path_delay`.  Per-demand resource needs and per-site capacity
// reciprocals are cached alongside, turning the per-candidate price into
// three multiply-adds on dynamic dual state.
//
// Candidates are stored in ascending site-id order — the same order the
// naive per-site scan visits them — so strict `<` argmin tie-breaking is
// unchanged and plans are identical to the unindexed implementation.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "cloud/instance.h"
#include "core/pricing.h"

namespace edgerep {

/// One deadline-feasible evaluation site for a specific (query, demand).
struct CandidateSite {
  SiteId site = kInvalidSite;
  double delay = 0.0;                ///< evaluation_delay at this site
  double delay_over_deadline = 0.0;  ///< delay / q.deadline (the η base)
};

class CandidateIndex {
 public:
  /// Builds the index for a finalized instance; the per-query sweeps are
  /// independent, so large instances build rows in parallel.
  explicit CandidateIndex(const Instance& inst, bool parallel = true);

  /// Feasible sites for query m's demand at position `demand` in
  /// q.demands, ascending by site id.  Hot path: unchecked indexing with
  /// debug asserts.
  [[nodiscard]] std::span<const CandidateSite> candidates(
      QueryId m, std::size_t demand) const {
    assert(m + 1 < query_offset_.size());
    const std::size_t slot = query_offset_[m] + demand;
    assert(slot + 1 < slot_begin_.size());
    return {candidates_.data() + slot_begin_[slot],
            candidates_.data() + slot_begin_[slot + 1]};
  }

  /// Cached resource_demand(inst, q, q.demands[demand]).
  [[nodiscard]] double need(QueryId m, std::size_t demand) const {
    assert(m + 1 < query_offset_.size() &&
           query_offset_[m] + demand < need_.size());
    return need_[query_offset_[m] + demand];
  }

  /// Cached 1 / max(A(v_l), 1e-12) — hoists the division out of pricing.
  [[nodiscard]] double inv_avail(SiteId l) const {
    assert(l < inv_avail_.size());
    return inv_avail_[l];
  }

  /// Struct-of-arrays view of the same candidate row as `candidates`, for
  /// the vectorized pricing kernel: site ids, pre-gathered capacity
  /// reciprocals, and η bases in three contiguous parallel arrays.
  [[nodiscard]] CandidateSoA soa(QueryId m, std::size_t demand) const {
    assert(m + 1 < query_offset_.size());
    const std::size_t slot = query_offset_[m] + demand;
    assert(slot + 1 < slot_begin_.size());
    const std::size_t b = slot_begin_[slot];
    const std::size_t e = slot_begin_[slot + 1];
    return {{soa_site_.data() + b, soa_site_.data() + e},
            {soa_inv_.data() + b, soa_inv_.data() + e},
            {soa_dod_.data() + b, soa_dod_.data() + e}};
  }

  /// Raw per-site availabilities A(v_l), indexed by site id — the kernel's
  /// capacity-check operand (paired with a plan-loads span).
  [[nodiscard]] std::span<const double> avail() const noexcept {
    return avail_;
  }

  /// Total candidate entries (diagnostics / tests).
  [[nodiscard]] std::size_t size() const noexcept { return candidates_.size(); }

 private:
  std::vector<std::size_t> query_offset_;   ///< per query: first demand slot
  std::vector<std::size_t> slot_begin_;     ///< CSR offsets into candidates_
  std::vector<CandidateSite> candidates_;
  std::vector<double> need_;                ///< per demand slot
  std::vector<double> inv_avail_;           ///< per site
  std::vector<double> avail_;               ///< per site, raw A(v_l)
  // SoA mirrors of candidates_, aligned entry-for-entry with slot_begin_.
  std::vector<SiteId> soa_site_;
  std::vector<double> soa_inv_;   ///< inv_avail_[site], pre-gathered
  std::vector<double> soa_dod_;   ///< delay_over_deadline
};

}  // namespace edgerep
