// Dual machinery of the primal-dual approximation (paper §3.3).
//
// The dual (8)–(14) prices:
//   θ_l    computing capacity at site l,
//   y_{ml} assigning query m to site l,
//   η_{ml} query m's deadline at site l,
//   μ_m    creating a replica of the dataset demanded by m.
//
// During the primal-dual run θ evolves as a relative-load price and guides
// site selection.  Afterwards `repair` lifts (y, μ) to the cheapest values
// that make the dual solution *feasible* (constraints (9)–(10) for every
// (m, l) pair, with η fixed at 0), so `objective` yields a genuine upper
// bound on any primal solution — weak duality that tests can assert.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cloud/instance.h"

namespace edgerep {

class DualState {
 public:
  explicit DualState(const Instance& inst);

  /// --- evolving prices used during the primal run ----------------------
  [[nodiscard]] double theta(SiteId l) const { return theta_.at(l); }
  /// Contiguous θ vector for the pricing kernel's unchecked gathers.
  [[nodiscard]] std::span<const double> theta_data() const noexcept {
    return theta_;
  }
  /// Raise θ_l by the relative load `amount / A(v_l)` (uniform raising step).
  void raise_theta(SiteId l, double resource_amount);

  /// Directly re-price θ_l (journaled).  The repair engine uses this to
  /// reset a site's capacity price to `load / effective availability` after
  /// a failure changes A(v_l) or evicts committed load — uniform raising
  /// then continues from the re-priced value.
  void set_theta(SiteId l, double v);

  [[nodiscard]] double mu(QueryId m) const { return mu_.at(m); }
  /// Raise μ_m by one unit — "we create one replica" (Algorithm 1 line 7).
  void raise_mu(QueryId m) {
    journal(Var::kMu, m, mu_.at(m));
    mu_[m] += 1.0;
  }

  [[nodiscard]] double y(QueryId m) const { return y_.at(m); }
  void set_y(QueryId m, double v) {
    journal(Var::kY, m, y_.at(m));
    y_[m] = v;
  }

  /// --- transactions -----------------------------------------------------
  /// Same undo-log contract as ReplicaPlan: savepoints nest, rollback
  /// restores every dual variable to its exact prior value (previous values
  /// are journaled, not re-derived), and commit() discards the journal.
  using Savepoint = std::size_t;
  Savepoint savepoint();
  void rollback_to(Savepoint sp);
  void commit() noexcept;
  [[nodiscard]] std::size_t undo_log_size() const noexcept {
    return undo_log_.size();
  }

  /// --- certificate -----------------------------------------------------
  /// Lift y and μ so that dual constraints (9) and (10) hold for every
  /// (m, l) with η ≡ 0:  y_m ≥ |S(q_m)|·(1 − r_m·θ_l)⁺ for all l, and
  /// μ_m ≥ y_m.  Idempotent.
  void repair();

  /// Dual objective (8): Σ_l A(v_l)·θ_l + Σ_m K·μ_m  (η terms are zero).
  [[nodiscard]] double objective() const;

  /// True when (9) and (10) hold for every (query, site) pair with η ≡ 0.
  [[nodiscard]] bool feasible(double tol = 1e-9) const;

 private:
  enum class Var : std::uint8_t { kTheta, kY, kMu };
  struct UndoEntry {
    Var var;
    std::uint32_t index;
    double prev;
  };
  void journal(Var var, std::uint32_t index, double prev) {
    if (journaling_) undo_log_.push_back({var, index, prev});
  }

  const Instance* inst_;
  std::vector<double> theta_;  ///< per site
  std::vector<double> y_;      ///< per query (y_{m,l} is nonzero at one site)
  std::vector<double> mu_;     ///< per query
  std::vector<UndoEntry> undo_log_;
  bool journaling_ = false;
};

}  // namespace edgerep
