#include "core/primal_dual.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace edgerep {

namespace {

/// Mirror a θ mutation to the live telemetry board.  Gated here (not in the
/// board) so the disabled path is one relaxed load — bit-neutrality of the
/// solver does not depend on the board's mutex.
inline void publish_theta(SiteId l, double v) {
  if (obs::metrics_enabled()) {
    obs::dual_prices().publish(l, v);
  }
}

}  // namespace

DualState::DualState(const Instance& inst) : inst_(&inst) {
  theta_.assign(inst.sites().size(), 0.0);
  y_.assign(inst.queries().size(), 0.0);
  mu_.assign(inst.queries().size(), 0.0);
}

void DualState::raise_theta(SiteId l, double resource_amount) {
  const double avail = inst_->site(l).available;
  if (avail > 0.0) {
    journal(Var::kTheta, l, theta_.at(l));
    theta_[l] += resource_amount / avail;
    publish_theta(l, theta_[l]);
    if (obs::metrics_enabled()) {
      static obs::Counter& raises = obs::metrics().counter(
          "edgerep_dual_theta_raises_total",
          "uniform theta raising steps taken by the primal-dual engines");
      raises.inc();
    }
  }
}

void DualState::set_theta(SiteId l, double v) {
  journal(Var::kTheta, l, theta_.at(l));
  theta_[l] = v;
  publish_theta(l, v);
}

DualState::Savepoint DualState::savepoint() {
  journaling_ = true;
  return undo_log_.size();
}

void DualState::rollback_to(Savepoint sp) {
  if (sp > undo_log_.size()) {
    throw std::invalid_argument("rollback_to: savepoint ahead of undo log");
  }
  while (undo_log_.size() > sp) {
    const UndoEntry& e = undo_log_.back();
    switch (e.var) {
      case Var::kTheta:
        theta_[e.index] = e.prev;
        publish_theta(e.index, e.prev);  // keep the live board honest
        break;
      case Var::kY:
        y_[e.index] = e.prev;
        break;
      case Var::kMu:
        mu_[e.index] = e.prev;
        break;
    }
    undo_log_.pop_back();
  }
}

void DualState::commit() noexcept {
  undo_log_.clear();
  journaling_ = false;
}

void DualState::repair() {
  const Instance& inst = *inst_;
  // Cheapest θ over sites: the binding site for constraint (9) when y must
  // cover the slack everywhere.
  double min_theta = theta_.empty() ? 0.0 : theta_[0];
  for (const double t : theta_) min_theta = std::min(min_theta, t);
  for (const Query& q : inst.queries()) {
    const double vol = inst.demanded_volume(q.id);
    const double needed = vol * std::max(0.0, 1.0 - q.rate * min_theta);
    y_[q.id] = std::max(y_[q.id], needed);
    mu_[q.id] = std::max(mu_[q.id], y_[q.id]);
  }
}

double DualState::objective() const {
  const Instance& inst = *inst_;
  double obj = 0.0;
  for (const Site& s : inst.sites()) obj += s.available * theta_[s.id];
  const double k = static_cast<double>(inst.max_replicas());
  for (const Query& q : inst.queries()) obj += k * mu_[q.id];
  return obj;
}

bool DualState::feasible(double tol) const {
  const Instance& inst = *inst_;
  for (const Query& q : inst.queries()) {
    const double vol = inst.demanded_volume(q.id);
    for (const Site& s : inst.sites()) {
      // (9) with η ≡ 0: vol·r_m·θ_l + y_m ≥ vol.
      if (vol * q.rate * theta_[s.id] + y_[q.id] < vol - tol) return false;
    }
    // (10) reduced to the per-query form μ_m ≥ y_m (y lives at one site).
    if (mu_[q.id] < y_[q.id] - tol) return false;
  }
  for (const double t : theta_) {
    if (t < -tol) return false;
  }
  return true;
}

}  // namespace edgerep
