#include "core/exact.h"

#include <stdexcept>

namespace edgerep {

std::optional<ExactResult> solve_exact(const Instance& inst,
                                       ModelObjective objective,
                                       const IlpOptions& opts) {
  const IlpModel model(inst, objective);
  const IlpSolution sol = model.solve(opts);
  if (sol.status != LpStatus::kOptimal) return std::nullopt;
  ExactResult res{model.extract_plan(sol.x), {}, sol.objective, sol.best_bound,
                  sol.proven_optimal, sol.nodes_explored};
  res.metrics = evaluate(res.plan);
  return res;
}

double lp_upper_bound(const Instance& inst, ModelObjective objective) {
  const IlpModel model(inst, objective);
  const LpSolution sol = model.solve_relaxation();
  if (sol.status != LpStatus::kOptimal) {
    throw std::runtime_error(std::string("lp_upper_bound: relaxation ") +
                             to_string(sol.status));
  }
  return sol.objective;
}

}  // namespace edgerep
