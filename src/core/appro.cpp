#include "core/appro.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "cloud/delay.h"
#include "core/candidate_index.h"
#include "core/pricing.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace edgerep {

namespace {

std::vector<QueryId> ordered_queries(const Instance& inst,
                                     const ApproOptions& opts) {
  std::vector<QueryId> order(inst.queries().size());
  for (QueryId m = 0; m < order.size(); ++m) order[m] = m;
  switch (opts.order) {
    case ApproOptions::Order::kInput:
      break;
    case ApproOptions::Order::kVolumeDesc:
      std::stable_sort(order.begin(), order.end(), [&](QueryId a, QueryId b) {
        return inst.demanded_volume(a) > inst.demanded_volume(b);
      });
      break;
    case ApproOptions::Order::kVolumeAsc:
      std::stable_sort(order.begin(), order.end(), [&](QueryId a, QueryId b) {
        return inst.demanded_volume(a) < inst.demanded_volume(b);
      });
      break;
    case ApproOptions::Order::kDeadlineAsc:
      std::stable_sort(order.begin(), order.end(), [&](QueryId a, QueryId b) {
        return inst.query(a).deadline < inst.query(b).deadline;
      });
      break;
    case ApproOptions::Order::kRandom: {
      Rng rng(opts.seed);
      rng.shuffle(std::span<QueryId>(order));
      break;
    }
  }
  return order;
}

/// Audit-only classification of a failed admission: which constraint bound?
/// Runs solely on failure with auditing enabled — the admission scan itself
/// never tracks diagnostics, so the hot path is identical either way.
/// Deterministic precedence: deadline < replica budget < capacity (a
/// budget-blocked verdict means relaxing K alone would have admitted the
/// demand at some fitting site).
obs::AuditReason classify_rejection(const CandidateIndex& index,
                                    const Query& q, std::size_t di,
                                    const ReplicaPlan& plan,
                                    bool budget_left) {
  const DatasetDemand& dd = q.demands[di];
  const auto cands = index.candidates(q.id, di);
  if (cands.empty()) return obs::AuditReason::kNoDeadlineFeasibleSite;
  const double need = index.need(q.id, di);
  for (const CandidateSite& c : cands) {
    if (!plan.fits(c.site, need)) continue;
    // A fitting site with a replica would have been admitted, so a fitting
    // candidate here necessarily lacks one: the budget was the binding
    // constraint.
    if (!budget_left && !plan.has_replica(dd.dataset, c.site)) {
      return obs::AuditReason::kReplicaBudgetSpent;
    }
  }
  return obs::AuditReason::kCapacityExhausted;
}

/// One Appro-S admission step for a single (query, demand): pick the
/// cheapest feasible site, placing a replica when needed.  Returns true and
/// updates plan/duals on success.  When `audit` is non-null, the decision
/// and (on success) the winning site's dual price breakdown are recorded
/// into it; the admission logic is unchanged either way.
///
/// The dual price of serving a demand at site l is the rate at which uniform
/// raising makes constraint (9) tight there: the capacity term θ_l +
/// need·(1/A(v_l)) is the site's relative fill *after* the placement (θ
/// evolves as relative load), the η term prices deadline-budget consumption,
/// and fresh replicas pay a creation price μ amortized over the budget K.
/// Minimizing it sends demands where computing resource is least scarce —
/// large remote data centers when the deadline permits — preserving the tiny
/// cloudlets for deadline-bound queries: the paper's "overall perspective,
/// jointly considering data replication and query assignment".
bool admit_demand(const Instance& inst, const CandidateIndex& index,
                  const Query& q, std::size_t di, ReplicaPlan& plan,
                  DualState& duals, const ApproOptions& opts,
                  ReplicaMaskWorkspace& mask,
                  obs::AuditEntry* audit = nullptr) {
  const DatasetDemand& dd = q.demands[di];
  const double need = index.need(q.id, di);
  const bool budget_left = plan.replica_count(dd.dataset) < inst.max_replicas();
  const double mu_term =
      opts.replica_weight / static_cast<double>(inst.max_replicas());

  SiteId best_site = kInvalidSite;
  bool best_needs_replica = false;
  double best_price = 0.0;

  if (opts.strict_reuse) {
    // Ablation: sites that already hold a replica take absolute priority.
    // The per-demand factors (need, the capacity reciprocal, the η base's
    // 1/deadline) come precomputed; the evaluation delay is computed once
    // per site and reused for both the deadline gate and the η term.
    const double inv_deadline = 1.0 / q.deadline;
    auto consider = [&](SiteId l, bool needs_replica) {
      const double delay = evaluation_delay(inst, q, dd, l);
      if (delay > q.deadline) return;
      if (!plan.fits(l, need)) return;
      double p = duals.theta(l) + need * index.inv_avail(l) +
                 opts.eta_weight * (delay * inv_deadline);
      if (needs_replica) p += mu_term;
      if (best_site == kInvalidSite || p < best_price) {
        best_site = l;
        best_needs_replica = needs_replica;
        best_price = p;
      }
    };
    for (const SiteId l : plan.replica_sites(dd.dataset)) {
      consider(l, /*needs_replica=*/false);
    }
    if (best_site == kInvalidSite && budget_left) {
      for (const Site& s : inst.sites()) {
        if (!plan.has_replica(dd.dataset, s.id)) {
          consider(s.id, /*needs_replica=*/true);
        }
      }
    }
  } else if (opts.pricing == ApproOptions::Pricing::kVectorized) {
    // Default: replica sites and fresh placements compete on dual price
    // (fresh ones carry the μ surcharge).  One kernel pass over the SoA
    // candidate buffers; the replica list is flipped into a byte-mask for
    // the duration of the scan (O(K) set/clear instead of a per-candidate
    // list walk).
    const std::vector<SiteId>& reps = plan.replica_sites(dd.dataset);
    mask.set(reps);
    const PricedChoice ch = price_candidates(
        index.soa(q.id, di),
        {duals.theta_data(), index.avail(), plan.loads(), mask.bytes(),
         budget_left},
        need, opts.eta_weight, mu_term);
    mask.clear(reps);
    if (ch.candidate != PricedChoice::kNoCandidate) {
      best_site = ch.site;
      best_needs_replica = ch.needs_replica;
      best_price = ch.price;
    }
  } else {
    // Scalar oracle: candidate-at-a-time walk, bit-identical to the kernel
    // by construction (same FP sequence, same ascending-id visit order).
    for (const CandidateSite& c : index.candidates(q.id, di)) {
      const bool has = plan.has_replica(dd.dataset, c.site);
      if (!has && !budget_left) continue;
      if (!plan.fits(c.site, need)) continue;
      double p = duals.theta(c.site) + need * index.inv_avail(c.site) +
                 opts.eta_weight * c.delay_over_deadline;
      if (!has) p += mu_term;
      if (best_site == kInvalidSite || p < best_price) {
        best_site = c.site;
        best_needs_replica = !has;
        best_price = p;
      }
    }
  }

  if (audit != nullptr) {
    audit->query = q.id;
    audit->demand = static_cast<std::uint32_t>(di);
    audit->dataset = dd.dataset;
    if (best_site == kInvalidSite) {
      audit->admitted = false;
      audit->reason = classify_rejection(index, q, di, plan, budget_left);
    } else {
      audit->admitted = true;
      audit->reason = obs::AuditReason::kAdmitted;
      audit->site = best_site;
      audit->placed_replica = best_needs_replica;
      audit->theta_term = duals.theta(best_site);
      audit->capacity_term = need * index.inv_avail(best_site);
      audit->eta_term = opts.eta_weight *
                        (evaluation_delay(inst, q, dd, best_site) / q.deadline);
      audit->mu_term = best_needs_replica ? mu_term : 0.0;
      audit->total_price = best_price;
    }
  }

  if (best_site == kInvalidSite) return false;
  if (best_needs_replica) {
    plan.place_replica(dd.dataset, best_site);
    duals.raise_mu(q.id);  // Algorithm 1 line 7: one replica created
  }
  plan.assign(q.id, dd.dataset, best_site);
  duals.raise_theta(best_site, need);  // uniform raise of the capacity price
  // Record the y that makes (9) tight at the chosen site (line 9).
  const double vol = inst.dataset(dd.dataset).volume;
  const double tight = std::max(
      0.0, vol * (1.0 - q.rate * duals.theta(best_site)));
  duals.set_y(q.id, std::max(duals.y(q.id), tight));
  return true;
}

/// Audit bookkeeping for an atomic-query abort: the failing demand keeps
/// its classified reason; sibling demands admitted earlier in the same
/// transaction are re-marked as rolled back (site/price preserved).
void mark_rolled_back(std::vector<obs::AuditEntry>* audit,
                      std::size_t query_begin) {
  if (audit == nullptr) return;
  for (std::size_t i = query_begin; i + 1 < audit->size(); ++i) {
    (*audit)[i].admitted = false;
    (*audit)[i].reason = obs::AuditReason::kAtomicRollback;
  }
}

/// Try every demand of q in place; savepoint first and roll back on the
/// first infeasible demand, so a rejected query leaves no trace.
bool admit_query_savepoint(const Instance& inst, const CandidateIndex& index,
                           const Query& q, ReplicaPlan& plan, DualState& duals,
                           const ApproOptions& opts, ReplicaMaskWorkspace& mask,
                           std::vector<obs::AuditEntry>* audit) {
  const std::size_t audit_begin = audit != nullptr ? audit->size() : 0;
  const ReplicaPlan::Savepoint sp_plan = plan.savepoint();
  const DualState::Savepoint sp_duals = duals.savepoint();
  for (std::size_t di = 0; di < q.demands.size(); ++di) {
    obs::AuditEntry* entry = nullptr;
    if (audit != nullptr) entry = &audit->emplace_back();
    if (!admit_demand(inst, index, q, di, plan, duals, opts, mask, entry)) {
      plan.rollback_to(sp_plan);
      duals.rollback_to(sp_duals);
      plan.commit();
      duals.commit();
      mark_rolled_back(audit, audit_begin);
      return false;
    }
  }
  plan.commit();
  duals.commit();
  return true;
}

/// Legacy trial-commit on deep copies (the seed implementation); kept for
/// the equivalence tests and as the micro_appro speedup baseline.
bool admit_query_copy(const Instance& inst, const CandidateIndex& index,
                      const Query& q, ReplicaPlan& plan, DualState& duals,
                      const ApproOptions& opts, ReplicaMaskWorkspace& mask,
                      std::vector<obs::AuditEntry>* audit) {
  const std::size_t audit_begin = audit != nullptr ? audit->size() : 0;
  ReplicaPlan trial_plan = plan;
  DualState trial_duals = duals;
  for (std::size_t di = 0; di < q.demands.size(); ++di) {
    obs::AuditEntry* entry = nullptr;
    if (audit != nullptr) entry = &audit->emplace_back();
    if (!admit_demand(inst, index, q, di, trial_plan, trial_duals, opts, mask,
                      entry)) {
      mark_rolled_back(audit, audit_begin);
      return false;
    }
  }
  plan = std::move(trial_plan);
  duals = std::move(trial_duals);
  return true;
}

ApproResult run_appro(const Instance& inst, const ApproOptions& opts) {
  EDGEREP_TRACE_SCOPE("appro.run");
  if (!inst.finalized()) {
    throw std::invalid_argument("appro: instance not finalized");
  }
  const CandidateIndex index = [&inst] {
    EDGEREP_TRACE_SCOPE("appro.candidate_index");
    return CandidateIndex(inst);
  }();
  // Audit entries accumulate locally and flush to the global log once, so
  // per-demand recording never takes the log mutex.
  std::vector<obs::AuditEntry> audit_entries;
  std::vector<obs::AuditEntry>* audit =
      obs::audit_enabled() ? &audit_entries : nullptr;
  std::size_t queries_admitted = 0;
  std::size_t queries_rejected = 0;
  ApproResult res{ReplicaPlan(inst), DualState(inst), 0.0, {}, 0, 0};
  ReplicaMaskWorkspace mask;
  mask.resize(inst.sites().size());
  {
    EDGEREP_TRACE_SCOPE("appro.admission");
    for (const QueryId m : ordered_queries(inst, opts)) {
      const Query& q = inst.query(m);
      if (opts.atomic_queries) {
        const bool ok =
            opts.txn == ApproOptions::Txn::kSavepoint
                ? admit_query_savepoint(inst, index, q, res.plan, res.duals,
                                        opts, mask, audit)
                : admit_query_copy(inst, index, q, res.plan, res.duals, opts,
                                   mask, audit);
        if (ok) {
          res.demands_assigned += q.demands.size();
          ++queries_admitted;
        } else {
          res.demands_rejected += q.demands.size();
          ++queries_rejected;
        }
      } else {
        bool all_ok = true;
        for (std::size_t di = 0; di < q.demands.size(); ++di) {
          obs::AuditEntry* entry = nullptr;
          if (audit != nullptr) entry = &audit->emplace_back();
          if (admit_demand(inst, index, q, di, res.plan, res.duals, opts, mask,
                           entry)) {
            ++res.demands_assigned;
          } else {
            ++res.demands_rejected;
            all_ok = false;
          }
        }
        if (all_ok) {
          ++queries_admitted;
        } else {
          ++queries_rejected;
        }
      }
    }
  }
  {
    EDGEREP_TRACE_SCOPE("appro.dual_repair");
    res.duals.repair();
  }
  res.dual_objective = res.duals.objective();
  res.metrics = evaluate(res.plan);
  if (audit != nullptr) {
    for (obs::AuditEntry& e : audit_entries) e.algorithm = "appro";
    obs::audit_log().record_batch(audit_entries);
  }
  if (obs::metrics_enabled()) {
    static obs::Counter& runs =
        obs::metrics().counter("edgerep_appro_runs_total", "run_appro calls");
    static obs::Counter& dem_adm = obs::metrics().counter(
        "edgerep_appro_demands_admitted_total", "demands assigned by appro");
    static obs::Counter& dem_rej = obs::metrics().counter(
        "edgerep_appro_demands_rejected_total", "demands rejected by appro");
    static obs::Counter& q_adm = obs::metrics().counter(
        "edgerep_appro_queries_admitted_total",
        "queries fully admitted by appro");
    static obs::Counter& q_rej = obs::metrics().counter(
        "edgerep_appro_queries_rejected_total", "queries rejected by appro");
    static obs::Counter& replicas = obs::metrics().counter(
        "edgerep_appro_replicas_placed_total",
        "replicas in plans produced by appro");
    runs.inc();
    dem_adm.inc(res.demands_assigned);
    dem_rej.inc(res.demands_rejected);
    q_adm.inc(queries_admitted);
    q_rej.inc(queries_rejected);
    replicas.inc(res.plan.total_replicas());
  }
  return res;
}

}  // namespace

ApproResult appro_s(const Instance& inst, const ApproOptions& opts) {
  for (const Query& q : inst.queries()) {
    if (q.demands.size() != 1) {
      throw std::invalid_argument(
          "appro_s: query " + std::to_string(q.id) +
          " demands " + std::to_string(q.demands.size()) +
          " datasets; the special case requires exactly one (use appro_g)");
    }
  }
  return run_appro(inst, opts);
}

ApproResult appro_g(const Instance& inst, const ApproOptions& opts) {
  return run_appro(inst, opts);
}

}  // namespace edgerep
