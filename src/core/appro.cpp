#include "core/appro.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "cloud/delay.h"
#include "util/rng.h"

namespace edgerep {

namespace {

std::vector<QueryId> ordered_queries(const Instance& inst,
                                     const ApproOptions& opts) {
  std::vector<QueryId> order(inst.queries().size());
  for (QueryId m = 0; m < order.size(); ++m) order[m] = m;
  switch (opts.order) {
    case ApproOptions::Order::kInput:
      break;
    case ApproOptions::Order::kVolumeDesc:
      std::stable_sort(order.begin(), order.end(), [&](QueryId a, QueryId b) {
        return inst.demanded_volume(a) > inst.demanded_volume(b);
      });
      break;
    case ApproOptions::Order::kVolumeAsc:
      std::stable_sort(order.begin(), order.end(), [&](QueryId a, QueryId b) {
        return inst.demanded_volume(a) < inst.demanded_volume(b);
      });
      break;
    case ApproOptions::Order::kDeadlineAsc:
      std::stable_sort(order.begin(), order.end(), [&](QueryId a, QueryId b) {
        return inst.query(a).deadline < inst.query(b).deadline;
      });
      break;
    case ApproOptions::Order::kRandom: {
      Rng rng(opts.seed);
      rng.shuffle(std::span<QueryId>(order));
      break;
    }
  }
  return order;
}

/// Dual price of serving (q, dd) at `site`: the rate at which uniform
/// raising makes dual constraint (9) tight there.
///
/// The capacity term is the site's relative fill *after* this placement,
/// which equals θ_site + need/A(site) since θ evolves as relative load.
/// Minimizing it sends demands to the sites where computing resource is
/// least scarce — large remote data centers when the deadline permits —
/// and so preserves the tiny cloudlets for the deadline-bound queries that
/// have nowhere else to go.  This is what the paper means by placing
/// replicas "from an overall perspective, jointly considering data
/// replication and query assignment".
///
/// The η term prices deadline-budget consumption, and fresh replicas pay a
/// creation price μ amortized over the budget K.
double site_price(const Instance& inst, const DualState& duals, const Query& q,
                  const DatasetDemand& dd, SiteId site, bool needs_replica,
                  const ApproOptions& opts) {
  const double need = resource_demand(inst, q, dd);
  const double avail = std::max(inst.site(site).available, 1e-12);
  double p = duals.theta(site) + need / avail;
  p += opts.eta_weight * (evaluation_delay(inst, q, dd, site) / q.deadline);
  if (needs_replica) {
    p += opts.replica_weight / static_cast<double>(inst.max_replicas());
  }
  return p;
}

/// One Appro-S admission step for a single (query, demand): pick the
/// cheapest feasible site, placing a replica when needed.  Returns true and
/// updates plan/duals on success.
bool admit_demand(const Instance& inst, const Query& q,
                  const DatasetDemand& dd, ReplicaPlan& plan, DualState& duals,
                  const ApproOptions& opts) {
  const double need = resource_demand(inst, q, dd);
  const bool budget_left = plan.replica_count(dd.dataset) < inst.max_replicas();

  SiteId best_site = kInvalidSite;
  bool best_needs_replica = false;
  double best_price = 0.0;
  auto consider = [&](SiteId l, bool needs_replica) {
    if (!deadline_ok(inst, q, dd, l)) return;
    if (!plan.fits(l, need)) return;
    const double p = site_price(inst, duals, q, dd, l, needs_replica, opts);
    if (best_site == kInvalidSite || p < best_price) {
      best_site = l;
      best_needs_replica = needs_replica;
      best_price = p;
    }
  };

  if (opts.strict_reuse) {
    // Ablation: sites that already hold a replica take absolute priority.
    for (const SiteId l : plan.replica_sites(dd.dataset)) {
      consider(l, /*needs_replica=*/false);
    }
    if (best_site == kInvalidSite && budget_left) {
      for (const Site& s : inst.sites()) {
        if (!plan.has_replica(dd.dataset, s.id)) {
          consider(s.id, /*needs_replica=*/true);
        }
      }
    }
  } else {
    // Default: replica sites and fresh placements compete on dual price
    // (fresh ones carry the μ surcharge inside site_price).
    for (const Site& s : inst.sites()) {
      const bool has = plan.has_replica(dd.dataset, s.id);
      if (!has && !budget_left) continue;
      consider(s.id, /*needs_replica=*/!has);
    }
  }

  if (best_site == kInvalidSite) return false;
  if (best_needs_replica) {
    plan.place_replica(dd.dataset, best_site);
    duals.raise_mu(q.id);  // Algorithm 1 line 7: one replica created
  }
  plan.assign(q.id, dd.dataset, best_site);
  duals.raise_theta(best_site, need);  // uniform raise of the capacity price
  // Record the y that makes (9) tight at the chosen site (line 9).
  const double vol = inst.dataset(dd.dataset).volume;
  const double tight = std::max(
      0.0, vol * (1.0 - q.rate * duals.theta(best_site)));
  duals.set_y(q.id, std::max(duals.y(q.id), tight));
  return true;
}

ApproResult run_appro(const Instance& inst, const ApproOptions& opts) {
  if (!inst.finalized()) {
    throw std::invalid_argument("appro: instance not finalized");
  }
  ApproResult res{ReplicaPlan(inst), DualState(inst), 0.0, {}, 0, 0};
  for (const QueryId m : ordered_queries(inst, opts)) {
    const Query& q = inst.query(m);
    if (opts.atomic_queries) {
      // Trial-commit on copies; keep only if every demand lands.
      ReplicaPlan trial_plan = res.plan;
      DualState trial_duals = res.duals;
      bool all_ok = true;
      for (const DatasetDemand& dd : q.demands) {
        if (!admit_demand(inst, q, dd, trial_plan, trial_duals, opts)) {
          all_ok = false;
          break;
        }
      }
      if (all_ok) {
        res.plan = std::move(trial_plan);
        res.duals = std::move(trial_duals);
        res.demands_assigned += q.demands.size();
      } else {
        res.demands_rejected += q.demands.size();
      }
    } else {
      for (const DatasetDemand& dd : q.demands) {
        if (admit_demand(inst, q, dd, res.plan, res.duals, opts)) {
          ++res.demands_assigned;
        } else {
          ++res.demands_rejected;
        }
      }
    }
  }
  res.duals.repair();
  res.dual_objective = res.duals.objective();
  res.metrics = evaluate(res.plan);
  return res;
}

}  // namespace

ApproResult appro_s(const Instance& inst, const ApproOptions& opts) {
  for (const Query& q : inst.queries()) {
    if (q.demands.size() != 1) {
      throw std::invalid_argument(
          "appro_s: query " + std::to_string(q.id) +
          " demands " + std::to_string(q.demands.size()) +
          " datasets; the special case requires exactly one (use appro_g)");
    }
  }
  return run_appro(inst, opts);
}

ApproResult appro_g(const Instance& inst, const ApproOptions& opts) {
  return run_appro(inst, opts);
}

}  // namespace edgerep
