// Shared scaffolding for the per-figure benchmark binaries.
//
// Every figure bench prints (a) the series the paper plots, one row per
// (x-value, algorithm) with mean ± 95% CI over the repetitions, and (b) a
// shape summary comparing the measured ordering/ratios with the paper's
// reported ones.  `--csv` switches the table to CSV for plotting;
// `--reps N` and `--seed S` control the averaging (the paper uses 15
// topologies per point).
#pragma once

#include <iostream>
#include <string>

#include "edgerep/edgerep.h"

namespace edgerep::bench {

struct FigureIo {
  std::size_t reps = 15;
  std::uint64_t seed = 0xED6E;
  bool csv = false;

  static FigureIo parse(int argc, char** argv) {
    const Args args(argc, argv);
    FigureIo io;
    io.reps = static_cast<std::size_t>(args.get_int("reps", 15));
    io.seed = args.get_seed("seed", 0xED6E);
    io.csv = args.get_bool("csv", false);
    return io;
  }
};

inline Table make_series_table(const std::string& x_name) {
  return Table({x_name, "algorithm", "volume_gb", "vol_ci95", "throughput",
                "thr_ci95", "replicas", "runtime_ms"});
}

/// Append one row per algorithm for a sweep point.  `use_assigned` selects
/// the general-case volume accumulator (Appro-G's N'); the special case
/// reports admitted volume (identical for single-demand queries).
inline void add_point_rows(Table& t, const std::string& x_value,
                           const std::vector<AlgoStats>& stats,
                           bool use_assigned) {
  for (const AlgoStats& s : stats) {
    const RunningStat& vol =
        use_assigned ? s.assigned_volume : s.admitted_volume;
    t.row()
        .cell(x_value)
        .cell(s.name)
        .cell(vol.mean(), 1)
        .cell(vol.ci95_halfwidth(), 1)
        .cell(s.throughput.mean(), 3)
        .cell(s.throughput.ci95_halfwidth(), 3)
        .cell(s.replicas.mean(), 1)
        .cell(s.runtime_ms.mean(), 2);
  }
}

inline void emit(const FigureIo& io, const Table& t) {
  if (io.csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }
}

inline void print_banner(const std::string& title,
                         const std::string& paper_expectation) {
  std::cout << "=== " << title << " ===\n"
            << "paper expectation: " << paper_expectation << "\n\n";
}

/// "who wins" line for the shape summary.
inline void print_ratio(const std::string& label, double ours,
                        double baseline) {
  std::cout << label << ": " << ours << " vs " << baseline;
  if (baseline > 0.0) {
    std::cout << "  (ratio " << ours / baseline << "x)";
  }
  std::cout << '\n';
}

}  // namespace edgerep::bench
