// ABL-GAP: empirical optimality gap of the primal-dual heuristic against
// the exact ILP and the fractional LP relaxation on small instances, plus
// the weak-duality certificate gap.  The paper proves the loose ratio
// max(|Q|, |V|/K); this bench shows the gap observed in practice.
#include "bench_common.h"

using namespace edgerep;
using namespace edgerep::bench;

int main(int argc, char** argv) {
  const FigureIo io = FigureIo::parse(argc, argv);
  print_banner("Ablation: primal-dual gap vs exact ILP / LP relaxation",
               "heuristic well within the proven ratio; typically within ~2x "
               "of OPT on small instances");

  Table t({"seed", "appro_vol", "lagr_vol", "ilp_opt", "lp_bound",
           "lagr_bound", "dual_bound", "appro/opt", "opt/lp"});
  RunningStat ratio_opt;
  RunningStat integrality;
  std::size_t solved = 0;
  IlpOptions ilp_opts;
  ilp_opts.max_nodes = 50000;
  for (std::uint64_t s = 0; s < io.reps; ++s) {
    WorkloadConfig cfg;
    cfg.network_size = 8;
    cfg.min_datasets = 2;
    cfg.max_datasets = 4;
    cfg.min_queries = 3;
    cfg.max_queries = 6;
    cfg.max_datasets_per_query = 2;
    cfg.max_replicas = 2;
    const Instance inst = generate_instance(cfg, derive_seed(io.seed, s));
    const auto exact = solve_exact(inst, ModelObjective::kAdmittedVolume,
                                   ilp_opts);
    if (!exact || !exact->proven_optimal) continue;
    const double lp = lp_upper_bound(inst);
    const ApproResult heur = appro_g(inst);
    const LagrangianResult lagr = lagrangian_placement(inst);
    ++solved;
    const double opt = exact->objective;
    const double appro = heur.metrics.admitted_volume;
    t.row()
        .cell(std::to_string(s))
        .cell(appro, 1)
        .cell(lagr.metrics.assigned_volume, 1)
        .cell(opt, 1)
        .cell(lp, 1)
        .cell(lagr.best_bound, 1)
        .cell(heur.dual_objective, 1)
        .cell(opt > 0 ? appro / opt : 1.0, 3)
        .cell(lp > 0 ? opt / lp : 1.0, 3);
    if (opt > 0) ratio_opt.add(appro / opt);
    if (lp > 0) integrality.add(opt / lp);
  }
  emit(io, t);
  std::cout << "\nsolved to proven optimality: " << solved << "/" << io.reps
            << "\nmean appro/opt ratio: " << ratio_opt.mean()
            << "  (min " << ratio_opt.min() << ")"
            << "\nmean integrality ratio opt/lp: " << integrality.mean()
            << '\n';
  return 0;
}
