// Figure 7 (a, b): emulated-testbed evaluation of Appro(-S) against
// Popularity(-S), varying the maximum number F of datasets (trace time
// windows) demanded by each query (paper §4.3, Fig. 7: Appro delivers higher
// volume and throughput; volume grows with F while throughput falls).
//
// Per Algorithm 2, the Appro-S admission step is invoked once per
// (query, dataset) demand, which is exactly the per-demand engine; the
// measured series come from the discrete-event testbed simulator (Poisson
// arrivals, 10% runtime capacity degradation to emulate interfering VM
// neighbours).
#include "bench_common.h"

using namespace edgerep;
using namespace edgerep::bench;

namespace {

struct TestbedSeries {
  RunningStat measured_volume;
  RunningStat measured_throughput;
  RunningStat mean_response;
};

SimConfig testbed_sim(std::uint64_t seed) {
  SimConfig cfg;
  cfg.arrivals = SimConfig::Arrivals::kPoisson;
  cfg.arrival_rate = 2.0;
  cfg.capacity_factor = 1.0;  // planned capacity; degradation is a testbed_replay knob
  cfg.seed = seed;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const FigureIo io = FigureIo::parse(argc, argv);
  print_banner("Figure 7: testbed, Appro vs Popularity, F sweep",
               "Appro above Popularity on both metrics; volume grows with F, "
               "throughput falls with F");

  Table t({"F", "algorithm", "measured_volume_gb", "vol_ci95",
           "measured_throughput", "thr_ci95", "mean_response_s"});
  std::vector<double> appro_vol;
  std::vector<double> appro_thr;
  for (std::size_t f = 1; f <= 6; ++f) {
    TestbedSeries appro;
    TestbedSeries pop;
    for (std::size_t rep = 0; rep < io.reps; ++rep) {
      TestbedWorkloadConfig cfg;
      cfg.min_windows_per_query = 1;
      cfg.max_windows_per_query = f;
      const std::uint64_t inst_seed =
          derive_seed(derive_seed(io.seed, f), rep);
      const Instance inst = make_testbed_instance(cfg, inst_seed);
      const ReplicaPlan plan_a = appro_g(inst).plan;
      const ReplicaPlan plan_p = popularity_g(inst).plan;
      const SimReport rep_a = simulate(plan_a, testbed_sim(inst_seed));
      const SimReport rep_p = simulate(plan_p, testbed_sim(inst_seed));
      appro.measured_volume.add(rep_a.admitted_volume);
      appro.measured_throughput.add(rep_a.throughput);
      appro.mean_response.add(rep_a.mean_response);
      pop.measured_volume.add(rep_p.admitted_volume);
      pop.measured_throughput.add(rep_p.throughput);
      pop.mean_response.add(rep_p.mean_response);
    }
    auto add_row = [&](const char* name, const TestbedSeries& s) {
      t.row()
          .cell(std::to_string(f))
          .cell(name)
          .cell(s.measured_volume.mean(), 1)
          .cell(s.measured_volume.ci95_halfwidth(), 1)
          .cell(s.measured_throughput.mean(), 3)
          .cell(s.measured_throughput.ci95_halfwidth(), 3)
          .cell(s.mean_response.mean(), 2);
    };
    add_row("Appro-S", appro);
    add_row("Popularity-S", pop);
    appro_vol.push_back(appro.measured_volume.mean());
    appro_thr.push_back(appro.measured_throughput.mean());
  }
  emit(io, t);

  std::cout << "\nshape summary (Appro on testbed):\n";
  print_ratio("volume F=6 vs F=1 (expect > 1)", appro_vol.back(),
              appro_vol.front());
  print_ratio("throughput F=1 vs F=6 (expect > 1)", appro_thr.front(),
              appro_thr.back());
  return 0;
}
