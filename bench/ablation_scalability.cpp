// ABL-SCALE: wall-clock scalability of all placement algorithms as the
// network (and query population) grows.  Repetitions run concurrently on
// the thread pool; reported runtimes are per-run means.
#include "bench_common.h"

using namespace edgerep;
using namespace edgerep::bench;

int main(int argc, char** argv) {
  FigureIo io = FigureIo::parse(argc, argv);
  io.reps = std::min<std::size_t>(io.reps, 8);  // big sizes are costly
  print_banner("Ablation: algorithm scalability vs network size",
               "near-linear growth for Appro/Greedy/Popularity; Graph pays "
               "the quadratic affinity-graph construction");

  Table t({"network_size", "algorithm", "runtime_ms", "rt_ci95",
           "assigned_volume_gb"});
  std::vector<Algorithm> algos = algorithms_general();
  algos.push_back(
      {"Popularity-G", [](const Instance& i) { return popularity_g(i).plan; }});
  // 800 became reachable once finalize switched from the dense all-pairs
  // matrix to site-rows delay precompute (see EXPERIMENTS.md, ABL-SCALE).
  for (const std::size_t n : {50u, 100u, 200u, 400u, 800u}) {
    WorkloadConfig cfg;
    cfg.network_size = n;
    cfg.min_queries = 100;
    cfg.max_queries = 100;
    cfg.max_datasets_per_query = 5;
    const auto stats =
        run_sweep_point(cfg, derive_seed(io.seed, n), io.reps, algos);
    for (const AlgoStats& s : stats) {
      t.row()
          .cell(std::to_string(n))
          .cell(s.name)
          .cell(s.runtime_ms.mean(), 2)
          .cell(s.runtime_ms.ci95_halfwidth(), 2)
          .cell(s.assigned_volume.mean(), 1);
    }
  }
  emit(io, t);
  return 0;
}
