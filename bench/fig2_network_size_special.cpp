// Figure 2 (a, b): volume of datasets demanded by admitted queries and
// system throughput vs network size, special case (each query demands a
// single dataset).  Algorithms: Appro-S, Greedy-S, Graph-S, averaged over
// 15 two-tier topologies per point (paper §4.2, Fig. 2).
#include "bench_common.h"

using namespace edgerep;
using namespace edgerep::bench;

int main(int argc, char** argv) {
  const FigureIo io = FigureIo::parse(argc, argv);
  print_banner("Figure 2: network size sweep, special case",
               "Appro-S ~4x Greedy-S and ~2x Graph-S on volume; throughput "
               "+15% / +10%; slight decline at very large sizes");

  const std::vector<std::size_t> sizes{50, 100, 150, 200, 250};
  Table t = make_series_table("network_size");
  std::vector<AlgoStats> reference;
  for (const std::size_t n : sizes) {
    const WorkloadConfig cfg = special_case_config(n);
    const auto stats = run_sweep_point(cfg, derive_seed(io.seed, n), io.reps,
                                       algorithms_special());
    add_point_rows(t, std::to_string(n), stats, /*use_assigned=*/false);
    if (n == 100) reference = stats;
  }
  emit(io, t);

  if (!reference.empty()) {
    std::cout << "\nshape summary at network size 100:\n";
    print_ratio("volume  Appro-S vs Greedy-S",
                reference[0].admitted_volume.mean(),
                reference[1].admitted_volume.mean());
    print_ratio("volume  Appro-S vs Graph-S",
                reference[0].admitted_volume.mean(),
                reference[2].admitted_volume.mean());
    print_ratio("thruput Appro-S vs Greedy-S", reference[0].throughput.mean(),
                reference[1].throughput.mean());
    print_ratio("thruput Appro-S vs Graph-S", reference[0].throughput.mean(),
                reference[2].throughput.mean());
  }
  return 0;
}
