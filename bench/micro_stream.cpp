// Microbenchmarks of the streaming admission plane's hot paths.
//
// The pricing-kernel benches pit the vectorized SoA scan against the scalar
// oracle on identical candidate sets (the kernel must win by >=2x at 64+
// candidates while staying bit-identical — the identity is enforced by
// tests/core/pricing_test.cpp, the speed by this bench).  The end-to-end
// benches run the full micro-epoch loop at several shard counts; ns/query
// counters make the shard sweep directly comparable.
#include <benchmark/benchmark.h>

#include <vector>

#include "edgerep/edgerep.h"

namespace edgerep {
namespace {

/// A pricing problem with `n` candidates over `2n` sites, deterministic per
/// size.  The demanded dataset holds 16 replicas — plan-realistic density:
/// replica lists are short relative to the site count, which is exactly the
/// asymmetry the kernel's byte mask exploits over the reference walk's
/// linear has_replica scan.
struct KernelCase {
  std::vector<SiteId> site;
  std::vector<double> inv_avail;
  std::vector<double> dod;
  std::vector<double> theta;
  std::vector<double> avail;
  std::vector<double> load;
  std::vector<SiteId> replicas;

  explicit KernelCase(std::size_t n) {
    Rng rng(0xbe9c5ULL + n);
    const std::size_t sites = 2 * n;
    theta.resize(sites);
    avail.resize(sites);
    load.resize(sites);
    for (std::size_t s = 0; s < sites; ++s) {
      theta[s] = rng.uniform(0.0, 2.0);
      avail[s] = rng.uniform(50.0, 100.0);
      load[s] = rng.uniform(0.0, avail[s]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const auto s = static_cast<SiteId>(2 * i);
      site.push_back(s);
      inv_avail.push_back(1.0 / avail[s]);
      dod.push_back(rng.uniform(0.0, 1.0));
    }
    for (const std::size_t s : rng.sample_indices(sites, 16)) {
      replicas.push_back(static_cast<SiteId>(s));
    }
  }

  [[nodiscard]] CandidateSoA soa() const { return {site, inv_avail, dod}; }
};

void BM_PriceCandidatesVectorized(benchmark::State& state) {
  const KernelCase c(static_cast<std::size_t>(state.range(0)));
  ReplicaMaskWorkspace mask;
  mask.resize(c.theta.size());
  // The mask set/clear is part of the kernel protocol (O(replicas) per
  // demand), so it belongs inside the timed region.
  for (auto _ : state) {
    mask.set(c.replicas);
    benchmark::DoNotOptimize(price_candidates(
        c.soa(), {c.theta, c.avail, c.load, mask.bytes(), true}, 3.0, 0.25,
        0.5));
    mask.clear(c.replicas);
  }
  state.counters["ns/cand"] = benchmark::Counter(
      static_cast<double>(state.range(0)) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_PriceCandidatesScalar(benchmark::State& state) {
  const KernelCase c(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(price_candidates_reference(
        c.soa(), {c.theta, c.avail, c.load, c.replicas, true}, 3.0, 0.25,
        0.5));
  }
  state.counters["ns/cand"] = benchmark::Counter(
      static_cast<double>(state.range(0)) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

#define KERNEL_SIZES Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
BENCHMARK(BM_PriceCandidatesVectorized)->KERNEL_SIZES;
BENCHMARK(BM_PriceCandidatesScalar)->KERNEL_SIZES;
#undef KERNEL_SIZES

/// End-to-end micro-epoch loop at a bench-sized workload.  range(0) = shard
/// count; the instance and stream are built once per size.
void BM_RunStream(benchmark::State& state) {
  StreamWorkloadConfig cfg;
  cfg.sites = 512;
  cfg.queries = 4'096;
  cfg.datasets = 32;
  cfg.max_replicas = 128;
  static const Instance inst = stream_instance(cfg, 42);
  static const std::vector<Arrival> stream =
      generate_arrival_stream(inst, 2'000.0, 42);
  StreamOptions opts;
  opts.shards = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_stream(inst, stream, opts));
  }
  state.counters["ns/query"] = benchmark::Counter(
      static_cast<double>(cfg.queries) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_RunStream)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace edgerep

BENCHMARK_MAIN();
