// Microbenchmarks of the typed event kernel against the closure-based
// EventQueue it replaced in `run_online`.
//
// The queue benches push/pop N events through each core: the typed queue
// moves 40-byte PODs through a 4-ary heap, the closure queue heap-allocates
// a std::function per event.  The slab benches measure flight churn
// (create/destroy with free-list reuse) against the grow-only vector the
// closure kernel models flights with.  The end-to-end benches run the full
// online testbed on both kernels at a small scale; events/sec counters make
// the comparison direct.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "edgerep/edgerep.h"

namespace edgerep {
namespace {

/// Deterministic event times: uniform over [0, 1000) so heap order is
/// unpredictable but identical across cores and iterations.
std::vector<double> event_times(std::size_t n) {
  Rng rng(0xeeccULL + n);
  std::vector<double> t(n);
  for (double& x : t) x = rng.uniform(0.0, 1000.0);
  return t;
}

void BM_TypedQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> times = event_times(n);
  for (auto _ : state) {
    // Fresh queue per iteration: draining resets now() to ~1000, so reusing
    // the queue would push times below now() (precondition violation) — and
    // the closure bench below pays the same per-iteration construction.
    TypedEventQueue q;
    q.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      SimEvent ev{};
      ev.time = times[i];
      ev.kind = EvKind::kArrival;
      ev.a = static_cast<std::uint32_t>(i);
      ev.seq = evseq::make(evseq::kArrivalBand, i);
      q.push(ev);
    }
    SimEvent ev;
    while (q.pop(&ev)) benchmark::DoNotOptimize(ev.time);
  }
  state.counters["ns/event"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_ClosureQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> times = event_times(n);
  for (auto _ : state) {
    EventQueue q;
    double sink = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double t = times[i];
      q.schedule_at(t, [&sink, t] { sink += t; });
    }
    q.run();
    benchmark::DoNotOptimize(sink);
  }
  state.counters["ns/event"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_FlightSlabChurn(benchmark::State& state) {
  // Steady-state churn at a fixed live population: create one, destroy the
  // oldest — the pattern a bounded-concurrency online run drives.
  const auto live = static_cast<std::size_t>(state.range(0));
  FlightSlab slab;
  std::vector<FlightHandle> ring(live);
  for (std::size_t i = 0; i < live; ++i) {
    ring[i] = slab.create();
    slab.get(ring[i])->query = static_cast<QueryId>(i);
  }
  std::size_t head = 0;
  for (auto _ : state) {
    slab.destroy(ring[head]);
    ring[head] = slab.create();
    head = (head + 1) % live;
    benchmark::DoNotOptimize(ring[head].slot);
  }
  state.counters["live"] =
      benchmark::Counter(static_cast<double>(slab.live_count()));
}

void BM_OnlineKernel(benchmark::State& state, OnlineKernel kernel) {
  StreamWorkloadConfig wc;
  wc.sites = 1'000;
  wc.queries = 5'000;
  const Instance inst = stream_instance(wc, 0x0b5e);
  OnlineConfig cfg;
  cfg.arrival_rate = 20.0;
  cfg.kernel = kernel;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const OnlineResult res = run_online(inst, cfg);
    events += res.kernel_stats.events_processed;
    benchmark::DoNotOptimize(res.admitted_queries);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}

void BM_OnlineTyped(benchmark::State& state) {
  BM_OnlineKernel(state, OnlineKernel::kTyped);
}

void BM_OnlineClosure(benchmark::State& state) {
  BM_OnlineKernel(state, OnlineKernel::kClosure);
}

BENCHMARK(BM_TypedQueuePushPop)->Arg(1'000)->Arg(100'000);
BENCHMARK(BM_ClosureQueuePushPop)->Arg(1'000)->Arg(100'000);
BENCHMARK(BM_FlightSlabChurn)->Arg(64)->Arg(4'096);
BENCHMARK(BM_OnlineTyped)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OnlineClosure)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace edgerep

BENCHMARK_MAIN();
