// ABL-LOCALSEARCH: how much admitted volume each placement heuristic
// leaves on the table, measured by running the local-search improver on its
// output.  A small gap for Appro-G (it is already near a local optimum) and
// a large gap for Greedy-G (wasted replica budget is reclaimable) is the
// expected picture.
#include "bench_common.h"

using namespace edgerep;
using namespace edgerep::bench;

int main(int argc, char** argv) {
  const FigureIo io = FigureIo::parse(argc, argv);
  print_banner("Ablation: local-search head-room per algorithm",
               "Appro-G nearly a local optimum; Greedy/Random leave large "
               "reclaimable gaps");

  std::vector<Algorithm> algos = algorithms_general();
  algos.push_back(
      {"Popularity-G", [](const Instance& i) { return popularity_g(i).plan; }});
  algos.push_back(
      {"Random", [](const Instance& i) { return random_baseline(i).plan; }});
  algos.push_back({"Empty", [](const Instance& i) { return ReplicaPlan(i); }});

  Table t({"algorithm", "vol_before_gb", "vol_after_gb", "gain_pct",
           "queries_gained", "relocations"});
  for (const Algorithm& a : algos) {
    RunningStat before;
    RunningStat after;
    RunningStat gained;
    RunningStat moves;
    for (std::size_t r = 0; r < io.reps; ++r) {
      WorkloadConfig cfg;
      cfg.network_size = 32;
      cfg.max_datasets_per_query = 5;
      const Instance inst = generate_instance(cfg, derive_seed(io.seed, r));
      const ReplicaPlan plan = a.run(inst);
      before.add(evaluate(plan).admitted_volume);
      const LocalSearchResult ls = improve_plan(plan);
      after.add(ls.metrics.admitted_volume);
      gained.add(static_cast<double>(ls.queries_admitted));
      moves.add(static_cast<double>(ls.relocations));
    }
    const double gain =
        before.mean() > 0.0
            ? 100.0 * (after.mean() - before.mean()) / before.mean()
            : 0.0;
    t.row()
        .cell(a.name)
        .cell(before.mean(), 1)
        .cell(after.mean(), 1)
        .cell(gain, 1)
        .cell(gained.mean(), 1)
        .cell(moves.mean(), 1);
  }
  emit(io, t);
  return 0;
}
