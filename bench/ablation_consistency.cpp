// ABL-CONSISTENCY: the intro's claim that "more replicas will [not
// necessarily] lead to better system performance, due to ... the cost of
// data consistency" (paper §1, modelled per §2.4).  Sweeps the replica
// budget K and reports admitted volume, consistency traffic/cost under a
// growth model, and the resulting net benefit — which peaks at a moderate K
// instead of growing monotonically.
#include "bench_common.h"

using namespace edgerep;
using namespace edgerep::bench;

int main(int argc, char** argv) {
  const FigureIo io = FigureIo::parse(argc, argv);
  const Args args(argc, argv);
  const double growth_fraction = args.get_double("growth", 0.1);
  const double cost_weight = args.get_double("cost-weight", 15.0);
  print_banner("Ablation: replica budget vs consistency cost",
               "admitted volume saturates with K while update cost keeps "
               "growing; net benefit peaks at a moderate K");

  Table t({"K", "admitted_vol_gb", "update_traffic_gb_h", "update_cost_h",
           "staleness_gb", "net_benefit"});
  double best_net = -1e18;
  std::size_t best_k = 0;
  for (std::size_t k = 1; k <= 10; ++k) {
    RunningStat vol;
    RunningStat traffic;
    RunningStat cost;
    RunningStat staleness;
    RunningStat net;
    for (std::size_t r = 0; r < io.reps; ++r) {
      WorkloadConfig cfg;
      cfg.network_size = 32;
      cfg.max_datasets_per_query = 5;
      cfg.max_replicas = k;
      const Instance inst =
          generate_instance(cfg, derive_seed(io.seed, r));  // common random numbers across K
      const ReplicaPlan plan = appro_g(inst).plan;
      const GrowthModel growth =
          GrowthModel::proportional(inst, growth_fraction);
      ConsistencyConfig ccfg;
      ccfg.cost_weight = cost_weight;
      const ConsistencyReport rep = analyze_consistency(plan, growth, ccfg);
      vol.add(evaluate(plan).admitted_volume);
      traffic.add(rep.total_traffic_gb_per_hour);
      cost.add(rep.total_transfer_cost_per_hour);
      staleness.add(rep.mean_staleness_gb);
      net.add(rep.net_benefit);
    }
    t.row()
        .cell(std::to_string(k))
        .cell(vol.mean(), 1)
        .cell(traffic.mean(), 2)
        .cell(cost.mean(), 2)
        .cell(staleness.mean(), 3)
        .cell(net.mean(), 1);
    if (net.mean() > best_net) {
      best_net = net.mean();
      best_k = k;
    }
  }
  emit(io, t);
  std::cout << "\nnet benefit peaks at K = " << best_k
            << " (more replicas are NOT always better once consistency "
            << "maintenance is priced in)\n";
  return 0;
}
