// Figure 5 (a, b): impact of the replica budget K (K = 1..7) on volume and
// throughput, general case (paper §4.2, Fig. 5: both metrics grow with K;
// Appro-G significantly above Greedy-G and Graph-G throughout).
#include "bench_common.h"

using namespace edgerep;
using namespace edgerep::bench;

int main(int argc, char** argv) {
  const FigureIo io = FigureIo::parse(argc, argv);
  print_banner("Figure 5: replica budget sweep (K = 1..7)",
               "volume and throughput grow with K for all algorithms; "
               "Appro-G dominates");

  Table t = make_series_table("K");
  std::vector<double> appro_vol;
  for (std::size_t k = 1; k <= 7; ++k) {
    WorkloadConfig cfg;
    cfg.network_size = 32;
    cfg.max_datasets_per_query = 5;
    cfg.max_replicas = k;
    const auto stats = run_sweep_point(cfg, io.seed, io.reps,  // common seeds across K
                                       algorithms_general());
    add_point_rows(t, std::to_string(k), stats, /*use_assigned=*/false);
    appro_vol.push_back(stats[0].admitted_volume.mean());
  }
  emit(io, t);

  std::cout << "\nshape summary (Appro-G):\n";
  print_ratio("volume K=7 vs K=1 (expect > 1)", appro_vol.back(),
              appro_vol.front());
  return 0;
}
