// ABL-REUSE: value of the joint replica/assignment pricing (default) versus
// strict reuse-first (always evaluate on an existing replica if any is
// feasible), across replica budgets K.  Strict reuse conserves the budget
// but can trap demands on overloaded sites; joint pricing pays the μ
// surcharge when a fresh replica relieves pressure.
#include "bench_common.h"

using namespace edgerep;
using namespace edgerep::bench;

int main(int argc, char** argv) {
  const FigureIo io = FigureIo::parse(argc, argv);
  print_banner("Ablation: joint pricing vs strict replica reuse in Appro-G",
               "joint pricing should win or tie at every K; the gap narrows "
               "as K grows (budget stops binding)");

  Table t({"K", "variant", "assigned_volume_gb", "vol_ci95", "throughput",
           "replicas"});
  for (std::size_t k = 1; k <= 7; ++k) {
    for (const bool strict : {false, true}) {
      RunningStat vol;
      RunningStat thr;
      RunningStat reps_used;
      for (std::size_t r = 0; r < io.reps; ++r) {
        WorkloadConfig cfg;
        cfg.network_size = 32;
        cfg.max_datasets_per_query = 5;
        cfg.max_replicas = k;
        const Instance inst =
            generate_instance(cfg, derive_seed(io.seed, r));  // common random numbers across K
        ApproOptions opts;
        opts.strict_reuse = strict;
        const ApproResult res = appro_g(inst, opts);
        vol.add(res.metrics.assigned_volume);
        thr.add(res.metrics.throughput);
        reps_used.add(static_cast<double>(res.metrics.replicas_placed));
      }
      t.row()
          .cell(std::to_string(k))
          .cell(strict ? "strict-reuse" : "joint (default)")
          .cell(vol.mean(), 1)
          .cell(vol.ci95_halfwidth(), 1)
          .cell(thr.mean(), 3)
          .cell(reps_used.mean(), 1);
    }
  }
  emit(io, t);
  return 0;
}
