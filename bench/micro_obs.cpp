// Microbenchmarks of the observability layer.
//
// The headline number is the disabled-mode overhead of the instrumented
// admission engine: `run_appro` timed with every obs facet off must stay
// within ~2% of the uninstrumented baseline (the instrumentation is a
// relaxed atomic load and an untaken branch per gate).  The enabled-mode
// run quantifies the full recording cost (metrics + trace + audit), and the
// counter benches pin the primitive costs.
#include <benchmark/benchmark.h>

#include "edgerep/edgerep.h"
#include "util/thread_pool.h"

namespace edgerep {
namespace {

Instance admission_case(std::size_t network, std::size_t queries,
                        std::size_t f_max) {
  WorkloadConfig cfg;
  cfg.network_size = network;
  cfg.min_queries = queries;
  cfg.max_queries = queries;
  cfg.min_datasets_per_query = 1;
  cfg.max_datasets_per_query = f_max;
  return generate_instance(cfg, /*seed=*/42);
}

void run_appro_obs(benchmark::State& state, bool obs_on) {
  const auto network = static_cast<std::size_t>(state.range(0));
  const auto queries = static_cast<std::size_t>(state.range(1));
  const Instance inst = admission_case(network, queries, /*f_max=*/5);
  obs::set_all_enabled(obs_on);
  for (auto _ : state) {
    benchmark::DoNotOptimize(appro_g(inst));
    if (obs_on) {
      // Bound recorder memory: drain the buffers outside the measured cost
      // of a single run but inside the loop (still part of enabled-mode
      // steady-state behaviour).
      obs::tracer().clear();
      obs::audit_log().clear();
    }
  }
  obs::set_all_enabled(false);
  obs::init_from_env();
  state.counters["ns/query"] = benchmark::Counter(
      static_cast<double>(queries) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_ApproObsOff(benchmark::State& state) {
  run_appro_obs(state, /*obs_on=*/false);
}
void BM_ApproObsOn(benchmark::State& state) {
  run_appro_obs(state, /*obs_on=*/true);
}

BENCHMARK(BM_ApproObsOff)->Args({64, 250})->Args({100, 500});
BENCHMARK(BM_ApproObsOn)->Args({64, 250})->Args({100, 500});

/// Cost of a gated counter increment with metrics off: one relaxed load.
void BM_CounterIncDisabled(benchmark::State& state) {
  obs::set_metrics_enabled(false);
  obs::Counter c;
  for (auto _ : state) {
    c.inc();
    benchmark::DoNotOptimize(c);
  }
  obs::init_from_env();
}
BENCHMARK(BM_CounterIncDisabled);

/// Cost of a striped counter increment with metrics on.
void BM_CounterIncEnabled(benchmark::State& state) {
  obs::set_metrics_enabled(true);
  obs::Counter c;
  for (auto _ : state) {
    c.inc();
    benchmark::DoNotOptimize(c);
  }
  obs::set_metrics_enabled(false);
  obs::init_from_env();
}
BENCHMARK(BM_CounterIncEnabled);

/// Concurrent increments from parallel_for workers (stripe contention).
void BM_CounterIncParallel(benchmark::State& state) {
  obs::set_metrics_enabled(true);
  obs::Counter c;
  for (auto _ : state) {
    global_pool().parallel_for(4096, [&](std::size_t) { c.inc(); });
  }
  benchmark::DoNotOptimize(c.value());
  obs::set_metrics_enabled(false);
  obs::init_from_env();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_CounterIncParallel);

}  // namespace
}  // namespace edgerep

BENCHMARK_MAIN();
