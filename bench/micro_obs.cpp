// Microbenchmarks of the observability layer.
//
// The headline number is the disabled-mode overhead of the instrumented
// admission engine: `run_appro` timed with every obs facet off must stay
// within ~2% of the uninstrumented baseline (the instrumentation is a
// relaxed atomic load and an untaken branch per gate).  The enabled-mode
// run quantifies the full recording cost (metrics + trace + audit), and the
// counter benches pin the primitive costs.
#include <benchmark/benchmark.h>

#include "edgerep/edgerep.h"
#include "util/thread_pool.h"

namespace edgerep {
namespace {

Instance admission_case(std::size_t network, std::size_t queries,
                        std::size_t f_max) {
  WorkloadConfig cfg;
  cfg.network_size = network;
  cfg.min_queries = queries;
  cfg.max_queries = queries;
  cfg.min_datasets_per_query = 1;
  cfg.max_datasets_per_query = f_max;
  return generate_instance(cfg, /*seed=*/42);
}

void run_appro_obs(benchmark::State& state, bool obs_on) {
  const auto network = static_cast<std::size_t>(state.range(0));
  const auto queries = static_cast<std::size_t>(state.range(1));
  const Instance inst = admission_case(network, queries, /*f_max=*/5);
  obs::set_all_enabled(obs_on);
  for (auto _ : state) {
    benchmark::DoNotOptimize(appro_g(inst));
    if (obs_on) {
      // Bound recorder memory: drain the buffers outside the measured cost
      // of a single run but inside the loop (still part of enabled-mode
      // steady-state behaviour).
      obs::tracer().clear();
      obs::audit_log().clear();
    }
  }
  obs::set_all_enabled(false);
  obs::init_from_env();
  state.counters["ns/query"] = benchmark::Counter(
      static_cast<double>(queries) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_ApproObsOff(benchmark::State& state) {
  run_appro_obs(state, /*obs_on=*/false);
}
void BM_ApproObsOn(benchmark::State& state) {
  run_appro_obs(state, /*obs_on=*/true);
}

BENCHMARK(BM_ApproObsOff)->Args({64, 250})->Args({100, 500});
BENCHMARK(BM_ApproObsOn)->Args({64, 250})->Args({100, 500});

/// Cost of a gated counter increment with metrics off: one relaxed load.
void BM_CounterIncDisabled(benchmark::State& state) {
  obs::set_metrics_enabled(false);
  obs::Counter c;
  for (auto _ : state) {
    c.inc();
    benchmark::DoNotOptimize(c);
  }
  obs::init_from_env();
}
BENCHMARK(BM_CounterIncDisabled);

/// Cost of a striped counter increment with metrics on.
void BM_CounterIncEnabled(benchmark::State& state) {
  obs::set_metrics_enabled(true);
  obs::Counter c;
  for (auto _ : state) {
    c.inc();
    benchmark::DoNotOptimize(c);
  }
  obs::set_metrics_enabled(false);
  obs::init_from_env();
}
BENCHMARK(BM_CounterIncEnabled);

/// Concurrent increments from parallel_for workers (stripe contention).
void BM_CounterIncParallel(benchmark::State& state) {
  obs::set_metrics_enabled(true);
  obs::Counter c;
  for (auto _ : state) {
    global_pool().parallel_for(4096, [&](std::size_t) { c.inc(); });
  }
  benchmark::DoNotOptimize(c.value());
  obs::set_metrics_enabled(false);
  obs::init_from_env();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_CounterIncParallel);

obs::JournalRecord flight_record() {
  obs::JournalRecord r;
  r.time = 1.25;
  r.v0 = 3.5;
  r.v1 = 0.5;
  r.a = 7;
  r.b = 11;
  r.site = 3;
  r.kind = static_cast<std::uint8_t>(obs::RecordKind::kTransferStart);
  r.arg = 1;
  return r;
}

/// Cost of the recorder gate with the facet off: one relaxed load and an
/// untaken branch — the shape every kernel append site compiles to.
void BM_RecorderAppendDisabled(benchmark::State& state) {
  obs::set_recorder_enabled(false);
  const obs::JournalRecord r = flight_record();
  for (auto _ : state) {
    if (obs::recorder_enabled()) obs::recorder().append(r);
    benchmark::DoNotOptimize(&obs::recorder());
  }
  obs::init_from_env();
}
BENCHMARK(BM_RecorderAppendDisabled);

/// Full-mode append throughput: a 40-byte store into a growing arena.  The
/// journal is cleared every 1M records to bound memory; the clear (and the
/// geometric regrowth it forces) is amortized into the reported rate.
void BM_RecorderAppendFull(benchmark::State& state) {
  obs::Recorder rec;
  const obs::JournalRecord r = flight_record();
  for (auto _ : state) {
    rec.append(r);
    if (rec.size() == (1u << 20)) rec.clear();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sizeof(r)));
  state.counters["records/sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RecorderAppendFull);

/// Cost of the watchdog gate with the facet off: one relaxed load and an
/// untaken branch, the same shape as the recorder gate above.
void BM_WatchdogFeedDisabled(benchmark::State& state) {
  obs::set_watchdog_enabled(false);
  for (auto _ : state) {
    if (obs::watchdog_enabled()) {
      obs::watchdog().on_completion(1.0, 0.5, false);
    }
    benchmark::DoNotOptimize(&obs::watchdog());
  }
  obs::init_from_env();
}
BENCHMARK(BM_WatchdogFeedDisabled);

/// Enabled sketch feed: one space-saving top-k pass per demand.  The keys
/// rotate over 16 datasets so no share ever crosses the hotspot threshold
/// and the alert list stays empty in steady state.
void BM_WatchdogOnDemand(benchmark::State& state) {
  obs::Watchdog wd;
  wd.begin_run();
  double t = 0.0;
  std::uint32_t key = 0;
  for (auto _ : state) {
    wd.on_demand(t, key);
    t += 1e-3;
    key = (key + 1) & 15u;
  }
  state.counters["feeds/sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WatchdogOnDemand);

/// Enabled completion feed: breach EWMA update per query completion.  The
/// slack stays positive so the breach-burst detector never opens.
void BM_WatchdogOnCompletion(benchmark::State& state) {
  obs::Watchdog wd;
  wd.begin_run();
  double t = 0.0;
  for (auto _ : state) {
    wd.on_completion(t, 1.0, false);
    t += 1e-3;
  }
  state.counters["feeds/sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WatchdogOnCompletion);

/// Ring-mode steady-state overwrite: zero allocation once the ring is warm.
void BM_RecorderAppendRing(benchmark::State& state) {
  obs::Recorder rec;
  rec.configure(obs::RecorderMode::kRing, 1u << 16);
  const obs::JournalRecord r = flight_record();
  for (auto _ : state) rec.append(r);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sizeof(r)));
  state.counters["records/sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RecorderAppendRing);

}  // namespace
}  // namespace edgerep

BENCHMARK_MAIN();
