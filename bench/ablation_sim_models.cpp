// ABL-SIM-MODELS: how much do the simulator's fidelity knobs change the
// measured outcome of the same plan?  Crosses CPU disciplines (hard
// reservation vs processor sharing) with transfer models (store-and-forward
// delay vs max-min fair flows) and runtime capacity degradation, on the
// emulated testbed workload.
#include "bench_common.h"

using namespace edgerep;
using namespace edgerep::bench;

int main(int argc, char** argv) {
  const FigureIo io = FigureIo::parse(argc, argv);
  print_banner("Ablation: simulator fidelity models",
               "at planned capacity all models confirm the static "
               "admissions; degradation and flow contention strand deadline "
               "misses the static model cannot see");

  struct Variant {
    const char* name;
    SimConfig::Discipline discipline;
    SimConfig::TransferModel transfers;
    double capacity_factor;
  };
  const std::vector<Variant> variants{
      {"fifo+delay @1.0", SimConfig::Discipline::kReservation,
       SimConfig::TransferModel::kDelay, 1.0},
      {"ps+delay @1.0", SimConfig::Discipline::kProcessorSharing,
       SimConfig::TransferModel::kDelay, 1.0},
      {"fifo+flow @1.0", SimConfig::Discipline::kReservation,
       SimConfig::TransferModel::kMaxMinFair, 1.0},
      {"fifo+delay @0.7", SimConfig::Discipline::kReservation,
       SimConfig::TransferModel::kDelay, 0.7},
      {"ps+delay @0.7", SimConfig::Discipline::kProcessorSharing,
       SimConfig::TransferModel::kDelay, 0.7},
      {"ps+flow @0.7", SimConfig::Discipline::kProcessorSharing,
       SimConfig::TransferModel::kMaxMinFair, 0.7},
  };

  Table t({"variant", "measured_throughput", "thr_ci95", "mean_response_s",
           "p95_response_s", "static_throughput"});
  for (const Variant& v : variants) {
    RunningStat thr;
    RunningStat resp;
    RunningStat p95;
    RunningStat static_thr;
    for (std::size_t r = 0; r < io.reps; ++r) {
      const Instance inst = make_testbed_instance(
          TestbedWorkloadConfig{}, derive_seed(io.seed, r));
      const ApproResult planned = appro_g(inst);
      SimConfig cfg;
      cfg.discipline = v.discipline;
      cfg.transfers = v.transfers;
      cfg.capacity_factor = v.capacity_factor;
      cfg.seed = derive_seed(io.seed, 300 + r);
      const SimReport rep = simulate(planned.plan, cfg);
      thr.add(rep.throughput);
      resp.add(rep.mean_response);
      p95.add(rep.p95_response);
      static_thr.add(planned.metrics.throughput);
    }
    t.row()
        .cell(v.name)
        .cell(thr.mean(), 3)
        .cell(thr.ci95_halfwidth(), 3)
        .cell(resp.mean(), 2)
        .cell(p95.mean(), 2)
        .cell(static_thr.mean(), 3);
  }
  emit(io, t);
  return 0;
}
