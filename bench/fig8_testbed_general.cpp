// Figure 8 (a, b): emulated-testbed evaluation of Appro-G against
// Popularity-G, varying the replica budget K = 1..7 (paper §4.3, Fig. 8:
// Appro-G above Popularity-G; both metrics grow with K).
#include "bench_common.h"

using namespace edgerep;
using namespace edgerep::bench;

namespace {

SimConfig testbed_sim(std::uint64_t seed) {
  SimConfig cfg;
  cfg.arrivals = SimConfig::Arrivals::kPoisson;
  cfg.arrival_rate = 2.0;
  cfg.capacity_factor = 1.0;  // planned capacity; degradation is a testbed_replay knob
  cfg.seed = seed;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const FigureIo io = FigureIo::parse(argc, argv);
  print_banner("Figure 8: testbed, Appro-G vs Popularity-G, K sweep",
               "Appro-G above Popularity-G on both metrics; both grow with K");

  Table t({"K", "algorithm", "measured_volume_gb", "vol_ci95",
           "measured_throughput", "thr_ci95", "mean_response_s"});
  std::vector<double> appro_vol;
  for (std::size_t k = 1; k <= 7; ++k) {
    RunningStat vol_a;
    RunningStat thr_a;
    RunningStat resp_a;
    RunningStat vol_p;
    RunningStat thr_p;
    RunningStat resp_p;
    for (std::size_t rep = 0; rep < io.reps; ++rep) {
      TestbedWorkloadConfig cfg;
      cfg.max_windows_per_query = 4;
      cfg.max_replicas = k;
      const std::uint64_t inst_seed =
          derive_seed(derive_seed(io.seed, 100 + k), rep);
      const Instance inst = make_testbed_instance(cfg, inst_seed);
      const SimReport rep_a =
          simulate(appro_g(inst).plan, testbed_sim(inst_seed));
      const SimReport rep_p =
          simulate(popularity_g(inst).plan, testbed_sim(inst_seed));
      vol_a.add(rep_a.admitted_volume);
      thr_a.add(rep_a.throughput);
      resp_a.add(rep_a.mean_response);
      vol_p.add(rep_p.admitted_volume);
      thr_p.add(rep_p.throughput);
      resp_p.add(rep_p.mean_response);
    }
    auto add_row = [&](const char* name, const RunningStat& vol,
                       const RunningStat& thr, const RunningStat& resp) {
      t.row()
          .cell(std::to_string(k))
          .cell(name)
          .cell(vol.mean(), 1)
          .cell(vol.ci95_halfwidth(), 1)
          .cell(thr.mean(), 3)
          .cell(thr.ci95_halfwidth(), 3)
          .cell(resp.mean(), 2);
    };
    add_row("Appro-G", vol_a, thr_a, resp_a);
    add_row("Popularity-G", vol_p, thr_p, resp_p);
    appro_vol.push_back(vol_a.mean());
  }
  emit(io, t);

  std::cout << "\nshape summary (Appro-G on testbed):\n";
  print_ratio("volume K=7 vs K=1 (expect > 1)", appro_vol.back(),
              appro_vol.front());
  return 0;
}
