// ABL-ORDER: sensitivity of Appro-G to the query processing order.  The
// "uniform raising" of the primal-dual scheme is realized as a pass over
// queries; this bench quantifies how much the pass order matters.
#include "bench_common.h"

using namespace edgerep;
using namespace edgerep::bench;

int main(int argc, char** argv) {
  const FigureIo io = FigureIo::parse(argc, argv);
  print_banner("Ablation: query processing order in Appro-G",
               "volume-descending (default) should be at or near the top; "
               "order sensitivity bounds the scheme's robustness");

  using Order = ApproOptions::Order;
  const std::vector<std::pair<const char*, Order>> orders{
      {"input", Order::kInput},
      {"volume-desc", Order::kVolumeDesc},
      {"volume-asc", Order::kVolumeAsc},
      {"deadline-asc", Order::kDeadlineAsc},
      {"random", Order::kRandom},
  };

  Table t({"order", "assigned_volume_gb", "vol_ci95", "throughput",
           "thr_ci95", "replicas"});
  for (const auto& [name, order] : orders) {
    RunningStat vol;
    RunningStat thr;
    RunningStat reps_used;
    for (std::size_t r = 0; r < io.reps; ++r) {
      WorkloadConfig cfg;
      cfg.network_size = 32;
      cfg.max_datasets_per_query = 5;
      const Instance inst = generate_instance(cfg, derive_seed(io.seed, r));
      ApproOptions opts;
      opts.order = order;
      opts.seed = derive_seed(io.seed, 1000 + r);
      const ApproResult res = appro_g(inst, opts);
      vol.add(res.metrics.assigned_volume);
      thr.add(res.metrics.throughput);
      reps_used.add(static_cast<double>(res.metrics.replicas_placed));
    }
    t.row()
        .cell(name)
        .cell(vol.mean(), 1)
        .cell(vol.ci95_halfwidth(), 1)
        .cell(thr.mean(), 3)
        .cell(thr.ci95_halfwidth(), 3)
        .cell(reps_used.mean(), 1);
  }
  emit(io, t);
  return 0;
}
