// Microbenchmarks of the admission engine hot path: savepoint-based
// transactional admission (the default) versus the legacy copy-based
// implementation, for the special (one dataset per query) and general
// (multi-dataset) cases at three instance sizes.
//
// ns/query is reported via counters so the two transaction mechanisms are
// directly comparable; `tools/bench_json` emits the same matrix as
// BENCH_appro.json for the perf trajectory.
#include <benchmark/benchmark.h>

#include "edgerep/edgerep.h"

namespace edgerep {
namespace {

Instance admission_case(std::size_t network, std::size_t queries,
                        std::size_t f_max) {
  WorkloadConfig cfg;
  cfg.network_size = network;
  cfg.min_queries = queries;
  cfg.max_queries = queries;
  cfg.min_datasets_per_query = 1;
  cfg.max_datasets_per_query = f_max;
  return generate_instance(cfg, /*seed=*/42);
}

void run_admission(benchmark::State& state, std::size_t f_max,
                   ApproOptions::Txn txn) {
  const auto network = static_cast<std::size_t>(state.range(0));
  const auto queries = static_cast<std::size_t>(state.range(1));
  const Instance inst = admission_case(network, queries, f_max);
  ApproOptions opts;
  opts.txn = txn;
  for (auto _ : state) {
    benchmark::DoNotOptimize(appro_g(inst, opts));
  }
  state.counters["ns/query"] = benchmark::Counter(
      static_cast<double>(queries) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_ApproSpecialSavepoint(benchmark::State& state) {
  run_admission(state, 1, ApproOptions::Txn::kSavepoint);
}
void BM_ApproSpecialCopy(benchmark::State& state) {
  run_admission(state, 1, ApproOptions::Txn::kCopy);
}
void BM_ApproGeneralSavepoint(benchmark::State& state) {
  run_admission(state, 5, ApproOptions::Txn::kSavepoint);
}
void BM_ApproGeneralCopy(benchmark::State& state) {
  run_admission(state, 5, ApproOptions::Txn::kCopy);
}

#define APPRO_SIZES Args({32, 100})->Args({64, 250})->Args({100, 500})
BENCHMARK(BM_ApproSpecialSavepoint)->APPRO_SIZES;
BENCHMARK(BM_ApproSpecialCopy)->APPRO_SIZES;
BENCHMARK(BM_ApproGeneralSavepoint)->APPRO_SIZES;
BENCHMARK(BM_ApproGeneralCopy)->APPRO_SIZES;
#undef APPRO_SIZES

void BM_CandidateIndexBuild(benchmark::State& state) {
  const Instance inst = admission_case(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(1)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CandidateIndex(inst));
  }
}
BENCHMARK(BM_CandidateIndexBuild)->Args({32, 100})->Args({100, 500});

}  // namespace
}  // namespace edgerep

BENCHMARK_MAIN();
