// ABL-AVAILABILITY: the reliability side of replication (paper §2.3 cites
// availability as a motivation for keeping several replicas).  Sweeps the
// replica budget K and reports the Monte Carlo survival of admitted queries
// under independent site failures, for Appro-G and the Popularity baseline.
#include "bench_common.h"

using namespace edgerep;
using namespace edgerep::bench;

int main(int argc, char** argv) {
  const FigureIo io = FigureIo::parse(argc, argv);
  const Args args(argc, argv);
  AvailabilityConfig acfg;
  acfg.site_failure_prob = args.get_double("failure-prob", 0.05);
  acfg.trials = static_cast<std::size_t>(args.get_int("trials", 5000));
  print_banner("Ablation: replica budget vs failure survival",
               "survival of admitted queries grows with K; Appro-G holds "
               "higher surviving volume than Popularity-G");

  Table t({"K", "algorithm", "admitted_vol_gb", "mean_survival",
           "min_survival", "surviving_vol_gb"});
  for (std::size_t k = 1; k <= 7; ++k) {
    for (const auto& [name, run] :
         std::vector<std::pair<const char*,
                               ReplicaPlan (*)(const Instance&)>>{
             {"Appro-G",
              +[](const Instance& i) { return appro_g(i).plan; }},
             {"Appro-G+harden",
              +[](const Instance& i) {
                ReplicaPlan plan = appro_g(i).plan;
                harden_plan(plan, /*min_servable=*/2);
                return plan;
              }},
             {"Popularity-G",
              +[](const Instance& i) { return popularity_g(i).plan; }}}) {
      RunningStat vol;
      RunningStat mean_surv;
      RunningStat min_surv;
      RunningStat surv_vol;
      for (std::size_t r = 0; r < io.reps; ++r) {
        WorkloadConfig cfg;
        cfg.network_size = 32;
        cfg.max_datasets_per_query = 4;
        cfg.max_replicas = k;
        const Instance inst =
            generate_instance(cfg, derive_seed(io.seed, r));
        const ReplicaPlan plan = run(inst);
        AvailabilityConfig local = acfg;
        local.seed = derive_seed(io.seed, 500 + r);
        const AvailabilityReport rep = analyze_availability(plan, local);
        vol.add(evaluate(plan).admitted_volume);
        if (!rep.per_query.empty()) {
          mean_surv.add(rep.mean_survival);
          min_surv.add(rep.min_survival);
        }
        surv_vol.add(rep.expected_surviving_volume);
      }
      t.row()
          .cell(std::to_string(k))
          .cell(name)
          .cell(vol.mean(), 1)
          .cell(mean_surv.mean(), 4)
          .cell(min_surv.mean(), 4)
          .cell(surv_vol.mean(), 1);
    }
  }
  emit(io, t);
  return 0;
}
