// Microbenchmarks of the flow-level network backend (sim/flows.h) and its
// integration into run_online.
//
// The churn benches measure the max-min re-fill cost at steady state: N
// concurrent flows over a shared link pool, each completion retiring one
// flow and starting a replacement — every transition re-fills the changed
// connected component, which is the backend's hot path.  The fill bench
// times the pure progressive-filling allocation (max_min_rates) alone.
// The end-to-end benches run run_online with --network=flow against the
// delay-table baseline at the 1k-site scale; events/sec counters make the
// contention surcharge direct.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "edgerep/edgerep.h"

namespace edgerep {
namespace {

constexpr std::size_t kPathLen = 4;

/// Deterministic random paths: kPathLen distinct-ish links per flow out of
/// `links` (collisions are fine — a duplicate edge just counts twice, which
/// the engine handles).  Identical across iterations and machines.
std::vector<std::vector<EdgeId>> flow_paths(std::size_t flows,
                                            std::size_t links) {
  Rng rng(0xf10c5ULL + flows);
  std::vector<std::vector<EdgeId>> paths(flows);
  for (auto& p : paths) {
    p.reserve(kPathLen);
    for (std::size_t i = 0; i < kPathLen; ++i) {
      p.push_back(static_cast<EdgeId>(
          rng.uniform_u64(0, static_cast<std::uint64_t>(links) - 1)));
    }
  }
  return paths;
}

std::vector<double> flow_sizes(std::size_t flows) {
  Rng rng(0x51ce5ULL + flows);
  std::vector<double> sizes(flows);
  for (double& s : sizes) s = rng.uniform(0.5, 2.0);
  return sizes;
}

/// Steady-state churn: keep `flows` flows live; every completion starts a
/// replacement until the spawn budget is spent, then the queue drains.
/// Each transition (start or completion) re-fills the changed component.
void BM_FlowChurn(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  const auto links = static_cast<std::size_t>(state.range(1));
  const std::size_t spawns = flows * 4;
  const std::vector<std::vector<EdgeId>> paths = flow_paths(spawns, links);
  const std::vector<double> sizes = flow_sizes(spawns);
  std::uint64_t completions = 0;
  std::uint64_t rate_changes = 0;
  for (auto _ : state) {
    EventQueue eq;
    FlowEngine engine(eq, std::vector<double>(links, 1.0));
    engine.set_rate_listener([&rate_changes](std::uint32_t, double,
                                             double rate, double, EdgeId) {
      if (rate > 0.0) ++rate_changes;
    });
    std::size_t next = 0;
    std::function<void()> launch = [&] {
      if (next >= spawns) return;
      const std::size_t i = next++;
      ++completions;  // every started flow eventually completes
      engine.start_flow(sizes[i], paths[i], [&launch] { launch(); },
                        static_cast<std::uint32_t>(i));
    };
    for (std::size_t i = 0; i < flows; ++i) launch();
    eq.run();
    benchmark::DoNotOptimize(engine.active_flows());
  }
  state.counters["completions/s"] = benchmark::Counter(
      static_cast<double>(completions), benchmark::Counter::kIsRate);
  state.counters["refills/completion"] = benchmark::Counter(
      completions > 0 ? static_cast<double>(rate_changes) /
                            static_cast<double>(completions)
                      : 0.0);
}

/// The pure progressive-filling allocation over one big component.
void BM_MaxMinRates(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  const auto links = static_cast<std::size_t>(state.range(1));
  const std::vector<std::vector<EdgeId>> paths = flow_paths(flows, links);
  const std::vector<double> capacity(links, 1.0);
  for (auto _ : state) {
    const std::vector<double> rates = max_min_rates(capacity, paths);
    benchmark::DoNotOptimize(rates.data());
  }
  state.counters["ns/flow"] = benchmark::Counter(
      static_cast<double>(flows) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_OnlineNetwork(benchmark::State& state, OnlineNetwork network) {
  StreamWorkloadConfig wc;
  wc.sites = 1'000;
  wc.queries = 5'000;
  const Instance inst = stream_instance(wc, 0x0b5e);
  OnlineConfig cfg;
  cfg.arrival_rate = 20.0;
  cfg.network = network;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const OnlineResult res = run_online(inst, cfg);
    events += res.kernel_stats.events_processed;
    benchmark::DoNotOptimize(res.admitted_queries);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}

void BM_OnlineTable(benchmark::State& state) {
  BM_OnlineNetwork(state, OnlineNetwork::kTable);
}

void BM_OnlineFlow(benchmark::State& state) {
  BM_OnlineNetwork(state, OnlineNetwork::kFlow);
}

// Populations past ~1k flows over a shared pool merge into one giant
// component whose per-completion re-fill turns the churn quadratic
// (minutes per iteration) — keep the committed cases in the regime the
// backend is actually run in.
BENCHMARK(BM_FlowChurn)
    ->Args({64, 1'024})
    ->Args({512, 1'024})
    ->Args({512, 10'240})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MaxMinRates)->Args({256, 1'024})->Args({2'048, 10'240});
BENCHMARK(BM_OnlineTable)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OnlineFlow)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace edgerep

BENCHMARK_MAIN();
