// Google-benchmark microbenchmarks of the hot substrate paths: RNG, graph
// shortest paths, the all-pairs delay matrix, partitioning, the simplex
// solver, the event queue, and one full Appro-G placement.
#include <benchmark/benchmark.h>

#include "edgerep/edgerep.h"

namespace edgerep {
namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_RngNext);

void BM_RngZipf(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.zipf(100000, 1.1));
  }
}
BENCHMARK(BM_RngZipf);

void BM_Dijkstra(benchmark::State& state) {
  Rng rng(3);
  const Graph g = gnp(static_cast<std::size_t>(state.range(0)), 0.1,
                      Range{0.1, 1.0}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra(g, 0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Dijkstra)->Range(64, 1024)->Complexity();

void BM_DelayMatrix(benchmark::State& state) {
  Rng rng(4);
  const Graph g = gnp(static_cast<std::size_t>(state.range(0)), 0.1,
                      Range{0.1, 1.0}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DelayMatrix::compute(g, /*parallel=*/true));
  }
}
BENCHMARK(BM_DelayMatrix)->Arg(128)->Arg(256);

void BM_PartitionGraph(benchmark::State& state) {
  Rng rng(5);
  PartitionProblem p;
  p.num_vertices = static_cast<std::size_t>(state.range(0));
  p.vertex_weight.assign(p.num_vertices, 1.0);
  for (std::uint32_t u = 0; u < p.num_vertices; ++u) {
    for (std::uint32_t v = u + 1; v < p.num_vertices; ++v) {
      if (rng.bernoulli(0.05)) p.edges.push_back({u, v, rng.uniform(0.1, 2.0)});
    }
  }
  p.num_parts = 8;
  p.part_capacity.assign(8, static_cast<double>(p.num_vertices) / 6.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition_graph(p));
  }
}
BENCHMARK(BM_PartitionGraph)->Arg(100)->Arg(400);

void BM_SimplexRandomLp(benchmark::State& state) {
  Rng rng(6);
  LinearProgram lp;
  lp.num_vars = static_cast<std::size_t>(state.range(0));
  lp.objective.resize(lp.num_vars);
  for (auto& c : lp.objective) c = rng.uniform(0.0, 1.0);
  for (std::size_t j = 0; j < lp.num_vars; ++j) lp.add_upper_bound(j, 2.0);
  for (std::size_t c = 0; c < lp.num_vars; ++c) {
    std::vector<std::pair<std::size_t, double>> terms;
    for (std::size_t j = 0; j < lp.num_vars; ++j) {
      terms.push_back({j, rng.uniform(0.0, 1.0)});
    }
    lp.add_constraint(std::move(terms), Relation::kLe,
                      rng.uniform(1.0, 10.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_lp(lp));
  }
}
BENCHMARK(BM_SimplexRandomLp)->Arg(20)->Arg(50);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue eq;
    int counter = 0;
    for (int i = 0; i < 1000; ++i) {
      eq.schedule_at(static_cast<double>(i % 97), [&counter] { ++counter; });
    }
    eq.run();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_EventQueueChurn);

void BM_ApproGPlacement(benchmark::State& state) {
  WorkloadConfig cfg;
  cfg.network_size = static_cast<std::size_t>(state.range(0));
  cfg.min_queries = 100;
  cfg.max_queries = 100;
  cfg.max_datasets_per_query = 5;
  const Instance inst = generate_instance(cfg, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(appro_g(inst));
  }
}
BENCHMARK(BM_ApproGPlacement)->Arg(32)->Arg(100);

void BM_GenerateInstance(benchmark::State& state) {
  WorkloadConfig cfg;
  cfg.network_size = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_instance(cfg, ++seed));
  }
}
BENCHMARK(BM_GenerateInstance)->Arg(32)->Arg(100);

void BM_SimulateTestbed(benchmark::State& state) {
  const Instance inst = make_testbed_instance(TestbedWorkloadConfig{}, 7);
  const ReplicaPlan plan = appro_g(inst).plan;
  SimConfig cfg;
  cfg.capacity_factor = 0.9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(plan, cfg));
  }
}
BENCHMARK(BM_SimulateTestbed);

}  // namespace
}  // namespace edgerep

BENCHMARK_MAIN();
