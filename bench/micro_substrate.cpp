// Google-benchmark microbenchmarks of the hot substrate paths: RNG, graph
// shortest paths, the site-rows delay table vs the dense all-pairs matrix,
// Instance::finalize at scale, partitioning, the simplex solver, the event
// queue, and one full Appro-G placement.
#include <benchmark/benchmark.h>

#include <chrono>

#include "edgerep/edgerep.h"

namespace edgerep {
namespace {

// Scale-out substrate fixture: ~degree-8 G(n, p) so 1k–8k-node networks
// stay bench-sized, with 10% of nodes as placement sites (the paper's
// V = CL ∪ DC is a small fraction of all BS/SW/CL/DC nodes).
Graph sparse_graph(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return gnp(n, 8.0 / static_cast<double>(n), Range{0.05, 1.0}, rng);
}

std::vector<NodeId> every_tenth_node(std::size_t n) {
  std::vector<NodeId> sources;
  sources.reserve(n / 10 + 1);
  for (std::size_t v = 0; v < n; v += 10) {
    sources.push_back(static_cast<NodeId>(v));
  }
  return sources;
}

// Unfinalized instance over the sparse graph; copies of it are finalized
// inside the timed region of the finalize benchmarks.
Instance scale_instance(std::size_t n, std::uint64_t seed) {
  Graph g = sparse_graph(n, seed);
  Instance inst(std::move(g));
  for (const NodeId v : every_tenth_node(n)) {
    inst.add_site(v, 40.0, 0.1);
  }
  const DatasetId d = inst.add_dataset(4.0, 0);
  inst.add_query(0, 1.0, 100.0, {{d, 0.5}});
  return inst;
}

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_RngNext);

void BM_RngZipf(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.zipf(100000, 1.1));
  }
}
BENCHMARK(BM_RngZipf);

void BM_Dijkstra(benchmark::State& state) {
  Rng rng(3);
  const Graph g = gnp(static_cast<std::size_t>(state.range(0)), 0.1,
                      Range{0.1, 1.0}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra(g, 0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Dijkstra)->Range(64, 1024)->Complexity();

void BM_DelayMatrix(benchmark::State& state) {
  Rng rng(4);
  const Graph g = gnp(static_cast<std::size_t>(state.range(0)), 0.1,
                      Range{0.1, 1.0}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DelayMatrix::compute(g, /*parallel=*/true));
  }
}
BENCHMARK(BM_DelayMatrix)->Arg(128)->Arg(256);

void BM_DelayTableSiteRows(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Graph g = sparse_graph(n, 8);
  g.seal();
  const auto sources = every_tenth_node(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DelayTable::compute(g, sources));
  }
}
BENCHMARK(BM_DelayTableSiteRows)
    ->Arg(1024)->Arg(2048)->Arg(4096)->Arg(8192)
    ->Unit(benchmark::kMillisecond);

void BM_DelayMatrixDenseAtScale(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Graph g = sparse_graph(n, 8);
  g.seal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(DelayMatrix::compute(g));
  }
}
BENCHMARK(BM_DelayMatrixDenseAtScale)
    ->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

// finalize = validation + graph seal + delay precompute for the selected
// backend.  Copies of the unfinalized proto are made outside the manual
// timer, so only finalize() itself is measured.
void finalize_bench(benchmark::State& state, DelayBackend backend) {
  Instance proto = scale_instance(static_cast<std::size_t>(state.range(0)), 9);
  proto.set_delay_backend(backend);
  for (auto _ : state) {
    Instance inst = proto;
    const auto t0 = std::chrono::steady_clock::now();
    inst.finalize();
    const auto t1 = std::chrono::steady_clock::now();
    state.SetIterationTime(
        std::chrono::duration<double>(t1 - t0).count());
    benchmark::DoNotOptimize(inst);
  }
}

void BM_InstanceFinalizeSiteRows(benchmark::State& state) {
  finalize_bench(state, DelayBackend::kSiteRows);
}
BENCHMARK(BM_InstanceFinalizeSiteRows)
    ->Arg(1024)->Arg(2048)->Arg(4096)->Arg(8192)
    ->UseManualTime()->Unit(benchmark::kMillisecond);

void BM_InstanceFinalizeDense(benchmark::State& state) {
  finalize_bench(state, DelayBackend::kDense);
}
BENCHMARK(BM_InstanceFinalizeDense)
    ->Arg(1024)->Arg(2048)
    ->UseManualTime()->Unit(benchmark::kMillisecond);

void BM_PartitionGraph(benchmark::State& state) {
  Rng rng(5);
  PartitionProblem p;
  p.num_vertices = static_cast<std::size_t>(state.range(0));
  p.vertex_weight.assign(p.num_vertices, 1.0);
  for (std::uint32_t u = 0; u < p.num_vertices; ++u) {
    for (std::uint32_t v = u + 1; v < p.num_vertices; ++v) {
      if (rng.bernoulli(0.05)) p.edges.push_back({u, v, rng.uniform(0.1, 2.0)});
    }
  }
  p.num_parts = 8;
  p.part_capacity.assign(8, static_cast<double>(p.num_vertices) / 6.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition_graph(p));
  }
}
BENCHMARK(BM_PartitionGraph)->Arg(100)->Arg(400);

void BM_SimplexRandomLp(benchmark::State& state) {
  Rng rng(6);
  LinearProgram lp;
  lp.num_vars = static_cast<std::size_t>(state.range(0));
  lp.objective.resize(lp.num_vars);
  for (auto& c : lp.objective) c = rng.uniform(0.0, 1.0);
  for (std::size_t j = 0; j < lp.num_vars; ++j) lp.add_upper_bound(j, 2.0);
  for (std::size_t c = 0; c < lp.num_vars; ++c) {
    std::vector<std::pair<std::size_t, double>> terms;
    for (std::size_t j = 0; j < lp.num_vars; ++j) {
      terms.push_back({j, rng.uniform(0.0, 1.0)});
    }
    lp.add_constraint(std::move(terms), Relation::kLe,
                      rng.uniform(1.0, 10.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_lp(lp));
  }
}
BENCHMARK(BM_SimplexRandomLp)->Arg(20)->Arg(50);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue eq;
    int counter = 0;
    for (int i = 0; i < 1000; ++i) {
      eq.schedule_at(static_cast<double>(i % 97), [&counter] { ++counter; });
    }
    eq.run();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_EventQueueChurn);

void BM_ApproGPlacement(benchmark::State& state) {
  WorkloadConfig cfg;
  cfg.network_size = static_cast<std::size_t>(state.range(0));
  cfg.min_queries = 100;
  cfg.max_queries = 100;
  cfg.max_datasets_per_query = 5;
  const Instance inst = generate_instance(cfg, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(appro_g(inst));
  }
}
BENCHMARK(BM_ApproGPlacement)->Arg(32)->Arg(100);

void BM_GenerateInstance(benchmark::State& state) {
  WorkloadConfig cfg;
  cfg.network_size = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_instance(cfg, ++seed));
  }
}
BENCHMARK(BM_GenerateInstance)->Arg(32)->Arg(100);

void BM_SimulateTestbed(benchmark::State& state) {
  const Instance inst = make_testbed_instance(TestbedWorkloadConfig{}, 7);
  const ReplicaPlan plan = appro_g(inst).plan;
  SimConfig cfg;
  cfg.capacity_factor = 0.9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(plan, cfg));
  }
}
BENCHMARK(BM_SimulateTestbed);

}  // namespace
}  // namespace edgerep

BENCHMARK_MAIN();
