// Failure-repair microbenchmarks: incremental primal-dual repair vs the
// full-recompute oracle after a crash of the most-loaded site, plus the
// fault-model primitives the repair path leans on (event application and
// masked-Dijkstra delay overlay rebuilds).
#include <benchmark/benchmark.h>

#include "edgerep/edgerep.h"

namespace edgerep {
namespace {

Instance bench_instance(std::size_t network, std::size_t queries) {
  WorkloadConfig cfg;
  cfg.network_size = network;
  cfg.min_queries = queries;
  cfg.max_queries = queries;
  cfg.min_datasets_per_query = 1;
  cfg.max_datasets_per_query = 5;
  return generate_instance(cfg, /*seed=*/42);
}

SiteId most_loaded_site(const Instance& inst, const ReplicaPlan& plan) {
  SiteId victim = 0;
  for (const Site& s : inst.sites()) {
    if (plan.load(s.id) > plan.load(victim)) victim = s.id;
  }
  return victim;
}

void repair_benchmark(benchmark::State& state, bool full_recompute) {
  const Instance inst =
      bench_instance(static_cast<std::size_t>(state.range(0)),
                     static_cast<std::size_t>(state.range(1)));
  const ApproResult solved = appro_g(inst);
  FaultState faults(inst);
  faults.apply({0.0, FaultKind::kSiteDown, most_loaded_site(inst, solved.plan),
                kInvalidEdge, 0.0});
  const RepairEngine engine(inst);
  RepairOptions opts;
  opts.full_recompute = full_recompute;
  for (auto _ : state) {
    state.PauseTiming();
    ReplicaPlan plan = solved.plan;
    DualState duals = solved.duals;
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.repair(plan, duals, faults, opts));
  }
}

void BM_RepairIncremental(benchmark::State& state) {
  repair_benchmark(state, /*full_recompute=*/false);
}
BENCHMARK(BM_RepairIncremental)->Args({32, 100})->Args({64, 250});

void BM_RepairFullRecompute(benchmark::State& state) {
  repair_benchmark(state, /*full_recompute=*/true);
}
BENCHMARK(BM_RepairFullRecompute)->Args({32, 100})->Args({64, 250});

void BM_FaultStateApply(benchmark::State& state) {
  const Instance inst = bench_instance(64, 250);
  const FaultEvent down{0.0, FaultKind::kSiteDown, 0, kInvalidEdge, 0.0};
  const FaultEvent up{1.0, FaultKind::kSiteUp, 0, kInvalidEdge, 0.0};
  FaultState faults(inst);
  for (auto _ : state) {
    faults.apply(down);
    faults.apply(up);
  }
  benchmark::DoNotOptimize(faults.events_applied());
}
BENCHMARK(BM_FaultStateApply);

// One link-down event then a delay query: pays the lazy per-site Dijkstra
// overlay rebuild with the downed edge masked.
void BM_MaskedOverlayRebuild(benchmark::State& state) {
  const Instance inst = bench_instance(64, 250);
  for (auto _ : state) {
    FaultState faults(inst);
    faults.apply({0.0, FaultKind::kLinkDown, kInvalidSite, 0, 0.0});
    benchmark::DoNotOptimize(faults.path_delay(0, 1));
  }
}
BENCHMARK(BM_MaskedOverlayRebuild);

}  // namespace
}  // namespace edgerep

BENCHMARK_MAIN();
