// Figure 3 (a, b): volume and throughput vs network size, general case
// (each query demands multiple datasets).  Algorithms: Appro-G, Greedy-G,
// Graph-G (paper §4.2, Fig. 3: Appro-G ≈ 5x Greedy-G and ≈ 1.7x Graph-G on
// volume; 2.1x / 1.5x on throughput).
#include "bench_common.h"

using namespace edgerep;
using namespace edgerep::bench;

int main(int argc, char** argv) {
  const FigureIo io = FigureIo::parse(argc, argv);
  print_banner("Figure 3: network size sweep, general case",
               "Appro-G ~5x Greedy-G and ~1.7x Graph-G on volume; throughput "
               "2.1x / 1.5x");

  const std::vector<std::size_t> sizes{50, 100, 150, 200, 250};
  Table t = make_series_table("network_size");
  std::vector<AlgoStats> reference;
  for (const std::size_t n : sizes) {
    WorkloadConfig cfg;
    cfg.network_size = n;
    cfg.max_datasets_per_query = 7;
    const auto stats = run_sweep_point(cfg, derive_seed(io.seed, n), io.reps,
                                       algorithms_general());
    add_point_rows(t, std::to_string(n), stats, /*use_assigned=*/false);
    if (n == 100) reference = stats;
  }
  emit(io, t);

  if (!reference.empty()) {
    std::cout << "\nshape summary at network size 100:\n";
    print_ratio("volume  Appro-G vs Greedy-G",
                reference[0].admitted_volume.mean(),
                reference[1].admitted_volume.mean());
    print_ratio("volume  Appro-G vs Graph-G",
                reference[0].admitted_volume.mean(),
                reference[2].admitted_volume.mean());
    print_ratio("thruput Appro-G vs Greedy-G", reference[0].throughput.mean(),
                reference[1].throughput.mean());
    print_ratio("thruput Appro-G vs Graph-G", reference[0].throughput.mean(),
                reference[2].throughput.mean());
  }
  return 0;
}
