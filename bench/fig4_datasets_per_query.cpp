// Figure 4 (a, b): impact of the maximum number F of datasets demanded by
// each query (F = 1..6) on volume and throughput, general case (paper §4.2,
// Fig. 4: throughput falls with F; volume rises up to F = 5 then dips).
#include "bench_common.h"

using namespace edgerep;
using namespace edgerep::bench;

int main(int argc, char** argv) {
  const FigureIo io = FigureIo::parse(argc, argv);
  print_banner("Figure 4: datasets-per-query sweep (F = 1..6)",
               "throughput decreases with F for all algorithms; volume "
               "grows with F until ~5, then dips; Appro-G on top throughout");

  Table t = make_series_table("F");
  std::vector<double> appro_thr;
  std::vector<double> appro_vol;
  for (std::size_t f = 1; f <= 6; ++f) {
    WorkloadConfig cfg;
    cfg.network_size = 32;  // paper default 6 DC / 24 CL / 2 SW
    cfg.max_datasets_per_query = f;
    const auto stats = run_sweep_point(cfg, derive_seed(io.seed, f), io.reps,
                                       algorithms_general());
    add_point_rows(t, std::to_string(f), stats, /*use_assigned=*/false);
    appro_thr.push_back(stats[0].throughput.mean());
    appro_vol.push_back(stats[0].admitted_volume.mean());
  }
  emit(io, t);

  std::cout << "\nshape summary (Appro-G):\n";
  print_ratio("throughput F=1 vs F=6 (expect > 1)", appro_thr.front(),
              appro_thr.back());
  print_ratio("volume F=5 vs F=1 (expect > 1)", appro_vol[4], appro_vol[0]);
  return 0;
}
