// ABL-PROACTIVE: what does *proactive* replication buy (the premise of the
// paper's title)?  Compares, under online arrivals with time-multiplexed
// capacity:
//   1. reactive-only admission (replicas placed on arrival, no lookahead),
//   2. online admission seeded with Appro-G's proactive replica placement,
//   3. online admission seeded proactively with reaction disabled,
// against the offline static Appro-G plan as a reference, across arrival
// rates (pressure).
#include "bench_common.h"

using namespace edgerep;
using namespace edgerep::bench;

int main(int argc, char** argv) {
  const FigureIo io = FigureIo::parse(argc, argv);
  print_banner("Ablation: proactive vs reactive replication under arrivals",
               "proactive seeding dominates pure reaction, most at high "
               "arrival pressure; offline static is the conservative floor");

  Table t({"arrival_rate", "variant", "admitted_vol_gb", "vol_ci95",
           "throughput", "peak_util"});
  for (const double rate : {0.5, 2.0, 8.0, 32.0}) {
    struct Acc {
      RunningStat vol;
      RunningStat thr;
      RunningStat util;
    };
    Acc reactive;
    Acc seeded;
    Acc seeded_only;
    Acc offline_static;
    for (std::size_t r = 0; r < io.reps; ++r) {
      WorkloadConfig cfg;
      cfg.network_size = 32;
      cfg.max_datasets_per_query = 4;
      const Instance inst = generate_instance(cfg, derive_seed(io.seed, r));
      const ApproResult offline = appro_g(inst);
      OnlineConfig ocfg;
      ocfg.arrival_rate = rate;
      ocfg.seed = derive_seed(io.seed, 900 + r);
      const OnlineResult r1 = run_online(inst, ocfg);
      const OnlineResult r2 = run_online(inst, ocfg, &offline.plan);
      OnlineConfig frozen = ocfg;
      frozen.reactive_replicas = false;
      const OnlineResult r3 = run_online(inst, frozen, &offline.plan);
      reactive.vol.add(r1.admitted_volume);
      reactive.thr.add(r1.throughput);
      reactive.util.add(r1.peak_utilization);
      seeded.vol.add(r2.admitted_volume);
      seeded.thr.add(r2.throughput);
      seeded.util.add(r2.peak_utilization);
      seeded_only.vol.add(r3.admitted_volume);
      seeded_only.thr.add(r3.throughput);
      seeded_only.util.add(r3.peak_utilization);
      offline_static.vol.add(offline.metrics.admitted_volume);
      offline_static.thr.add(offline.metrics.throughput);
      offline_static.util.add(offline.metrics.utilization);
    }
    auto add_row = [&](const char* name, const Acc& a) {
      t.row()
          .cell(rate, 1)
          .cell(name)
          .cell(a.vol.mean(), 1)
          .cell(a.vol.ci95_halfwidth(), 1)
          .cell(a.thr.mean(), 3)
          .cell(a.util.mean(), 3);
    };
    add_row("reactive-only", reactive);
    add_row("proactive+reactive", seeded);
    add_row("proactive-frozen", seeded_only);
    add_row("offline-static (ref)", offline_static);
  }
  emit(io, t);
  return 0;
}
