// Edge analytics scenario: the paper's motivating workload — a metropolitan
// two-tier edge cloud where enterprise services generate datasets and users
// issue multi-dataset analytics queries with QoS deadlines.  Generates a
// paper-style instance, runs every placement algorithm (core + baselines),
// and prints a comparison, optionally exporting the topology as Graphviz DOT.
//
//   ./edge_analytics [--size 32] [--queries 80] [--f 5] [--k 3]
//                    [--seed 42] [--dot topology.dot]
#include <fstream>
#include <iostream>

#include "edgerep/edgerep.h"

using namespace edgerep;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  WorkloadConfig cfg;
  cfg.network_size = static_cast<std::size_t>(args.get_int("size", 32));
  cfg.min_queries = cfg.max_queries =
      static_cast<std::size_t>(args.get_int("queries", 80));
  cfg.max_datasets_per_query = static_cast<std::size_t>(args.get_int("f", 5));
  cfg.max_replicas = static_cast<std::size_t>(args.get_int("k", 3));
  const std::uint64_t seed = args.get_seed("seed", 42);

  const Instance inst = generate_instance(cfg, seed);
  std::cout << "Instance: " << inst.sites().size() << " sites, "
            << inst.datasets().size() << " datasets ("
            << inst.total_demanded_volume() << " GB demanded), "
            << inst.queries().size() << " queries, K=" << inst.max_replicas()
            << "\n\n";

  std::vector<Algorithm> algos = algorithms_general();
  algos.push_back(
      {"Popularity-G", [](const Instance& i) { return popularity_g(i).plan; }});
  algos.push_back(
      {"Random", [](const Instance& i) { return random_baseline(i).plan; }});

  Table t({"algorithm", "admitted_vol_gb", "assigned_vol_gb", "throughput",
           "replicas", "utilization", "valid"});
  for (const Algorithm& a : algos) {
    const ReplicaPlan plan = a.run(inst);
    const PlanMetrics pm = evaluate(plan);
    t.row()
        .cell(a.name)
        .cell(pm.admitted_volume, 1)
        .cell(pm.assigned_volume, 1)
        .cell(pm.throughput, 3)
        .cell(pm.replicas_placed)
        .cell(pm.utilization, 3)
        .cell(validate(plan).ok ? "yes" : "NO");
  }
  t.print(std::cout);

  // Weak-duality certificate for the core algorithm.
  const ApproResult appro = appro_g(inst);
  std::cout << "\nAppro-G dual upper bound: " << appro.dual_objective
            << " GB (primal " << appro.metrics.admitted_volume << " GB)\n";

  if (args.has("dot")) {
    const std::string path = args.get("dot", "topology.dot");
    std::ofstream os(path);
    write_dot(os, inst.graph());
    std::cout << "Topology written to " << path << " (render: dot -Tsvg)\n";
  }
  return 0;
}
