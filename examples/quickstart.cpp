// Quickstart: build a small two-tier edge cloud by hand, place replicas
// with the paper's Appro-S algorithm, and inspect the resulting plan.
//
//   ./quickstart
//
// Walks through the full public API surface: Graph → Instance → appro_s →
// ReplicaPlan → evaluate/validate.
#include <iostream>

#include "edgerep/edgerep.h"

using namespace edgerep;

int main() {
  // 1. Topology: two cloudlets and one remote data center behind a switch.
  Graph g;
  const NodeId cl0 = g.add_node(NodeRole::kCloudlet);
  const NodeId cl1 = g.add_node(NodeRole::kCloudlet);
  const NodeId sw = g.add_node(NodeRole::kSwitch);
  const NodeId dc = g.add_node(NodeRole::kDataCenter);
  g.add_edge(cl0, sw, 0.05);  // delays are seconds per GB transferred
  g.add_edge(cl1, sw, 0.08);
  g.add_edge(sw, dc, 1.20);

  // 2. Placement sites: computing capacity (GHz) and processing delay (s/GB).
  Instance inst(std::move(g));
  const SiteId s_cl0 = inst.add_site(cl0, /*capacity=*/12.0, /*proc=*/0.15);
  const SiteId s_cl1 = inst.add_site(cl1, 10.0, 0.20);
  const SiteId s_dc = inst.add_site(dc, 400.0, 0.02);

  // 3. Datasets (GB) and queries with QoS deadlines (s).
  const DatasetId logs = inst.add_dataset(4.0, s_dc, "web-logs");
  const DatasetId clicks = inst.add_dataset(2.5, s_dc, "click-stream");
  inst.add_query(s_cl0, /*rate=*/1.0, /*deadline=*/1.0, {{logs, 0.3}});
  inst.add_query(s_cl1, 1.1, 1.2, {{clicks, 0.5}});
  inst.add_query(s_cl0, 0.9, 4.0, {{logs, 0.2}});  // loose: can go remote
  inst.set_max_replicas(2);  // K
  inst.finalize();

  // 4. Run the primal-dual approximation (special case: 1 dataset/query).
  const ApproResult result = appro_s(inst);

  // 5. Inspect the plan.
  std::cout << "Replica placement:\n";
  for (const Dataset& d : inst.datasets()) {
    std::cout << "  " << d.name << " (" << d.volume << " GB) -> sites:";
    for (const SiteId l : result.plan.replica_sites(d.id)) {
      std::cout << ' ' << l << (inst.site(l).is_data_center() ? " (dc)" : " (cl)");
    }
    std::cout << '\n';
  }
  std::cout << "Query assignments:\n";
  for (const Query& q : inst.queries()) {
    const auto site = result.plan.assignment(q.id, q.demands[0].dataset);
    std::cout << "  query " << q.id << " (deadline " << q.deadline << "s): ";
    if (site) {
      std::cout << "site " << *site << ", delay "
                << evaluation_delay(inst, q, q.demands[0], *site) << "s\n";
    } else {
      std::cout << "rejected\n";
    }
  }

  // 6. Metrics + independent constraint check.
  const PlanMetrics pm = evaluate(result.plan);
  std::cout << "Admitted volume: " << pm.admitted_volume << " GB ("
            << pm.admitted_queries << "/" << pm.total_queries
            << " queries, throughput " << pm.throughput << ")\n"
            << "Dual upper bound (weak duality): " << result.dual_objective
            << " GB\n"
            << "Plan valid: " << (validate(result.plan).ok ? "yes" : "NO")
            << '\n';
  return 0;
}
