// Testbed replay: rebuild the paper's §4.3 experiment end to end — the
// geo-distributed DigitalOcean-style testbed, datasets cut from a synthetic
// mobile-app-usage trace, proactive placement, then measured execution on
// the discrete-event simulator.
//
//   ./testbed_replay [--queries 60] [--f 4] [--k 3] [--seed 7]
//                    [--arrival-rate 2.0] [--capacity-factor 0.9]
#include <iostream>

#include "edgerep/edgerep.h"

using namespace edgerep;

namespace {

void report(const char* name, const SimReport& rep) {
  std::cout << name << ":\n"
            << "  served " << rep.served_queries << "/" << rep.total_queries
            << ", admitted (met deadline) " << rep.admitted_queries
            << ", measured throughput " << rep.throughput << '\n'
            << "  admitted volume " << rep.admitted_volume << " GB\n"
            << "  response mean " << rep.mean_response << "s, p95 "
            << rep.p95_response << "s, max " << rep.max_response << "s\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  TestbedWorkloadConfig cfg;
  cfg.num_queries = static_cast<std::size_t>(args.get_int("queries", 60));
  cfg.max_windows_per_query = static_cast<std::size_t>(args.get_int("f", 4));
  cfg.max_replicas = static_cast<std::size_t>(args.get_int("k", 3));
  const std::uint64_t seed = args.get_seed("seed", 7);

  const Instance inst = make_testbed_instance(cfg, seed);
  const Trace trace = synthesize_trace(cfg.trace, derive_seed(seed, 14));
  std::cout << "Trace: " << trace.config.num_users << " users over "
            << trace.config.days << " days, " << trace.windows.size()
            << " time-window datasets, " << trace.total_volume_gb
            << " GB total\n";
  std::cout << "Top apps in window 0:";
  for (const std::size_t app : top_apps(trace.windows[0], 5)) {
    std::cout << " app" << app;
  }
  std::cout << "\n\n";

  SimConfig sim_cfg;
  sim_cfg.arrival_rate = args.get_double("arrival-rate", 2.0);
  sim_cfg.capacity_factor = args.get_double("capacity-factor", 0.9);
  sim_cfg.seed = derive_seed(seed, 99);

  const ReplicaPlan plan_appro = appro_g(inst).plan;
  const ReplicaPlan plan_pop = popularity_g(inst).plan;
  report("Appro-G (paper)", simulate(plan_appro, sim_cfg));
  std::cout << '\n';
  report("Popularity-G (Hou et al. baseline)", simulate(plan_pop, sim_cfg));

  // Per-region replica distribution under the core algorithm.
  std::cout << "\nReplica count per site (Appro-G):\n";
  for (const Site& s : inst.sites()) {
    std::size_t count = 0;
    for (const Dataset& d : inst.datasets()) {
      if (plan_appro.has_replica(d.id, s.id)) ++count;
    }
    if (count > 0) {
      std::cout << "  site " << s.id << " ("
                << (s.is_data_center() ? "dc" : "cloudlet") << "): " << count
                << " replicas, load " << plan_appro.load(s.id) << "/"
                << s.available << " GHz\n";
    }
  }
  return 0;
}
