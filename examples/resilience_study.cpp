// Resilience study: what do replicas buy when sites fail, and what do they
// cost to keep consistent?  Uses three library features together:
//  * availability analysis (Monte Carlo survival under site failures),
//  * plan hardening (extra deadline-feasible replicas for weak demands),
//  * the §2.4 consistency model (update traffic those extra replicas incur).
//
//   ./resilience_study [--failure-prob 0.05] [--k 4] [--harden 2]
//                      [--growth 0.1] [--seed 21] [--save instance.txt]
#include <fstream>
#include <iostream>

#include "edgerep/edgerep.h"

using namespace edgerep;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const double failure_prob = args.get_double("failure-prob", 0.05);
  const auto min_servable =
      static_cast<std::size_t>(args.get_int("harden", 2));
  const double growth = args.get_double("growth", 0.1);
  const std::uint64_t seed = args.get_seed("seed", 23);

  WorkloadConfig cfg;
  cfg.network_size = 32;
  cfg.max_datasets_per_query = 4;
  cfg.max_replicas = static_cast<std::size_t>(args.get_int("k", 4));
  const Instance inst = generate_instance(cfg, seed);
  if (args.has("save")) {
    std::ofstream os(args.get("save", "instance.txt"));
    write_instance(os, inst);
    std::cout << "instance archived to " << args.get("save", "instance.txt")
              << "\n\n";
  }

  ReplicaPlan plain = appro_g(inst).plan;
  ReplicaPlan hardened = plain;
  const std::size_t added = harden_plan(hardened, min_servable);

  AvailabilityConfig acfg;
  acfg.site_failure_prob = failure_prob;
  acfg.seed = derive_seed(seed, 77);
  const GrowthModel gm = GrowthModel::proportional(inst, growth);

  Table t({"plan", "replicas", "admitted_vol_gb", "mean_survival",
           "min_survival", "surviving_vol_gb", "update_cost_per_h"});
  for (const auto& [name, plan] :
       {std::pair<const char*, const ReplicaPlan*>{"Appro-G", &plain},
        {"Appro-G hardened", &hardened}}) {
    const AvailabilityReport avail = analyze_availability(*plan, acfg);
    const ConsistencyReport cons = analyze_consistency(*plan, gm);
    const PlanMetrics pm = evaluate(*plan);
    t.row()
        .cell(name)
        .cell(plan->total_replicas())
        .cell(pm.admitted_volume, 1)
        .cell(avail.mean_survival, 4)
        .cell(avail.min_survival, 4)
        .cell(avail.expected_surviving_volume, 1)
        .cell(cons.total_transfer_cost_per_hour, 2);
  }
  std::cout << "site failure probability " << failure_prob << ", hardening "
            << "target " << min_servable << " servable replicas per demand ("
            << added << " replicas added)\n\n";
  t.print(std::cout);
  std::cout << "\nHardening trades consistency-maintenance cost for "
               "failure survival at identical admitted volume.\n";
  return 0;
}
