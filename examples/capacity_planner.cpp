// Capacity planner: a downstream use of the library beyond the paper —
// given a query workload and a QoS target, find the cheapest cloudlet
// provisioning (capacity multiplier) whose Appro-G placement meets a target
// system throughput.  Binary-searches the multiplier, averaging over seeds.
//
//   ./capacity_planner [--target 0.8] [--size 32] [--reps 5] [--seed 3]
#include <iostream>

#include "edgerep/edgerep.h"

using namespace edgerep;

namespace {

/// Mean Appro-G throughput when cloudlet capacity is scaled by `mult`.
double mean_throughput(const WorkloadConfig& base, double mult,
                       std::uint64_t seed, std::size_t reps) {
  WorkloadConfig cfg = base;
  cfg.cl_capacity = {base.cl_capacity.lo * mult, base.cl_capacity.hi * mult};
  RunningStat thr;
  for (std::size_t r = 0; r < reps; ++r) {
    const Instance inst = generate_instance(cfg, derive_seed(seed, r));
    thr.add(appro_g(inst).metrics.throughput);
  }
  return thr.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const double target = args.get_double("target", 0.8);
  const std::size_t reps = static_cast<std::size_t>(args.get_int("reps", 5));
  const std::uint64_t seed = args.get_seed("seed", 3);

  WorkloadConfig base;
  base.network_size = static_cast<std::size_t>(args.get_int("size", 32));
  base.min_queries = base.max_queries = 80;
  base.max_datasets_per_query = 4;

  std::cout << "Target throughput: " << target << " (deadlines fixed; only "
            << "cloudlet GHz scales)\n\n";
  Table t({"cl_capacity_multiplier", "mean_throughput"});
  const double base_thr = mean_throughput(base, 1.0, seed, reps);
  t.row().cell(1.0, 2).cell(base_thr, 3);

  // Throughput is not exactly monotone in capacity (heuristic placement),
  // but close; a bracketed bisection on the multiplier is good enough for
  // planning purposes.
  double lo = 1.0;
  double hi = 1.0;
  double hi_thr = base_thr;
  while (hi_thr < target && hi < 64.0) {
    hi *= 2.0;
    hi_thr = mean_throughput(base, hi, seed, reps);
    t.row().cell(hi, 2).cell(hi_thr, 3);
  }
  if (hi_thr < target) {
    t.print(std::cout);
    std::cout << "\nTarget unreachable by scaling cloudlet capacity alone — "
              << "the residual rejections are deadline-bound, not "
              << "capacity-bound.  Consider raising K or adding cloudlets.\n";
    return 0;
  }
  for (int iter = 0; iter < 8 && hi - lo > 0.05; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double thr = mean_throughput(base, mid, seed, reps);
    t.row().cell(mid, 2).cell(thr, 3);
    if (thr >= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  t.print(std::cout);
  std::cout << "\nRecommended cloudlet capacity multiplier: " << hi << " (≈ "
            << hi * 0.5 * (base.cl_capacity.lo + base.cl_capacity.hi)
            << " GHz per cloudlet)\n";
  return 0;
}
