// edgerep command-line tool: the operator-facing entry point tying the
// library together.  Subcommands:
//
//   generate  — create a problem instance (paper-style random workload or a
//               config file) and archive it
//   solve     — run a placement algorithm on an instance; save the plan
//   validate  — independently re-check a plan against every constraint
//   simulate  — execute a plan on the discrete-event testbed
//   analyze   — availability + consistency economics of a plan
//   online    — reactive admission over arrivals (optionally seeded by a plan)
//   genfaults — draw a random fault scenario for an instance; archive it
//   repair    — solve, inject faults, repair incrementally; compare oracle
//
// Example session:
//   edgerep_cli generate --size 32 --seed 7 --out inst.txt
//   edgerep_cli solve --instance inst.txt --algorithm appro --out plan.txt
//   edgerep_cli validate --instance inst.txt --plan plan.txt
//   edgerep_cli simulate --instance inst.txt --plan plan.txt --discipline ps
//   edgerep_cli analyze --instance inst.txt --plan plan.txt --failure-prob 0.1
#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <limits>
#include <sstream>
#include <thread>

#include "cloud/plan_io.h"
#include "edgerep/edgerep.h"

namespace edgerep {
namespace {

int usage() {
  std::cout <<
      "usage: edgerep_cli <command> [options]\n"
      "\n"
      "commands:\n"
      "  generate --out FILE [--scenario NAME] [--config FILE] [--size N]\n"
      "           [--queries N] [--f N] [--k N] [--seed S]\n"
      "  scenarios                    list the built-in workload scenarios\n"
      "  solve    --instance FILE --algorithm NAME [--out FILE] [--improve]\n"
      "           NAME: appro | greedy | graph | popularity | random |\n"
      "                 centrality | lp-rounding | exact\n"
      "  validate --instance FILE --plan FILE\n"
      "  simulate --instance FILE --plan FILE [--discipline fifo|ps]\n"
      "           [--transfers delay|flow] [--arrival-rate R]\n"
      "           [--capacity-factor F] [--seed S]\n"
      "  analyze  --instance FILE --plan FILE [--failure-prob P]\n"
      "           [--growth G] [--trials N] [--seed S]\n"
      "  online   --instance FILE [--plan FILE] [--arrival-rate R]\n"
      "           [--no-reactive] [--seed S] [--faults FILE] [--no-repair]\n"
      "           [--kernel typed|closure]\n"
      "           [--network table|flow] [--oversub F]\n"
      "           --network=flow routes admitted transfers as max-min fair\n"
      "           flows over per-edge capacities (divided by --oversub;\n"
      "           0 = contention-free, bit-identical to table) and reports\n"
      "           the predicted-vs-actual SLO gap\n"
      "           [--gen-sites N] [--gen-queries N] [--gen-max-demands F]\n"
      "           [--gen-seed S]  (generate a stream-workload instance\n"
      "           in-process instead of --instance)\n"
      "           [--gen-zipf S] [--gen-zipf-drift N]  (Zipf(S) dataset\n"
      "           popularity whose hot set rotates every N queries — the\n"
      "           watchdog's flash-crowd workload)\n"
      "           [--wave-amplitude A] [--wave-period T]  (diurnal arrival\n"
      "           wave: rate modulated by 1 + A*sin(2*pi*t/T))\n"
      "           [--gen-faults N] [--gen-fault-seed S]  (draw N crashes +\n"
      "           N capacity losses over the arrival horizon in-process)\n"
      "           [--serve PORT] [--sample-interval MS] [--serve-linger SEC]\n"
      "           [--timeseries-out FILE]\n"
      "           --serve starts an embedded HTTP server on 127.0.0.1:PORT\n"
      "           (0 = ephemeral) with /metrics /healthz /status /timeseries\n"
      "           /quitquitquit; it lingers SEC seconds after the run so\n"
      "           scrapers can read the final state\n"
      "  stream   --instance FILE [--shards N] [--epoch-ms MS]\n"
      "           [--arrival-rate R] [--seed S] [--max-requeues N]\n"
      "           [--boundary none|dc] [--scalar-pricing] [--serial]\n"
      "           [--id-order] [--wave-amplitude A] [--wave-period T]\n"
      "           [--json-out FILE] [--out FILE]\n"
      "           continuous admission: Poisson arrivals batched into\n"
      "           micro-epochs, admitted by region-sharded engines and\n"
      "           reconciled against the global capacity ledger\n"
      "  genfaults --instance FILE --out FILE [--config FILE] [--crashes N]\n"
      "           [--links N] [--degrade N] [--horizon T] [--mttr T] [--seed S]\n"
      "  repair   --instance FILE --faults FILE [--until T] [--full]\n"
      "           [--out FILE]\n"
      "  diff     --instance FILE --plan FILE --plan2 FILE\n"
      "  postmortem --journal FILE [--diff FILE2] [--json-out FILE] [--top N]\n"
      "           [--alerts]\n"
      "           replay a flight-recorder journal: causal timelines, deadline\n"
      "           slack decomposition, SLO-breach attribution by site/dataset/\n"
      "           role (and bottleneck link on --network=flow journals),\n"
      "           stream epoch stats; --diff compares two journals and\n"
      "           reports the first divergent record; --alerts prints only\n"
      "           the reconstructed watchdog alert timeline with per-window\n"
      "           breach counts\n"
      "\n"
      "observability (any command):\n"
      "  --metrics-out FILE   write engine counters/gauges/histograms\n"
      "                       (.prom/.txt: Prometheus text, else JSON)\n"
      "  --trace-out FILE     write chrome://tracing JSON of engine phases\n"
      "  --audit-out FILE     write per-demand admission audit log (JSON)\n"
      "  --record FILE        write the deterministic flight-recorder journal\n"
      "                       (binary; analyze with `postmortem`)\n"
      "  --record-mode MODE   full (default) keeps every record; ring keeps\n"
      "                       the last --record-ring N (default 65536)\n"
      "  --watchdog           stream workload-drift / SLO-anomaly detectors\n"
      "                       over the run; alerts print after the run, are\n"
      "                       journaled when --record is on, and serve at\n"
      "                       /alerts under --serve\n"
      "environment: EDGEREP_LOG=debug|info|warn|error, EDGEREP_OBS=1,\n"
      "             EDGEREP_RECORD=full|ring[:N], EDGEREP_WATCHDOG=1\n";
  return 2;
}

Instance load_instance(const Args& args) {
  const std::string path = args.get("instance", "");
  if (path.empty()) throw std::runtime_error("--instance is required");
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open instance file: " + path);
  return read_instance(is);
}

ReplicaPlan load_plan(const Instance& inst, const Args& args) {
  const std::string path = args.get("plan", "");
  if (path.empty()) throw std::runtime_error("--plan is required");
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open plan file: " + path);
  return read_plan(inst, is);
}

void print_metrics(const ReplicaPlan& plan) {
  const PlanMetrics pm = evaluate(plan);
  std::cout << "admitted volume: " << pm.admitted_volume << " GB\n"
            << "assigned volume: " << pm.assigned_volume << " GB\n"
            << "admitted queries: " << pm.admitted_queries << "/"
            << pm.total_queries << " (throughput " << pm.throughput << ")\n"
            << "replicas placed: " << pm.replicas_placed << "\n"
            << "resource utilization: " << pm.utilization << "\n";
}

int cmd_scenarios() {
  for (const Scenario& s : builtin_scenarios()) {
    std::cout << s.name << "\n    " << s.description << "\n";
  }
  return 0;
}

int cmd_diff(const Args& args) {
  const Instance inst = load_instance(args);
  const ReplicaPlan before = load_plan(inst, args);
  const std::string path = args.get("plan2", "");
  if (path.empty()) throw std::runtime_error("--plan2 is required");
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open plan file: " + path);
  const ReplicaPlan after = read_plan(inst, is);
  const PlanDiff d = diff_plans(before, after);
  print_diff(std::cout, d, inst);
  return 0;
}

int cmd_generate(const Args& args) {
  WorkloadConfig cfg;
  if (args.has("scenario")) {
    cfg = find_scenario(args.get("scenario", "paper-default")).config;
  }
  if (args.has("config")) {
    std::ifstream is(args.get("config", ""));
    if (!is) throw std::runtime_error("cannot open config file");
    cfg = read_workload_config(is);
  }
  if (args.has("size")) {
    cfg.network_size = static_cast<std::size_t>(args.get_int("size", 32));
  }
  if (args.has("queries")) {
    cfg.min_queries = cfg.max_queries =
        static_cast<std::size_t>(args.get_int("queries", 60));
  }
  if (args.has("f")) {
    cfg.max_datasets_per_query =
        static_cast<std::size_t>(args.get_int("f", 5));
  }
  if (args.has("k")) {
    cfg.max_replicas = static_cast<std::size_t>(args.get_int("k", 3));
  }
  const Instance inst = generate_instance(cfg, args.get_seed("seed", 1));
  const std::string out = args.get("out", "");
  if (out.empty()) throw std::runtime_error("--out is required");
  std::ofstream os(out);
  write_instance(os, inst);
  std::cout << "wrote " << out << ": " << inst.sites().size() << " sites, "
            << inst.datasets().size() << " datasets, "
            << inst.queries().size() << " queries, K=" << inst.max_replicas()
            << "\n";
  return 0;
}

int cmd_solve(const Args& args) {
  const Instance inst = load_instance(args);
  const std::string algo = args.get("algorithm", "appro");
  ReplicaPlan plan(inst);
  if (algo == "appro") {
    const ApproResult r = inst.queries().size() > 0 ? appro_g(inst)
                                                    : ApproResult{
                                                          ReplicaPlan(inst),
                                                          DualState(inst),
                                                          0.0,
                                                          {},
                                                          0,
                                                          0};
    plan = r.plan;
    std::cout << "dual upper bound: " << r.dual_objective << " GB\n";
  } else if (algo == "greedy") {
    plan = greedy_g(inst).plan;
  } else if (algo == "graph") {
    plan = graph_g(inst).plan;
  } else if (algo == "popularity") {
    plan = popularity_g(inst).plan;
  } else if (algo == "random") {
    plan = random_baseline(inst, args.get_seed("seed", 1)).plan;
  } else if (algo == "centrality") {
    plan = centrality_g(inst).plan;
  } else if (algo == "lp-rounding") {
    plan = lp_rounding(inst).plan;
  } else if (algo == "exact") {
    const auto res = solve_exact(inst);
    if (!res) throw std::runtime_error("exact solver exhausted its budget");
    std::cout << (res->proven_optimal ? "proven optimal" : "best incumbent")
              << ", LP bound " << res->lp_upper_bound << " GB, "
              << res->nodes_explored << " B&B nodes\n";
    plan = res->plan;
  } else {
    throw std::runtime_error("unknown algorithm: " + algo);
  }
  if (args.get_bool("improve", false)) {
    const LocalSearchResult ls = improve_plan(plan);
    std::cout << "local search: +" << ls.queries_admitted << " queries, "
              << ls.relocations << " relocations\n";
    plan = ls.plan;
  }
  print_metrics(plan);
  const ValidationResult vr = validate(plan);
  std::cout << "valid: " << (vr.ok ? "yes" : "NO") << "\n";
  const std::string out = args.get("out", "");
  if (!out.empty()) {
    std::ofstream os(out);
    write_plan(os, plan);
    std::cout << "plan written to " << out << "\n";
  }
  return vr.ok ? 0 : 1;
}

int cmd_validate(const Args& args) {
  const Instance inst = load_instance(args);
  const ReplicaPlan plan = load_plan(inst, args);
  const ValidationResult vr = validate(plan);
  if (vr.ok) {
    std::cout << "plan satisfies all constraints\n";
    print_metrics(plan);
    return 0;
  }
  std::cout << vr.violations.size() << " violation(s):\n";
  for (const std::string& v : vr.violations) std::cout << "  " << v << "\n";
  return 1;
}

int cmd_simulate(const Args& args) {
  const Instance inst = load_instance(args);
  const ReplicaPlan plan = load_plan(inst, args);
  SimConfig cfg;
  cfg.arrival_rate = args.get_double("arrival-rate", 2.0);
  cfg.capacity_factor = args.get_double("capacity-factor", 1.0);
  cfg.seed = args.get_seed("seed", 0xd15c);
  const std::string disc = args.get("discipline", "fifo");
  if (disc == "ps") {
    cfg.discipline = SimConfig::Discipline::kProcessorSharing;
  } else if (disc != "fifo") {
    throw std::runtime_error("unknown discipline: " + disc);
  }
  const std::string tm = args.get("transfers", "delay");
  if (tm == "flow") {
    cfg.transfers = SimConfig::TransferModel::kMaxMinFair;
  } else if (tm != "delay") {
    throw std::runtime_error("unknown transfer model: " + tm);
  }
  const SimReport rep = simulate(plan, cfg);
  std::cout << "served: " << rep.served_queries << "/" << rep.total_queries
            << ", admitted (deadline met): " << rep.admitted_queries
            << " (throughput " << rep.throughput << ")\n"
            << "admitted volume: " << rep.admitted_volume << " GB\n"
            << "response mean/p95/max: " << rep.mean_response << " / "
            << rep.p95_response << " / " << rep.max_response << " s\n"
            << "makespan: " << rep.makespan << " s\n";
  return 0;
}

int cmd_analyze(const Args& args) {
  const Instance inst = load_instance(args);
  const ReplicaPlan plan = load_plan(inst, args);
  AvailabilityConfig acfg;
  acfg.site_failure_prob = args.get_double("failure-prob", 0.05);
  acfg.trials = static_cast<std::size_t>(args.get_int("trials", 10000));
  acfg.seed = args.get_seed("seed", 0xa1b2);
  const AvailabilityReport avail = analyze_availability(plan, acfg);
  std::cout << "availability @ p=" << acfg.site_failure_prob << ": mean "
            << avail.mean_survival << ", min " << avail.min_survival
            << ", expected surviving volume "
            << avail.expected_surviving_volume << " GB\n";
  const double growth = args.get_double("growth", 0.1);
  const ConsistencyReport cons =
      analyze_consistency(plan, GrowthModel::proportional(inst, growth));
  std::cout << "consistency @ " << growth * 100 << "%/h growth: "
            << cons.total_traffic_gb_per_hour << " GB/h update traffic, "
            << "cost " << cons.total_transfer_cost_per_hour
            << "/h, mean staleness " << cons.mean_staleness_gb << " GB, "
            << "net benefit " << cons.net_benefit << "\n";
  return 0;
}

FaultTrace load_faults(const Instance& inst, const Args& args) {
  const std::string path = args.get("faults", "");
  if (path.empty()) throw std::runtime_error("--faults is required");
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open fault trace file: " + path);
  return read_fault_trace(is, inst);
}

/// Register the live-telemetry series the online serve path samples: the
/// online counters/gauges, the solver dual-price board, and the in-use GHz
/// of the first sites (capped so a 1000-site run doesn't make every sample
/// copy the board 1000 times).
void add_online_series(obs::TimeSeriesSampler& sampler,
                       OnlineStatusBoard& board, std::size_t site_count) {
  sampler.add_counter_series("edgerep_online_arrivals_total");
  sampler.add_counter_series("edgerep_online_queries_admitted_total");
  sampler.add_counter_series("edgerep_online_queries_rejected_total");
  sampler.add_counter_series("edgerep_online_queries_failed_by_fault_total");
  sampler.add_counter_series("edgerep_online_demands_relocated_total");
  sampler.add_counter_series("edgerep_online_fault_events_total");
  sampler.add_series("online_sim_clock_seconds",
                     [&board] { return board.sim_clock(); });
  sampler.add_series("online_inflight_demands", [&board] {
    return static_cast<double>(board.inflight());
  });
  sampler.add_series("online_utilization",
                     [&board] { return board.utilization(); });
  // Typed-kernel internals published by the status tick (sim/online_typed):
  // queue depth and high-water, flight-slab occupancy and generation churn,
  // immediates-ring burst depth.
  sampler.add_gauge_series("edgerep_kernel_pending_events");
  sampler.add_gauge_series("edgerep_kernel_peak_pending_events");
  sampler.add_gauge_series("edgerep_kernel_live_flights");
  sampler.add_gauge_series("edgerep_kernel_peak_flights");
  sampler.add_gauge_series("edgerep_kernel_flight_destroys");
  sampler.add_gauge_series("edgerep_kernel_ring_high_water");
  // Flow-backend gauges (all zero on --network=table runs).
  sampler.add_gauge_series("edgerep_online_active_flows");
  sampler.add_gauge_series("edgerep_online_flow_rate_changes");
  sampler.add_gauge_series("edgerep_online_flow_late_transfers");
  sampler.add_series("dual_theta_max",
                     [] { return obs::dual_prices().max_theta(); });
  sampler.add_series("dual_theta_touched_sites", [] {
    return static_cast<double>(obs::dual_prices().touched_sites());
  });
  constexpr std::size_t kMaxPerSiteSeries = 16;
  const std::size_t tracked = std::min(site_count, kMaxPerSiteSeries);
  for (std::size_t i = 0; i < tracked; ++i) {
    sampler.add_series("site" + std::to_string(i) + "_in_use_ghz",
                       [&board, i] {
                         const OnlineStatus s = board.read();
                         return i < s.site_in_use.size() ? s.site_in_use[i]
                                                         : 0.0;
                       });
  }
}

/// Wire the four read endpoints (+ the shutdown latch) onto the server.
void add_online_routes(obs::HttpServer& server, OnlineStatusBoard& board,
                       obs::TimeSeriesSampler& sampler,
                       std::atomic<bool>& quit) {
  server.route("/metrics", [](const obs::HttpRequest&) {
    std::ostringstream os;
    obs::metrics().write_prometheus(os);
    return obs::HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                             os.str()};
  });
  server.route("/healthz", [&server](const obs::HttpRequest&) {
    std::ostringstream os;
    os << "{\"ok\": true, \"requests_served\": " << server.requests_served()
       << "}\n";
    return obs::HttpResponse{200, "application/json", os.str()};
  });
  server.route("/status", [&board](const obs::HttpRequest&) {
    std::ostringstream os;
    board.write_json(os);
    return obs::HttpResponse{200, "application/json", os.str()};
  });
  server.route("/timeseries", [&sampler](const obs::HttpRequest& req) {
    std::ostringstream os;
    if (req.query.find("format=csv") != std::string::npos) {
      sampler.write_csv(os);
      return obs::HttpResponse{200, "text/csv", os.str()};
    }
    sampler.write_json(os);
    return obs::HttpResponse{200, "application/json", os.str()};
  });
  server.route("/alerts", [](const obs::HttpRequest&) {
    std::ostringstream os;
    obs::watchdog().write_json(os);
    return obs::HttpResponse{200, "application/json", os.str()};
  });
  server.route("/quitquitquit", [&quit](const obs::HttpRequest&) {
    quit.store(true, std::memory_order_release);
    return obs::HttpResponse{200, "text/plain; charset=utf-8",
                             "shutting down\n"};
  });
}

int cmd_online(const Args& args) {
  // `--gen-sites N --gen-queries M` sidesteps the instance file and runs on
  // a deterministic stream-workload instance — the large-N smoke path (an
  // on-disk 1M-query instance would be hundreds of MB).
  Instance inst = [&args] {
    if (!args.has("gen-sites") && !args.has("gen-queries")) {
      return load_instance(args);
    }
    StreamWorkloadConfig wc;
    wc.sites = static_cast<std::size_t>(args.get_int("gen-sites", 1024));
    wc.queries =
        static_cast<std::size_t>(args.get_int("gen-queries", 100'000));
    wc.max_demands =
        static_cast<std::size_t>(args.get_int("gen-max-demands", 1));
    wc.zipf_exponent = args.get_double("gen-zipf", 0.0);
    wc.zipf_drift_period =
        static_cast<std::size_t>(args.get_int("gen-zipf-drift", 0));
    return stream_instance(wc, args.get_seed("gen-seed", 0x5eed));
  }();
  OnlineConfig cfg;
  cfg.arrival_rate = args.get_double("arrival-rate", 2.0);
  cfg.wave_amplitude = args.get_double("wave-amplitude", 0.0);
  cfg.wave_period = args.get_double("wave-period", 0.0);
  cfg.seed = args.get_seed("seed", 0x0a11);
  cfg.reactive_replicas = !args.get_bool("no-reactive", false);
  cfg.repair_on_failure = !args.get_bool("no-repair", false);
  const std::string kernel = args.get("kernel", "typed");
  if (kernel == "closure") {
    cfg.kernel = OnlineKernel::kClosure;
  } else if (kernel != "typed") {
    throw std::runtime_error("--kernel must be typed or closure");
  }
  const std::string network = args.get("network", "table");
  if (network == "flow") {
    cfg.network = OnlineNetwork::kFlow;
  } else if (network != "table") {
    throw std::runtime_error("--network must be table or flow");
  }
  cfg.oversubscription = args.get_double("oversub", 1.0);
  if (args.has("faults")) cfg.faults = load_faults(inst, args);
  // `--gen-faults N` draws N site crashes + N capacity losses (with repair)
  // over the arrival horizon in-process — how the large-N cross-kernel
  // smoke reaches the fault, shed, and relocation paths on a generated
  // instance that has no trace file.
  if (args.has("gen-faults")) {
    if (args.has("faults")) {
      throw std::runtime_error("--gen-faults conflicts with --faults");
    }
    const auto n = static_cast<std::size_t>(args.get_int("gen-faults", 4));
    FaultScenarioConfig fc;
    fc.horizon = 0.8 * static_cast<double>(inst.queries().size()) /
                 std::max(cfg.arrival_rate, 1e-9);
    fc.site_crashes = n;
    fc.capacity_losses = n;
    fc.mean_repair_time = fc.horizon / 8.0;
    fc.cloudlets_only = false;
    cfg.faults =
        generate_fault_trace(inst, fc, args.get_seed("gen-fault-seed", 0xfa11));
  }

  const bool serve = args.has("serve");
  const std::string ts_out = args.get("timeseries-out", "");
  const bool sampling = serve || !ts_out.empty();
  const auto sample_interval =
      static_cast<std::uint64_t>(args.get_int("sample-interval", 100));
  const double linger = args.get_double("serve-linger", 30.0);

  OnlineStatusBoard board;
  obs::TimeSeriesSampler sampler;
  obs::HttpServer server;
  std::atomic<bool> quit{false};
  if (sampling) {
    // Live sampling needs the counters/gauges flowing; the run itself is
    // bit-identical either way (pinned by obs_equivalence_test).
    obs::set_metrics_enabled(true);
    cfg.status_board = &board;
    add_online_series(sampler, board, inst.sites().size());
  }
  if (serve) {
    add_online_routes(server, board, sampler, quit);
    server.start(static_cast<std::uint16_t>(args.get_int("serve", 0)));
    std::cout << "serving telemetry on http://127.0.0.1:" << server.port()
              << " (/metrics /healthz /status /timeseries /alerts)\n";
  }
  if (sampling) sampler.start(sample_interval);

  OnlineResult res;
  if (args.has("plan")) {
    const ReplicaPlan seed_plan = load_plan(inst, args);
    res = run_online(inst, cfg, &seed_plan);
  } else {
    res = run_online(inst, cfg);
  }
  std::cout << "online admission: " << res.admitted_queries << "/"
            << inst.queries().size() << " (throughput " << res.throughput
            << ")\nadmitted volume: " << res.admitted_volume
            << " GB\npeak utilization: " << res.peak_utilization << "\n";
  std::cout << "kernel: "
            << (res.kernel_stats.kernel == OnlineKernel::kTyped ? "typed"
                                                                : "closure")
            << ", events: " << res.kernel_stats.events_processed
            << ", peak pending: " << res.kernel_stats.peak_pending_events
            << ", peak flights: " << res.kernel_stats.peak_flights << "\n";
  std::cout << "result hash: " << std::hex << std::setw(16)
            << std::setfill('0') << online_result_hash(res) << std::dec
            << std::setfill(' ') << "\n";
  if (!cfg.faults.empty()) {
    std::cout << "faults applied: " << res.fault_events_applied
              << ", queries failed by fault: " << res.queries_failed_by_fault
              << ", demands relocated: " << res.demands_relocated
              << ", replicas lost: " << res.replicas_lost_to_faults << "\n";
  }
  std::cout << "deadline SLO: " << res.slo.deadline_hits << "/"
            << res.slo.admitted_queries << " hits (ratio "
            << res.slo.hit_ratio << "), slack p50/p95/p99: "
            << res.slo.p50_slack << " / " << res.slo.p95_slack << " / "
            << res.slo.p99_slack << " s\n";
  if (cfg.network == OnlineNetwork::kFlow) {
    const FlowGapStats& g = res.flow_gap;
    std::cout << "SLO gap: flows " << g.flows_routed << ", rate changes "
              << g.rate_changes << ", predicted hits " << g.predicted_hits
              << "/" << g.queries_compared << ", actual hits "
              << g.actual_hits << ", gap breaches " << g.gap_breaches
              << ", stretch max/mean " << g.max_stretch << " / "
              << g.mean_stretch << " s\n";
  }
  if (obs::watchdog_enabled()) {
    const obs::WatchdogStats& w = res.watchdog;
    std::cout << "alerts: " << w.opened << " opened, " << w.resolved
              << " resolved, " << w.open_at_end << " still open, worst "
              << obs::to_string(
                     static_cast<obs::AlertSeverity>(w.worst_severity))
              << " (hotspot " << w.opened_by_kind[0] << ", overload "
              << w.opened_by_kind[1] << ", rate " << w.opened_by_kind[2]
              << ", breach " << w.opened_by_kind[3] << ", stretch "
              << w.opened_by_kind[4] << ")\n";
  }

  if (serve && linger > 0.0) {
    // Keep the endpoints up so scrapers can read the final state; a GET on
    // /quitquitquit (or the linger budget) ends the wait.
    std::cout << "lingering " << linger
              << " s for scrapers (GET /quitquitquit to exit now)\n";
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(linger);
    while (!quit.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  if (sampling) {
    sampler.stop();
    if (!ts_out.empty()) {
      std::ofstream os(ts_out);
      if (!os) throw std::runtime_error("cannot open output file: " + ts_out);
      const auto dot = ts_out.rfind('.');
      if (dot != std::string::npos && ts_out.substr(dot) == ".csv") {
        sampler.write_csv(os);
      } else {
        sampler.write_json(os);
      }
      std::cout << "time series written to " << ts_out << " ("
                << sampler.total_samples() << " samples)\n";
    }
  }
  server.stop();
  return 0;
}

int cmd_stream(const Args& args) {
  const Instance inst = load_instance(args);
  StreamOptions opts;
  opts.shards = static_cast<std::size_t>(args.get_int("shards", 1));
  opts.epoch_length = args.get_double("epoch-ms", 50.0) / 1000.0;
  opts.max_requeues =
      static_cast<std::size_t>(args.get_int("max-requeues", 2));
  opts.parallel = !args.get_bool("serial", false);
  if (args.get_bool("scalar-pricing", false)) {
    opts.pricing = ApproOptions::Pricing::kScalar;
  }
  const std::string boundary = args.get("boundary", "none");
  if (boundary == "dc") {
    opts.boundary = BoundaryPolicy::kDataCenters;
  } else if (boundary != "none") {
    throw std::runtime_error("unknown boundary policy: " + boundary);
  }
  const double rate = args.get_double("arrival-rate", 100.0);
  const std::uint64_t seed = args.get_seed("seed", 0x57e4);
  const ArrivalOrder order = args.get_bool("id-order", false)
                                 ? ArrivalOrder::kQueryId
                                 : ArrivalOrder::kShuffled;
  const std::vector<Arrival> stream = generate_arrival_stream(
      inst, rate, seed, order, args.get_double("wave-amplitude", 0.0),
      args.get_double("wave-period", 0.0));

  const auto t0 = std::chrono::steady_clock::now();
  const StreamResult res = run_stream(inst, stream, opts);
  const auto t1 = std::chrono::steady_clock::now();
  const double run_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double admitted_per_sec =
      run_ms > 0.0
          ? static_cast<double>(res.queries_admitted) / (run_ms / 1000.0)
          : 0.0;

  std::cout << "streamed " << stream.size() << " arrivals through "
            << opts.shards << " shard(s) in " << res.epochs << " epochs ("
            << run_ms << " ms, "
            << static_cast<long long>(admitted_per_sec)
            << " admitted/s)\n"
            << "admitted: " << res.queries_admitted << ", rejected: "
            << res.queries_rejected << ", requeues: " << res.requeues
            << ", reconcile conflicts: " << res.conflicts << "\n";
  for (const ShardStats& st : res.shard_stats) {
    std::cout << "  shard " << (&st - res.shard_stats.data()) << ": routed "
              << st.routed << ", admitted " << st.admitted << ", infeasible "
              << st.infeasible << ", conflicts " << st.conflicts << "\n";
  }
  print_metrics(res.plan);
  if (obs::watchdog_enabled()) {
    const obs::WatchdogStats w = obs::watchdog().stats();
    std::cout << "alerts: " << w.opened << " opened, " << w.resolved
              << " resolved, " << w.open_at_end << " still open, worst "
              << obs::to_string(
                     static_cast<obs::AlertSeverity>(w.worst_severity))
              << " (hotspot " << w.opened_by_kind[0] << ", overload "
              << w.opened_by_kind[1] << ", rate " << w.opened_by_kind[2]
              << ", breach " << w.opened_by_kind[3] << ", stretch "
              << w.opened_by_kind[4] << ")\n";
  }
  const ValidationResult vr = validate(res.plan);
  std::cout << "valid: " << (vr.ok ? "yes" : "NO") << "\n";
  for (const std::string& v : vr.violations) std::cout << "  " << v << "\n";

  const std::string json_out = args.get("json-out", "");
  if (!json_out.empty()) {
    std::ofstream os(json_out);
    if (!os) throw std::runtime_error("cannot open output file: " + json_out);
    os << "{\n"
       << "  \"shards\": " << opts.shards << ",\n"
       << "  \"epochs\": " << res.epochs << ",\n"
       << "  \"arrivals\": " << stream.size() << ",\n"
       << "  \"admitted\": " << res.queries_admitted << ",\n"
       << "  \"rejected\": " << res.queries_rejected << ",\n"
       << "  \"requeues\": " << res.requeues << ",\n"
       << "  \"conflicts\": " << res.conflicts << ",\n"
       << "  \"ledger_reserves\": " << res.ledger_reserves << ",\n"
       << "  \"ledger_releases\": " << res.ledger_releases << ",\n"
       << "  \"admitted_volume\": " << res.metrics.admitted_volume << ",\n"
       << "  \"total_replicas\": " << res.plan.total_replicas() << ",\n"
       << "  \"run_ms\": " << run_ms << ",\n"
       << "  \"valid\": " << (vr.ok ? "true" : "false") << "\n"
       << "}\n";
    std::cout << "summary written to " << json_out << "\n";
  }
  const std::string out = args.get("out", "");
  if (!out.empty()) {
    std::ofstream os(out);
    write_plan(os, res.plan);
    std::cout << "plan written to " << out << "\n";
  }
  return vr.ok ? 0 : 1;
}

int cmd_genfaults(const Args& args) {
  const Instance inst = load_instance(args);
  FaultScenarioConfig cfg;
  if (args.has("config")) {
    std::ifstream is(args.get("config", ""));
    if (!is) throw std::runtime_error("cannot open fault config file");
    cfg = read_fault_config(is);
  }
  if (args.has("crashes")) {
    cfg.site_crashes = static_cast<std::size_t>(args.get_int("crashes", 1));
  }
  if (args.has("links")) {
    cfg.link_failures = static_cast<std::size_t>(args.get_int("links", 0));
  }
  if (args.has("degrade")) {
    cfg.capacity_losses = static_cast<std::size_t>(args.get_int("degrade", 0));
  }
  if (args.has("horizon")) cfg.horizon = args.get_double("horizon", 50.0);
  if (args.has("mttr")) cfg.mean_repair_time = args.get_double("mttr", 10.0);
  const FaultTrace trace =
      generate_fault_trace(inst, cfg, args.get_seed("seed", 0xfa17));
  const std::string out = args.get("out", "");
  if (out.empty()) throw std::runtime_error("--out is required");
  std::ofstream os(out);
  write_fault_trace(os, trace);
  std::cout << "wrote " << out << ": " << trace.size() << " events ("
            << cfg.site_crashes << " crashes, " << cfg.link_failures
            << " link failures, " << cfg.capacity_losses
            << " degradations)\n";
  return 0;
}

int cmd_repair(const Args& args) {
  const Instance inst = load_instance(args);
  const FaultTrace trace = load_faults(inst, args);
  ApproResult solved = appro_g(inst);
  const PlanMetrics before = evaluate(solved.plan);
  std::cout << "pre-fault plan: " << before.admitted_queries << "/"
            << before.total_queries << " admitted, "
            << before.admitted_volume << " GB\n";
  FaultState faults(inst);
  faults.apply_until(trace, args.get_double("until",
                                            std::numeric_limits<double>::max()));
  std::cout << "faults applied: " << faults.events_applied() << " events, "
            << faults.sites_down() << " sites down, " << faults.links_down()
            << " links down\n";
  const RepairEngine engine(inst);
  RepairOptions opts;
  opts.full_recompute = args.get_bool("full", false);
  const RepairStats st = engine.repair(solved.plan, solved.duals, faults, opts);
  const PlanMetrics after = evaluate(solved.plan);
  std::cout << (opts.full_recompute ? "full recompute" : "incremental repair")
            << ": evicted " << st.queries_evicted << " (" << st.evicted_volume
            << " GB), re-admitted " << st.queries_readmitted << " ("
            << st.readmitted_volume << " GB), lost " << st.queries_lost
            << "\nreplicas lost/placed: " << st.replicas_lost << "/"
            << st.replicas_placed << "\npost-repair plan: "
            << after.admitted_queries << "/" << after.total_queries
            << " admitted, " << after.admitted_volume << " GB\n";
  const ValidationResult vr = validate_under_faults(solved.plan, faults);
  std::cout << "valid under faults: " << (vr.ok ? "yes" : "NO") << "\n";
  for (const std::string& v : vr.violations) std::cout << "  " << v << "\n";
  const std::string out = args.get("out", "");
  if (!out.empty()) {
    std::ofstream os(out);
    write_plan(os, solved.plan);
    std::cout << "repaired plan written to " << out << "\n";
  }
  return vr.ok ? 0 : 1;
}

int cmd_postmortem(const Args& args) {
  const std::string path = args.get("journal", "");
  if (path.empty()) throw std::runtime_error("--journal is required");
  obs::Journal journal;
  std::string err;
  if (!obs::read_journal_file(path, &journal, &err)) {
    throw std::runtime_error("cannot read journal " + path + ": " + err);
  }
  const std::string diff_path = args.get("diff", "");
  if (!diff_path.empty()) {
    obs::Journal other;
    if (!obs::read_journal_file(diff_path, &other, &err)) {
      throw std::runtime_error("cannot read journal " + diff_path + ": " +
                               err);
    }
    const obs::JournalDiff d = obs::diff_journals(journal, other);
    obs::write_diff_text(std::cout, d);
    return d.identical ? 0 : 1;
  }
  const obs::PostmortemReport report = obs::analyze_journal(journal);
  const auto top = static_cast<std::size_t>(args.get_int("top", 10));
  if (args.get_bool("alerts", false)) {
    obs::write_alerts_text(std::cout, report);
    return 0;
  }
  obs::write_report_text(std::cout, report, top);
  const std::string json_out = args.get("json-out", "");
  if (!json_out.empty()) {
    std::ofstream os(json_out);
    if (!os) throw std::runtime_error("cannot open output file: " + json_out);
    obs::write_report_json(os, report, top);
    std::cout << "postmortem written to " << json_out << "\n";
  }
  return 0;
}

/// True when `path` asks for Prometheus text exposition (else JSON).
bool wants_prometheus(const std::string& path) {
  const auto dot = path.rfind('.');
  if (dot == std::string::npos) return false;
  const std::string ext = path.substr(dot);
  return ext == ".prom" || ext == ".txt";
}

/// Parse the global --metrics-out/--trace-out/--audit-out/--record flags and
/// switch the matching obs facets on *before* the command runs.  Returns a
/// closure that writes the requested files once the command has finished.
std::function<void()> setup_observability(const Args& args) {
  const std::string metrics_out = args.get("metrics-out", "");
  const std::string trace_out = args.get("trace-out", "");
  const std::string audit_out = args.get("audit-out", "");
  const std::string record_out = args.get("record", "");
  if (!metrics_out.empty()) obs::set_metrics_enabled(true);
  if (!trace_out.empty()) obs::set_trace_enabled(true);
  if (!audit_out.empty()) obs::set_audit_enabled(true);
  if (args.get_bool("watchdog", false)) {
    obs::set_watchdog_enabled(true);
    obs::watchdog().begin_run();
  }
  if (!record_out.empty()) {
    const std::string mode = args.get("record-mode", "full");
    if (mode == "ring") {
      const auto cap = static_cast<std::size_t>(args.get_int(
          "record-ring", static_cast<int>(obs::kDefaultRingCapacity)));
      obs::recorder().configure(obs::RecorderMode::kRing, cap);
    } else if (mode == "full") {
      obs::recorder().configure(obs::RecorderMode::kFull);
    } else {
      throw std::runtime_error("--record-mode must be full or ring");
    }
    obs::set_recorder_enabled(true);
  }
  return [metrics_out, trace_out, audit_out, record_out] {
    auto open = [](const std::string& path) {
      std::ofstream os(path);
      if (!os) throw std::runtime_error("cannot open output file: " + path);
      return os;
    };
    if (!metrics_out.empty()) {
      std::ofstream os = open(metrics_out);
      if (wants_prometheus(metrics_out)) {
        obs::metrics().write_prometheus(os);
      } else {
        obs::metrics().write_json(os);
      }
      std::cout << "metrics written to " << metrics_out << "\n";
    }
    if (!trace_out.empty()) {
      std::ofstream os = open(trace_out);
      obs::tracer().write_chrome_json(os);
      std::cout << "trace written to " << trace_out << "\n";
    }
    if (!audit_out.empty()) {
      std::ofstream os = open(audit_out);
      obs::audit_log().write_json(os);
      std::cout << "audit log written to " << audit_out << "\n";
    }
    if (!record_out.empty()) {
      if (!obs::recorder().write_file(record_out)) {
        throw std::runtime_error("cannot write journal file: " + record_out);
      }
      std::cout << "journal written to " << record_out << " ("
                << obs::recorder().size() << " records, "
                << obs::recorder().dropped() << " dropped)\n";
    }
  };
}

int run_command(const std::string& cmd, const Args& args) {
  if (cmd == "generate") return cmd_generate(args);
  if (cmd == "solve") return cmd_solve(args);
  if (cmd == "validate") return cmd_validate(args);
  if (cmd == "simulate") return cmd_simulate(args);
  if (cmd == "analyze") return cmd_analyze(args);
  if (cmd == "online") return cmd_online(args);
  if (cmd == "stream") return cmd_stream(args);
  if (cmd == "genfaults") return cmd_genfaults(args);
  if (cmd == "repair") return cmd_repair(args);
  if (cmd == "diff") return cmd_diff(args);
  if (cmd == "postmortem") return cmd_postmortem(args);
  if (cmd == "scenarios") return cmd_scenarios();
  if (cmd == "help" || cmd == "--help") {
    usage();
    return 0;
  }
  std::cerr << "unknown command: " << cmd << "\n";
  return usage();
}

int dispatch(int argc, char** argv) {
  set_log_level_from_env();
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args(argc - 1, argv + 1);
  const std::function<void()> flush_obs = setup_observability(args);
  const int rc = run_command(cmd, args);
  flush_obs();  // skipped when the command throws: no partial files
  return rc;
}

}  // namespace
}  // namespace edgerep

int main(int argc, char** argv) {
  try {
    return edgerep::dispatch(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
