#!/usr/bin/env python3
"""Compare a freshly generated bench JSON against its committed baseline.

Usage:
    check_bench_regression.py BASELINE.json FRESH.json [--threshold 1.25]

Both files carry the schema emitted by tools/bench_json: a top-level
"cases" list whose entries mix identity fields (case, network_size, nodes,
queries, ...) with latency metrics.  Every metric named *_ns_per_query or
*_ms is lower-is-better; a case regresses when

    fresh_metric > baseline_metric * threshold

The default threshold tolerates 25% slowdown — wide enough for shared-runner
noise, tight enough to catch a real hot-path regression.  Metrics are
serialized with limited precision, so on tiny values a single rounding
quantum can exceed the ratio alone; a regression therefore also requires the
absolute delta to clear a per-unit floor (--min-delta-ms / --min-delta-ns).
Exit status 1 when any metric regresses, 0 otherwise.  Identity mismatches
(a case present in the baseline but missing from the fresh run) are also
failures: silently dropping a case would read as "no regression" when
nothing was measured.

Every case key must be an identity key, a metric (by suffix), or a listed
informational key (INFO_KEYS).  An unknown key is a hard error, not a
silent skip: a typo'd metric name ("run_msec") would otherwise never be
compared and the guard would pass vacuously.  When adding a new emitter to
tools/bench_json, extend INFO_KEYS for its derived outputs.
"""

import argparse
import json
import sys

METRIC_SUFFIXES = ("_ns_per_query", "_ms")

# What makes two cases "the same measurement": the workload shape.  Derived
# outputs (speedups, eviction counts, entry counts) are deliberately not
# identity — they may shift when the measured code changes.
IDENTITY_KEYS = ("case", "network_size", "queries", "nodes", "sites")

# Known informational keys: derived outputs and auxiliary counts that are
# neither identity nor guarded latency metrics.  Anything outside this list
# (and the identity/metric sets) fails hard — see the module docstring.
INFO_KEYS = frozenset({
    "admitted", "admitted_per_sec", "alerts_per_run", "candidates",
    "completions",
    "dense_entries", "events_per_sec", "evicted", "finalize_speedup",
    "flow_overhead_pct", "flows", "flows_routed", "gap_breaches",
    "kernel_speedup", "links", "memory_ratio", "overhead_pct",
    "peak_event_bytes", "peak_flights", "peak_pending_events",
    "rate_changes", "readmitted", "records_per_run",
    "refill_ns_per_change", "scalar_ns_per_candidate", "shards",
    "site_rows_entries", "speedup", "speedup_vs_1shard",
    "speedup_vs_closure", "vectorized_ns_per_candidate",
    "watchdog_overhead_pct",
})


def is_metric(key):
    return key.endswith(METRIC_SUFFIXES)


def check_known_keys(path, doc):
    """Hard-fail on any case key that is not identity, metric, or INFO."""
    unknown = sorted({
        key
        for case in doc["cases"]
        for key in case
        if key not in IDENTITY_KEYS and key not in INFO_KEYS
        and not is_metric(key)
    })
    if unknown:
        sys.exit(
            f"{path}: unknown case key(s) {unknown} — each key must be an "
            f"identity key {list(IDENTITY_KEYS)}, a metric ending in "
            f"{list(METRIC_SUFFIXES)}, or listed in INFO_KEYS "
            "(tools/check_bench_regression.py); a typo'd metric name would "
            "be silently skipped otherwise"
        )


def case_identity(case):
    return tuple((k, case[k]) for k in IDENTITY_KEYS if k in case)


def load_cases(path):
    with open(path) as f:
        doc = json.load(f)
    if "cases" not in doc or not doc["cases"]:
        sys.exit(f"{path}: no cases — not a bench_json output?")
    return doc


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=1.25)
    parser.add_argument("--min-delta-ms", type=float, default=0.05)
    parser.add_argument("--min-delta-ns", type=float, default=0.0)
    args = parser.parse_args()

    baseline = load_cases(args.baseline)
    fresh = load_cases(args.fresh)
    check_known_keys(args.baseline, baseline)
    check_known_keys(args.fresh, fresh)
    if baseline.get("benchmark") != fresh.get("benchmark"):
        sys.exit(
            f"benchmark mismatch: {baseline.get('benchmark')} vs "
            f"{fresh.get('benchmark')}"
        )

    fresh_by_id = {case_identity(c): c for c in fresh["cases"]}
    failures = []
    for base_case in baseline["cases"]:
        ident = case_identity(base_case)
        fresh_case = fresh_by_id.get(ident)
        if fresh_case is None:
            failures.append(f"case missing from fresh run: {dict(ident)}")
            continue
        for key, base_val in base_case.items():
            if not is_metric(key) or not isinstance(base_val, (int, float)):
                continue
            fresh_val = fresh_case.get(key)
            if fresh_val is None:
                failures.append(f"{dict(ident)}: metric {key} missing")
                continue
            floor = args.min_delta_ms if key.endswith("_ms") else args.min_delta_ns
            limit = max(base_val * args.threshold, base_val + floor)
            status = "OK" if fresh_val <= limit else "REGRESSION"
            print(
                f"{status:10s} {key:28s} base={base_val:<12g} "
                f"fresh={fresh_val:<12g} limit={limit:g}  {dict(ident)}"
            )
            if fresh_val > limit:
                failures.append(
                    f"{dict(ident)}: {key} {fresh_val:g} > "
                    f"{base_val:g} * {args.threshold:g}"
                )

    if failures:
        print(f"\n{len(failures)} regression(s) vs {args.baseline}:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"\nall metrics within {args.threshold}x of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
