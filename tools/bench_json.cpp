// Emits the committed perf-trajectory anchors; re-run after touching the
// admission hot path or the network substrate:
//
//   ./build/tools/bench_json [--reps=9] [--substrate-reps=5]
//                            [--out=BENCH_appro.json]
//                            [--substrate-out=BENCH_substrate.json]
//
// BENCH_appro.json: median ns/query of the admission engine for the special
// (S, one dataset per query) and general (G, multi-dataset) cases at three
// instance sizes, for both transaction mechanisms (savepoint vs the legacy
// copy baseline), plus the resulting speedups.
//
// BENCH_substrate.json: the site-rows DelayTable vs the dense all-pairs
// DelayMatrix on ~degree-8 graphs with 10% placement sites — precompute
// entry counts (|V|·n vs n²) and median Instance::finalize wall time per
// backend at 1k–4k nodes, plus the memory ratio and finalize speedup.
//
// BENCH_repair.json: median wall time of post-failure plan repair (crash of
// the most-loaded site) for the incremental primal-dual path vs the
// full-recompute oracle, at the same three instance sizes
// ([--repair-out=BENCH_repair.json] [--repair-reps=9]).
//
// BENCH_serve.json: telemetry serve-path overhead — the 100-site online
// case timed with everything off vs metrics + status board + 100 ms
// time-series sampler + live HTTP server, as median wall time of a
// 20-run batch ([--serve-out=BENCH_serve.json] [--serve-reps=9]).
//
// BENCH_online.json: the typed event kernel vs the closure oracle at 10k
// sites (run_ms, events/sec, cross-checked result hashes) plus the typed
// kernel's 1M- and 10M-query horizon sweeps with peak event-heap sizes —
// the O(inflight) memory evidence
// ([--online-out=BENCH_online.json] [--online-reps=3]).
//
// BENCH_obs.json: flight-recorder overhead — the 100-site online case
// timed with the recorder off vs a full-mode journal appended at every
// causal step, as median wall time of a 20-run batch, plus the per-run
// record count ([--obs-out=BENCH_obs.json] [--obs-reps=9]).
//
// BENCH_flows.json: the flow-level network backend — run_online with
// --network=flow vs the delay table at 1k and 10k sites (median wall time,
// events/sec, flows routed, re-fill count), plus steady-state re-fill churn
// of the FlowEngine alone at 64–4096 concurrent flows
// ([--flows-out=BENCH_flows.json] [--flows-reps=3]).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "edgerep/edgerep.h"

namespace edgerep {
namespace {

using clock_type = std::chrono::steady_clock;

double median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

double round2(double x) {
  return static_cast<double>(static_cast<long long>(x * 100.0)) / 100.0;
}

struct CaseSpec {
  const char* name;        // "S" or "G"
  std::size_t network;
  std::size_t queries;
  std::size_t f_max;
};

double median_ns_per_query(const Instance& inst, const ApproOptions& opts,
                           std::size_t queries, int reps) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = clock_type::now();
    const ApproResult res = appro_g(inst, opts);
    const auto t1 = clock_type::now();
    // Keep the result alive past the timer so the run is not elided.
    if (res.metrics.total_queries != queries) {
      throw std::runtime_error("bench_json: unexpected query count");
    }
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count();
    samples.push_back(ns / static_cast<double>(queries));
  }
  return median(std::move(samples));
}

int emit_appro(const std::string& out_path, int reps) {
  const std::vector<CaseSpec> cases = {
      {"S", 32, 100, 1},  {"S", 64, 250, 1},  {"S", 100, 500, 1},
      {"G", 32, 100, 5},  {"G", 64, 250, 5},  {"G", 100, 500, 5},
  };

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_json: cannot open " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"benchmark\": \"appro_admission\",\n"
      << "  \"metric\": \"median_ns_per_query\",\n"
      << "  \"atomic_queries\": true,\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"cases\": [\n";

  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseSpec& c = cases[i];
    WorkloadConfig cfg;
    cfg.network_size = c.network;
    cfg.min_queries = c.queries;
    cfg.max_queries = c.queries;
    cfg.min_datasets_per_query = 1;
    cfg.max_datasets_per_query = c.f_max;
    const Instance inst = generate_instance(cfg, /*seed=*/42);

    ApproOptions sp_opts;
    sp_opts.txn = ApproOptions::Txn::kSavepoint;
    ApproOptions copy_opts;
    copy_opts.txn = ApproOptions::Txn::kCopy;

    const double sp_ns = median_ns_per_query(inst, sp_opts, c.queries, reps);
    const double copy_ns =
        median_ns_per_query(inst, copy_opts, c.queries, reps);
    const double speedup = copy_ns / sp_ns;

    out << "    {\"case\": \"" << c.name << "\", \"network_size\": "
        << c.network << ", \"queries\": " << c.queries
        << ", \"savepoint_ns_per_query\": " << static_cast<long long>(sp_ns)
        << ", \"copy_ns_per_query\": " << static_cast<long long>(copy_ns)
        << ", \"speedup\": " << round2(speedup) << "}"
        << (i + 1 < cases.size() ? "," : "") << "\n";

    std::cerr << c.name << " " << c.network << "x" << c.queries
              << ": savepoint " << static_cast<long long>(sp_ns)
              << " ns/query, copy " << static_cast<long long>(copy_ns)
              << " ns/query, speedup " << speedup << "x\n";
  }

  // Observability overhead on the largest G case: the same workload timed
  // with every obs facet off and again with metrics+trace+audit recording,
  // plus a snapshot of the engine counters accumulated by the enabled run.
  {
    const CaseSpec& c = cases.back();
    WorkloadConfig cfg;
    cfg.network_size = c.network;
    cfg.min_queries = c.queries;
    cfg.max_queries = c.queries;
    cfg.min_datasets_per_query = 1;
    cfg.max_datasets_per_query = c.f_max;
    const Instance inst = generate_instance(cfg, /*seed=*/42);

    obs::set_all_enabled(false);
    const double off_ns = median_ns_per_query(inst, {}, c.queries, reps);
    obs::set_all_enabled(true);
    obs::metrics().reset();
    obs::tracer().clear();
    obs::audit_log().clear();
    const double on_ns = median_ns_per_query(inst, {}, c.queries, reps);
    obs::set_all_enabled(false);

    out << "  ],\n"
        << "  \"obs_overhead\": {\"case\": \"" << c.name
        << "\", \"network_size\": " << c.network << ", \"queries\": "
        << c.queries << ", \"disabled_ns_per_query\": "
        << static_cast<long long>(off_ns) << ", \"enabled_ns_per_query\": "
        << static_cast<long long>(on_ns) << ", \"overhead_pct\": "
        << round2((on_ns / off_ns - 1.0) * 100.0) << "},\n"
        << "  \"counters\": ";
    obs::metrics().write_json(out);
    out << "\n}\n";
    obs::tracer().clear();
    obs::audit_log().clear();

    std::cerr << "obs overhead on " << c.name << " " << c.network << "x"
              << c.queries << ": off " << static_cast<long long>(off_ns)
              << " ns/query, on " << static_cast<long long>(on_ns)
              << " ns/query (" << (on_ns / off_ns - 1.0) * 100.0 << "%)\n";
  }
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}

// Unfinalized scale instance: ~degree-8 G(n, p) graph, every 10th node a
// placement site (the paper's V = CL ∪ DC is a small fraction of the
// network), one token dataset/query so finalize's cost is the delay
// precompute.
Instance substrate_instance(std::size_t n) {
  Rng rng(8);
  Graph g = gnp(n, 8.0 / static_cast<double>(n), Range{0.05, 1.0}, rng);
  Instance inst(std::move(g));
  for (std::size_t v = 0; v < n; v += 10) {
    inst.add_site(static_cast<NodeId>(v), 40.0, 0.1);
  }
  const DatasetId d = inst.add_dataset(4.0, 0);
  inst.add_query(0, 1.0, 100.0, {{d, 0.5}});
  return inst;
}

double median_finalize_ms(const Instance& proto, DelayBackend backend,
                          int reps) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Instance inst = proto;
    inst.set_delay_backend(backend);
    const auto t0 = clock_type::now();
    inst.finalize();
    const auto t1 = clock_type::now();
    if (!inst.finalized()) throw std::runtime_error("bench_json: finalize");
    samples.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return median(std::move(samples));
}

int emit_substrate(const std::string& out_path, int reps) {
  const std::vector<std::size_t> sizes = {1024, 2048, 4096};

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_json: cannot open " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"benchmark\": \"network_substrate\",\n"
      << "  \"topology\": \"gnp_avg_degree_8\",\n"
      << "  \"site_fraction\": 0.1,\n"
      << "  \"metric\": \"median_finalize_ms\",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"cases\": [\n";

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t n = sizes[i];
    const Instance proto = substrate_instance(n);
    const std::size_t sites = proto.sites().size();
    const auto dense_entries = static_cast<unsigned long long>(n) * n;
    const auto site_entries = static_cast<unsigned long long>(sites) * n;

    const double rows_ms =
        median_finalize_ms(proto, DelayBackend::kSiteRows, reps);
    const double dense_ms =
        median_finalize_ms(proto, DelayBackend::kDense, reps);

    out << "    {\"nodes\": " << n << ", \"sites\": " << sites
        << ", \"dense_entries\": " << dense_entries
        << ", \"site_rows_entries\": " << site_entries
        << ", \"memory_ratio\": "
        << round2(static_cast<double>(dense_entries) /
                  static_cast<double>(site_entries))
        << ", \"dense_finalize_ms\": " << round2(dense_ms)
        << ", \"site_rows_finalize_ms\": " << round2(rows_ms)
        << ", \"finalize_speedup\": " << round2(dense_ms / rows_ms) << "}"
        << (i + 1 < sizes.size() ? "," : "") << "\n";

    std::cerr << "substrate n=" << n << " sites=" << sites << ": site-rows "
              << rows_ms << " ms, dense " << dense_ms << " ms, speedup "
              << dense_ms / rows_ms << "x, memory ratio "
              << static_cast<double>(dense_entries) /
                     static_cast<double>(site_entries)
              << "x\n";
  }

  out << "  ]\n}\n";
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}

/// Median repair wall time (ms) over fresh copies of the solved state, plus
/// the stats of one representative run (every rep is deterministic, so the
/// stats are identical across reps).
double median_repair_ms(const ApproResult& solved, const RepairEngine& engine,
                        const FaultState& faults, const RepairOptions& opts,
                        int reps, RepairStats* stats_out) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    ReplicaPlan plan = solved.plan;
    DualState duals = solved.duals;
    const auto t0 = clock_type::now();
    const RepairStats st = engine.repair(plan, duals, faults, opts);
    const auto t1 = clock_type::now();
    if (!validate_under_faults(plan, faults).ok) {
      throw std::runtime_error("bench_json: repaired plan invalid");
    }
    *stats_out = st;
    samples.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return median(std::move(samples));
}

int emit_repair(const std::string& out_path, int reps) {
  const std::vector<CaseSpec> cases = {
      {"G", 32, 100, 5}, {"G", 64, 250, 5}, {"G", 100, 500, 5}};

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_json: cannot open " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"benchmark\": \"failure_repair\",\n"
      << "  \"fault\": \"crash_most_loaded_site\",\n"
      << "  \"metric\": \"median_repair_ms\",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"cases\": [\n";

  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseSpec& c = cases[i];
    WorkloadConfig cfg;
    cfg.network_size = c.network;
    cfg.min_queries = c.queries;
    cfg.max_queries = c.queries;
    cfg.min_datasets_per_query = 1;
    cfg.max_datasets_per_query = c.f_max;
    const Instance inst = generate_instance(cfg, /*seed=*/42);
    const ApproResult solved = appro_g(inst);

    SiteId victim = 0;
    for (const Site& s : inst.sites()) {
      if (solved.plan.load(s.id) > solved.plan.load(victim)) victim = s.id;
    }
    FaultState faults(inst);
    faults.apply({0.0, FaultKind::kSiteDown, victim, kInvalidEdge, 0.0});

    const RepairEngine engine(inst);
    RepairOptions incremental;
    RepairOptions oracle;
    oracle.full_recompute = true;

    RepairStats inc_st;
    RepairStats full_st;
    const double inc_ms =
        median_repair_ms(solved, engine, faults, incremental, reps, &inc_st);
    const double full_ms =
        median_repair_ms(solved, engine, faults, oracle, reps, &full_st);

    out << "    {\"case\": \"" << c.name << "\", \"network_size\": "
        << c.network << ", \"queries\": " << c.queries
        << ", \"evicted\": " << inc_st.queries_evicted
        << ", \"readmitted\": " << inc_st.queries_readmitted
        << ", \"incremental_ms\": " << round2(inc_ms)
        << ", \"full_recompute_ms\": " << round2(full_ms)
        << ", \"speedup\": " << round2(full_ms / inc_ms) << "}"
        << (i + 1 < cases.size() ? "," : "") << "\n";

    std::cerr << "repair " << c.network << "x" << c.queries << ": evicted "
              << inc_st.queries_evicted << ", incremental " << inc_ms
              << " ms, full " << full_ms << " ms, speedup "
              << full_ms / inc_ms << "x\n";
  }

  out << "  ]\n}\n";
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}

/// Wall time (ms) of `batch` back-to-back online runs.  Single runs finish
/// in a couple of milliseconds — too close to timer noise to resolve a 2%
/// overhead — so the serve-path comparison times batches.
double online_batch_ms(const Instance& inst, const OnlineConfig& cfg,
                       int batch) {
  const auto t0 = clock_type::now();
  for (int b = 0; b < batch; ++b) {
    const OnlineResult res = run_online(inst, cfg);
    if (res.outcomes.size() != inst.queries().size()) {
      throw std::runtime_error("bench_json: unexpected outcome count");
    }
  }
  const auto t1 = clock_type::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

int emit_serve(const std::string& out_path, int reps) {
  constexpr int kBatch = 20;
  const CaseSpec c = {"G", 100, 500, 5};
  WorkloadConfig cfg;
  cfg.network_size = c.network;
  cfg.min_queries = c.queries;
  cfg.max_queries = c.queries;
  cfg.min_datasets_per_query = 1;
  cfg.max_datasets_per_query = c.f_max;
  const Instance inst = generate_instance(cfg, /*seed=*/42);

  // Serve path under test: metrics + status board + sampler at the
  // documented 100 ms interval + a live (unscraped) HTTP server — the
  // `online --serve` setup.  The baseline has every facet off and no board.
  OnlineStatusBoard board;
  obs::TimeSeriesSampler sampler;
  sampler.add_counter_series("edgerep_online_arrivals_total");
  sampler.add_counter_series("edgerep_online_queries_admitted_total");
  sampler.add_series("online_sim_clock_seconds",
                     [&board] { return board.sim_clock(); });
  sampler.add_series("online_utilization",
                     [&board] { return board.utilization(); });
  sampler.add_series("dual_theta_max",
                     [] { return obs::dual_prices().max_theta(); });
  obs::HttpServer server;
  server.route("/metrics", [](const obs::HttpRequest&) {
    std::ostringstream os;
    obs::metrics().write_prometheus(os);
    return obs::HttpResponse{200, "text/plain; version=0.0.4", os.str()};
  });
  server.start(0);
  obs::metrics().reset();
  OnlineConfig serve_cfg;
  serve_cfg.status_board = &board;
  sampler.start(100);

  // Interleave plain and serving batches so slow machine drift (frequency
  // scaling, background load) hits both sides equally instead of biasing
  // whichever loop runs second.
  std::vector<double> plain_samples, serve_samples;
  plain_samples.reserve(static_cast<std::size_t>(reps));
  serve_samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    obs::set_all_enabled(false);
    plain_samples.push_back(online_batch_ms(inst, {}, kBatch));
    obs::set_metrics_enabled(true);
    serve_samples.push_back(online_batch_ms(inst, serve_cfg, kBatch));
  }
  const double plain_ms = median(std::move(plain_samples));
  const double serving_ms = median(std::move(serve_samples));
  sampler.stop();
  server.stop();
  obs::set_all_enabled(false);

  const double overhead_pct = (serving_ms / plain_ms - 1.0) * 100.0;

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_json: cannot open " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"benchmark\": \"telemetry_serve_path\",\n"
      << "  \"metric\": \"median_batch_ms\",\n"
      << "  \"sample_interval_ms\": 100,\n"
      << "  \"batch\": " << kBatch << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"cases\": [\n"
      << "    {\"case\": \"" << c.name << "\", \"network_size\": "
      << c.network << ", \"queries\": " << c.queries
      << ", \"plain_ms\": " << round2(plain_ms)
      << ", \"serving_ms\": " << round2(serving_ms)
      << ", \"overhead_pct\": " << round2(overhead_pct) << "}\n"
      << "  ]\n}\n";

  std::cerr << "serve path " << c.network << "x" << c.queries << " (batch "
            << kBatch << "): plain " << plain_ms << " ms, serving "
            << serving_ms << " ms (" << overhead_pct << "%)\n"
            << "wrote " << out_path << "\n";
  return 0;
}

int emit_obs(const std::string& out_path, int reps) {
  constexpr int kBatch = 20;
  const CaseSpec c = {"G", 100, 500, 5};
  WorkloadConfig cfg;
  cfg.network_size = c.network;
  cfg.min_queries = c.queries;
  cfg.max_queries = c.queries;
  cfg.min_datasets_per_query = 1;
  cfg.max_datasets_per_query = c.f_max;
  const Instance inst = generate_instance(cfg, /*seed=*/42);

  // Interleaved recorder-off / recorder-on batches (same drift argument as
  // emit_serve).  This measures the steady-state serve path: one unscored
  // warm-up batch faults in the journal arena, and the per-rep clear()
  // keeps its capacity, so scored appends never pay geometric growth or
  // first-touch page faults — those are one-time costs of a long-running
  // recorder, not recurring serve work.
  obs::set_all_enabled(false);
  obs::recorder().configure(obs::RecorderMode::kFull);
  obs::set_recorder_enabled(true);
  online_batch_ms(inst, {}, kBatch);  // warm-up: grows the arena once
  obs::set_recorder_enabled(false);
  std::vector<double> plain_samples, record_samples, watchdog_samples;
  plain_samples.reserve(static_cast<std::size_t>(reps));
  record_samples.reserve(static_cast<std::size_t>(reps));
  watchdog_samples.reserve(static_cast<std::size_t>(reps));
  std::uint64_t batch_records = 0;
  std::size_t batch_alerts = 0;
  for (int r = 0; r < reps; ++r) {
    obs::set_recorder_enabled(false);
    plain_samples.push_back(online_batch_ms(inst, {}, kBatch));
    obs::recorder().clear();  // drop records, keep the warm arena
    obs::set_recorder_enabled(true);
    record_samples.push_back(online_batch_ms(inst, {}, kBatch));
    batch_records = obs::recorder().total_appended();
    // Third leg: the watchdog alone (recorder back off), so the sensor
    // plane's per-event detector cost is measured separately from the
    // journal append cost it can piggyback on.
    obs::set_recorder_enabled(false);
    obs::set_watchdog_enabled(true);
    watchdog_samples.push_back(online_batch_ms(inst, {}, kBatch));
    batch_alerts = obs::watchdog().stats().opened;
    obs::set_watchdog_enabled(false);
  }
  obs::set_recorder_enabled(false);
  obs::recorder().configure(obs::RecorderMode::kFull);  // release the arena
  const double plain_ms = median(std::move(plain_samples));
  const double recording_ms = median(std::move(record_samples));
  const double watchdog_ms = median(std::move(watchdog_samples));
  const double overhead_pct = (recording_ms / plain_ms - 1.0) * 100.0;
  const double watchdog_overhead_pct = (watchdog_ms / plain_ms - 1.0) * 100.0;
  const std::uint64_t records_per_run =
      batch_records / static_cast<std::uint64_t>(kBatch);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_json: cannot open " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"benchmark\": \"flight_recorder\",\n"
      << "  \"metric\": \"median_batch_ms\",\n"
      << "  \"record_bytes\": " << sizeof(obs::JournalRecord) << ",\n"
      << "  \"batch\": " << kBatch << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"cases\": [\n"
      << "    {\"case\": \"" << c.name << "\", \"network_size\": "
      << c.network << ", \"queries\": " << c.queries
      << ", \"plain_ms\": " << round2(plain_ms)
      << ", \"recording_ms\": " << round2(recording_ms)
      << ", \"overhead_pct\": " << round2(overhead_pct)
      << ", \"records_per_run\": " << records_per_run
      << ", \"watchdog_ms\": " << round2(watchdog_ms)
      << ", \"watchdog_overhead_pct\": " << round2(watchdog_overhead_pct)
      << ", \"alerts_per_run\": " << batch_alerts << "}\n"
      << "  ]\n}\n";

  std::cerr << "flight recorder " << c.network << "x" << c.queries
            << " (batch " << kBatch << "): plain " << plain_ms
            << " ms, recording " << recording_ms << " ms ("
            << overhead_pct << "%), " << records_per_run
            << " records/run; watchdog " << watchdog_ms << " ms ("
            << watchdog_overhead_pct << "%, " << batch_alerts
            << " alerts/run)\n"
            << "wrote " << out_path << "\n";
  return 0;
}

/// Deterministic pricing problem for the kernel-vs-oracle comparison:
/// `n` candidates over `2n` sites, the demanded dataset holding 16 replicas
/// (mirrors bench/micro_stream.cpp so the numbers line up).
struct KernelArrays {
  std::vector<SiteId> site;
  std::vector<double> inv_avail;
  std::vector<double> dod;
  std::vector<double> theta;
  std::vector<double> avail;
  std::vector<double> load;
  std::vector<SiteId> replicas;

  explicit KernelArrays(std::size_t n) {
    Rng rng(0xbe9c5ULL + n);
    const std::size_t sites = 2 * n;
    theta.resize(sites);
    avail.resize(sites);
    load.resize(sites);
    for (std::size_t s = 0; s < sites; ++s) {
      theta[s] = rng.uniform(0.0, 2.0);
      avail[s] = rng.uniform(50.0, 100.0);
      load[s] = rng.uniform(0.0, avail[s]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const auto s = static_cast<SiteId>(2 * i);
      site.push_back(s);
      inv_avail.push_back(1.0 / avail[s]);
      dod.push_back(rng.uniform(0.0, 1.0));
    }
    for (const std::size_t s : rng.sample_indices(sites, 16)) {
      replicas.push_back(static_cast<SiteId>(s));
    }
  }
};

/// ns per candidate of either pricing path.  The vectorized side pays the
/// mask set/clear inside the timed region (it is part of the kernel's
/// per-demand protocol); the reference side is the original plan-walk with
/// its linear has_replica scan.
double kernel_ns_per_candidate(const KernelArrays& c, bool reference,
                               std::size_t iters) {
  const CandidateSoA soa{c.site, c.inv_avail, c.dod};
  ReplicaMaskWorkspace mask;
  mask.resize(c.theta.size());
  double sink = 0.0;
  const auto t0 = clock_type::now();
  if (reference) {
    const ReferencePricingState st{c.theta, c.avail, c.load, c.replicas,
                                   true};
    for (std::size_t i = 0; i < iters; ++i) {
      sink += static_cast<double>(
          price_candidates_reference(soa, st, 3.0, 0.25, 0.5).site);
    }
  } else {
    for (std::size_t i = 0; i < iters; ++i) {
      mask.set(c.replicas);
      const PricingState st{c.theta, c.avail, c.load, mask.bytes(), true};
      sink += static_cast<double>(
          price_candidates(soa, st, 3.0, 0.25, 0.5).site);
      mask.clear(c.replicas);
    }
  }
  const auto t1 = clock_type::now();
  if (sink < 0.0) throw std::runtime_error("bench_json: kernel sink");
  const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  return ns / static_cast<double>(iters * c.site.size());
}

double timed_online_ms(const Instance& inst, const OnlineConfig& cfg,
                       OnlineResult* out) {
  const auto t0 = clock_type::now();
  *out = run_online(inst, cfg);
  const auto t1 = clock_type::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

int emit_online(const std::string& out_path, int reps) {
  // Head-to-head at the 10k-site scale: the spec (closure) kernel pays one
  // strided delay-table row per candidate site per admission; the typed
  // kernel's candidate-ordered selection touches the table once per
  // accepted candidate.  Hashes are cross-checked every rep — this bench
  // doubles as a large-N equivalence smoke.
  StreamWorkloadConfig wc10k;
  wc10k.sites = 10'000;
  wc10k.queries = 20'000;
  std::cerr << "online bench: generating 10k-site instance...\n";
  const Instance inst10k = stream_instance(wc10k, 0x10f5);
  OnlineConfig cfg;
  cfg.arrival_rate = 20.0;

  std::vector<double> typed_ms_s, closure_ms_s;
  OnlineResult typed_res, closure_res;
  for (int r = 0; r < reps; ++r) {
    cfg.kernel = OnlineKernel::kTyped;
    typed_ms_s.push_back(timed_online_ms(inst10k, cfg, &typed_res));
    cfg.kernel = OnlineKernel::kClosure;
    closure_ms_s.push_back(timed_online_ms(inst10k, cfg, &closure_res));
    if (online_result_hash(typed_res) != online_result_hash(closure_res)) {
      std::cerr << "bench_json: kernel hash mismatch at 10k sites!\n";
      return 1;
    }
  }
  const double typed_ms = median(std::move(typed_ms_s));
  const double closure_ms = median(std::move(closure_ms_s));
  const auto events_per_sec = [](const OnlineResult& r, double ms) {
    return static_cast<long long>(
        static_cast<double>(r.kernel_stats.events_processed) / (ms / 1000.0));
  };
  const double speedup = closure_ms / typed_ms;
  std::cerr << "online 10k sites x " << wc10k.queries << ": typed "
            << typed_ms << " ms, closure " << closure_ms << " ms ("
            << speedup << "x)\n";

  // Memory-bound horizon sweep, typed kernel only (the closure oracle
  // pre-schedules every arrival, so its heap is O(queries) by design —
  // recorded once above via peak_pending_events).
  struct SweepSpec {
    const char* name;
    std::size_t sites;
    std::size_t queries;
    double rate;
  };
  const SweepSpec sweeps[] = {
      {"typed_1m", 1'024, 1'000'000, 50.0},
      {"typed_10m", 256, 10'000'000, 100.0},
  };
  std::string sweep_json;
  for (const SweepSpec& sp : sweeps) {
    StreamWorkloadConfig swc;
    swc.sites = sp.sites;
    swc.queries = sp.queries;
    std::cerr << "online bench: generating " << sp.name << " instance...\n";
    const Instance inst = stream_instance(swc, 0x5eed);
    OnlineConfig scfg;
    scfg.arrival_rate = sp.rate;
    OnlineResult r;
    const double ms = timed_online_ms(inst, scfg, &r);
    const auto& ks = r.kernel_stats;
    std::ostringstream os;
    os << "    {\"case\": \"" << sp.name << "\", \"sites\": " << sp.sites
       << ", \"queries\": " << sp.queries
       << ", \"run_ms\": " << round2(ms)
       << ", \"events_per_sec\": " << events_per_sec(r, ms)
       << ", \"peak_pending_events\": " << ks.peak_pending_events
       << ", \"peak_flights\": " << ks.peak_flights
       << ", \"peak_event_bytes\": " << ks.peak_event_bytes << "},\n";
    sweep_json += os.str();
    std::cerr << sp.name << ": " << ms << " ms, "
              << events_per_sec(r, ms) << " events/s, peak pending "
              << ks.peak_pending_events << " events ("
              << ks.peak_event_bytes << " B) for " << sp.queries
              << " queries\n";
  }
  if (!sweep_json.empty()) {
    sweep_json.erase(sweep_json.size() - 2, 1);  // drop trailing comma
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_json: cannot open " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"benchmark\": \"online_event_kernel\",\n"
      << "  \"metric\": \"median_run_ms\",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"cases\": [\n"
      << "    {\"case\": \"closure_10k\", \"sites\": " << wc10k.sites
      << ", \"queries\": " << wc10k.queries
      << ", \"run_ms\": " << round2(closure_ms)
      << ", \"events_per_sec\": " << events_per_sec(closure_res, closure_ms)
      << ", \"peak_pending_events\": "
      << closure_res.kernel_stats.peak_pending_events << "},\n"
      << "    {\"case\": \"typed_10k\", \"sites\": " << wc10k.sites
      << ", \"queries\": " << wc10k.queries
      << ", \"run_ms\": " << round2(typed_ms)
      << ", \"events_per_sec\": " << events_per_sec(typed_res, typed_ms)
      << ", \"peak_pending_events\": "
      << typed_res.kernel_stats.peak_pending_events
      << ", \"peak_flights\": " << typed_res.kernel_stats.peak_flights
      << ", \"speedup_vs_closure\": " << round2(speedup) << "},\n"
      << sweep_json
      << "  ]\n}\n";
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}

/// Steady-state FlowEngine churn: `flows` live flows over `links` shared
/// links, each completion starting a replacement until 4×flows spawns are
/// spent.  Returns wall ms; `*rate_changes` counts re-fill transitions.
double flow_churn_ms(std::size_t flows, std::size_t links,
                     std::uint64_t* completions,
                     std::uint64_t* rate_changes) {
  constexpr std::size_t kPathLen = 4;
  const std::size_t spawns = flows * 4;
  Rng rng(0xf10c5ULL + flows);
  std::vector<std::vector<EdgeId>> paths(spawns);
  for (auto& p : paths) {
    p.reserve(kPathLen);
    for (std::size_t i = 0; i < kPathLen; ++i) {
      p.push_back(static_cast<EdgeId>(
          rng.uniform_u64(0, static_cast<std::uint64_t>(links) - 1)));
    }
  }
  std::vector<double> sizes(spawns);
  for (double& s : sizes) s = rng.uniform(0.5, 2.0);

  EventQueue eq;
  FlowEngine engine(eq, std::vector<double>(links, 1.0));
  std::uint64_t refills = 0;
  engine.set_rate_listener(
      [&refills](std::uint32_t, double, double rate, double, EdgeId) {
        if (rate > 0.0) ++refills;
      });
  std::size_t next = 0;
  std::uint64_t done = 0;
  std::function<void()> launch = [&] {
    if (next >= spawns) return;
    const std::size_t i = next++;
    engine.start_flow(sizes[i], paths[i],
                      [&launch, &done] {
                        ++done;
                        launch();
                      },
                      static_cast<std::uint32_t>(i));
  };
  const auto t0 = clock_type::now();
  for (std::size_t i = 0; i < flows; ++i) launch();
  eq.run();
  const auto t1 = clock_type::now();
  if (engine.active_flows() != 0) {
    throw std::runtime_error("bench_json: flow churn left active flows");
  }
  *completions = done;
  *rate_changes = refills;
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

int emit_flows(const std::string& out_path, int reps) {
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_json: cannot open " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"benchmark\": \"flow_backend\",\n"
      << "  \"metric\": \"median_run_ms\",\n"
      << "  \"oversubscription\": 1.0,\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"cases\": [\n";

  // End-to-end: the flow backend's surcharge over the delay table on the
  // same instance, typed kernel, oversubscription 1 (real contention).
  struct ScaleSpec {
    const char* name;
    std::size_t sites;
    std::size_t queries;
  };
  const ScaleSpec scales[] = {
      {"flow_1k", 1'000, 20'000},
      {"flow_10k", 10'000, 20'000},
  };
  for (const ScaleSpec& sp : scales) {
    StreamWorkloadConfig wc;
    wc.sites = sp.sites;
    wc.queries = sp.queries;
    std::cerr << "flow bench: generating " << sp.name << " instance...\n";
    const Instance inst = stream_instance(wc, 0x10f5);
    OnlineConfig cfg;
    cfg.arrival_rate = 20.0;
    // The 10k-site flow run is minutes-long (tens of millions of re-fill
    // transitions); one rep still averages over ~20k transfers.
    const int case_reps = sp.sites >= 10'000 ? 1 : reps;
    std::vector<double> table_ms_s, flow_ms_s;
    OnlineResult table_res, flow_res;
    for (int r = 0; r < case_reps; ++r) {
      cfg.network = OnlineNetwork::kTable;
      table_ms_s.push_back(timed_online_ms(inst, cfg, &table_res));
      cfg.network = OnlineNetwork::kFlow;
      flow_ms_s.push_back(timed_online_ms(inst, cfg, &flow_res));
    }
    const double table_ms = median(std::move(table_ms_s));
    const double flow_ms = median(std::move(flow_ms_s));
    const double events_per_sec =
        static_cast<double>(flow_res.kernel_stats.events_processed) /
        (flow_ms / 1000.0);
    const FlowGapStats& g = flow_res.flow_gap;
    out << "    {\"case\": \"" << sp.name << "\", \"sites\": " << sp.sites
        << ", \"queries\": " << sp.queries
        << ", \"table_run_ms\": " << round2(table_ms)
        << ", \"flow_run_ms\": " << round2(flow_ms)
        << ", \"flow_overhead_pct\": "
        << round2((flow_ms / table_ms - 1.0) * 100.0)
        << ", \"events_per_sec\": " << static_cast<long long>(events_per_sec)
        << ", \"flows_routed\": " << g.flows_routed
        << ", \"rate_changes\": " << g.rate_changes
        << ", \"gap_breaches\": " << g.gap_breaches << "},\n";
    std::cerr << sp.name << ": table " << table_ms << " ms, flow " << flow_ms
              << " ms (" << (flow_ms / table_ms - 1.0) * 100.0 << "%), "
              << g.flows_routed << " flows, " << g.rate_changes
              << " rate changes, " << g.gap_breaches << " gap breaches\n";
  }

  // Engine-only re-fill churn at fixed live populations.
  struct ChurnSpec {
    std::size_t flows;
    std::size_t links;
  };
  // Larger populations (4096 flows over 10k links) collapse into one
  // giant shared component whose per-completion re-fill cost makes the
  // case minutes-long — out of budget for a committed baseline.
  const ChurnSpec churns[] = {{64, 1'024}, {512, 10'240}};
  for (std::size_t ci = 0; ci < std::size(churns); ++ci) {
    const ChurnSpec& c = churns[ci];
    std::vector<double> samples;
    std::uint64_t completions = 0;
    std::uint64_t rate_changes = 0;
    for (int r = 0; r < reps; ++r) {
      samples.push_back(
          flow_churn_ms(c.flows, c.links, &completions, &rate_changes));
    }
    const double churn_ms = median(std::move(samples));
    const double refill_ns_per_change =
        rate_changes > 0
            ? churn_ms * 1e6 / static_cast<double>(rate_changes)
            : 0.0;
    out << "    {\"case\": \"refill_" << c.flows
        << "\", \"flows\": " << c.flows << ", \"links\": " << c.links
        << ", \"churn_ms\": " << round2(churn_ms)
        << ", \"completions\": " << completions
        << ", \"rate_changes\": " << rate_changes
        << ", \"refill_ns_per_change\": " << round2(refill_ns_per_change)
        << "}" << (ci + 1 < std::size(churns) ? "," : "") << "\n";
    std::cerr << "refill flows=" << c.flows << " links=" << c.links << ": "
              << churn_ms << " ms, " << completions << " completions, "
              << rate_changes << " rate changes ("
              << refill_ns_per_change << " ns/change)\n";
  }

  out << "  ]\n}\n";
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}

int emit_throughput(const std::string& out_path, int reps) {
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_json: cannot open " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"benchmark\": \"stream_throughput\",\n"
      << "  \"metric\": \"median_run_ms\",\n"
      << "  \"epoch_length_s\": 0.05,\n"
      << "  \"arrival_rate_qps\": 20000,\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"cases\": [\n";

  // Pricing kernel vs scalar oracle on identical candidate sets.  The
  // ns/candidate figures are informational (too microscopic for the CI
  // regression guard); the committed speedups document the >=2x contract.
  const std::vector<std::size_t> cand_sizes = {64, 256, 1024, 4096};
  for (const std::size_t n : cand_sizes) {
    const KernelArrays arrays(n);
    const std::size_t iters = std::max<std::size_t>(1, 50'000'000 / n);
    // Warm up, then interleave-free single passes (each pass covers tens of
    // millions of candidate evaluations, amortizing timer noise).
    kernel_ns_per_candidate(arrays, false, iters / 10 + 1);
    const double vec_ns = kernel_ns_per_candidate(arrays, false, iters);
    const double sca_ns = kernel_ns_per_candidate(arrays, true, iters);
    out << "    {\"case\": \"kernel_" << n << "\", \"candidates\": " << n
        << ", \"vectorized_ns_per_candidate\": " << round2(vec_ns)
        << ", \"scalar_ns_per_candidate\": " << round2(sca_ns)
        << ", \"kernel_speedup\": " << round2(sca_ns / vec_ns) << "},\n";
    std::cerr << "kernel n=" << n << ": vectorized " << vec_ns
              << " ns/cand, scalar " << sca_ns << " ns/cand, speedup "
              << sca_ns / vec_ns << "x\n";
  }

  // Shard sweep over the streaming workloads.  The flagship case is the
  // issue's 10k-site / 1M-query target; the small case gives fast signal.
  struct StreamSpec {
    const char* name;
    std::size_t sites;
    std::size_t queries;
  };
  const std::vector<StreamSpec> specs = {
      {"stream_small", 1'000, 100'000},
      {"stream_full", 10'000, 1'000'000},
  };
  const std::vector<std::size_t> shard_counts = {1, 2, 4, 8, 16};

  for (const StreamSpec& spec : specs) {
    StreamWorkloadConfig cfg;
    cfg.sites = spec.sites;
    cfg.queries = spec.queries;
    const auto b0 = clock_type::now();
    const Instance inst = stream_instance(cfg, /*seed=*/42);
    const std::vector<Arrival> stream =
        generate_arrival_stream(inst, /*rate=*/20'000.0, /*seed=*/42);
    const auto b1 = clock_type::now();
    std::cerr << spec.name << ": built " << spec.sites << " sites / "
              << spec.queries << " queries in "
              << std::chrono::duration<double>(b1 - b0).count() << " s\n";

    double base_ms = 0.0;
    for (std::size_t si = 0; si < shard_counts.size(); ++si) {
      const std::size_t shards = shard_counts[si];
      StreamOptions opts;
      opts.shards = shards;
      std::vector<double> samples;
      std::size_t admitted = 0;
      for (int r = 0; r < reps; ++r) {
        const auto t0 = clock_type::now();
        const StreamResult res = run_stream(inst, stream, opts);
        const auto t1 = clock_type::now();
        if (res.queries_admitted + res.queries_rejected != spec.queries) {
          throw std::runtime_error("bench_json: stream lost queries");
        }
        admitted = res.queries_admitted;
        samples.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
      const double run_ms = median(std::move(samples));
      if (shards == 1) base_ms = run_ms;
      const double admitted_per_sec =
          static_cast<double>(admitted) / (run_ms / 1000.0);
      out << "    {\"case\": \"" << spec.name
          << "_s" << shards << "\", \"sites\": " << spec.sites
          << ", \"queries\": " << spec.queries << ", \"shards\": " << shards
          << ", \"run_ms\": " << round2(run_ms)
          << ", \"admitted\": " << admitted
          << ", \"admitted_per_sec\": " << static_cast<long long>(
                 admitted_per_sec)
          << ", \"speedup_vs_1shard\": " << round2(base_ms / run_ms) << "}";
      const bool last = (&spec == &specs.back()) &&
                        (si + 1 == shard_counts.size());
      out << (last ? "" : ",") << "\n";
      std::cerr << spec.name << " shards=" << shards << ": " << run_ms
                << " ms, admitted " << admitted << " ("
                << static_cast<long long>(admitted_per_sec)
                << " q/s), speedup " << base_ms / run_ms << "x\n";
    }
  }

  out << "  ]\n}\n";
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}

int run(int argc, char** argv) {
  set_log_level_from_env();
  const Args args(argc, argv);
  const int reps = std::max(1, static_cast<int>(args.get_int("reps", 9)));
  const int substrate_reps =
      std::max(1, static_cast<int>(args.get_int("substrate-reps", 5)));
  const std::string out_path = args.get("out", "BENCH_appro.json");
  const std::string substrate_path =
      args.get("substrate-out", "BENCH_substrate.json");
  const int repair_reps =
      std::max(1, static_cast<int>(args.get_int("repair-reps", 9)));
  const std::string repair_path = args.get("repair-out", "BENCH_repair.json");
  const int serve_reps =
      std::max(1, static_cast<int>(args.get_int("serve-reps", 9)));
  const std::string serve_path = args.get("serve-out", "BENCH_serve.json");
  // The flagship throughput case runs 1M queries per (shard count, rep):
  // one rep keeps the full suite in minutes while still averaging over a
  // million admissions.
  const int throughput_reps =
      std::max(1, static_cast<int>(args.get_int("throughput-reps", 1)));
  const std::string throughput_path =
      args.get("throughput-out", "BENCH_throughput.json");
  // Head-to-head reps for the 10k-site kernel comparison; the 1M/10M
  // horizon sweeps always run once (each averages over >=1M admissions).
  const int online_reps =
      std::max(1, static_cast<int>(args.get_int("online-reps", 3)));
  const std::string online_path =
      args.get("online-out", "BENCH_online.json");
  const int obs_reps =
      std::max(1, static_cast<int>(args.get_int("obs-reps", 9)));
  const std::string obs_path = args.get("obs-out", "BENCH_obs.json");
  const int flows_reps =
      std::max(1, static_cast<int>(args.get_int("flows-reps", 3)));
  const std::string flows_path = args.get("flows-out", "BENCH_flows.json");

  // `--only SECTION` regenerates a single anchor after a targeted change
  // (appro | substrate | repair | serve | throughput | online | obs |
  // flows).
  const std::string only = args.get("only", "");
  const auto wants = [&only](const char* section) {
    return only.empty() || only == section;
  };
  int rc = 0;
  if (wants("appro") && (rc = emit_appro(out_path, reps)) != 0) return rc;
  if (wants("substrate") &&
      (rc = emit_substrate(substrate_path, substrate_reps)) != 0) {
    return rc;
  }
  if (wants("repair") && (rc = emit_repair(repair_path, repair_reps)) != 0) {
    return rc;
  }
  if (wants("serve") && (rc = emit_serve(serve_path, serve_reps)) != 0) {
    return rc;
  }
  if (wants("throughput") &&
      (rc = emit_throughput(throughput_path, throughput_reps)) != 0) {
    return rc;
  }
  if (wants("online") && (rc = emit_online(online_path, online_reps)) != 0) {
    return rc;
  }
  if (wants("obs") && (rc = emit_obs(obs_path, obs_reps)) != 0) return rc;
  if (wants("flows") && (rc = emit_flows(flows_path, flows_reps)) != 0) {
    return rc;
  }
  return 0;
}

}  // namespace
}  // namespace edgerep

int main(int argc, char** argv) { return edgerep::run(argc, argv); }
