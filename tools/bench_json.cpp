// Emits BENCH_appro.json: median ns/query of the admission engine for the
// special (S, one dataset per query) and general (G, multi-dataset) cases
// at three instance sizes, for both transaction mechanisms (savepoint vs
// the legacy copy baseline), plus the resulting speedups.  The committed
// file is the perf trajectory anchor; re-run after touching the admission
// hot path:
//
//   ./build/tools/bench_json [--reps=9] [--out=BENCH_appro.json]
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "edgerep/edgerep.h"

namespace edgerep {
namespace {

struct CaseSpec {
  const char* name;        // "S" or "G"
  std::size_t network;
  std::size_t queries;
  std::size_t f_max;
};

double median_ns_per_query(const Instance& inst, const ApproOptions& opts,
                           std::size_t queries, int reps) {
  using clock = std::chrono::steady_clock;
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = clock::now();
    const ApproResult res = appro_g(inst, opts);
    const auto t1 = clock::now();
    // Keep the result alive past the timer so the run is not elided.
    if (res.metrics.total_queries != queries) {
      throw std::runtime_error("bench_json: unexpected query count");
    }
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count();
    samples.push_back(ns / static_cast<double>(queries));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

int run(int argc, char** argv) {
  const Args args(argc, argv);
  const int reps = std::max(1, static_cast<int>(args.get_int("reps", 9)));
  const std::string out_path = args.get("out", "BENCH_appro.json");

  const std::vector<CaseSpec> cases = {
      {"S", 32, 100, 1},  {"S", 64, 250, 1},  {"S", 100, 500, 1},
      {"G", 32, 100, 5},  {"G", 64, 250, 5},  {"G", 100, 500, 5},
  };

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_json: cannot open " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"benchmark\": \"appro_admission\",\n"
      << "  \"metric\": \"median_ns_per_query\",\n"
      << "  \"atomic_queries\": true,\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"cases\": [\n";

  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseSpec& c = cases[i];
    WorkloadConfig cfg;
    cfg.network_size = c.network;
    cfg.min_queries = c.queries;
    cfg.max_queries = c.queries;
    cfg.min_datasets_per_query = 1;
    cfg.max_datasets_per_query = c.f_max;
    const Instance inst = generate_instance(cfg, /*seed=*/42);

    ApproOptions sp_opts;
    sp_opts.txn = ApproOptions::Txn::kSavepoint;
    ApproOptions copy_opts;
    copy_opts.txn = ApproOptions::Txn::kCopy;

    const double sp_ns = median_ns_per_query(inst, sp_opts, c.queries, reps);
    const double copy_ns =
        median_ns_per_query(inst, copy_opts, c.queries, reps);
    const double speedup = copy_ns / sp_ns;

    out << "    {\"case\": \"" << c.name << "\", \"network_size\": "
        << c.network << ", \"queries\": " << c.queries
        << ", \"savepoint_ns_per_query\": " << static_cast<long long>(sp_ns)
        << ", \"copy_ns_per_query\": " << static_cast<long long>(copy_ns)
        << ", \"speedup\": "
        << static_cast<double>(static_cast<long long>(speedup * 100.0)) / 100.0
        << "}" << (i + 1 < cases.size() ? "," : "") << "\n";

    std::cerr << c.name << " " << c.network << "x" << c.queries
              << ": savepoint " << static_cast<long long>(sp_ns)
              << " ns/query, copy " << static_cast<long long>(copy_ns)
              << " ns/query, speedup " << speedup << "x\n";
  }

  out << "  ]\n}\n";
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace edgerep

int main(int argc, char** argv) { return edgerep::run(argc, argv); }
