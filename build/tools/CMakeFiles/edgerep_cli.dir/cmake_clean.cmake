file(REMOVE_RECURSE
  "CMakeFiles/edgerep_cli.dir/edgerep_cli.cpp.o"
  "CMakeFiles/edgerep_cli.dir/edgerep_cli.cpp.o.d"
  "edgerep_cli"
  "edgerep_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgerep_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
