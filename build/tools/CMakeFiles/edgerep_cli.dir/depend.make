# Empty dependencies file for edgerep_cli.
# This may be replaced when dependencies are built.
