
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/edge_analytics.cpp" "examples/CMakeFiles/edge_analytics.dir/edge_analytics.cpp.o" "gcc" "examples/CMakeFiles/edge_analytics.dir/edge_analytics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/edgerep_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgerep_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgerep_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgerep_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgerep_part.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgerep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgerep_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgerep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgerep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
