# Empty dependencies file for edge_analytics.
# This may be replaced when dependencies are built.
