file(REMOVE_RECURSE
  "CMakeFiles/edge_analytics.dir/edge_analytics.cpp.o"
  "CMakeFiles/edge_analytics.dir/edge_analytics.cpp.o.d"
  "edge_analytics"
  "edge_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
