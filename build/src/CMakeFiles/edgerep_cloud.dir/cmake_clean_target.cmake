file(REMOVE_RECURSE
  "libedgerep_cloud.a"
)
