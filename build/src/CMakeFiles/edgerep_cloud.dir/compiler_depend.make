# Empty compiler generated dependencies file for edgerep_cloud.
# This may be replaced when dependencies are built.
