file(REMOVE_RECURSE
  "CMakeFiles/edgerep_cloud.dir/cloud/availability.cpp.o"
  "CMakeFiles/edgerep_cloud.dir/cloud/availability.cpp.o.d"
  "CMakeFiles/edgerep_cloud.dir/cloud/consistency.cpp.o"
  "CMakeFiles/edgerep_cloud.dir/cloud/consistency.cpp.o.d"
  "CMakeFiles/edgerep_cloud.dir/cloud/delay.cpp.o"
  "CMakeFiles/edgerep_cloud.dir/cloud/delay.cpp.o.d"
  "CMakeFiles/edgerep_cloud.dir/cloud/instance.cpp.o"
  "CMakeFiles/edgerep_cloud.dir/cloud/instance.cpp.o.d"
  "CMakeFiles/edgerep_cloud.dir/cloud/instance_io.cpp.o"
  "CMakeFiles/edgerep_cloud.dir/cloud/instance_io.cpp.o.d"
  "CMakeFiles/edgerep_cloud.dir/cloud/plan.cpp.o"
  "CMakeFiles/edgerep_cloud.dir/cloud/plan.cpp.o.d"
  "CMakeFiles/edgerep_cloud.dir/cloud/plan_diff.cpp.o"
  "CMakeFiles/edgerep_cloud.dir/cloud/plan_diff.cpp.o.d"
  "CMakeFiles/edgerep_cloud.dir/cloud/plan_io.cpp.o"
  "CMakeFiles/edgerep_cloud.dir/cloud/plan_io.cpp.o.d"
  "CMakeFiles/edgerep_cloud.dir/cloud/types.cpp.o"
  "CMakeFiles/edgerep_cloud.dir/cloud/types.cpp.o.d"
  "libedgerep_cloud.a"
  "libedgerep_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgerep_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
